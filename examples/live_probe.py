#!/usr/bin/env python3
"""Probe a *real* network path with the live NetDyn implementation.

Everything else in this repository runs against the simulator; this example
runs the same measurement over real UDP sockets.  It starts an echo server
on loopback, sends a probe train at delta = 10 ms, and feeds the resulting
trace through the identical analysis pipeline — demonstrating that
simulated and live traces are interchangeable :class:`ProbeTrace` objects.

To probe a remote host instead, run ``repro-echo`` there and pass its
address:  python examples/live_probe.py --host 192.0.2.10 --port 5201

Run:  python examples/live_probe.py
"""

import argparse
import asyncio

from repro.analysis.loss import loss_stats
from repro.analysis.timeseries import summarize
from repro.netdyn.live import probe, serve_echo


async def run(host: str, port: int, delta: float, count: int,
              local_server: bool) -> None:
    transport = None
    if local_server:
        transport, _protocol = await serve_echo(host, port)
    try:
        trace = await probe(host, port, delta=delta, count=count)
    finally:
        if transport is not None:
            transport.close()

    delay = summarize(trace)
    losses = loss_stats(trace)
    print(f"target {host}:{port}  delta {delta * 1e3:g} ms  "
          f"probes {count}")
    print(f"rtt ms: min {delay.minimum * 1e3:.3f}  "
          f"mean {delay.mean * 1e3:.3f}  p99 {delay.p99 * 1e3:.3f}")
    print(f"loss: ulp {losses.ulp:.4f}  clp {losses.clp:.4f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=5201)
    parser.add_argument("--delta-ms", type=float, default=10.0)
    parser.add_argument("--count", type=int, default=300)
    parser.add_argument("--no-local-server", action="store_true",
                        help="probe an already-running remote echo server")
    args = parser.parse_args()
    asyncio.run(run(args.host, args.port, delta=args.delta_ms * 1e-3,
                    count=args.count,
                    local_server=not args.no_local_server))


if __name__ == "__main__":
    main()
