#!/usr/bin/env python3
"""Quickstart: probe the simulated INRIA-UMd path and analyze the trace.

This is the paper's core experiment in ~30 lines: send 32-byte UDP probes
every 50 ms across the calibrated Table-1 topology (128 kb/s transatlantic
bottleneck, live cross traffic), then compute the delay and loss statistics
of Sections 4 and 5.

Run:  python examples/quickstart.py
"""

from repro import (
    build_inria_umd,
    estimate_bottleneck_mu,
    loss_stats,
    phase_points,
    run_probe_experiment,
    summarize,
)
from repro.plotting import scatter


def main() -> None:
    # Build the calibrated scenario and start its cross traffic.
    scenario = build_inria_umd(seed=7)
    scenario.start_traffic()

    # One NetDyn experiment: delta = 50 ms, 2 simulated minutes,
    # starting after a 30 s warm-up.
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.050, count=2400,
                                 start_at=30.0)

    delay = summarize(trace)
    print(f"probes: {len(trace)}  received: {delay.count}")
    print(f"rtt ms: min {delay.minimum * 1e3:.1f}  "
          f"mean {delay.mean * 1e3:.1f}  p99 {delay.p99 * 1e3:.1f}  "
          f"max {delay.maximum * 1e3:.1f}")

    losses = loss_stats(trace)
    print(f"loss: ulp {losses.ulp:.3f}  clp {losses.clp:.3f}  "
          f"plg {losses.plg:.2f}")

    # The phase-plot bandwidth estimator of Section 4.
    mu = estimate_bottleneck_mu(trace, mu_hint=scenario.bottleneck_rate_bps)
    print(f"bottleneck: actual {scenario.bottleneck_rate_bps / 1e3:.0f} kb/s,"
          f" estimated {mu / 1e3:.0f} kb/s" if mu else "no estimate")

    plot = phase_points(trace)
    print()
    print(scatter(plot.x * 1e3, plot.y * 1e3, diagonal=True,
                  title="Phase plot: rtt_n+1 vs rtt_n (ms)",
                  x_label="rtt ms"))


if __name__ == "__main__":
    main()
