#!/usr/bin/env python3
"""Watch the bottleneck queue breathe: the dynamics behind the phase plots.

The paper stresses "the importance of studying the dynamics, i.e. the
time-dependent behavior, of computer networks", citing the rapid queue
fluctuations Zhang et al. found in simulation [28, 29].  The simulator
makes those dynamics directly observable: this example taps the
transatlantic bottleneck, plots its queue occupancy over time, and relates
what the queue does to what the probes measured at the same moment.

Run:  python examples/queue_dynamics.py
"""

import numpy as np

from repro.net.packet import KIND_UDP
from repro.net.tap import PacketTap
from repro.netdyn.session import run_probe_experiment
from repro.plotting.ascii import line
from repro.topology.inria_umd import build_inria_umd


def main() -> None:
    scenario = build_inria_umd(seed=61)
    queue = scenario.bottleneck_fwd.queue
    tap = PacketTap(scenario.bottleneck_fwd, kinds={KIND_UDP})

    # Sample queue occupancy every 100 ms alongside the probe experiment.
    samples = []

    def sample() -> None:
        samples.append((scenario.sim.now, len(queue)))
        scenario.sim.schedule(0.1, sample)

    scenario.sim.call_at(0.0, sample)
    scenario.start_traffic()
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.05, count=1200,
                                 start_at=10.0)

    occupancy = np.array([occ for _, occ in samples])
    print(line(occupancy, width=72, height=14,
               title="bottleneck queue occupancy (packets) over time",
               y_label="packets"))

    print(f"\nqueue: {queue.arrivals} arrivals, {queue.drops} drops "
          f"({queue.loss_fraction:.1%}), time-averaged occupancy "
          f"{queue.occupancy_packets.mean():.1f} of {queue.capacity}")
    print(f"tap: {len(tap)} packets crossed, "
          f"{tap.throughput_bps() / 1e3:.0f} kb/s sustained "
          f"({tap.throughput_bps() / scenario.bottleneck_rate_bps:.0%} "
          f"of the link)")

    # Correlate the probes with the queue: rtt tracks occupancy.
    probe_rtts = trace.rtts[trace.received]
    print(f"probes: rtt spans {probe_rtts.min() * 1e3:.0f}.."
          f"{probe_rtts.max() * 1e3:.0f} ms; each queued packet ahead "
          f"adds one 552 B service time "
          f"({552 * 8 / scenario.bottleneck_rate_bps * 1e3:.1f} ms), so "
          f"the rtt swing of {np.ptp(probe_rtts) * 1e3:.0f} ms mirrors an "
          f"occupancy swing of ~{np.ptp(occupancy):.0f} packets per "
          f"direction.")


if __name__ == "__main__":
    main()
