#!/usr/bin/env python3
"""Observe ACK compression — the phenomenon probe compression is named for.

Zhang, Shenker and Clark [29] showed in simulation (and Mogul [18] in NSFNET
traces) that two-way TCP traffic clusters acknowledgements: ACKs queued
behind large data packets of the *reverse* path leave that queue
back-to-back, so they arrive at the data sender far closer together than
the data packets that triggered them.  Bolot names probe compression after
exactly this effect.

This example runs a mini-TCP transfer while bulk traffic congests the
reverse (ACK) path, and compares ACK inter-arrival times at the sender with
the ACK clock's natural spacing (one data-segment service time).

Run:  python examples/ack_compression.py
"""

import numpy as np

from repro.net.routing import Network
from repro.net.transport import start_transfer
from repro.sim import Simulator
from repro.traffic.ftp import FtpSource
from repro.traffic.base import TrafficSink
from repro.units import kbps, ms, seconds_to_ms

#: The shared bottleneck rate, both directions.
RATE = kbps(256)

#: Natural ACK spacing: one 552-byte data segment's service time.
SEGMENT_SERVICE = 552 * 8 / RATE


def build_network(sim):
    network = Network(sim)
    for name in ("tcp-src", "tcp-dst", "cross-src", "cross-dst"):
        network.add_host(name)
    network.add_router("r1")
    network.add_router("r2")
    network.link("tcp-src", "r1", rate_bps=10e6, prop_delay=ms(1))
    network.link("r1", "r2", rate_bps=RATE, prop_delay=ms(20),
                 queue_capacity=30)
    network.link("r2", "tcp-dst", rate_bps=10e6, prop_delay=ms(1))
    # Cross traffic crosses the bottleneck in the REVERSE direction,
    # sharing the queue that carries the ACKs.
    network.link("cross-src", "r2", rate_bps=10e6, prop_delay=ms(1))
    network.link("r1", "cross-dst", rate_bps=10e6, prop_delay=ms(1))
    network.compute_routes()
    return network


def ack_gaps(sim, with_reverse_traffic):
    network = build_network(sim)
    if with_reverse_traffic:
        sink = TrafficSink(network.host("cross-dst"), port=9000)
        ftp = FtpSource(network.host("cross-src"), "cross-dst",
                        session_rate=0.4, mean_file_packets=30.0, window=6,
                        window_interval=0.3, port=9000)
        ftp.start()

    arrivals = []
    sender_host = network.host("tcp-src")
    sender, receiver = start_transfer(sender_host, network.host("tcp-dst"),
                                      port=5000, total_segments=100_000,
                                      at=5.0)
    original = sender._on_ack

    def timestamped(packet):
        arrivals.append(sim.now)
        original(packet)

    sender_host.unbind_udp(5000)
    sender_host.bind_udp(5000, timestamped)
    sim.run(until=90.0)
    sender.close()
    return np.diff(arrivals)


def main() -> None:
    quiet = ack_gaps(Simulator(seed=41), with_reverse_traffic=False)
    congested = ack_gaps(Simulator(seed=41), with_reverse_traffic=True)

    for label, gaps in (("quiet reverse path", quiet),
                        ("congested reverse path", congested)):
        compressed = np.mean(gaps < 0.5 * SEGMENT_SERVICE)
        print(f"{label:24s}: {len(gaps):5d} ACKs, median gap "
              f"{seconds_to_ms(np.median(gaps)):6.1f} ms, "
              f"{compressed:.1%} compressed "
              f"(< half a segment service time)")

    print(f"\nnatural ACK-clock spacing is one segment service time "
          f"({seconds_to_ms(SEGMENT_SERVICE):.1f} ms); ACKs arriving much "
          f"closer together were compressed behind reverse-path data "
          f"packets — the effect probe compression is named after.")


if __name__ == "__main__":
    main()
