#!/usr/bin/env python3
"""Estimate a path's bottleneck bandwidth from probe phase plots.

Section 4 of the paper turns the probe-compression line into a measurement
instrument: the line ``rtt_{n+1} = rtt_n + P/μ − δ`` crosses the x-axis at
``δ − P/μ``, so reading the intercept off a phase plot yields the
bottleneck service rate μ.  Bolot reads 48 ms at δ = 50 ms and recovers
~130 kb/s for the actual 128 kb/s transatlantic link.

This example repeats the estimate at several probe intervals and at a
second, faster path, showing where the technique works (δ small enough for
probes to queue behind each other) and where it degrades.

Run:  python examples/bottleneck_estimation.py
"""

from repro import build_inria_umd, build_umd_pitt, run_probe_experiment
from repro.analysis.phase import fit_compression_line, phase_points


def estimate(scenario_name: str, build, deltas, count: int = 4000,
             tolerance: float = 4e-3, **build_kwargs) -> None:
    print(f"--- {scenario_name}")
    for delta in deltas:
        scenario = build(seed=11, **build_kwargs)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=delta,
                                     count=count, start_at=20.0)
        fit = fit_compression_line(phase_points(trace),
                                   mu_hint=scenario.bottleneck_rate_bps,
                                   tolerance=tolerance)
        actual = scenario.bottleneck_rate_bps / 1e3
        if fit.mu_estimate is None:
            print(f"  delta={delta * 1e3:5.0f} ms: no compression line "
                  f"(too few compressed probes) — actual {actual:.0f} kb/s")
            continue
        clock = float(trace.meta.get("clock_resolution", 0.0) or 0.0)
        caveat = ""
        if clock and trace.wire_bytes * 8 / fit.mu_estimate < clock:
            caveat = "  [P/mu below clock resolution: unreliable]"
        print(f"  delta={delta * 1e3:5.0f} ms: {fit.point_count:5d} points "
              f"on the line, mu ~= {fit.mu_estimate / 1e3:7.0f} kb/s "
              f"(actual {actual:.0f} kb/s){caveat}")


def main() -> None:
    estimate("INRIA -> UMd (128 kb/s transatlantic bottleneck)",
             build_inria_umd, deltas=(0.020, 0.050, 0.100))
    # On the fast path P/mu is ~58 us — far below the UMd host's 3 ms clock
    # tick, so the intercept cannot be read from quantized timestamps (the
    # paper likewise declines to name this path's bottleneck).  With a
    # perfect clock and a tight band the technique works again.
    estimate("UMd -> Pittsburgh, 3 ms host clock (as measured)",
             build_umd_pitt, deltas=(0.008,))
    estimate("UMd -> Pittsburgh, perfect host clock (counterfactual)",
             build_umd_pitt, deltas=(0.002,), tolerance=5e-5,
             quantized_clock=False)


if __name__ == "__main__":
    main()
