#!/usr/bin/env python3
"""Find a misbehaving gateway with periodic probing, NetDyn-style.

Sanghi et al. used NetDyn's dense probe trains to find real faults: a
gateway 'debug' option that stalled forwarding every 90 seconds, faulty
interface cards that randomly dropped packets, and route changes [21, 22].
The paper builds on exactly that tooling.

This example injects the same three faults into the calibrated topology and
shows how each one has a distinct signature in the probe trace:

* periodic stalls -> a spike train in the rtt series and a spectral line at
  1/period in the periodogram;
* faulty interface -> elevated *random* loss (runs test does not reject
  independence);
* route flap -> the minimum rtt alternates between two levels.

Run:  python examples/network_debugging.py
"""

import numpy as np

from repro.analysis.loss import loss_stats, runs_test
from repro.analysis.timeseries import periodic_spike_period
from repro.net.faults import PeriodicStallFault, RandomDropFault, RouteFlapFault
from repro.netdyn.session import run_probe_experiment
from repro.topology.inria_umd import build_inria_umd
from repro.units import mbps, ms


def debug_periodic_stall() -> None:
    """A gateway freezes for 1 s every 90 s (the 'debug option' bug).

    The stall adds a full second to the rtts it hits — far beyond the
    congestion ceiling of this path — so thresholding on extreme rtts and
    measuring the spacing of the spike clusters exposes the period.
    """
    scenario = build_inria_umd(seed=31, utilization_fwd=0.3,
                               utilization_rev=0.3, fault_drop_prob=0.0)
    stall = PeriodicStallFault(period=90.0, stall=1.0)
    scenario.bottleneck_fwd.add_egress_fault(stall)
    scenario.start_traffic()
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.1, count=5400,
                                 start_at=10.0)
    period = periodic_spike_period(trace, threshold=0.8)
    print(f"[stall] spike clusters every {period:.0f} s "
          f"(injected: 90 s) -> "
          f"{'FOUND' if 80 <= period <= 100 else 'missed'}")


def debug_faulty_interface() -> None:
    """An interface card drops 5% of packets at random."""
    scenario = build_inria_umd(seed=32, utilization_fwd=0.2,
                               utilization_rev=0.2, fault_drop_prob=0.0)
    fault = RandomDropFault(0.05, scenario.sim.streams.get("debug.fault"))
    scenario.network.interface("nss-SURA-eth.sura.net",
                               "sura8-umd-c1.sura.net").add_egress_fault(fault)
    scenario.start_traffic()
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.05, count=4000,
                                 start_at=10.0)
    stats = loss_stats(trace)
    randomness = runs_test(trace)
    print(f"[faulty card] ulp {stats.ulp:.3f} with clp {stats.clp:.3f}; "
          f"runs test p = {randomness.p_value:.2f} -> "
          f"{'random drops (hardware?)' if randomness.looks_random() else 'bursty (congestion?)'}")


def debug_route_flap() -> None:
    """Routing alternates between the normal path and a long detour."""
    scenario = build_inria_umd(seed=33, utilization_fwd=0.2,
                               utilization_rev=0.2, fault_drop_prob=0.0)
    network = scenario.network
    # A backup transatlantic link with much longer propagation delay.
    network.link("sophia-gw.atlantic.fr", "Ithaca1.NY.NSS.NSF.NET",
                 rate_bps=mbps(1.5), prop_delay=ms(130))
    network.compute_routes()  # still prefers the short path
    flap = RouteFlapFault(scenario.sim,
                          network.node("sophia-gw.atlantic.fr"),
                          destination=scenario.echo,
                          primary_peer="icm-sophia.icp.net",
                          backup_peer="Ithaca1.NY.NSS.NSF.NET",
                          period=30.0)
    flap.install()
    scenario.start_traffic()
    trace = run_probe_experiment(network, scenario.source, scenario.echo,
                                 delta=0.1, count=1200, start_at=5.0)
    # Two delay floors = two routes: compare per-window minima.
    windows = np.array_split(trace.rtts[trace.received], 12)
    floors = np.array([w.min() for w in windows if len(w)]) * 1e3
    low, high = floors.min(), floors.max()
    print(f"[route flap] per-window rtt floors range "
          f"{low:.0f}..{high:.0f} ms -> "
          f"{'two routes detected' if high - low > 50 else 'stable route'} "
          f"({flap.flaps} flaps injected)")


def main() -> None:
    debug_periodic_stall()
    debug_faulty_interface()
    debug_route_flap()


if __name__ == "__main__":
    main()
