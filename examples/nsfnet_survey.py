#!/usr/bin/env python3
"""A multi-path delay survey across the NSFNET backbone.

Mukherjee [19] — the minute-scale study the paper builds on — found that
end-to-end delay is well modeled by a constant plus a gamma distribution
*whose parameters depend on the path*.  This example reproduces that style
of survey on the simulated T1 NSFNET backbone: probe several city pairs,
fit the constant+gamma model per path, and tabulate how the parameters
track path length and load.

Run:  python examples/nsfnet_survey.py
"""

from repro.analysis.distributions import fit_constant_plus_gamma
from repro.analysis.loss import loss_stats
from repro.errors import FitError
from repro.netdyn.session import run_probe_experiment
from repro.topology.nsfnet import build_nsfnet
from repro.traffic.mix import attach_internet_mix
from repro.units import seconds_to_ms

#: City pairs to survey: short, medium, and cross-country paths.
PATHS = (
    ("Ithaca", "Pittsburgh"),
    ("CollegePark", "Urbana"),
    ("Princeton", "SaltLakeCity"),
    ("Seattle", "CollegePark"),
)


def main() -> None:
    scenario = build_nsfnet(seed=51)
    network = scenario.network

    # Load a few backbone trunks with bulk/interactive mixes.
    for i, (a, b) in enumerate((("Urbana", "AnnArbor"),
                                ("Houston", "CollegePark"),
                                ("Ithaca", "CollegePark"))):
        mix = attach_internet_mix(
            network.host(scenario.host_at(a)),
            network.host(scenario.host_at(b)),
            link_rate_bps=1.544e6, utilization=0.5,
            base_port=9100 + 10 * i, stream_prefix=f"mix{i}")
        mix.start()

    print(f"{'path':>28} {'hops':>5} {'D ms':>7} {'gamma shape':>12} "
          f"{'gamma scale ms':>15} {'ulp':>6}")
    for a, b in PATHS:
        source, echo = scenario.host_at(a), scenario.host_at(b)
        hops = len(network.path(source, echo)) - 1
        # Experiments run back to back on one simulator; start each a few
        # seconds after the previous one finished.
        trace = run_probe_experiment(network, source, echo, delta=0.05,
                                     count=2400,
                                     start_at=scenario.sim.now + 5.0)
        losses = loss_stats(trace)
        try:
            fit = fit_constant_plus_gamma(trace)
            print(f"{a + ' -> ' + b:>28} {hops:>5} "
                  f"{seconds_to_ms(fit.constant):7.1f} {fit.shape:12.2f} "
                  f"{seconds_to_ms(fit.scale):15.2f} {losses.ulp:6.3f}")
        except FitError:
            print(f"{a + ' -> ' + b:>28} {hops:>5} "
                  f"{seconds_to_ms(trace.min_rtt()):7.1f} "
                  f"{'(unloaded path: delays constant)':>28} "
                  f"{losses.ulp:6.3f}")

    print("\nAs in [19]: one family of distributions fits every path, but "
          "the constant tracks propagation (hops) and the gamma's "
          "shape/scale track the congestion encountered en route.")


if __name__ == "__main__":
    main()
