#!/usr/bin/env python3
"""Can open-loop error control repair audio loss on this path?  (Section 5.)

The paper's loss analysis exists to answer an application question: audio
tools send packets at fixed intervals (22.5–125 ms), and open-loop error
control — FEC, or simply repeating the previous packet — only works when
losses are *isolated*.  Bolot finds the loss gap stays near 1 and concludes
FEC would be adequate.

This example measures loss traces at audio-like intervals on the calibrated
path and evaluates the schemes from :mod:`repro.apps.fec`:

* ``repeat-last``: conceal a loss with the previous packet's audio;
* ``xor-fec(4)``: one XOR parity per 4 data packets [23];
* ``interleaved(4x4)``: the same parity over interleaved groups.

It also sizes the playback buffer (:mod:`repro.apps.playout`), the other
delay-distribution question the paper raises.

Run:  python examples/audio_fec.py
"""

from repro import build_inria_umd, loss_stats, run_probe_experiment
from repro.apps.fec import evaluate_repair
from repro.apps.playout import AdaptivePlayout, playout_delay_for_loss


def main() -> None:
    # Audio packetization intervals from the paper's discussion:
    # 22.5 ms [24] to 125 ms [27].
    for interval in (0.0225, 0.0625, 0.125):
        scenario = build_inria_umd(seed=23)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=interval,
                                     count=int(180 / interval),
                                     start_at=30.0)
        stats = loss_stats(trace)
        repair = evaluate_repair(trace, group=4, depth=4)
        print(f"audio interval {interval * 1e3:6.1f} ms: "
              f"ulp {stats.ulp:.3f}  plg {stats.plg:.2f}")
        print(f"    residual loss: repeat-last {repair.repeat_last:.3f}, "
              f"xor-fec(4) {repair.xor_fec:.3f}, "
              f"interleaved(4x4) {repair.interleaved:.3f} "
              f"-> best: {repair.best_scheme()}")

        buffer_delay = playout_delay_for_loss(trace, target_late_loss=0.01)
        adaptive = AdaptivePlayout().play(trace)
        print(f"    playback buffer: fixed {buffer_delay * 1e3:.0f} ms for "
              f"1% late loss; adaptive averages "
              f"{adaptive.playout_delay * 1e3:.0f} ms "
              f"({adaptive.late_loss:.1%} late)")

    print("\nloss gap ~1 means isolated losses: open-loop schemes recover "
          "most packets, as the paper concludes.")


if __name__ == "__main__":
    main()
