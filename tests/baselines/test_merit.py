"""Tests for the Merit-style 15-minute sampling baseline [6]."""

import numpy as np
import pytest

from repro.baselines.merit import merit_sampling, MeritStats
from repro.errors import ConfigurationError, InsufficientDataError
from repro.topology.presets import build_single_bottleneck


class TestMeritSampling:
    def test_one_sample_per_interval(self):
        scenario = build_single_bottleneck(seed=4)
        stats = merit_sampling(scenario.network, "src", "echo",
                               intervals=5, interval=10.0)
        assert len(stats.samples) == 5
        assert stats.availability() == 1.0

    def test_clock_advances_by_intervals(self):
        scenario = build_single_bottleneck(seed=4)
        merit_sampling(scenario.network, "src", "echo", intervals=4,
                       interval=10.0)
        assert scenario.sim.now == pytest.approx(40.0)

    def test_median_delay(self):
        scenario = build_single_bottleneck(seed=4)
        stats = merit_sampling(scenario.network, "src", "echo",
                               intervals=3, interval=10.0)
        valid = stats.samples[~np.isnan(stats.samples)]
        assert stats.median_delay() == pytest.approx(np.median(valid))

    def test_median_requires_samples(self):
        stats = MeritStats(samples=np.array([np.nan, np.nan]), interval=10.0)
        with pytest.raises(InsufficientDataError):
            stats.median_delay()

    def test_availability_with_losses(self):
        stats = MeritStats(samples=np.array([0.1, np.nan, 0.2, 0.3]),
                           interval=10.0)
        assert stats.availability() == pytest.approx(0.75)

    def test_validation(self):
        scenario = build_single_bottleneck(seed=4)
        with pytest.raises(ConfigurationError):
            merit_sampling(scenario.network, "src", "echo", intervals=0)
        with pytest.raises(ConfigurationError):
            merit_sampling(scenario.network, "src", "echo", intervals=1,
                           interval=0.0)

    def test_coarse_sampling_misses_transients(self):
        """The paper's criticism: a 90 s stall between samples is
        invisible to interval sampling but obvious to dense probing."""
        from repro.net.faults import PeriodicStallFault
        scenario = build_single_bottleneck(seed=4)
        stall = PeriodicStallFault(period=30.0, stall=1.0, phase=5.0)
        scenario.bottleneck_fwd.add_egress_fault(stall)
        stats = merit_sampling(scenario.network, "src", "echo",
                               intervals=4, interval=30.0)
        # Samples at t = 0, 30, 60, 90 — never inside the stall windows
        # at [5, 6), [35, 36), ...; the fault goes unnoticed.
        valid = stats.samples[~np.isnan(stats.samples)]
        assert valid.max() - valid.min() < 5e-3
