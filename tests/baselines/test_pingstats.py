"""Tests for the Mukherjee-style grouped ICMP baseline [19]."""

import numpy as np
import pytest

from repro.baselines.pingstats import grouped_ping
from repro.errors import ConfigurationError
from repro.topology.presets import build_single_bottleneck
from repro.traffic.mix import attach_internet_mix
from repro.units import kbps


def loaded_scenario(seed=4, utilization=0.6):
    scenario = build_single_bottleneck(seed=seed)
    mix = attach_internet_mix(
        scenario.network.host("cross-l"), scenario.network.host("cross-r"),
        link_rate_bps=kbps(128), utilization=utilization)
    mix.start()
    return scenario


class TestGroupedPing:
    def test_group_structure(self):
        scenario = build_single_bottleneck(seed=4)
        result = grouped_ping(scenario.network, "src", "echo", groups=3,
                              group_size=5, packet_interval=0.5,
                              group_interval=10.0)
        assert result.groups == 3
        assert len(result.all_rtts) == 15

    def test_idle_path_no_loss_constant_means(self):
        scenario = build_single_bottleneck(seed=4)
        result = grouped_ping(scenario.network, "src", "echo", groups=3,
                              group_size=4, packet_interval=0.5,
                              group_interval=10.0)
        assert result.overall_loss() == 0.0
        assert np.nanstd(result.group_means) < 1e-6

    def test_loaded_path_variation(self):
        scenario = loaded_scenario()
        result = grouped_ping(scenario.network, "src", "echo", groups=4,
                              group_size=10, packet_interval=1.0,
                              group_interval=30.0)
        valid = result.group_means[~np.isnan(result.group_means)]
        assert len(valid) >= 3
        assert valid.std() > 0  # queueing varies across groups

    def test_delay_model_fit(self):
        scenario = loaded_scenario()
        result = grouped_ping(scenario.network, "src", "echo", groups=6,
                              group_size=10, packet_interval=0.5,
                              group_interval=20.0)
        fit = result.fit_delay_model()
        assert fit.shape > 0
        assert fit.scale > 0
        assert fit.constant < np.nanmin(result.all_rtts)

    def test_validation(self):
        scenario = build_single_bottleneck(seed=4)
        with pytest.raises(ConfigurationError):
            grouped_ping(scenario.network, "src", "echo", groups=0)
        with pytest.raises(ConfigurationError):
            grouped_ping(scenario.network, "src", "echo", groups=1,
                         group_size=10, packet_interval=1.0,
                         group_interval=5.0)  # overlapping groups


class TestMethodologyComparison:
    def test_group_averages_hide_fast_structure(self):
        """The paper's motivation for dense probing: per-minute averages
        cannot show probe compression or ms-scale fluctuations."""
        from repro.netdyn.session import run_probe_experiment
        scenario = loaded_scenario(seed=8)
        dense = run_probe_experiment(scenario.network, "src", "echo",
                                     delta=0.02, count=2000, start_at=5.0)
        dense_jumps = np.abs(np.diff(dense.rtts[dense.received]))
        scenario2 = loaded_scenario(seed=8)
        grouped = grouped_ping(scenario2.network, "src", "echo", groups=4,
                               group_size=10, packet_interval=1.0,
                               group_interval=15.0)
        means = grouped.group_means[~np.isnan(grouped.group_means)]
        group_jumps = np.abs(np.diff(means))
        # Dense probing sees larger instantaneous variation than the
        # per-minute group means suggest.
        assert dense_jumps.max() > group_jumps.max()
