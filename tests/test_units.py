"""Tests for unit helpers."""

import pytest

from repro import units


class TestConversions:
    def test_time(self):
        assert units.ms(50) == pytest.approx(0.05)
        assert units.us(250) == pytest.approx(0.00025)
        assert units.seconds_to_ms(0.05) == pytest.approx(50.0)

    def test_rates(self):
        assert units.kbps(128) == pytest.approx(128_000.0)
        assert units.mbps(1.544) == pytest.approx(1_544_000.0)

    def test_data(self):
        assert units.bytes_to_bits(72) == 576
        assert units.bits_to_bytes(576) == 72


class TestTransmissionDelay:
    def test_paper_probe_on_bottleneck(self):
        # The paper's P/mu: 72 bytes at 128 kb/s = 4.5 ms.
        assert units.transmission_delay(72, units.kbps(128)) == \
            pytest.approx(0.0045)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_delay(100, 0.0)


class TestPropagationDelay:
    def test_transatlantic_order_of_magnitude(self):
        # ~6000 km of fiber: tens of milliseconds.
        delay = units.propagation_delay(6_000_000)
        assert 0.02 <= delay <= 0.05

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            units.propagation_delay(1000.0, 0.0)
