"""Tests for unit helpers."""

import pytest

from repro import units


class TestConversions:
    def test_time(self):
        assert units.ms(50) == pytest.approx(0.05)
        assert units.us(250) == pytest.approx(0.00025)
        assert units.seconds_to_ms(0.05) == pytest.approx(50.0)

    def test_rates(self):
        assert units.kbps(128) == pytest.approx(128_000.0)
        assert units.mbps(1.544) == pytest.approx(1_544_000.0)

    def test_data(self):
        assert units.bytes_to_bits(72) == 576
        assert units.bits_to_bytes(576) == 72


class TestTransmissionDelay:
    def test_paper_probe_on_bottleneck(self):
        # The paper's P/mu: 72 bytes at 128 kb/s = 4.5 ms.
        assert units.transmission_delay(72, units.kbps(128)) == \
            pytest.approx(0.0045)

    def test_zero_rate_rejected(self):
        with pytest.raises(ValueError):
            units.transmission_delay(100, 0.0)


class TestPropagationDelay:
    def test_transatlantic_order_of_magnitude(self):
        # ~6000 km of fiber: tens of milliseconds.
        delay = units.propagation_delay(6_000_000)
        assert 0.02 <= delay <= 0.05

    def test_zero_speed_rejected(self):
        with pytest.raises(ValueError):
            units.propagation_delay(1000.0, 0.0)


# ----------------------------------------------------------------------
# Property tests: conversions round-trip exactly (power-of-two-safe
# factors) or to float precision, across the magnitudes the library uses.
# ----------------------------------------------------------------------
from hypothesis import given  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

finite = st.floats(min_value=-1e12, max_value=1e12,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-9, max_value=1e12,
                     allow_nan=False, allow_infinity=False)


class TestRoundTripProperties:
    @given(finite)
    def test_ms_round_trip(self, value):
        assert units.seconds_to_ms(units.ms(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300)

    @given(finite)
    def test_us_round_trip(self, value):
        assert units.seconds_to_us(units.us(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300)

    @given(finite)
    def test_kbps_round_trip(self, value):
        assert units.bps_to_kbps(units.kbps(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300)

    @given(finite)
    def test_mbps_round_trip(self, value):
        assert units.bps_to_mbps(units.mbps(value)) == pytest.approx(
            value, rel=1e-12, abs=1e-300)

    @given(finite)
    def test_bytes_bits_round_trip_is_exact(self, value):
        # The factor 8 is a power of two, so this round-trip is lossless.
        assert units.bits_to_bytes(units.bytes_to_bits(value)) == value

    @given(positive, positive)
    def test_transmission_delay_scales_linearly(self, size_bytes, rate_bps):
        delay = units.transmission_delay(size_bytes, rate_bps)
        assert delay >= 0
        assert units.transmission_delay(2 * size_bytes, rate_bps) == \
            pytest.approx(2 * delay, rel=1e-9)

    @given(positive)
    def test_transmission_delay_equals_bits_over_rate(self, rate_bps):
        assert units.transmission_delay(72, rate_bps) == pytest.approx(
            units.bytes_to_bits(72) / rate_bps, rel=1e-12)
