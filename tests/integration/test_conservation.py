"""Network-wide packet conservation: nothing is silently created or lost."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.faults import RandomDropFault
from repro.net.routing import Network
from repro.sim import Simulator
from repro.traffic.base import TrafficSink
from repro.traffic.poisson import PoissonSource
from repro.traffic.sizes import FixedSize
from repro.units import kbps, mbps, ms


def conservation_holds(totals: dict) -> bool:
    accounted = (totals["udp_received"] + totals["queue_drops"]
                 + totals["fault_drops"] + totals["no_route_drops"]
                 + totals["ttl_drops"] + totals["queued"])
    return totals["udp_sent"] == accounted


class TestConservation:
    def test_lossless_network(self):
        sim = Simulator(seed=1)
        network = Network(sim)
        network.add_host("a")
        network.add_host("b")
        network.link("a", "b", rate_bps=mbps(10), prop_delay=ms(1))
        network.compute_routes()
        TrafficSink(network.host("b"))
        source = PoissonSource(network.host("a"), "b", rate_pps=100.0)
        source.start()
        sim.run(until=20.0)
        source.stop()
        sim.run()  # quiesce: drain in-flight packets
        totals = network.audit()
        assert totals["udp_sent"] == source.packets_sent
        assert conservation_holds(totals)
        assert totals["queue_drops"] == 0

    def test_congested_network_accounts_drops(self):
        sim = Simulator(seed=2)
        network = Network(sim)
        network.add_host("a")
        network.add_host("b")
        network.link("a", "b", rate_bps=kbps(64), prop_delay=ms(1),
                     queue_capacity=4)
        network.compute_routes()
        TrafficSink(network.host("b"))
        source = PoissonSource(network.host("a"), "b", rate_pps=50.0,
                               sizes=FixedSize(500))
        source.start()
        sim.run(until=20.0)
        source.stop()
        sim.run()
        totals = network.audit()
        assert totals["queue_drops"] > 0
        assert conservation_holds(totals)

    def test_faulty_network_accounts_fault_drops(self):
        sim = Simulator(seed=3)
        network = Network(sim)
        network.add_host("a")
        network.add_host("b")
        iface, _ = network.link("a", "b", rate_bps=mbps(10),
                                prop_delay=ms(1))
        iface.add_egress_fault(RandomDropFault(0.3, sim.streams.get("f")))
        network.compute_routes()
        TrafficSink(network.host("b"))
        source = PoissonSource(network.host("a"), "b", rate_pps=200.0)
        source.start()
        sim.run(until=10.0)
        source.stop()
        sim.run()
        totals = network.audit()
        assert totals["fault_drops"] > 0
        assert conservation_holds(totals)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), rate_pps=st.floats(5.0, 300.0),
       capacity=st.integers(1, 64), drop=st.floats(0.0, 0.5))
def test_conservation_property(seed, rate_pps, capacity, drop):
    """Conservation holds for arbitrary load, buffer, and fault levels."""
    sim = Simulator(seed=seed)
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    iface, _ = network.link("a", "b", rate_bps=kbps(128), prop_delay=ms(5),
                            queue_capacity=capacity)
    if drop > 0:
        iface.add_egress_fault(RandomDropFault(drop, sim.streams.get("f")))
    network.compute_routes()
    TrafficSink(network.host("b"))
    source = PoissonSource(network.host("a"), "b", rate_pps=rate_pps,
                           sizes=FixedSize(200))
    source.start()
    sim.run(until=5.0)
    source.stop()
    sim.run()
    assert conservation_holds(network.audit())
