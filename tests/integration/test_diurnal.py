"""Integration: recovering a slow congestion cycle from delay spectra.

Mukherjee [19] — the minute-scale prior work the paper reviews — found a
clear diurnal cycle in spectral analyses of average delays, "suggesting the
presence of a base congestion level which changes slowly with time".  We
inject a (time-compressed) diurnal load profile into the single-bottleneck
network and recover its period from the probe trace's periodogram.
"""

import numpy as np
import pytest

from repro.analysis.timeseries import moving_average, periodogram
from repro.netdyn.session import run_probe_experiment
from repro.topology.presets import build_single_bottleneck
from repro.traffic.poisson import DiurnalProfile, ModulatedPoissonSource
from repro.traffic.base import TrafficSink
from repro.traffic.sizes import FixedSize
from repro.units import kbps

#: Compressed "day": 60 simulated seconds.
CYCLE = 60.0


def build_diurnal_scenario(seed=17):
    scenario = build_single_bottleneck(seed=seed, rate_bps=kbps(128))
    network = scenario.network
    profile = DiurnalProfile(base_pps=14.0, amplitude=0.8, period=CYCLE)
    sink = TrafficSink(network.host("cross-r"), port=9000)
    source = ModulatedPoissonSource(
        network.host("cross-l"), "cross-r", rate=profile,
        peak_rate_pps=profile.peak_pps, sizes=FixedSize(512), port=9000)
    source.start()
    return scenario, profile


class TestDiurnalCycle:
    def test_periodogram_recovers_cycle(self):
        scenario, profile = build_diurnal_scenario()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.1,
                                     count=3000, start_at=10.0)
        spectrum = periodogram(trace)
        # Restrict to long periods (> 10 s): the diurnal band.
        slow = spectrum.frequencies < 0.1
        peak = spectrum.frequencies[slow][
            np.argmax(spectrum.power[slow])]
        assert 1.0 / peak == pytest.approx(CYCLE, rel=0.15)

    def test_moving_average_shows_base_level_swing(self):
        scenario, profile = build_diurnal_scenario(seed=18)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.1,
                                     count=3000, start_at=10.0)
        smoothed = moving_average(trace, window=100)
        swing = smoothed.max() - smoothed.min()
        assert swing > 0.02  # tens of ms of slow delay variation
