"""Smoke tests: every example script runs to completion.

The examples are part of the public deliverable; these tests execute each
one in a subprocess and check for the output lines a reader relies on, so
API drift cannot silently break them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> (args, substring the output must contain)
EXPECTATIONS = {
    "quickstart.py": ([], "Phase plot"),
    "bottleneck_estimation.py": ([], "actual 128 kb/s"),
    "audio_fec.py": ([], "repeat-last"),
    "network_debugging.py": ([], "FOUND"),
    "ack_compression.py": ([], "compressed"),
    "nsfnet_survey.py": ([], "gamma shape"),
    "queue_dynamics.py": ([], "queue occupancy"),
    "live_probe.py": (["--count", "50", "--delta-ms", "5"], "loss: ulp"),
}


def run_example(name, args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True, text=True, timeout=600)


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_example_runs(name):
    args, expected = EXPECTATIONS[name]
    completed = run_example(name, args)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout


def test_every_example_has_a_smoke_test():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTATIONS)
