"""Bit-for-bit determinism of seeded runs — the invariant DET001/DET002
exist to protect.  Two simulators built from the same seed must produce
byte-identical RTT traces on the INRIA→UMd preset; a different seed must
not."""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def _short_run(seed: int):
    config = ExperimentConfig(delta=0.05, duration=15.0, warmup=5.0,
                              seed=seed, scenario="inria-umd")
    return run_experiment(config)


class TestSeededDeterminism:
    def test_same_seed_identical_rtt_traces(self):
        first = _short_run(seed=7)
        second = _short_run(seed=7)
        assert len(first) == len(second)
        # Bitwise equality, not approx: replay must be exact.
        assert np.array_equal(first.rtts, second.rtts)
        assert np.array_equal(first.lost, second.lost)
        assert np.array_equal(first.send_times, second.send_times)

    def test_different_seed_diverges(self):
        base = _short_run(seed=7)
        other = _short_run(seed=8)
        assert not np.array_equal(base.rtts, other.rtts)
