"""Cross-module integration tests: the library's main claims, end to end."""

import numpy as np
import pytest

from repro.analysis.compression import detect_compression
from repro.analysis.loss import loss_stats
from repro.analysis.phase import estimate_bottleneck_mu, phase_points
from repro.analysis.workload import probe_gap_samples
from repro.netdyn.session import run_probe_experiment
from repro.queueing.batchmodel import (
    BatchArrivalQueue,
    geometric_packet_batches,
)
from repro.topology.inria_umd import build_inria_umd
from repro.topology.presets import build_single_bottleneck
from repro.traffic.mix import attach_internet_mix
from repro.units import kbps


class TestMeasurementPipeline:
    """Simulate -> probe -> analyze, checking physical consistency."""

    def test_rtt_floor_equals_path_physics(self):
        scenario = build_single_bottleneck(seed=2)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=40)
        # Fixed component: 2 x (prop 50 ms + 72 B at 128 kb/s) plus the
        # fast access links.  Compute it from first principles.
        service = 72 * 8 / kbps(128)
        access = 3 * 72 * 8 / 10e6 + 3 * 0.0001
        expected = 2 * (0.05 + service + access)
        assert trace.min_rtt() == pytest.approx(expected, rel=0.02)

    def test_probe_gaps_conserve_time(self):
        """Sum of return gaps ~= elapsed send time for received runs."""
        scenario = build_single_bottleneck(seed=2)
        mix = attach_internet_mix(
            scenario.network.host("cross-l"),
            scenario.network.host("cross-r"),
            link_rate_bps=kbps(128), utilization=0.5)
        mix.start()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=500,
                                     start_at=5.0)
        if trace.loss_count == 0:
            gaps = probe_gap_samples(trace)
            total = gaps.sum()
            expected = (len(trace) - 1) * trace.delta
            assert total == pytest.approx(expected, rel=0.01)

    def test_bandwidth_estimate_from_probes_alone(self):
        """The headline Section 4 result, end to end on the full path."""
        scenario = build_inria_umd(seed=12)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.02, count=3000,
                                     start_at=30.0)
        mu = estimate_bottleneck_mu(trace, mu_hint=150e3)
        assert mu is not None
        assert 90e3 <= mu <= 180e3  # actual: 128 kb/s


class TestModelVsNetwork:
    """Figure 3's reduction: the batch queue model vs the full path."""

    def test_model_reproduces_network_compression(self):
        # Full network measurement.
        scenario = build_inria_umd(seed=13)
        scenario.start_traffic()
        network_trace = run_probe_experiment(
            scenario.network, scenario.source, scenario.echo, delta=0.02,
            count=4000, start_at=30.0)
        network_compression = detect_compression(network_trace, mu=128e3)

        # Abstract model with matched parameters.
        batch = geometric_packet_batches(3.0, 552 * 8,
                                         arrival_probability=0.25)
        model = BatchArrivalQueue(mu=128e3, buffer_packets=15, delta=0.02,
                                  probe_bits=576.0, batch_bits=batch)
        model_trace = model.run(4000, np.random.default_rng(13)).to_trace(
            fixed_delay=0.137)
        model_compression = detect_compression(model_trace, mu=128e3)

        assert network_compression.pair_fraction > 0.02
        assert model_compression.pair_fraction > 0.02

    def test_model_and_network_loss_orders_match(self):
        """Both show the δ=8ms >> δ=200ms loss ordering of Table 3."""
        losses = {}
        for delta in (0.008, 0.2):
            scenario = build_inria_umd(seed=14)
            scenario.start_traffic()
            count = 4000 if delta < 0.1 else 600
            trace = run_probe_experiment(scenario.network, scenario.source,
                                         scenario.echo, delta=delta,
                                         count=count, start_at=30.0)
            losses[delta] = loss_stats(trace)
        assert losses[0.008].ulp > losses[0.2].ulp
        assert losses[0.008].clp > losses[0.2].clp


class TestPhasePlotRegimes:
    """The paper's three phase-plot regimes on one simulated system."""

    def test_small_delta_compression_large_delta_diagonal(self):
        results = {}
        for delta in (0.02, 0.5):
            scenario = build_inria_umd(seed=15)
            scenario.start_traffic()
            count = 3000 if delta < 0.1 else 400
            trace = run_probe_experiment(scenario.network, scenario.source,
                                         scenario.echo, delta=delta,
                                         count=count, start_at=30.0)
            results[delta] = detect_compression(trace, mu=128e3)
        assert results[0.02].pair_fraction > 5 * max(
            results[0.5].pair_fraction, 1e-6) or \
            results[0.5].pair_fraction == 0.0
