"""Shared fixtures.

Expensive calibrated-scenario traces are session-scoped: several analysis
test modules reuse the same measurement rather than re-simulating.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.netdyn.session import run_probe_experiment
from repro.netdyn.trace import ProbeTrace
from repro.sim import Simulator
from repro.topology.inria_umd import build_inria_umd
from repro.topology.presets import build_single_bottleneck


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture(scope="session")
def idle_trace() -> ProbeTrace:
    """Probes over the INRIA-UMd path with no cross traffic or faults."""
    scenario = build_inria_umd(seed=5, utilization_fwd=0.0,
                               utilization_rev=0.0, fault_drop_prob=0.0)
    return run_probe_experiment(scenario.network, scenario.source,
                                scenario.echo, delta=0.05, count=400)


@pytest.fixture(scope="session")
def loaded_trace() -> ProbeTrace:
    """Probes at δ=50 ms over the calibrated INRIA-UMd path (with load)."""
    scenario = build_inria_umd(seed=5)
    scenario.start_traffic()
    return run_probe_experiment(scenario.network, scenario.source,
                                scenario.echo, delta=0.05, count=2400,
                                start_at=30.0)


@pytest.fixture(scope="session")
def loaded_trace_20ms() -> ProbeTrace:
    """Probes at δ=20 ms over the calibrated INRIA-UMd path."""
    scenario = build_inria_umd(seed=6)
    scenario.start_traffic()
    return run_probe_experiment(scenario.network, scenario.source,
                                scenario.echo, delta=0.02, count=6000,
                                start_at=30.0)


@pytest.fixture(scope="session")
def bottleneck_scenario_factory():
    """Factory for small single-bottleneck networks (fast to simulate)."""
    def make(**kwargs):
        return build_single_bottleneck(**kwargs)
    return make


@pytest.fixture
def rng() -> np.random.Generator:
    """A seeded numpy generator for test-local randomness."""
    return np.random.default_rng(1234)
