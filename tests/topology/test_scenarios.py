"""Tests for the calibrated paper topologies."""

import pytest

from repro.netdyn.session import run_probe_experiment
from repro.topology.inria_umd import (
    BOTTLENECK_RATE_BPS,
    TABLE1_ROUTE,
    build_inria_umd,
)
from repro.topology.presets import build_single_bottleneck
from repro.topology.umd_pitt import TABLE2_ROUTE, build_umd_pitt
from repro.units import kbps


class TestInriaUmd:
    def test_route_matches_table1(self):
        scenario = build_inria_umd(seed=1, utilization_fwd=0.0,
                                   utilization_rev=0.0, fault_drop_prob=0.0)
        path = scenario.network.path(scenario.source, scenario.echo)
        assert tuple(path[:len(TABLE1_ROUTE)]) == TABLE1_ROUTE
        assert path[-1] == scenario.echo

    def test_bottleneck_is_transatlantic_128k(self):
        scenario = build_inria_umd(seed=1)
        assert scenario.bottleneck_rate_bps == kbps(128)
        assert scenario.bottleneck_fwd.node.name == "icm-sophia.icp.net"

    def test_fixed_rtt_near_140ms(self):
        scenario = build_inria_umd(seed=1, utilization_fwd=0.0,
                                   utilization_rev=0.0, fault_drop_prob=0.0)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=50)
        assert trace.loss_fraction == 0.0
        assert 0.125 <= trace.min_rtt() <= 0.155

    def test_quantized_clock_default(self):
        scenario = build_inria_umd(seed=1)
        clock = scenario.network.host(scenario.source).clock
        assert clock.resolution == pytest.approx(3.906e-3)

    def test_perfect_clock_option(self):
        scenario = build_inria_umd(seed=1, quantized_clock=False)
        clock = scenario.network.host(scenario.source).clock
        assert clock.resolution == 0.0

    def test_faults_attached_to_sura_segment(self):
        scenario = build_inria_umd(seed=1, fault_drop_prob=0.02)
        assert len(scenario.faults) == 2
        iface = scenario.network.interface("nss-SURA-eth.sura.net",
                                           "sura8-umd-c1.sura.net")
        assert scenario.faults[0] in iface.egress_faults

    def test_no_faults_when_disabled(self):
        scenario = build_inria_umd(seed=1, fault_drop_prob=0.0)
        assert scenario.faults == []

    def test_loaded_path_loses_probes(self):
        scenario = build_inria_umd(seed=2)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=1200,
                                     start_at=30.0)
        assert 0.03 <= trace.loss_fraction <= 0.25

    def test_same_seed_reproduces_trace(self):
        traces = []
        for _ in range(2):
            scenario = build_inria_umd(seed=9)
            scenario.start_traffic()
            traces.append(run_probe_experiment(
                scenario.network, scenario.source, scenario.echo,
                delta=0.05, count=300, start_at=10.0))
        assert traces[0].rtts.tolist() == traces[1].rtts.tolist()


class TestUmdPitt:
    def test_route_matches_table2(self):
        scenario = build_umd_pitt(seed=1, utilization_fwd=0.0,
                                  utilization_rev=0.0)
        path = scenario.network.path(scenario.source, scenario.echo)
        assert tuple(path[:len(TABLE2_ROUTE)]) == TABLE2_ROUTE

    def test_fast_bottleneck(self):
        scenario = build_umd_pitt(seed=1)
        assert scenario.bottleneck_rate_bps > 50 * kbps(128)

    def test_low_base_rtt(self):
        scenario = build_umd_pitt(seed=1, utilization_fwd=0.0,
                                  utilization_rev=0.0, quantized_clock=False)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=20)
        assert trace.min_rtt() < 0.06

    def test_3ms_clock(self):
        scenario = build_umd_pitt(seed=1)
        clock = scenario.network.host(scenario.source).clock
        assert clock.resolution == pytest.approx(3e-3)


class TestSingleBottleneck:
    def test_structure(self):
        scenario = build_single_bottleneck(seed=1)
        assert scenario.network.path("src", "echo") == \
            ["src", "r-left", "r-right", "echo"]

    def test_cross_hosts_optional(self):
        scenario = build_single_bottleneck(seed=1, with_cross_hosts=False)
        assert scenario.cross_sender is None
        assert "cross-l" not in scenario.network.nodes

    def test_cross_traffic_path_shares_bottleneck(self):
        scenario = build_single_bottleneck(seed=1)
        path = scenario.network.path("cross-l", "cross-r")
        assert path == ["cross-l", "r-left", "r-right", "cross-r"]

    def test_probe_rtt_reflects_parameters(self):
        from repro.units import ms
        scenario = build_single_bottleneck(seed=1, prop_delay=ms(10))
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=10)
        # Two crossings at 10 ms plus serialization at 128 kb/s.
        assert 0.02 <= trace.min_rtt() <= 0.04
