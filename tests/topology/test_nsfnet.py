"""Tests for the NSFNET backbone mesh."""

import pytest

from repro.netdyn.session import run_probe_experiment
from repro.tools.ping import ping
from repro.tools.traceroute import route_names, traceroute
from repro.topology.nsfnet import (
    NSFNET_LINKS,
    NSFNET_SITES,
    build_nsfnet,
)


class TestTopology:
    def test_all_sites_and_hosts_present(self):
        scenario = build_nsfnet(seed=1)
        for site in NSFNET_SITES:
            assert site in scenario.network.nodes
            assert scenario.host_at(site) in scenario.network.nodes

    def test_backbone_is_connected(self):
        scenario = build_nsfnet(seed=1)
        for site in NSFNET_SITES[1:]:
            path = scenario.network.path(NSFNET_SITES[0], site)
            assert path[0] == NSFNET_SITES[0]
            assert path[-1] == site

    def test_shortest_path_taken(self):
        scenario = build_nsfnet(seed=1)
        # Ithaca - Pittsburgh are directly linked.
        path = scenario.network.path("Ithaca", "Pittsburgh")
        assert path == ["Ithaca", "Pittsburgh"]

    def test_cross_country_multi_hop(self):
        scenario = build_nsfnet(seed=1)
        path = scenario.network.path("Seattle", "Princeton")
        assert 3 <= len(path) <= 8

    def test_link_count(self):
        scenario = build_nsfnet(seed=1)
        # backbone + one access link per site, both directions each.
        expected_edges = (len(NSFNET_LINKS) + len(NSFNET_SITES)) * 2
        assert scenario.network.graph().number_of_edges() == expected_edges


class TestMeasurementsAcrossMesh:
    def test_ping_coast_to_coast(self):
        scenario = build_nsfnet(seed=1)
        result = ping(scenario.network, scenario.host_at("Seattle"),
                      scenario.host_at("Princeton"), count=2)
        assert result.received == 2
        # Cross-country T1 path: tens of milliseconds round trip.
        for rtt in result.rtts.values():
            assert 0.02 <= rtt <= 0.2

    def test_traceroute_reveals_backbone_route(self):
        scenario = build_nsfnet(seed=1)
        hops = traceroute(scenario.network, scenario.host_at("SanDiego"),
                          scenario.host_at("Ithaca"))
        names = route_names(hops)
        assert names[-1] == scenario.host_at("Ithaca")
        backbone_hops = [n for n in names if n in NSFNET_SITES]
        assert "SanDiego" in backbone_hops
        assert "Ithaca" in backbone_hops

    def test_probe_experiment_across_mesh(self):
        scenario = build_nsfnet(seed=1)
        trace = run_probe_experiment(scenario.network,
                                     scenario.host_at("CollegePark"),
                                     scenario.host_at("Boulder"),
                                     delta=0.05, count=100)
        assert trace.loss_fraction == 0.0
        assert trace.min_rtt() < 0.1

    def test_triangle_inequality_of_rtts(self):
        """Direct routes are no slower than detours (shortest-path)."""
        scenario = build_nsfnet(seed=1)
        rtts = {}
        for a, b in (("Ithaca", "Pittsburgh"), ("Ithaca", "Princeton"),
                     ("Pittsburgh", "Princeton")):
            result = ping(scenario.network, scenario.host_at(a),
                          scenario.host_at(b), count=1)
            rtts[(a, b)] = result.rtts[0]
        assert rtts[("Ithaca", "Princeton")] <= \
            rtts[("Ithaca", "Pittsburgh")] \
            + rtts[("Pittsburgh", "Princeton")] + 1e-9
