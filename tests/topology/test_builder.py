"""Unit tests for the declarative path builder."""

import pytest

from repro.errors import ConfigurationError
from repro.net.clocks import QuantizedClock
from repro.net.host import Host
from repro.net.node import Node
from repro.sim import Simulator
from repro.topology.builder import LinkSpec, build_path
from repro.units import mbps, ms


class TestBuildPath:
    def test_creates_chain(self, sim):
        network = build_path(sim, ["a", "b", "c"],
                             [LinkSpec(mbps(10), ms(1))] * 2,
                             host_names=["a", "c"])
        assert network.path("a", "c") == ["a", "b", "c"]

    def test_host_vs_router_types(self, sim):
        network = build_path(sim, ["a", "b", "c"],
                             [LinkSpec(mbps(10), ms(1))] * 2,
                             host_names=["a", "c"])
        assert isinstance(network.node("a"), Host)
        assert isinstance(network.node("c"), Host)
        assert type(network.node("b")) is Node

    def test_clock_assignment(self, sim):
        clock = QuantizedClock(sim, resolution=0.004)
        network = build_path(sim, ["a", "b"], [LinkSpec(mbps(10), ms(1))],
                             host_names=["a", "b"], clocks={"a": clock})
        assert network.host("a").clock is clock
        assert network.host("b").clock is not clock

    def test_asymmetric_spec(self, sim):
        spec = LinkSpec(rate_bps=1000.0, prop_delay=0.1,
                        rate_bps_ba=2000.0, prop_delay_ba=0.2)
        network = build_path(sim, ["a", "b"], [spec],
                             host_names=["a", "b"])
        assert network.interface("a", "b").rate_bps == 1000.0
        assert network.interface("b", "a").rate_bps == 2000.0

    def test_processing_delay_on_routers(self, sim):
        network = build_path(sim, ["a", "r", "b"],
                             [LinkSpec(mbps(10), ms(1))] * 2,
                             host_names=["a", "b"], processing_delay=0.01)
        assert network.node("r").processing_delay == 0.01
        assert network.host("a").processing_delay == 0.0


class TestValidation:
    def test_link_count_mismatch(self, sim):
        with pytest.raises(ConfigurationError):
            build_path(sim, ["a", "b", "c"], [LinkSpec(mbps(10), ms(1))])

    def test_duplicate_names(self, sim):
        with pytest.raises(ConfigurationError):
            build_path(sim, ["a", "a"], [LinkSpec(mbps(10), ms(1))])

    def test_unknown_host_name(self, sim):
        with pytest.raises(ConfigurationError):
            build_path(sim, ["a", "b"], [LinkSpec(mbps(10), ms(1))],
                       host_names=["ghost"])

    def test_bad_link_spec(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(rate_bps=0.0, prop_delay=0.1)
        with pytest.raises(ConfigurationError):
            LinkSpec(rate_bps=1.0, prop_delay=-0.1)
