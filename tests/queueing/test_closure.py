"""Tests for the Section-6 measurement -> model closure."""

import numpy as np
import pytest

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.queueing.closure import (
    closed_loop_comparison,
    fit_batch_distribution,
)

MU = 128e3


class TestFitBatchDistribution:
    def test_idle_trace_yields_zero_batches(self):
        # Constant rtts: every gap equals delta -> idle regime.
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.14] * 100,
                                        wire_bytes=72)
        distribution = fit_batch_distribution(trace, mu=MU)
        assert distribution.idle_fraction == 1.0
        assert np.all(distribution.batch_bits == 0.0)
        assert distribution.mean_load() == 0.0

    def test_known_batch_recovered(self):
        # Gaps of 35 ms (the paper's worked example): b = 3904 bits.
        rtts = np.cumsum([0.015] * 50) + 1.0  # gap = 0.015 + 0.02 = 0.035
        trace = ProbeTrace.from_samples(delta=0.02, rtts=rtts.tolist(),
                                        wire_bytes=72)
        distribution = fit_batch_distribution(trace, mu=MU)
        assert np.allclose(distribution.batch_bits, 3904.0, atol=1.0)

    def test_sampler_draws_from_observed(self, rng):
        rtts = np.cumsum([0.015] * 50) + 1.0
        trace = ProbeTrace.from_samples(delta=0.02, rtts=rtts.tolist(),
                                        wire_bytes=72)
        sampler = fit_batch_distribution(trace, mu=MU).sampler()
        draws = [sampler(rng) for _ in range(50)]
        assert all(d == pytest.approx(3904.0, abs=1.0) for d in draws)

    def test_validation(self):
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.14] * 100)
        with pytest.raises(AnalysisError):
            fit_batch_distribution(trace, mu=0.0)
        tiny = ProbeTrace.from_samples(delta=0.02, rtts=[0.14] * 5)
        with pytest.raises(InsufficientDataError):
            fit_batch_distribution(tiny, mu=MU)


class TestClosedLoop:
    def test_model_correlates_with_measurement(self, loaded_trace_20ms):
        """The paper's §6 claim: the fitted model shows 'good correlation
        with our experimental data'."""
        report = closed_loop_comparison(loaded_trace_20ms, mu=MU,
                                        buffer_packets=15, seed=3)
        # Loss of the same order of magnitude.
        assert 0.2 <= report.loss_ratio() <= 5.0
        # Compression present in both.
        assert report.measured_compression > 0.02
        assert report.model_compression > 0.02
        # Inferred load is physically sensible (below hard saturation).
        assert 0.0 < report.mean_load < 1.2

    def test_quiet_trace_round_trips_to_quiet_model(self):
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.14] * 200,
                                        wire_bytes=72)
        report = closed_loop_comparison(trace, mu=MU, buffer_packets=15)
        assert report.model_loss.ulp == 0.0
        assert report.model_compression == 0.0

    def test_custom_probe_count(self, loaded_trace_20ms):
        report = closed_loop_comparison(loaded_trace_20ms, mu=MU,
                                        buffer_packets=15, probes=500)
        assert report.model_loss.count == 500
