"""Tests for the Section-6 batch-arrival queue model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queueing.batchmodel import (
    BatchArrivalQueue,
    geometric_packet_batches,
)

MU = 128e3
PROBE_BITS = 576.0
DELTA = 0.02


def make_queue(buffer_packets=15, batch=None, **kwargs):
    if batch is None:
        batch = geometric_packet_batches(2.0, 552 * 8,
                                         arrival_probability=0.5)
    return BatchArrivalQueue(mu=MU, buffer_packets=buffer_packets,
                             delta=DELTA, probe_bits=PROBE_BITS,
                             batch_bits=batch, **kwargs)


class TestBasics:
    def test_no_cross_traffic_no_waits_no_losses(self, rng):
        queue = make_queue(batch=lambda r: 0.0)
        result = queue.run(100, rng)
        assert not result.lost.any()
        assert np.allclose(result.waits, 0.0)

    def test_light_load_small_waits(self, rng):
        batch = geometric_packet_batches(1.0, 552 * 8,
                                         arrival_probability=0.2)
        result = make_queue(batch=batch).run(2000, rng)
        assert result.lost.mean() < 0.01
        waits = result.waits[~np.isnan(result.waits)]
        assert waits.mean() < 0.05

    def test_overload_fills_buffer_and_drops(self, rng):
        # Each interval brings ~2.2x the service capacity.
        batch = geometric_packet_batches(5.0, 552 * 8,
                                         arrival_probability=0.8)
        result = make_queue(batch=batch).run(3000, rng)
        assert result.lost.mean() > 0.2
        assert result.cross_loss_fraction > 0.2

    def test_waits_bounded_by_buffer(self, rng):
        buffer_packets = 12
        batch = geometric_packet_batches(5.0, 552 * 8)
        result = make_queue(buffer_packets=buffer_packets, batch=batch).run(
            3000, rng)
        waits = result.waits[~np.isnan(result.waits)]
        # At most K packets of the largest size can be ahead of a probe.
        assert waits.max() <= buffer_packets * 552 * 8 / MU + 1e-9

    def test_deterministic_given_rng(self):
        queue = make_queue()
        a = queue.run(500, np.random.default_rng(3))
        b = make_queue().run(500, np.random.default_rng(3))
        assert np.array_equal(a.lost, b.lost)
        assert np.allclose(a.waits, b.waits, equal_nan=True)


class TestPaperClaims:
    """The two behaviors Bolot reports for this model (Section 6)."""

    def test_probe_compression_reproduced(self, rng):
        """Consecutive probes behind a batch leave P/mu apart."""
        batch = geometric_packet_batches(6.0, 552 * 8,
                                         arrival_probability=0.5)
        result = make_queue(buffer_packets=40, batch=batch).run(4000, rng)
        trace = result.to_trace(fixed_delay=0.14)
        from repro.analysis.compression import detect_compression
        report = detect_compression(trace, mu=MU, tolerance=5e-4)
        assert report.pair_fraction > 0.05

    def test_loss_correlation_vanishes_as_delta_grows(self, rng):
        """The model reproduces Table 3's mechanism: when δ is smaller
        than a cross packet's service time (34.5 ms here), a probe lost
        behind a full buffer is followed by another loss (clp >> ulp);
        at large δ the buffer state decorrelates and clp ≈ ulp."""
        from repro.analysis.loss import loss_stats
        diffs = {}
        for delta in (0.008, 0.05):
            # Same offered bit-rate (85% of mu) at both probe intervals.
            p_arrival = 0.85 * MU * delta / (3.0 * 552 * 8)
            batch = geometric_packet_batches(
                3.0, 552 * 8, arrival_probability=min(1.0, p_arrival))
            queue = BatchArrivalQueue(mu=MU, buffer_packets=15, delta=delta,
                                      probe_bits=PROBE_BITS,
                                      batch_bits=batch)
            stats = loss_stats(queue.run(60_000, rng).to_trace(0.14))
            diffs[delta] = stats.clp - stats.ulp
        assert diffs[0.008] > 0.2   # strongly bursty at delta = 8 ms
        assert abs(diffs[0.05]) < 0.1  # essentially random at delta = 50 ms

    def test_partial_batch_admission(self, rng):
        """A batch larger than the free buffer is truncated, not rejected."""
        queue = make_queue(buffer_packets=4,
                           batch=lambda r: 10 * 552 * 8.0)
        result = queue.run(50, rng)
        # Some cross traffic is dropped but the queue still serves some.
        assert 0.0 < result.cross_loss_fraction < 1.0


class TestToTrace:
    def test_trace_conversion(self, rng):
        result = make_queue().run(200, rng)
        trace = result.to_trace(fixed_delay=0.14, meta={"tag": "model"})
        assert len(trace) == 200
        assert trace.meta["model"] == "batch"
        assert trace.meta["tag"] == "model"
        received = trace.rtts[trace.received]
        assert np.all(received >= 0.14)

    def test_lost_probes_marked(self, rng):
        batch = geometric_packet_batches(8.0, 552 * 8)
        result = make_queue(buffer_packets=5, batch=batch).run(2000, rng)
        trace = result.to_trace(0.14)
        assert trace.loss_count == int(result.lost.sum())


class TestValidation:
    def test_constructor_validation(self):
        batch = geometric_packet_batches(2.0, 552 * 8)
        with pytest.raises(ConfigurationError):
            BatchArrivalQueue(mu=0.0, buffer_packets=5, delta=0.02,
                              probe_bits=1.0, batch_bits=batch)
        with pytest.raises(ConfigurationError):
            BatchArrivalQueue(mu=1.0, buffer_packets=0, delta=0.02,
                              probe_bits=1.0, batch_bits=batch)
        with pytest.raises(ConfigurationError):
            BatchArrivalQueue(mu=1.0, buffer_packets=5, delta=0.02,
                              probe_bits=1.0, batch_bits=batch,
                              offset_fraction=1.0)
        with pytest.raises(ConfigurationError):
            BatchArrivalQueue(mu=1.0, buffer_packets=5, delta=0.02,
                              probe_bits=1.0, batch_bits=batch,
                              cross_packet_bits=0.0)

    def test_batch_sampler_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_packet_batches(0.5, 100.0)
        with pytest.raises(ConfigurationError):
            geometric_packet_batches(2.0, 100.0, arrival_probability=0.0)
