"""Tests for the Palm loss-gap identities (footnote 2 of the paper)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loss import GilbertModel
from repro.errors import AnalysisError
from repro.queueing.palm import (
    clp_from_loss_gap,
    empirical_identity_gap,
    loss_gap_from_clp,
)


class TestConversions:
    def test_round_trip(self):
        for clp in (0.0, 0.1, 0.5, 0.9):
            assert clp_from_loss_gap(loss_gap_from_clp(clp)) == \
                pytest.approx(clp)

    def test_known_values(self):
        assert loss_gap_from_clp(0.0) == 1.0
        assert loss_gap_from_clp(0.5) == 2.0
        assert math.isinf(loss_gap_from_clp(1.0))

    def test_paper_table3_row(self):
        # delta = 8 ms: clp = 0.60 -> plg = 2.5.
        assert loss_gap_from_clp(0.60) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            loss_gap_from_clp(1.5)
        with pytest.raises(AnalysisError):
            loss_gap_from_clp(-0.1)
        with pytest.raises(AnalysisError):
            clp_from_loss_gap(0.5)


class TestEmpiricalIdentity:
    def test_gap_small_for_long_gilbert_sequences(self, rng):
        model = GilbertModel(p=0.05, q=0.5)
        losses = model.simulate(200_000, rng)
        assert empirical_identity_gap(losses.tolist()) < 0.05

    def test_gap_shrinks_with_length(self, rng):
        model = GilbertModel(p=0.05, q=0.4)
        short = model.simulate(2_000, rng)
        long = model.simulate(400_000, rng)
        assert empirical_identity_gap(long.tolist()) <= \
            empirical_identity_gap(short.tolist()) + 0.02

    def test_validation(self):
        with pytest.raises(AnalysisError):
            empirical_identity_gap([0, 0, 0])  # no losses
        with pytest.raises(AnalysisError):
            empirical_identity_gap([2, 0])  # not 0/1
        with pytest.raises(AnalysisError):
            empirical_identity_gap([1])  # too short


@settings(max_examples=60, deadline=None)
@given(p=st.floats(0.01, 0.3), q=st.floats(0.2, 0.95),
       seed=st.integers(0, 1000))
def test_palm_identity_property(p, q, seed):
    """plg = 1/(1-clp) holds within sampling error for Markov losses."""
    rng = np.random.default_rng(seed)
    losses = GilbertModel(p=p, q=q).simulate(60_000, rng)
    if losses.sum() < 100:
        return  # not enough losses to test meaningfully
    assert empirical_identity_gap(losses.tolist()) < 0.25
