"""Tests for the fluid/aggregate fast-forward queue primitives."""

import numpy as np
import pytest

from repro.analysis.lindley import lindley_waits
from repro.errors import ConfigurationError
from repro.net.queue import MODE_BYTES, MODE_PACKETS
from repro.queueing.fastforward import (
    FluidQueue,
    aggregate_batches,
    drain_schedule,
    fifo_waits,
)

RATE = 128e3
PROBE_BITS = 576.0


class TestFifoWaits:
    def test_matches_lindley_on_a_poisson_stream(self, rng):
        times = np.sort(rng.uniform(0.0, 50.0, size=400))
        bits = rng.choice([576.0, 4416.0], size=400)
        waits = fifo_waits(times, bits, RATE)
        gaps = np.empty_like(times)
        gaps[:-1] = np.diff(times)
        gaps[-1] = 0.0
        assert np.array_equal(waits, lindley_waits(bits / RATE, gaps))

    def test_empty_stream(self):
        assert fifo_waits([], [], RATE).size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fifo_waits([0.0], [1.0, 2.0], RATE)
        with pytest.raises(ConfigurationError):
            fifo_waits([0.0, 1.0], [1.0, 2.0], 0.0)
        with pytest.raises(ConfigurationError):
            fifo_waits([1.0, 0.0], [1.0, 2.0], RATE)


class TestFluidQueueWaits:
    def test_single_packet_served_at_rate(self):
        queue = FluidQueue(RATE, 15)
        assert queue.offer(0.0, RATE) == 1  # one-second packet
        assert queue.workload_seconds == pytest.approx(1.0)
        queue.advance(0.25)
        assert queue.workload_seconds == pytest.approx(0.75)
        queue.advance(2.0)
        assert queue.workload_seconds == 0.0
        assert queue.departures == 1

    def test_workload_before_offer_is_the_lindley_wait(self, rng):
        # Per-packet offers against an uncapped-in-practice buffer must
        # reproduce the vectorized Lindley waits exactly.
        times = np.sort(rng.uniform(0.0, 30.0, size=300))
        bits = rng.choice([576.0, 4416.0], size=300)
        expected = fifo_waits(times, bits, RATE)
        queue = FluidQueue(RATE, 10_000)
        got = []
        for at, size in zip(times, bits):
            queue.advance(at)
            got.append(queue.workload_seconds)
            assert queue.offer(at, size) == 1
        assert np.allclose(got, expected, rtol=0.0, atol=1e-12)
        assert queue.drops == 0
        assert queue.arrivals == 300

    def test_batch_entry_drains_like_individual_packets(self):
        # One 4-packet batch and four per-packet offers at the same
        # instant leave identical workload trajectories.
        batched = FluidQueue(RATE, 15)
        batched.offer(0.0, 4 * PROBE_BITS, packets=4)
        single = FluidQueue(RATE, 15)
        for _ in range(4):
            single.offer(0.0, PROBE_BITS)
        for t in (0.001, 0.005, 0.02, 1.0):
            batched.advance(t)
            single.advance(t)
            assert batched.workload_seconds == pytest.approx(
                single.workload_seconds)
        assert batched.departures == single.departures == 4


class TestFluidQueueDrops:
    def test_packet_capacity_excludes_in_service_packet(self):
        # Idle server: one packet goes into service, K wait, rest drop.
        queue = FluidQueue(RATE, 15, mode=MODE_PACKETS)
        assert queue.offer(0.0, 20 * PROBE_BITS, packets=20) == 16
        assert queue.drops == 4
        assert queue.waiting_packets == 15

    def test_busy_server_admits_only_capacity(self):
        queue = FluidQueue(RATE, 2, mode=MODE_PACKETS)
        queue.offer(0.0, RATE)  # one-second packet holds the server
        assert queue.offer(0.0, 5 * PROBE_BITS, packets=5) == 2
        assert queue.drops == 3

    def test_byte_capacity(self):
        queue = FluidQueue(RATE, 1000, mode=MODE_BYTES)
        queue.offer(0.0, 800.0)  # 100 B, in service: holds no buffer bytes
        # 400-byte packets: two fit in 1000 free bytes, the third drops.
        assert queue.offer(0.0, 3 * 3200.0, packets=3) == 2
        assert queue.drops == 1

    def test_oversized_packet_drops_even_when_idle(self):
        queue = FluidQueue(RATE, 100, mode=MODE_BYTES)
        assert queue.offer(0.0, 8 * 101.0) == 0
        assert queue.drops == 1
        assert queue.workload_seconds == 0.0

    def test_packet_exactly_filling_idle_server_is_accepted(self):
        queue = FluidQueue(RATE, 100, mode=MODE_BYTES)
        assert queue.offer(0.0, 8 * 100.0) == 1

    def test_server_draining_frees_buffer_slots(self):
        queue = FluidQueue(RATE, 1, mode=MODE_PACKETS)
        queue.offer(0.0, RATE * 0.5)        # serves until t=0.5
        queue.offer(0.0, RATE * 0.5)        # waits, buffer now full
        assert queue.offer(0.1, PROBE_BITS) == 0   # still full
        assert queue.offer(0.6, PROBE_BITS) == 1   # first packet departed
        assert queue.drops == 1

    def test_validation(self):
        queue = FluidQueue(RATE, 15)
        with pytest.raises(ConfigurationError):
            queue.offer(0.0, 100.0, packets=0)
        with pytest.raises(ConfigurationError):
            queue.offer(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            FluidQueue(0.0, 15)
        with pytest.raises(ConfigurationError):
            FluidQueue(RATE, 0)
        with pytest.raises(ConfigurationError):
            FluidQueue(RATE, 15, mode="cells")


class TestFluidQueueStats:
    def test_occupancy_integral_of_two_packets(self):
        # Second packet waits exactly one service time (1 s at RATE bits).
        queue = FluidQueue(RATE, 15)
        queue.offer(0.0, RATE)
        queue.offer(0.0, RATE)
        queue.advance(10.0)
        stats = queue.stats(10.0)
        assert stats["occupancy_mean_pkts"] == pytest.approx(0.1)
        assert stats["occupancy_max_pkts"] == 1.0
        assert stats["departures"] == 2.0
        assert stats["loss_fraction"] == 0.0

    def test_loss_fraction(self):
        queue = FluidQueue(RATE, 1, mode=MODE_PACKETS)
        queue.offer(0.0, 4 * PROBE_BITS, packets=4)  # 2 in, 2 dropped
        stats = queue.stats(1.0)
        assert stats["arrivals"] == 4.0
        assert stats["loss_fraction"] == pytest.approx(0.5)

    def test_elapsed_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FluidQueue(RATE, 15).stats(0.0)


class TestAggregateBatches:
    PROBES = np.array([1.0, 2.0, 3.0])

    def test_conserves_bits_and_packets(self, rng):
        times = np.sort(rng.uniform(0.0, 4.0, size=200))
        bits = rng.uniform(100.0, 5000.0, size=200)
        bt, bb, bp = aggregate_batches(times, bits, self.PROBES, 0.05)
        assert bp.sum() == 200
        assert bb.sum() == pytest.approx(bits.sum())
        assert np.all(np.diff(bt) >= 0)

    def test_guarded_arrivals_stay_per_packet(self):
        times = np.array([0.99, 1.001, 2.5])
        bits = np.array([10.0, 20.0, 30.0])
        bt, bb, bp = aggregate_batches(times, bits, self.PROBES, 0.05)
        # The two arrivals near the probe at t=1 keep their own slots.
        assert 10.0 in bb and 20.0 in bb
        near = bp[np.isin(bb, [10.0, 20.0])]
        assert np.all(near == 1)

    def test_everything_protected_under_huge_guard(self):
        times = np.linspace(0.0, 4.0, 50)
        bits = np.full(50, 576.0)
        bt, bb, bp = aggregate_batches(times, bits, self.PROBES, 100.0)
        assert np.array_equal(bt, times)
        assert np.array_equal(bb, bits)
        assert np.all(bp == 1)

    def test_batches_never_span_a_probe(self):
        # Zero guard, free arrivals on both sides of the probe at t=2.
        times = np.array([1.8, 1.9, 2.1, 2.2])
        bits = np.full(4, 100.0)
        bt, bb, bp = aggregate_batches(times, bits, self.PROBES, 0.0,
                                       max_batch_packets=10)
        assert bp.tolist() == [2, 2]
        assert bt[0] < 2.0 < bt[1]

    def test_chunking_respects_max_batch_packets(self):
        times = np.linspace(4.5, 4.9, 20)  # far beyond the last probe
        bits = np.full(20, 100.0)
        _, _, bp = aggregate_batches(times, bits, self.PROBES, 0.05,
                                     max_batch_packets=8)
        assert bp.tolist() == [8, 8, 4]

    def test_batch_placed_at_mean_member_time(self):
        times = np.array([4.0, 5.0])
        bits = np.array([100.0, 300.0])
        bt, bb, bp = aggregate_batches(times, bits, self.PROBES, 0.0,
                                       max_batch_packets=8)
        assert bt.tolist() == [4.5]
        assert bb.tolist() == [400.0]
        assert bp.tolist() == [2]

    def test_no_probes_still_batches(self):
        times = np.linspace(0.0, 1.0, 12)
        bits = np.full(12, 100.0)
        _, _, bp = aggregate_batches(times, bits, np.empty(0), 0.05,
                                     max_batch_packets=5)
        assert bp.tolist() == [5, 5, 2]

    def test_empty_input(self):
        bt, bb, bp = aggregate_batches([], [], self.PROBES, 0.05)
        assert bt.size == bb.size == bp.size == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aggregate_batches([0.0], [1.0, 2.0], self.PROBES, 0.05)
        with pytest.raises(ConfigurationError):
            aggregate_batches([0.0], [1.0], self.PROBES, -1.0)
        with pytest.raises(ConfigurationError):
            aggregate_batches([0.0], [1.0], self.PROBES, 0.05,
                              max_batch_packets=0)
        with pytest.raises(ConfigurationError):
            aggregate_batches([1.0, 0.0], [1.0, 2.0], self.PROBES, 0.05)


class TestDrainSchedule:
    def test_returns_accepted_per_batch(self):
        queue = FluidQueue(RATE, 1, mode=MODE_PACKETS)
        accepted = drain_schedule(queue, [
            (0.0, PROBE_BITS, 1),
            (0.0, 3 * PROBE_BITS, 3),
        ])
        assert accepted == [1, 1]
        assert queue.drops == 2
