"""Tests for the M/D/1(/K) reference formulas."""

import pytest

from repro.errors import ConfigurationError
from repro.queueing.mdk1 import (
    md1_mean_queue_length,
    md1_mean_wait,
    mdk1_blocking_probability,
    mdk1_loss_vs_buffer,
)


class TestMD1:
    def test_known_value(self):
        # rho = 0.5, y = 1: Wq = 0.5 / (2 * 0.5) = 0.5.
        assert md1_mean_wait(0.5, 1.0) == pytest.approx(0.5)

    def test_grows_toward_saturation(self):
        waits = [md1_mean_wait(rho, 1.0) for rho in (0.3, 0.6, 0.9)]
        assert waits[0] < waits[1] < waits[2]

    def test_zero_load(self):
        assert md1_mean_wait(0.0, 1.0) == 0.0

    def test_unstable_rejected(self):
        with pytest.raises(ConfigurationError):
            md1_mean_wait(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            md1_mean_wait(2.0, 1.0)

    def test_littles_law(self):
        assert md1_mean_queue_length(0.8, 1.0) == pytest.approx(
            0.8 * md1_mean_wait(0.8, 1.0))


class TestMDK1:
    def test_blocking_increases_with_load(self):
        low = mdk1_blocking_probability(0.5, 1.0, buffer_size=5)
        high = mdk1_blocking_probability(0.95, 1.0, buffer_size=5)
        assert 0.0 <= low < high < 1.0

    def test_blocking_decreases_with_buffer(self):
        values = mdk1_loss_vs_buffer(0.8, 1.0, [1, 2, 4, 8, 16])
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_large_buffer_negligible_blocking_under_load_below_one(self):
        assert mdk1_blocking_probability(0.5, 1.0, 40) < 1e-6

    def test_k_equals_one_is_erlang_like(self):
        # With K=1 (no waiting room), blocking is substantial at rho=1.
        assert mdk1_blocking_probability(1.0, 1.0, 1) > 0.2

    def test_overload_blocks_excess(self):
        # rho = 2: at least half of arrivals must be dropped.
        blocking = mdk1_blocking_probability(2.0, 1.0, 10)
        assert blocking == pytest.approx(0.5, abs=0.05)

    def test_zero_arrivals(self):
        assert mdk1_blocking_probability(0.0, 1.0, 3) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mdk1_blocking_probability(0.5, 1.0, 0)


class TestAgainstSimulation:
    """The simulator's queue must match M/D/1 theory (substrate oracle)."""

    def test_md1_wait_matches_simulated_link(self):
        from repro.net.routing import Network
        from repro.sim import Simulator
        from repro.traffic.base import TrafficSink
        from repro.traffic.poisson import PoissonSource
        from repro.traffic.sizes import FixedSize

        sim = Simulator(seed=11)
        network = Network(sim)
        network.add_host("tx")
        network.add_host("rx")
        # 1000 B wire packets at 80 kb/s: service time y = 0.1 s.
        network.link("tx", "rx", rate_bps=80_000.0, prop_delay=0.0,
                     queue_capacity=100_000)
        network.compute_routes()
        arrivals = []
        departures = []
        network.host("rx").bind_udp(9000, lambda p: departures.append(
            (p.payload, sim.now)))
        source = PoissonSource(network.host("tx"), "rx", rate_pps=6.0,
                               sizes=FixedSize(960))  # 1000 B on the wire
        original_emit = source._emit

        def emit_with_timestamp():
            arrivals.append(sim.now)
            source.host.send_udp("rx", 9000, 9000, payload=sim.now,
                                 payload_bytes=960)
            source.packets_sent += 1

        source._emit = emit_with_timestamp
        source.start()
        sim.run(until=3000.0)

        # Waiting time = departure - arrival - service.
        waits = [depart - sent - 0.1 for sent, depart in departures]
        mean_wait = sum(waits) / len(waits)
        theory = md1_mean_wait(6.0, 0.1)  # rho = 0.6
        assert mean_wait == pytest.approx(theory, rel=0.15)

    def test_mdk1_blocking_matches_simulated_link(self):
        """The embedded-chain blocking formula is an oracle for the
        simulated drop-tail link.  The interface holds one packet in the
        transmitter plus ``capacity`` waiting, so a system size of K maps
        to queue capacity K - 1."""
        from repro.net.routing import Network
        from repro.sim import Simulator
        from repro.traffic.base import TrafficSink
        from repro.traffic.poisson import PoissonSource
        from repro.traffic.sizes import FixedSize

        k_system = 5
        sim = Simulator(seed=12)
        network = Network(sim)
        network.add_host("tx")
        network.add_host("rx")
        # 1000 B wire at 80 kb/s: y = 0.1 s; rho = 0.85.
        network.link("tx", "rx", rate_bps=80_000.0, prop_delay=0.0,
                     queue_capacity=k_system - 1)
        network.compute_routes()
        TrafficSink(network.host("rx"))
        source = PoissonSource(network.host("tx"), "rx", rate_pps=8.5,
                               sizes=FixedSize(960))
        source.start()
        sim.run(until=4000.0)
        source.stop()
        sim.run()
        queue = network.interface("tx", "rx").queue
        simulated = queue.drops / queue.arrivals
        theory = mdk1_blocking_probability(8.5, 0.1, k_system)
        assert simulated == pytest.approx(theory, rel=0.15)
