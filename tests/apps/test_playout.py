"""Tests for playback-buffer simulation."""

import numpy as np
import pytest

from repro.apps.playout import (
    AdaptivePlayout,
    fixed_playout,
    playout_delay_for_loss,
)
from repro.errors import ConfigurationError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def jittery_trace(base=0.14, jitter=0.05, loss=0.05, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    delays = base + rng.exponential(jitter, size=n)
    delays[rng.random(n) < loss] = 0.0  # network losses
    return ProbeTrace.from_samples(delta=0.05, rtts=delays.tolist())


class TestFixedPlayout:
    def test_huge_delay_no_late_loss(self):
        trace = jittery_trace()
        report = fixed_playout(trace, playout_delay=10.0)
        assert report.late_loss == 0.0
        assert report.network_loss == pytest.approx(trace.loss_fraction)

    def test_tiny_delay_everything_late(self):
        trace = jittery_trace()
        report = fixed_playout(trace, playout_delay=0.141)
        assert report.late_loss > 0.5

    def test_buffering_cost_grows_with_delay(self):
        trace = jittery_trace()
        small = fixed_playout(trace, playout_delay=0.25)
        large = fixed_playout(trace, playout_delay=0.5)
        assert large.mean_buffering > small.mean_buffering
        assert large.late_loss <= small.late_loss

    def test_total_loss(self):
        trace = jittery_trace()
        report = fixed_playout(trace, playout_delay=0.3)
        assert report.total_loss == pytest.approx(
            report.network_loss + report.late_loss)

    def test_validation(self):
        trace = jittery_trace()
        with pytest.raises(ConfigurationError):
            fixed_playout(trace, playout_delay=0.0)
        all_lost = ProbeTrace.from_samples(delta=0.05, rtts=[0.0, 0.0])
        with pytest.raises(InsufficientDataError):
            fixed_playout(all_lost, playout_delay=0.3)


class TestSizing:
    def test_meets_late_loss_target(self):
        trace = jittery_trace(n=5000)
        delay = playout_delay_for_loss(trace, target_late_loss=0.02)
        report = fixed_playout(trace, playout_delay=delay)
        assert report.late_loss <= 0.025

    def test_stricter_target_larger_buffer(self):
        trace = jittery_trace(n=5000)
        assert playout_delay_for_loss(trace, 0.001) > \
            playout_delay_for_loss(trace, 0.1)

    def test_validation(self):
        trace = jittery_trace()
        with pytest.raises(ConfigurationError):
            playout_delay_for_loss(trace, 0.0)


class TestAdaptivePlayout:
    def test_tracks_delay_shift(self):
        """After a congestion step the estimator adapts; a fixed buffer
        sized for the quiet period does not."""
        rng = np.random.default_rng(2)
        quiet = 0.14 + rng.exponential(0.01, size=2000)
        busy = 0.30 + rng.exponential(0.01, size=2000)
        rtts = np.concatenate([quiet, busy])
        trace = ProbeTrace.from_samples(delta=0.05, rtts=rtts.tolist())
        adaptive = AdaptivePlayout(alpha=0.95, safety=4.0).play(trace)
        fixed = fixed_playout(trace, playout_delay=float(
            np.quantile(quiet, 0.99)))
        assert adaptive.late_loss < fixed.late_loss

    def test_buffering_smaller_than_worst_case_fixed(self):
        trace = jittery_trace(n=4000)
        adaptive = AdaptivePlayout().play(trace)
        worst_case = fixed_playout(
            trace, playout_delay=float(trace.valid_rtts.max()))
        assert adaptive.mean_buffering < worst_case.mean_buffering

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptivePlayout(alpha=1.5)
        with pytest.raises(ConfigurationError):
            AdaptivePlayout(safety=-1.0)

    def test_report_on_real_trace(self, loaded_trace):
        report = AdaptivePlayout().play(loaded_trace)
        assert 0.0 <= report.late_loss <= 1.0
        assert report.playout_delay > 0.13
