"""Tests for the loss-repair schemes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.fec import (
    evaluate_repair,
    interleaved_xor_fec,
    repeat_last,
    xor_fec,
)
from repro.errors import ConfigurationError
from repro.netdyn.trace import ProbeTrace


class TestRepeatLast:
    def test_isolated_losses_fully_repaired(self):
        assert repeat_last([0, 1, 0, 0, 1, 0]) == 0.0

    def test_consecutive_losses_leak(self):
        # Positions 2 and 3 lost: packet 3 unrecoverable.
        assert repeat_last([0, 0, 1, 1, 0, 0]) == pytest.approx(1 / 6)

    def test_first_packet_loss_unrecoverable(self):
        assert repeat_last([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_no_losses(self):
        assert repeat_last([0] * 10) == 0.0

    def test_all_lost(self):
        assert repeat_last([1] * 4) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repeat_last([])


class TestXorFec:
    def test_single_loss_per_group_repaired(self):
        # Groups of 4, one loss in each: parity (assumed delivered when
        # the shifted indicator is 0) repairs them.
        lost = [0, 1, 0, 0, 0, 0, 1, 0]
        assert xor_fec(lost, group=4,
                       parity_lost=[0, 0]) == 0.0

    def test_double_loss_per_group_unrepairable(self):
        lost = [1, 1, 0, 0]
        assert xor_fec(lost, group=4, parity_lost=[0]) == pytest.approx(0.5)

    def test_lost_parity_defeats_repair(self):
        lost = [0, 1, 0, 0]
        assert xor_fec(lost, group=4, parity_lost=[1]) == pytest.approx(0.25)

    def test_trailing_partial_group_ignored(self):
        lost = [0, 1, 0, 0] + [1]  # the final packet falls outside a group
        value = xor_fec(lost, group=4, parity_lost=[0])
        assert value == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            xor_fec([0, 1], group=1)
        with pytest.raises(ConfigurationError):
            xor_fec([0, 1], group=4)  # shorter than one group
        with pytest.raises(ConfigurationError):
            xor_fec([0, 1, 0, 0], group=4, parity_lost=[])


class TestInterleaving:
    def test_burst_spread_across_lanes(self):
        # A burst of 3 consecutive losses with depth 3 puts one loss per
        # lane; each lane's group has a single loss -> fully repaired.
        lost = [0] * 9 + [1, 1, 1] + [0] * 12
        residual = interleaved_xor_fec(lost, group=4, depth=3)
        plain = xor_fec(lost[:24], group=4, parity_lost=[0] * 6)
        assert residual == 0.0
        assert plain > 0.0  # the same burst defeats non-interleaved FEC

    def test_depth_one_equals_plain_fec(self):
        rng = np.random.default_rng(0)
        lost = (rng.random(80) < 0.2).astype(int).tolist()
        assert interleaved_xor_fec(lost, group=4, depth=1) == \
            pytest.approx(xor_fec(lost, group=4))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interleaved_xor_fec([0, 1], group=2, depth=0)
        with pytest.raises(ConfigurationError):
            interleaved_xor_fec([0], group=2, depth=2)


class TestEvaluateRepair:
    def test_report_fields(self):
        rng = np.random.default_rng(1)
        rtts = np.where(rng.random(400) < 0.1, 0.0, 0.2)
        trace = ProbeTrace.from_samples(delta=0.05, rtts=rtts.tolist())
        report = evaluate_repair(trace, group=4, depth=4)
        assert report.raw_loss == pytest.approx(trace.loss_fraction)
        assert 0.0 <= report.repeat_last <= report.raw_loss
        assert 0.0 <= report.xor_fec <= 1.0
        assert report.best_scheme()

    def test_isolated_losses_make_open_loop_effective(self):
        """The paper's conclusion: plg ~ 1 means FEC/repetition work."""
        lost = ([0] * 9 + [1]) * 40  # exactly isolated 10% loss
        rtts = [0.0 if flag else 0.2 for flag in lost]
        trace = ProbeTrace.from_samples(delta=0.05, rtts=rtts)
        report = evaluate_repair(trace)
        assert report.raw_loss == pytest.approx(0.1)
        assert report.repeat_last == 0.0


@settings(max_examples=100, deadline=None)
@given(lost=st.lists(st.integers(0, 1), min_size=16, max_size=200))
def test_repair_never_increases_loss(lost):
    """Every scheme's residual is within [0, raw loss]."""
    raw = float(np.mean(lost))
    assert 0.0 <= repeat_last(lost) <= raw + 1e-12
    assert 0.0 <= interleaved_xor_fec(lost, group=4, depth=2) <= 1.0
