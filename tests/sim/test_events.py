"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def make_action(log, tag):
    return lambda: log.append(tag)


class TestEventQueue:
    def test_pop_returns_earliest(self):
        queue = EventQueue()
        log = []
        queue.push(2.0, make_action(log, "b"))
        queue.push(1.0, make_action(log, "a"))
        event = queue.pop()
        assert event is not None
        assert event.time == 1.0

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        log = []
        queue.push(1.0, make_action(log, "first"))
        queue.push(1.0, make_action(log, "second"))
        first = queue.pop()
        second = queue.pop()
        first.action()
        second.action()
        assert log == ["first", "second"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        log = []
        queue.push(1.0, make_action(log, "low"), priority=5)
        queue.push(1.0, make_action(log, "high"), priority=-5)
        queue.pop().action()
        queue.pop().action()
        assert log == ["high", "low"]

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        log = []
        handle = queue.push(1.0, make_action(log, "cancelled"))
        queue.push(2.0, make_action(log, "kept"))
        handle.cancel()
        event = queue.pop()
        assert event.time == 2.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_bool_reflects_live_events(self):
        queue = EventQueue()
        assert not queue
        handle = queue.push(1.0, lambda: None)
        assert queue
        handle.cancel()
        assert not queue

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 3.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_sequence_numbers_monotonic(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert second.sequence > first.sequence


class TestEvent:
    def test_ordering_by_time_then_priority_then_sequence(self):
        early = Event(1.0, 0, 0, lambda: None)
        late = Event(2.0, 0, 1, lambda: None)
        assert early < late
        high = Event(1.0, -1, 2, lambda: None)
        assert high < early

    def test_cancel_sets_flag(self):
        event = Event(1.0, 0, 0, lambda: None)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled
