"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def make_action(log, tag):
    return lambda: log.append(tag)


class TestEventQueue:
    def test_pop_returns_earliest(self):
        queue = EventQueue()
        log = []
        queue.push(2.0, make_action(log, "b"))
        queue.push(1.0, make_action(log, "a"))
        event = queue.pop()
        assert event is not None
        assert event.time == 1.0

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        log = []
        queue.push(1.0, make_action(log, "first"))
        queue.push(1.0, make_action(log, "second"))
        first = queue.pop()
        second = queue.pop()
        first.action()
        second.action()
        assert log == ["first", "second"]

    def test_priority_breaks_time_ties(self):
        queue = EventQueue()
        log = []
        queue.push(1.0, make_action(log, "low"), priority=5)
        queue.push(1.0, make_action(log, "high"), priority=-5)
        queue.pop().action()
        queue.pop().action()
        assert log == ["high", "low"]

    def test_cancelled_event_is_skipped(self):
        queue = EventQueue()
        log = []
        handle = queue.push(1.0, make_action(log, "cancelled"))
        queue.push(2.0, make_action(log, "kept"))
        handle.cancel()
        event = queue.pop()
        assert event.time == 2.0

    def test_len_excludes_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert len(queue) == 2
        handle.cancel()
        assert len(queue) == 1

    def test_bool_reflects_live_events(self):
        queue = EventQueue()
        assert not queue
        handle = queue.push(1.0, lambda: None)
        assert queue
        handle.cancel()
        assert not queue

    def test_peek_time_skips_cancelled(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(3.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 3.0

    def test_peek_time_empty(self):
        assert EventQueue().peek_time() is None

    def test_pop_empty_returns_none(self):
        assert EventQueue().pop() is None

    def test_clear(self):
        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.clear()
        assert len(queue) == 0
        assert queue.pop() is None

    def test_sequence_numbers_monotonic(self):
        queue = EventQueue()
        first = queue.push(1.0, lambda: None)
        second = queue.push(1.0, lambda: None)
        assert second.sequence > first.sequence


class TestLiveCounter:
    """The O(1) live-event counter must agree with a heap scan throughout.

    Regression for the O(n)-per-call ``__len__``/``__bool__``: the count is
    now maintained incrementally, so every mutation path (push, pop, lazy
    cancellation, cancel-after-pop, double cancel, clear) has to keep it
    exact.
    """

    def heap_scan(self, queue):
        return sum(1 for event in queue._heap if not event.cancelled)

    def test_counter_tracks_push_pop_cancel(self):
        queue = EventQueue()
        handles = [queue.push(float(i), lambda: None) for i in range(10)]
        assert len(queue) == self.heap_scan(queue) == 10
        handles[3].cancel()
        handles[7].cancel()
        assert len(queue) == self.heap_scan(queue) == 8
        assert queue.pop().time == 0.0
        assert len(queue) == self.heap_scan(queue) == 7
        # Popping past the cancelled events must not double-count them.
        while queue.pop() is not None:
            assert len(queue) == self.heap_scan(queue)
        assert len(queue) == 0
        assert not queue

    def test_double_cancel_counts_once(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert len(queue) == 1

    def test_cancel_after_pop_does_not_corrupt_count(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        popped = queue.pop()
        assert popped is handle
        handle.cancel()  # event already fired; count must stay at 1
        assert len(queue) == 1

    def test_cancel_after_clear_does_not_corrupt_count(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.clear()
        handle.cancel()
        assert len(queue) == 0
        queue.push(2.0, lambda: None)
        assert len(queue) == 1

    def test_len_and_bool_do_not_scan_heap(self):
        # Regression for the O(n)-per-call implementation: __len__ and
        # __bool__ must read the maintained counter, never iterate the
        # heap (Simulator.pending_events is called per monitoring tick).
        queue = EventQueue()
        for i in range(5):
            queue.push(float(i), lambda: None)

        class IterationDetector(list):
            iterated = False

            def __iter__(self):
                self.iterated = True
                return super().__iter__()

        queue._heap = IterationDetector(queue._heap)
        assert len(queue) == 5
        assert queue
        assert not queue._heap.iterated

    def test_peek_time_keeps_count(self):
        queue = EventQueue()
        handle = queue.push(1.0, lambda: None)
        queue.push(2.0, lambda: None)
        handle.cancel()
        assert queue.peek_time() == 2.0  # drops the cancelled head lazily
        assert len(queue) == self.heap_scan(queue) == 1


class TestEvent:
    def test_ordering_by_time_then_priority_then_sequence(self):
        early = Event(1.0, 0, 0, lambda: None)
        late = Event(2.0, 0, 1, lambda: None)
        assert early < late
        high = Event(1.0, -1, 2, lambda: None)
        assert high < early

    def test_cancel_sets_flag(self):
        event = Event(1.0, 0, 0, lambda: None)
        assert not event.cancelled
        event.cancel()
        assert event.cancelled
