"""Unit tests for the simulator run loop and clock."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_call_at_runs_at_exact_time(self, sim):
        fired = []
        sim.call_at(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_schedule_is_relative(self, sim):
        fired = []
        sim.call_at(1.0, lambda: sim.schedule(0.5,
                                              lambda: fired.append(sim.now)))
        sim.run()
        assert fired == [1.5]

    def test_past_scheduling_rejected(self, sim):
        sim.call_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.call_at(0.5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_time_rejected(self, sim, bad):
        # NaN compares false against everything, so letting one into the
        # heap would silently corrupt its ordering.
        with pytest.raises(SchedulingError, match="non-finite"):
            sim.call_at(bad, lambda: None)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_delay_rejected(self, sim, bad):
        with pytest.raises(SchedulingError, match="non-finite"):
            sim.schedule(bad, lambda: None)

    def test_negative_infinite_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(float("-inf"), lambda: None)

    def test_rejected_time_leaves_queue_untouched(self, sim):
        with pytest.raises(SchedulingError):
            sim.call_at(float("nan"), lambda: None)
        assert sim.pending_events() == 0

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.call_at(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []

    def test_zero_delay_event_fires_now(self, sim):
        fired = []
        sim.call_at(1.0, lambda: sim.schedule(0.0, lambda: fired.append(
            sim.now)))
        sim.run()
        assert fired == [1.0]


class TestRunLoop:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        assert sim.pending_events() == 1

    def test_run_until_advances_clock_even_if_queue_empty(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_resumed_run_executes_remaining(self, sim):
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 5]

    def test_stop_halts_loop(self, sim):
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1), sim.stop()))
        sim.call_at(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1]

    def test_clock_monotonic_across_events(self, sim):
        times = []
        for t in (3.0, 1.0, 2.0):
            sim.call_at(t, lambda: times.append(sim.now))
        sim.run()
        assert times == sorted(times)

    def test_events_executed_counter(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.call_at(t, lambda: None)
        sim.run()
        assert sim.events_executed == 3

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.call_at(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_event_scheduling_during_run(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.call_at(0.0, lambda: chain(1))
        sim.run()
        assert fired == [1, 2, 3, 4, 5]
        assert sim.now == 4.0


class TestDeterminism:
    def test_same_seed_same_stream_draws(self):
        a = Simulator(seed=99)
        b = Simulator(seed=99)
        assert a.streams.get("x").random(5).tolist() == \
            b.streams.get("x").random(5).tolist()

    def test_different_seeds_differ(self):
        a = Simulator(seed=1)
        b = Simulator(seed=2)
        assert a.streams.get("x").random(5).tolist() != \
            b.streams.get("x").random(5).tolist()
