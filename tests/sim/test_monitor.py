"""Unit tests for counters and time-weighted statistics."""

import math

import pytest

from repro.sim import Counter, SampleStats, Simulator, TimeWeightedValue


class TestCounter:
    def test_increment(self, sim):
        counter = Counter(sim)
        counter.increment()
        counter.increment(by=3)
        assert counter.count == 4

    def test_rate(self, sim):
        counter = Counter(sim)
        sim.call_at(10.0, counter.increment)
        sim.run()
        assert counter.rate() == pytest.approx(0.1)

    def test_rate_zero_elapsed(self, sim):
        assert Counter(sim).rate() == 0.0


class TestTimeWeightedValue:
    def test_constant_value(self, sim):
        tracked = TimeWeightedValue(sim, initial=3.0)
        sim.run(until=10.0)
        assert tracked.mean() == pytest.approx(3.0)

    def test_step_change_weighted_by_time(self, sim):
        tracked = TimeWeightedValue(sim, initial=0.0)
        sim.call_at(5.0, lambda: tracked.update(10.0))
        sim.run(until=10.0)
        # 5 s at 0 plus 5 s at 10 -> mean 5.
        assert tracked.mean() == pytest.approx(5.0)

    def test_extrema(self, sim):
        tracked = TimeWeightedValue(sim, initial=2.0)
        sim.call_at(1.0, lambda: tracked.update(7.0))
        sim.call_at(2.0, lambda: tracked.update(-1.0))
        sim.run()
        assert tracked.maximum() == 7.0
        assert tracked.minimum() == -1.0

    def test_value_property(self, sim):
        tracked = TimeWeightedValue(sim, initial=1.0)
        tracked.update(4.0)
        assert tracked.value == 4.0


class TestSampleStats:
    def test_mean_and_variance(self):
        stats = SampleStats()
        for x in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(x)
        assert stats.mean() == pytest.approx(5.0)
        assert stats.variance() == pytest.approx(32.0 / 7.0)
        assert stats.stddev() == pytest.approx(math.sqrt(32.0 / 7.0))

    def test_empty(self):
        stats = SampleStats()
        assert stats.mean() == 0.0
        assert stats.variance() == 0.0
        assert stats.minimum() is None
        assert stats.maximum() is None

    def test_single_sample(self):
        stats = SampleStats()
        stats.add(3.0)
        assert stats.mean() == 3.0
        assert stats.variance() == 0.0

    def test_extrema(self):
        stats = SampleStats()
        for x in (3.0, -1.0, 10.0):
            stats.add(x)
        assert stats.minimum() == -1.0
        assert stats.maximum() == 10.0
