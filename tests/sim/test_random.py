"""Unit tests for named random streams."""

from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_same_generator(self):
        streams = RandomStreams(seed=7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RandomStreams(seed=7)
        a = streams.get("a").random(100)
        b = streams.get("b").random(100)
        assert a.tolist() != b.tolist()

    def test_stream_independent_of_creation_order(self):
        # "b" created second vs created first must yield the same sequence:
        # per-stream seeds depend on the name, not on creation order.
        forward = RandomStreams(seed=7)
        forward.get("a")
        fwd_draws = forward.get("b").random(5)

        backward = RandomStreams(seed=7)
        bwd_draws = backward.get("b").random(5)
        backward.get("a")
        assert fwd_draws.tolist() == bwd_draws.tolist()

    def test_seed_property(self):
        assert RandomStreams(seed=13).seed == 13

    def test_names_tracks_created_streams(self):
        streams = RandomStreams(seed=0)
        streams.get("x")
        streams.get("y")
        assert streams.names() == ["x", "y"]

    def test_reproducible_across_instances(self):
        a = RandomStreams(seed=21).get("traffic.ftp").integers(0, 100, 10)
        b = RandomStreams(seed=21).get("traffic.ftp").integers(0, 100, 10)
        assert a.tolist() == b.tolist()
