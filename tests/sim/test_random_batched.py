"""Property tests: batched draws are sequence-exact vs per-call scalars.

The hot-path guarantee of :class:`repro.sim.random.BatchedDraws` is that the
value sequence it serves — and the bit-generator state it leaves behind — is
bit-identical to per-call scalar draws on the same stream, for *any* request
pattern.  These tests replay the patterns the traffic layer actually
produces (homogeneous Poisson, alternating interval/size draws, the FTP
exp/geometric/uniform mix, parameter switches, block-boundary interrupts)
against a scalar reference.
"""

import numpy as np
import pytest

from repro.sim.random import DEFAULT_BLOCK, RandomStreams
from repro.traffic.sizes import ftp_sizes, telnet_sizes

STREAM = "test.stream"


def _scalar_draw(rng, request):
    tag = request[0]
    if tag == "exp":
        return float(rng.exponential(request[1]))
    if tag == "uni":
        return float(rng.random())
    if tag == "geo":
        return int(rng.geometric(request[1]))
    raise AssertionError(request)


def _batched_draw(draws, request):
    tag = request[0]
    if tag == "exp":
        return draws.exponential(request[1])
    if tag == "uni":
        return draws.random()
    if tag == "geo":
        return draws.geometric(request[1])
    raise AssertionError(request)


def _assert_sequence_exact(script, block=DEFAULT_BLOCK, seed=7):
    """Replay ``script`` through both layers; values and states must match."""
    batched_streams = RandomStreams(seed)
    scalar_streams = RandomStreams(seed)
    draws = batched_streams.draws(STREAM, block=block)
    reference = scalar_streams.get(STREAM)

    got = [_batched_draw(draws, request) for request in script]
    want = [_scalar_draw(reference, request) for request in script]
    assert got == want

    # After a flush the generator must sit exactly where per-call scalar
    # draws left the reference (get() flushes implicitly).
    state = batched_streams.get(STREAM).bit_generator.state
    assert state == reference.bit_generator.state


class TestSequenceExactness:
    def test_homogeneous_exponential(self):
        # Pure Poisson arrivals: the block grows 1 -> 2 -> ... -> cap and
        # keeps refilling at the cap.
        _assert_sequence_exact([("exp", 0.25)] * 300, block=16)

    def test_homogeneous_uniform(self):
        _assert_sequence_exact([("uni",)] * 100, block=8)

    def test_alternating_kinds_never_prefetch(self):
        # interval, size, interval, size ... — no run of two, so the layer
        # must stay on scalar draws throughout.
        script = [("exp", 1.0), ("uni",)] * 50
        _assert_sequence_exact(script)

    def test_ftp_like_mix(self):
        # Session interval, file size, then data-packet bursts.
        script = []
        for _ in range(20):
            script.append(("exp", 2.0))
            script.append(("geo", 0.05))
            script.extend([("uni",)] * 7)
        _assert_sequence_exact(script, block=8)

    def test_parameter_switch_is_a_kind_switch(self):
        # Same distribution, different scale: must not serve stale blocks.
        script = ([("exp", 1.0)] * 10 + [("exp", 2.0)] * 10
                  + [("exp", 1.0)] * 10)
        _assert_sequence_exact(script, block=8)

    def test_interrupt_mid_block_rewinds(self):
        # Grow a block, abandon it with values pending, then come back:
        # the rewind + fast-forward must leave no value skipped or reused.
        script = ([("exp", 0.5)] * 5 + [("geo", 0.1)]
                  + [("exp", 0.5)] * 5 + [("uni",)]
                  + [("exp", 0.5)] * 20)
        _assert_sequence_exact(script, block=16)

    def test_long_random_mix(self):
        # Adversarial: a deterministic pseudo-random request pattern with
        # bursts of every kind and every parameter.
        pattern_rng = np.random.default_rng(123)
        kinds = [("exp", 1.0), ("exp", 0.125), ("uni",), ("geo", 0.2),
                 ("geo", 0.01)]
        script = []
        for _ in range(200):
            kind = kinds[int(pattern_rng.integers(len(kinds)))]
            script.extend([kind] * int(pattern_rng.integers(1, 9)))
        _assert_sequence_exact(script, block=32)


class TestFlushAndHandoff:
    def test_get_flushes_pending_block(self):
        streams = RandomStreams(11)
        reference = RandomStreams(11).get(STREAM)
        draws = streams.draws(STREAM, block=8)
        # Build up a prefetched block with values pending.
        served = [draws.exponential(1.0) for _ in range(5)]
        assert draws.pending > 0
        # get() must flush, then raw scalar draws continue the sequence.
        rng = streams.get(STREAM)
        assert draws.pending == 0
        tail = [float(rng.exponential(1.0)) for _ in range(5)]
        want = [float(reference.exponential(1.0)) for _ in range(10)]
        assert served + tail == want

    def test_flush_is_idempotent(self):
        streams = RandomStreams(3)
        draws = streams.draws(STREAM, block=8)
        for _ in range(5):
            draws.exponential(1.0)
        draws.flush()
        state = streams.get(STREAM).bit_generator.state
        draws.flush()
        assert streams.get(STREAM).bit_generator.state == state

    def test_draws_returns_shared_instance(self):
        streams = RandomStreams(0)
        assert streams.draws(STREAM) is streams.draws(STREAM)


class TestSizeDistributions:
    def test_fixed_size_consumes_no_draws(self):
        streams = RandomStreams(5)
        draws = streams.draws(STREAM)
        state = streams.get(STREAM).bit_generator.state
        assert ftp_sizes().sample_batched(draws) == 512
        assert streams.get(STREAM).bit_generator.state == state

    def test_empirical_size_matches_choice(self):
        # sample_batched must reproduce Generator.choice exactly, one
        # uniform per sample, for the telnet size distribution.
        sizes = telnet_sizes()
        streams = RandomStreams(9)
        reference = RandomStreams(9).get(STREAM)
        draws = streams.draws(STREAM, block=16)
        got = [sizes.sample_batched(draws) for _ in range(500)]
        want = [sizes.sample(reference) for _ in range(500)]
        assert got == want
        state = streams.get(STREAM).bit_generator.state
        assert state == reference.bit_generator.state


class TestTrafficStreamEquivalence:
    """Every traffic source's batched draw pattern equals its scalar past.

    Built a real scenario twice from one seed: once the sources draw
    through the batched layer (the production path), once a hand-rolled
    scalar replay consumes the same stream.  Cheaper end-to-end pin: two
    same-seed experiment runs must be bit-identical (batched layers are
    per-simulator, so this fails if block state ever leaks across draws).
    """

    def test_same_seed_probe_trace_bit_identical(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig(delta=0.05, duration=10.0, seed=3,
                                  warmup=5.0)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.send_times.tobytes() == second.send_times.tobytes()
        assert first.rtts.tobytes() == second.rtts.tobytes()


@pytest.mark.parametrize("block", [2, 3, 8, DEFAULT_BLOCK])
def test_block_cap_is_behavior_neutral(block):
    # The cap only changes prefetch granularity, never the sequence.
    script = [("exp", 0.1)] * 40 + [("uni",)] * 40 + [("exp", 0.1)] * 40
    _assert_sequence_exact(script, block=block)
