"""Tests for the in-simulator traceroute."""

import pytest

from repro.errors import AddressError
from repro.tools.traceroute import (
    format_route_table,
    route_names,
    traceroute,
)
from repro.topology.inria_umd import TABLE1_ROUTE, build_inria_umd
from repro.topology.presets import build_single_bottleneck


class TestTraceroute:
    def test_discovers_full_route(self):
        scenario = build_single_bottleneck(seed=1)
        hops = traceroute(scenario.network, "src", "echo")
        assert route_names(hops) == ["r-left", "r-right", "echo"]

    def test_rtts_increase_along_path(self):
        scenario = build_single_bottleneck(seed=1)
        hops = traceroute(scenario.network, "src", "echo")
        rtts = [hop.rtt for hop in hops]
        assert all(r is not None for r in rtts)
        assert rtts == sorted(rtts)

    def test_terminates_with_port_unreachable(self):
        scenario = build_single_bottleneck(seed=1)
        hops = traceroute(scenario.network, "src", "echo", max_hops=30)
        # Exactly one entry per hop; no probing beyond the destination.
        assert len(hops) == 3

    def test_max_hops_cap(self):
        scenario = build_single_bottleneck(seed=1)
        hops = traceroute(scenario.network, "src", "echo", max_hops=2)
        assert len(hops) == 2
        assert hops[-1].node == "r-right"

    def test_inria_umd_route_matches_table1(self):
        scenario = build_inria_umd(seed=1, utilization_fwd=0.0,
                                   utilization_rev=0.0, fault_drop_prob=0.0)
        hops = traceroute(scenario.network, scenario.source, scenario.echo)
        observed = [scenario.source] + route_names(hops)
        assert tuple(observed[:len(TABLE1_ROUTE)]) == TABLE1_ROUTE

    def test_unknown_destination(self):
        scenario = build_single_bottleneck(seed=1)
        with pytest.raises(AddressError):
            traceroute(scenario.network, "src", "ghost")

    def test_formatting(self):
        scenario = build_single_bottleneck(seed=1)
        hops = traceroute(scenario.network, "src", "echo")
        table = format_route_table(hops, title="route")
        assert table.startswith("route")
        assert "r-left" in table
        assert "ms" in table

    def test_unresponsive_hop_rendered_as_star(self):
        from repro.tools.traceroute import Hop
        assert Hop(index=3, node=None, rtt=None).format().endswith("*")
