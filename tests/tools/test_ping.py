"""Tests for the in-simulator ping."""

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import RandomDropFault
from repro.tools.ping import ping
from repro.topology.presets import build_single_bottleneck


class TestPing:
    def test_all_echoes_answered_on_idle_path(self):
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "echo", count=5)
        assert result.sent == 5
        assert result.received == 5
        assert result.loss_fraction == 0.0

    def test_rtt_reflects_path_delay(self):
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "echo", count=3)
        for rtt in result.rtts.values():
            assert 0.1 <= rtt <= 0.12  # 2 x 50 ms prop + serialization

    def test_routers_answer_echo_too(self):
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "r-left", count=2)
        assert result.received == 2

    def test_losses_counted(self):
        scenario = build_single_bottleneck(seed=1)
        fault = RandomDropFault(1.0, scenario.sim.streams.get("kill"))
        scenario.bottleneck_fwd.add_egress_fault(fault)
        result = ping(scenario.network, "src", "echo", count=4)
        assert result.received == 0
        assert result.loss_fraction == 1.0

    def test_summary_format(self):
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "echo", count=2)
        summary = result.summary()
        assert "2 packets transmitted, 2 received" in summary
        assert "rtt min/avg/max" in summary

    def test_summary_all_lost(self):
        scenario = build_single_bottleneck(seed=1)
        fault = RandomDropFault(1.0, scenario.sim.streams.get("kill"))
        scenario.bottleneck_fwd.add_egress_fault(fault)
        result = ping(scenario.network, "src", "echo", count=2)
        assert "100.0% packet loss" in result.summary()

    def test_interval_spacing(self):
        scenario = build_single_bottleneck(seed=1)
        start = scenario.sim.now
        ping(scenario.network, "src", "echo", count=3, interval=2.0)
        # 3 echoes at 2 s spacing plus the 3 s timeout.
        assert scenario.sim.now == pytest.approx(start + 9.0)

    def test_validation(self):
        scenario = build_single_bottleneck(seed=1)
        with pytest.raises(ConfigurationError):
            ping(scenario.network, "src", "echo", count=0)
        with pytest.raises(ConfigurationError):
            ping(scenario.network, "src", "echo", count=1, interval=0.0)

    def test_record_route_lists_both_directions(self):
        """The IP record-route option: forward and return hops appear,
        which is how the paper's Table 1 could be read off ping."""
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "echo", count=1,
                      record_route=True)
        assert result.route == ["r-left", "r-right", "echo",
                                "r-right", "r-left", "src"]

    def test_record_route_off_by_default(self):
        scenario = build_single_bottleneck(seed=1)
        result = ping(scenario.network, "src", "echo", count=1)
        assert result.route is None

    def test_two_pings_do_not_interfere(self):
        scenario = build_single_bottleneck(seed=1)
        first = ping(scenario.network, "src", "echo", count=2, ident=1)
        second = ping(scenario.network, "src", "echo", count=2, ident=2)
        assert first.received == 2
        assert second.received == 2
