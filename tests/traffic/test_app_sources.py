"""Unit tests for the application-flavored sources (FTP, Telnet, mix)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.packet import UDP_WIRE_OVERHEAD_BYTES
from repro.net.routing import Network
from repro.sim import Simulator
from repro.traffic.base import TrafficSink
from repro.traffic.ftp import FtpSource
from repro.traffic.mix import attach_internet_mix
from repro.traffic.sizes import (
    EmpiricalSize,
    FixedSize,
    FTP_PAYLOAD_BYTES,
    ftp_sizes,
    telnet_sizes,
)
from repro.traffic.telnet import TelnetSource
from repro.units import mbps


@pytest.fixture
def net(sim):
    network = Network(sim)
    network.add_host("tx")
    network.add_host("rx")
    network.link("tx", "rx", rate_bps=mbps(100), prop_delay=0.0001,
                 queue_capacity=100_000)
    network.compute_routes()
    return network


class TestFtp:
    def test_windows_arrive_as_bursts(self, sim, net):
        arrivals = []
        net.host("rx").bind_udp(9000, lambda p: arrivals.append(sim.now))
        source = FtpSource(net.host("tx"), "rx", session_rate=0.01,
                           mean_file_packets=12.0, window=4,
                           window_interval=0.5)
        # Force exactly one session right away for a deterministic check.
        source._emit()
        sim.run(until=10.0)
        gaps = np.diff(arrivals)
        # Within-window gaps are microseconds; between-window gaps 0.5 s.
        large = gaps[gaps > 0.1]
        assert np.allclose(large, 0.5, atol=1e-3)
        small = gaps[gaps <= 0.1]
        assert np.all(small < 1e-3)

    def test_file_size_distribution(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = FtpSource(net.host("tx"), "rx", session_rate=5.0,
                           mean_file_packets=20.0, window=4,
                           window_interval=0.05)
        source.start()
        sim.run(until=60.0)
        assert source.sessions_started > 100
        per_session = sink.packets / source.sessions_finished
        assert 16 <= per_session <= 24

    def test_all_packets_are_bulk_size(self, sim, net):
        sizes = set()
        net.host("rx").bind_udp(9000, lambda p: sizes.add(p.size_bytes))
        source = FtpSource(net.host("tx"), "rx", session_rate=2.0)
        source.start()
        sim.run(until=10.0)
        assert sizes == {FTP_PAYLOAD_BYTES + UDP_WIRE_OVERHEAD_BYTES}

    def test_mean_rate_helper(self, sim, net):
        source = FtpSource(net.host("tx"), "rx", session_rate=2.0,
                           mean_file_packets=10.0, payload_bytes=500)
        assert source.mean_rate_bps() == pytest.approx(2 * 10 * 500 * 8)

    def test_validation(self, sim, net):
        host = net.host("tx")
        with pytest.raises(ConfigurationError):
            FtpSource(host, "rx", session_rate=0.0)
        with pytest.raises(ConfigurationError):
            FtpSource(host, "rx", session_rate=1.0, window=0)
        with pytest.raises(ConfigurationError):
            FtpSource(host, "rx", session_rate=1.0, mean_file_packets=0.5)
        with pytest.raises(ConfigurationError):
            FtpSource(host, "rx", session_rate=1.0, window_interval=0.0)


class TestTelnet:
    def test_small_packets_only(self, sim, net):
        sizes = []
        net.host("rx").bind_udp(9000, lambda p: sizes.append(p.size_bytes))
        source = TelnetSource(net.host("tx"), "rx", rate_pps=200.0)
        source.start()
        sim.run(until=10.0)
        payloads = np.array(sizes) - UDP_WIRE_OVERHEAD_BYTES
        assert payloads.max() <= 64
        assert payloads.min() >= 1

    def test_keystrokes_dominate(self, sim, net):
        sizes = []
        net.host("rx").bind_udp(9000, lambda p: sizes.append(p.size_bytes))
        source = TelnetSource(net.host("tx"), "rx", rate_pps=500.0)
        source.start()
        sim.run(until=20.0)
        payloads = np.array(sizes) - UDP_WIRE_OVERHEAD_BYTES
        assert np.mean(payloads <= 2) > 0.3  # 1-2 byte keystrokes frequent

    def test_validation(self, sim, net):
        with pytest.raises(ConfigurationError):
            TelnetSource(net.host("tx"), "rx", rate_pps=0.0)


class TestSizes:
    def test_fixed(self, rng):
        dist = FixedSize(100)
        assert dist.sample(rng) == 100
        assert dist.mean() == 100.0

    def test_fixed_validation(self):
        with pytest.raises(ConfigurationError):
            FixedSize(0)

    def test_empirical_mean(self, rng):
        dist = EmpiricalSize([10, 20], [0.5, 0.5])
        assert dist.mean() == pytest.approx(15.0)
        draws = [dist.sample(rng) for _ in range(2000)]
        assert set(draws) == {10, 20}
        assert abs(np.mean(draws) - 15.0) < 1.0

    def test_empirical_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalSize([], [])
        with pytest.raises(ConfigurationError):
            EmpiricalSize([1, 2], [1.0])
        with pytest.raises(ConfigurationError):
            EmpiricalSize([1], [0.0])

    def test_presets(self, rng):
        assert ftp_sizes().mean() == FTP_PAYLOAD_BYTES
        assert 1 <= telnet_sizes().mean() <= 64


class TestMix:
    def test_offered_load_hits_target(self, sim, net):
        mix = attach_internet_mix(net.host("tx"), net.host("rx"),
                                  link_rate_bps=mbps(1), utilization=0.5,
                                  bulk_fraction=0.8)
        mix.start()
        duration = 120.0
        sim.run(until=duration)
        wire_bits = sum(sink.bytes * 8 for sink in mix.sinks)
        utilization = wire_bits / (mbps(1) * duration)
        assert 0.4 <= utilization <= 0.6

    def test_bulk_fraction_split(self, sim, net):
        mix = attach_internet_mix(net.host("tx"), net.host("rx"),
                                  link_rate_bps=mbps(1), utilization=0.5,
                                  bulk_fraction=0.8)
        mix.start()
        sim.run(until=120.0)
        ftp_sink, telnet_sink = mix.sinks
        ftp_bits = ftp_sink.bytes * 8
        telnet_bits = telnet_sink.bytes * 8
        share = ftp_bits / (ftp_bits + telnet_bits)
        assert 0.7 <= share <= 0.9

    def test_pure_bulk_mix(self, sim, net):
        mix = attach_internet_mix(net.host("tx"), net.host("rx"),
                                  link_rate_bps=mbps(1), utilization=0.3,
                                  bulk_fraction=1.0)
        assert len(mix.sources) == 1
        assert len(mix.sinks) == 1

    def test_validation(self, sim, net):
        with pytest.raises(ConfigurationError):
            attach_internet_mix(net.host("tx"), net.host("rx"),
                                link_rate_bps=mbps(1), utilization=1.5)
        with pytest.raises(ConfigurationError):
            attach_internet_mix(net.host("tx"), net.host("rx"),
                                link_rate_bps=mbps(1), utilization=0.5,
                                bulk_fraction=1.5)

    def test_stop(self, sim, net):
        mix = attach_internet_mix(net.host("tx"), net.host("rx"),
                                  link_rate_bps=mbps(1), utilization=0.5)
        mix.start()
        sim.run(until=10.0)
        sent_at_stop = mix.packets_sent()
        mix.stop()
        sim.run(until=30.0)
        assert mix.packets_sent() == sent_at_stop
