"""Tests for the responsive bulk traffic source."""

import pytest

from repro.errors import ConfigurationError
from repro.net.routing import Network
from repro.sim import Simulator
from repro.traffic.tcpflows import ResponsiveBulkSource
from repro.units import kbps, mbps, ms


def two_hosts(sim, rate_bps=mbps(1)):
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    network.link("a", "b", rate_bps=rate_bps, prop_delay=ms(10),
                 queue_capacity=32)
    network.compute_routes()
    return network


class TestResponsiveBulkSource:
    def test_sessions_launch_and_complete(self, sim):
        network = two_hosts(sim)
        source = ResponsiveBulkSource(network.host("a"), network.host("b"),
                                      session_rate=1.0,
                                      mean_file_segments=10.0)
        source.start()
        sim.run(until=60.0)
        assert source.sessions_started > 20
        # Finished transfers are reaped; only a few remain in flight.
        assert source.active_transfers < source.sessions_started

    def test_offered_load_tracks_session_rate(self, sim):
        network = two_hosts(sim, rate_bps=mbps(10))
        source = ResponsiveBulkSource(network.host("a"), network.host("b"),
                                      session_rate=2.0,
                                      mean_file_segments=10.0)
        source.start()
        sim.run(until=120.0)
        # ~240 sessions expected; Poisson sd ~15.
        assert 180 <= source.sessions_started <= 300

    def test_concurrency_cap(self, sim):
        # A slow link cannot drain sessions as fast as they arrive.
        network = two_hosts(sim, rate_bps=kbps(64))
        source = ResponsiveBulkSource(network.host("a"), network.host("b"),
                                      session_rate=5.0,
                                      mean_file_segments=50.0,
                                      max_concurrent=4)
        source.start()
        sim.run(until=60.0)
        assert source.active_transfers <= 4
        assert source.sessions_skipped > 0

    def test_stop_prevents_new_sessions(self, sim):
        network = two_hosts(sim)
        source = ResponsiveBulkSource(network.host("a"), network.host("b"),
                                      session_rate=2.0)
        source.start()
        sim.run(until=20.0)
        started = source.sessions_started
        source.stop()
        sim.run(until=60.0)
        assert source.sessions_started == started

    def test_validation(self, sim):
        network = two_hosts(sim)
        a, b = network.host("a"), network.host("b")
        with pytest.raises(ConfigurationError):
            ResponsiveBulkSource(a, b, session_rate=0.0)
        with pytest.raises(ConfigurationError):
            ResponsiveBulkSource(a, b, session_rate=1.0,
                                 mean_file_segments=0.5)
        with pytest.raises(ConfigurationError):
            ResponsiveBulkSource(a, b, session_rate=1.0, max_concurrent=0)

    def test_double_start_rejected(self, sim):
        network = two_hosts(sim)
        source = ResponsiveBulkSource(network.host("a"), network.host("b"),
                                      session_rate=1.0)
        source.start()
        with pytest.raises(ConfigurationError):
            source.start()
