"""Unit tests for the traffic source primitives."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.routing import Network
from repro.sim import Simulator
from repro.traffic.base import TrafficSink, TrafficSource
from repro.traffic.batch import BatchSource, fixed_batches, geometric_batches
from repro.traffic.deterministic import CBRSource
from repro.traffic.onoff import OnOffSource
from repro.traffic.poisson import (
    DiurnalProfile,
    ModulatedPoissonSource,
    PoissonSource,
)
from repro.traffic.sizes import FixedSize
from repro.units import mbps


@pytest.fixture
def net(sim):
    network = Network(sim)
    network.add_host("tx")
    network.add_host("rx")
    network.link("tx", "rx", rate_bps=mbps(100), prop_delay=0.0001,
                 queue_capacity=10_000)
    network.compute_routes()
    return network


class TestCBR:
    def test_exact_packet_count(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = CBRSource(net.host("tx"), "rx", interval=0.1,
                           payload_bytes=100)
        source.start()
        sim.run(until=1.05)
        assert sink.packets == 10

    def test_regular_spacing(self, sim, net):
        arrivals = []
        net.host("rx").bind_udp(9000, lambda p: arrivals.append(sim.now))
        source = CBRSource(net.host("tx"), "rx", interval=0.25,
                           payload_bytes=10)
        source.start()
        sim.run(until=1.1)
        assert np.allclose(np.diff(arrivals), 0.25)

    def test_validation(self, sim, net):
        with pytest.raises(ConfigurationError):
            CBRSource(net.host("tx"), "rx", interval=0.0, payload_bytes=1)
        with pytest.raises(ConfigurationError):
            CBRSource(net.host("tx"), "rx", interval=1.0, payload_bytes=0)

    def test_stop_halts_emission(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = CBRSource(net.host("tx"), "rx", interval=0.1,
                           payload_bytes=10)
        source.start()
        sim.call_at(0.55, source.stop)
        sim.run(until=2.0)
        assert sink.packets == 5

    def test_double_start_rejected(self, sim, net):
        source = CBRSource(net.host("tx"), "rx", interval=0.1,
                           payload_bytes=10)
        source.start()
        with pytest.raises(ConfigurationError):
            source.start()


class TestPoisson:
    def test_mean_rate(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = PoissonSource(net.host("tx"), "rx", rate_pps=200.0,
                               sizes=FixedSize(100))
        source.start()
        sim.run(until=20.0)
        # 4000 expected; Poisson sd ~63.
        assert 3600 <= sink.packets <= 4400

    def test_exponential_interarrivals(self, sim, net):
        arrivals = []
        net.host("rx").bind_udp(9000, lambda p: arrivals.append(sim.now))
        source = PoissonSource(net.host("tx"), "rx", rate_pps=100.0)
        source.start()
        sim.run(until=30.0)
        gaps = np.diff(arrivals)
        # Exponential: mean ~= sd.
        assert abs(gaps.mean() - gaps.std()) / gaps.mean() < 0.15

    def test_validation(self, sim, net):
        with pytest.raises(ConfigurationError):
            PoissonSource(net.host("tx"), "rx", rate_pps=0.0)


class TestBatch:
    def test_fixed_batches_arrive_together(self, sim, net):
        arrivals = []
        net.host("rx").bind_udp(9000, lambda p: arrivals.append(sim.now))
        source = BatchSource(net.host("tx"), "rx", batch_rate=1.0,
                            batch_sizes=fixed_batches(5),
                            deterministic=True)
        source.start()
        sim.run(until=1.5)
        assert len(arrivals) == 5
        # All five serialized back-to-back on a fast link: < 1 ms apart.
        assert max(arrivals) - min(arrivals) < 1e-3

    def test_geometric_mean_batch_size(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = BatchSource(net.host("tx"), "rx", batch_rate=50.0,
                             batch_sizes=geometric_batches(4.0))
        source.start()
        sim.run(until=40.0)
        mean_batch = sink.packets / source.batches_sent
        assert 3.5 <= mean_batch <= 4.5

    def test_batch_sampler_validation(self):
        with pytest.raises(ConfigurationError):
            geometric_batches(0.5)
        with pytest.raises(ConfigurationError):
            fixed_batches(0)


class TestOnOff:
    def test_duty_cycle_controls_volume(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = OnOffSource(net.host("tx"), "rx", on_mean=1.0, off_mean=1.0,
                             interval=0.01)
        source.start()
        sim.run(until=60.0)
        # ~50% duty at 100 pps -> ~3000 packets; be generous.
        assert 1800 <= sink.packets <= 4200
        assert source.duty_cycle == pytest.approx(0.5)

    def test_validation(self, sim, net):
        with pytest.raises(ConfigurationError):
            OnOffSource(net.host("tx"), "rx", on_mean=0.0, off_mean=1.0,
                        interval=0.1)


class TestModulatedPoisson:
    def test_rate_follows_profile(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        profile = DiurnalProfile(base_pps=100.0, amplitude=1.0, period=20.0,
                                 phase=0.0)
        source = ModulatedPoissonSource(net.host("tx"), "rx", rate=profile,
                                        peak_rate_pps=profile.peak_pps)
        source.start()
        counts = {}

        def snapshot(label):
            counts[label] = sink.packets

        sim.call_at(5.0, lambda: snapshot("peak_start"))
        sim.call_at(10.0, lambda: snapshot("peak_end"))
        sim.call_at(15.0, lambda: snapshot("trough_end"))
        sim.run(until=20.0)
        rising = counts["peak_end"] - counts["peak_start"]
        falling = counts["trough_end"] - counts["peak_end"]
        # sin is high in (0,10) and low in (10,20): clearly more packets
        # in the first half.
        assert rising > 2 * falling

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalProfile(base_pps=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(base_pps=1.0, amplitude=2.0)
        with pytest.raises(ConfigurationError):
            DiurnalProfile(base_pps=1.0, period=0.0)

    def test_profile_nonnegative(self):
        profile = DiurnalProfile(base_pps=10.0, amplitude=1.0, period=10.0)
        for t in np.linspace(0, 20, 101):
            assert profile(t) >= 0.0


class TestSink:
    def test_throughput(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        source = CBRSource(net.host("tx"), "rx", interval=0.1,
                           payload_bytes=85)  # 125 B wire
        source.start()
        sim.run(until=10.05)
        # 125 B / 0.1 s = 10 kb/s.
        assert sink.throughput_bps() == pytest.approx(10_000, rel=0.05)

    def test_close_releases_port(self, sim, net):
        sink = TrafficSink(net.host("rx"))
        sink.close()
        TrafficSink(net.host("rx"))  # rebinding works
