"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            attribute = getattr(errors, name)
            if isinstance(attribute, type) and \
                    issubclass(attribute, Exception):
                assert issubclass(attribute, errors.ReproError)

    def test_specific_parents(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
        assert issubclass(errors.AddressError, errors.NetworkError)
        assert issubclass(errors.RoutingError, errors.NetworkError)
        assert issubclass(errors.PortInUseError, errors.NetworkError)
        assert issubclass(errors.PacketFormatError, errors.NetworkError)
        assert issubclass(errors.InsufficientDataError, errors.AnalysisError)
        assert issubclass(errors.FitError, errors.AnalysisError)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.FitError("x")
        with pytest.raises(errors.AnalysisError):
            raise errors.InsufficientDataError("y")
