"""Unit tests for packet construction."""

import pytest

from repro.net.packet import (
    DEFAULT_TTL,
    KIND_ICMP_ECHO,
    KIND_ICMP_TIME_EXCEEDED,
    KIND_UDP,
    Packet,
    UDP_WIRE_OVERHEAD_BYTES,
    make_udp,
    next_packet_uid,
)


class TestMakeUdp:
    def test_wire_size_includes_overhead(self):
        packet = make_udp("a", "b", 1000, 2000, payload_bytes=32)
        assert packet.size_bytes == 32 + UDP_WIRE_OVERHEAD_BYTES

    def test_paper_probe_is_72_bytes(self):
        # The paper computes with P = 72 * 8 bits for a 32-byte payload.
        packet = make_udp("a", "b", 1, 2, payload_bytes=32)
        assert packet.size_bytes == 72
        assert packet.size_bits == 576

    def test_ports_and_addresses(self):
        packet = make_udp("src", "dst", 10, 20)
        assert (packet.src, packet.dst) == ("src", "dst")
        assert (packet.src_port, packet.dst_port) == (10, 20)
        assert packet.kind == KIND_UDP

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make_udp("a", "b", 1, 2, payload_bytes=-1)

    def test_default_ttl(self):
        assert make_udp("a", "b", 1, 2).ttl == DEFAULT_TTL


class TestPacket:
    def test_uids_unique(self):
        first = Packet(src="a", dst="b")
        second = Packet(src="a", dst="b")
        assert first.uid != second.uid

    def test_next_packet_uid_monotonic(self):
        assert next_packet_uid() < next_packet_uid()

    def test_icmp_classification(self):
        echo = Packet(src="a", dst="b", kind=KIND_ICMP_ECHO)
        assert echo.is_icmp and not echo.is_icmp_error
        exceeded = Packet(src="a", dst="b", kind=KIND_ICMP_TIME_EXCEEDED)
        assert exceeded.is_icmp and exceeded.is_icmp_error
        udp = Packet(src="a", dst="b", kind=KIND_UDP)
        assert not udp.is_icmp

    def test_repr_mentions_ports_for_udp(self):
        packet = make_udp("a", "b", 7, 9)
        assert "7->9" in repr(packet)
