"""Unit tests for fault models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.faults import (
    FaultModel,
    PeriodicStallFault,
    RandomDropFault,
    RouteFlapFault,
)
from repro.net.packet import Packet
from repro.net.routing import Network
from repro.sim import Simulator
from repro.units import mbps


class TestBaseFault:
    def test_default_never_drops(self, sim):
        fault = FaultModel()
        assert not fault.drops(Packet(src="a", dst="b"), sim)
        assert fault.stalled_until(5.0) == 5.0


class TestRandomDrop:
    def test_probability_validation(self):
        import numpy as np
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            RandomDropFault(1.5, rng)
        with pytest.raises(ConfigurationError):
            RandomDropFault(-0.1, rng)

    def test_empirical_rate(self, sim):
        fault = RandomDropFault(0.3, sim.streams.get("f"))
        packet = Packet(src="a", dst="b")
        drops = sum(fault.drops(packet, sim) for _ in range(20000))
        assert 0.27 <= drops / 20000 <= 0.33
        assert fault.dropped == drops

    def test_extremes(self, sim):
        never = RandomDropFault(0.0, sim.streams.get("f0"))
        always = RandomDropFault(1.0, sim.streams.get("f1"))
        packet = Packet(src="a", dst="b")
        assert not any(never.drops(packet, sim) for _ in range(100))
        assert all(always.drops(packet, sim) for _ in range(100))


class TestPeriodicStall:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PeriodicStallFault(period=0.0, stall=0.0)
        with pytest.raises(ConfigurationError):
            PeriodicStallFault(period=1.0, stall=1.0)  # stall >= period
        with pytest.raises(ConfigurationError):
            PeriodicStallFault(period=1.0, stall=-0.1)

    def test_stall_window(self):
        fault = PeriodicStallFault(period=10.0, stall=2.0)
        assert fault.stalled_until(0.5) == pytest.approx(2.0)
        assert fault.stalled_until(1.999) == pytest.approx(2.0)
        assert fault.stalled_until(3.0) == 3.0  # outside the window
        assert fault.stalled_until(10.5) == pytest.approx(12.0)  # next cycle

    def test_phase_shifts_window(self):
        fault = PeriodicStallFault(period=10.0, stall=2.0, phase=5.0)
        assert fault.stalled_until(5.5) == pytest.approx(7.0)
        assert fault.stalled_until(0.5) == 0.5


class TestRouteFlap:
    def make_network(self, sim):
        network = Network(sim)
        network.add_host("src")
        network.add_host("dst")
        network.add_router("primary")
        network.add_router("backup")
        for via in ("primary", "backup"):
            network.link("src", via, rate_bps=mbps(10), prop_delay=0.001)
            network.link(via, "dst", rate_bps=mbps(10), prop_delay=0.001)
        network.compute_routes()
        return network

    def test_flapping_toggles_next_hop(self, sim):
        network = self.make_network(sim)
        node = network.node("src")
        node.set_next_hop("dst", "primary")
        flap = RouteFlapFault(sim, node, destination="dst",
                              primary_peer="primary", backup_peer="backup",
                              period=1.0)
        flap.install()
        sim.run(until=1.5)
        assert node.routing["dst"] == "backup"
        sim.run(until=2.5)
        assert node.routing["dst"] == "primary"
        assert flap.flaps == 2

    def test_period_validation(self, sim):
        network = self.make_network(sim)
        with pytest.raises(ConfigurationError):
            RouteFlapFault(sim, network.node("src"), "dst", "primary",
                           "backup", period=0.0)


class TestDropsMany:
    """Batched drop decisions must replay the scalar draw sequence."""

    def make_fault(self, probability=0.3, seed=11):
        return RandomDropFault(probability,
                               rng=np.random.default_rng(seed))

    def test_mask_matches_sequential_drops(self):
        batched = self.make_fault()
        scalar = self.make_fault()
        mask = batched.drops_many(200)
        expected = np.array([scalar.drops(None, None) for _ in range(200)])
        assert np.array_equal(mask, expected)

    def test_counter_advances_by_mask_sum(self):
        fault = self.make_fault()
        mask = fault.drops_many(500)
        assert fault.dropped == int(mask.sum())

    def test_generator_state_identical_after_batch(self):
        batched = self.make_fault()
        scalar = self.make_fault()
        batched.drops_many(64)
        for _ in range(64):
            scalar.drops(None, None)
        assert batched._rng.random() == scalar._rng.random()

    def test_interleaved_batches_and_scalars(self):
        mixed = self.make_fault()
        scalar = self.make_fault()
        decisions = list(mixed.drops_many(10))
        decisions.append(mixed.drops(None, None))
        decisions.extend(mixed.drops_many(5))
        expected = [scalar.drops(None, None) for _ in range(16)]
        assert decisions == expected
