"""Tests for packet taps."""

import csv

import pytest

from repro.errors import AnalysisError
from repro.net.packet import KIND_UDP
from repro.net.routing import Network
from repro.net.tap import PacketTap
from repro.sim import Simulator
from repro.tools.ping import ping
from repro.units import mbps, ms


def pair(sim):
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    network.link("a", "b", rate_bps=mbps(10), prop_delay=ms(1))
    network.compute_routes()
    return network


class TestPacketTap:
    def test_records_crossing_packets(self, sim):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"))
        network.host("b").bind_udp(9, lambda p: None)
        for _ in range(3):
            network.host("a").send_udp("b", 9, 9, payload_bytes=100)
        sim.run()
        assert len(tap) == 3
        assert all(r.kind == KIND_UDP for r in tap.records)
        assert all(r.size_bytes == 140 for r in tap.records)

    def test_delivery_still_happens(self, sim):
        network = pair(sim)
        PacketTap(network.interface("a", "b"))
        received = []
        network.host("b").bind_udp(9, received.append)
        network.host("a").send_udp("b", 9, 9, payload_bytes=10)
        sim.run()
        assert len(received) == 1

    def test_kind_filter(self, sim):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"), kinds={KIND_UDP})
        network.host("b").bind_udp(9, lambda p: None)
        network.host("a").send_udp("b", 9, 9, payload_bytes=10)
        ping(network, "a", "b", count=1)
        assert len(tap) == 1  # the echo request was filtered out

    def test_direction_specific(self, sim):
        network = pair(sim)
        forward = PacketTap(network.interface("a", "b"))
        reverse = PacketTap(network.interface("b", "a"))
        network.host("b").bind_udp(9, lambda p: None)
        network.host("a").send_udp("b", 9, 9, payload_bytes=10)
        sim.run()
        assert len(forward) == 1
        assert len(reverse) == 0

    def test_interarrival_and_throughput(self, sim):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"))
        network.host("b").bind_udp(9, lambda p: None)
        for i in range(3):
            sim.call_at(i * 0.5, lambda: network.host("a").send_udp(
                "b", 9, 9, payload_bytes=85))
        sim.run()
        gaps = tap.interarrival_times()
        assert gaps == pytest.approx([0.5, 0.5])
        # 125 B per 0.5 s = 2000 b/s over the 1 s capture span.
        assert tap.throughput_bps() == pytest.approx(3 * 125 * 8 / 1.0,
                                                     rel=0.01)

    def test_interarrival_needs_two(self, sim):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"))
        with pytest.raises(AnalysisError):
            tap.interarrival_times()

    def test_close_unhooks(self, sim):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"))
        network.host("b").bind_udp(9, lambda p: None)
        tap.close()
        network.host("a").send_udp("b", 9, 9, payload_bytes=10)
        sim.run()
        assert len(tap) == 0

    def test_save_csv(self, sim, tmp_path):
        network = pair(sim)
        tap = PacketTap(network.interface("a", "b"))
        network.host("b").bind_udp(9, lambda p: None)
        network.host("a").send_udp("b", 9, 9, payload_bytes=10)
        sim.run()
        path = tmp_path / "capture.csv"
        tap.save_csv(path)
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "time"
        assert len(rows) == 2

    def test_tap_sees_probe_compression_spacing(self):
        """Taps verify the physics behind the phase plots: compressed
        probes leave the bottleneck one service time apart."""
        from repro.netdyn.session import run_probe_experiment
        from repro.topology.presets import build_single_bottleneck
        from repro.traffic.batch import BatchSource, fixed_batches
        import numpy as np

        scenario = build_single_bottleneck(seed=9)
        tap = PacketTap(scenario.bottleneck_fwd, kinds={KIND_UDP})
        source = BatchSource(scenario.network.host("cross-l"), "cross-r",
                             batch_rate=2.0, batch_sizes=fixed_batches(3),
                             deterministic=True)
        source.start()
        run_probe_experiment(scenario.network, scenario.source,
                             scenario.echo, delta=0.02, count=300,
                             start_at=1.0)
        probe_times = np.array([r.time for r in tap.records
                                if r.size_bytes == 72])
        gaps = np.diff(probe_times)
        service = 72 * 8 / 128e3
        compressed = np.abs(gaps - service) < 1e-4
        assert compressed.sum() > 5
