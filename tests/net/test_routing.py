"""Unit tests for the Network container and static routing."""

import pytest

from repro.errors import AddressError, ConfigurationError, RoutingError
from repro.net.routing import Network
from repro.sim import Simulator
from repro.units import mbps, ms


def diamond(sim):
    """a - (b | c) - d with a shorter delay through b."""
    network = Network(sim)
    for name in ("a", "d"):
        network.add_host(name)
    for name in ("b", "c"):
        network.add_router(name)
    network.link("a", "b", rate_bps=mbps(10), prop_delay=ms(1))
    network.link("b", "d", rate_bps=mbps(10), prop_delay=ms(1))
    network.link("a", "c", rate_bps=mbps(10), prop_delay=ms(10))
    network.link("c", "d", rate_bps=mbps(10), prop_delay=ms(10))
    network.compute_routes()
    return network


class TestBuilding:
    def test_duplicate_name_rejected(self, sim):
        network = Network(sim)
        network.add_host("x")
        with pytest.raises(ConfigurationError):
            network.add_router("x")

    def test_unknown_node_lookup(self, sim):
        with pytest.raises(AddressError):
            Network(sim).node("ghost")

    def test_host_lookup_rejects_router(self, sim):
        network = Network(sim)
        network.add_router("r")
        with pytest.raises(AddressError):
            network.host("r")

    def test_asymmetric_link_parameters(self, sim):
        network = Network(sim)
        network.add_host("a")
        network.add_host("b")
        ab, ba = network.link("a", "b", rate_bps=1000.0, prop_delay=0.1,
                              rate_bps_ba=2000.0, prop_delay_ba=0.2)
        assert ab.rate_bps == 1000.0
        assert ba.rate_bps == 2000.0
        assert ba.prop_delay == 0.2

    def test_interface_lookup(self, sim):
        network = diamond(sim)
        iface = network.interface("a", "b")
        assert iface.node.name == "a"
        assert iface.peer.name == "b"


class TestRouting:
    def test_shortest_delay_path_chosen(self, sim):
        network = diamond(sim)
        assert network.path("a", "d") == ["a", "b", "d"]

    def test_routes_are_symmetric_here(self, sim):
        network = diamond(sim)
        assert network.path("d", "a") == ["d", "b", "a"]

    def test_path_unknown_node(self, sim):
        network = diamond(sim)
        with pytest.raises(AddressError):
            network.path("a", "ghost")

    def test_path_no_route(self, sim):
        network = Network(sim)
        network.add_host("a")
        network.add_host("b")  # never linked
        network.compute_routes()
        with pytest.raises(RoutingError):
            network.path("a", "b")

    def test_route_recomputation_after_new_link(self, sim):
        network = diamond(sim)
        network.add_host("e")
        network.link("e", "d", rate_bps=mbps(10), prop_delay=ms(1))
        network.compute_routes()
        assert network.path("a", "e") == ["a", "b", "d", "e"]

    def test_loop_detection(self, sim):
        network = diamond(sim)
        # Create an artificial loop b -> a -> b for destination d.
        network.node("b").set_next_hop("d", "a")
        network.node("a").set_next_hop("d", "b")
        with pytest.raises(RoutingError):
            network.path("a", "d")

    def test_graph_has_all_edges(self, sim):
        network = diamond(sim)
        graph = network.graph()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 8  # 4 links, both directions

    def test_repr(self, sim):
        network = diamond(sim)
        assert "4 nodes" in repr(network)
        assert "4 links" in repr(network)
