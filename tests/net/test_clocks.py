"""Unit tests for host clock models."""

import pytest

from repro.errors import ConfigurationError
from repro.net.clocks import (
    DECSTATION_RESOLUTION,
    PerfectClock,
    QuantizedClock,
    SkewedClock,
)
from repro.sim import Simulator


class TestPerfectClock:
    def test_tracks_sim_time(self, sim):
        clock = PerfectClock(sim)
        sim.run(until=1.234)
        assert clock.now() == pytest.approx(1.234)

    def test_zero_resolution(self, sim):
        assert PerfectClock(sim).resolution == 0.0


class TestQuantizedClock:
    def test_floors_to_tick(self, sim):
        clock = QuantizedClock(sim, resolution=0.004)
        sim.run(until=0.0105)
        assert clock.now() == pytest.approx(0.008)

    def test_decstation_resolution(self, sim):
        clock = QuantizedClock(sim, resolution=DECSTATION_RESOLUTION)
        sim.run(until=0.0100)
        # floor(0.0100 / 0.003906) = 2 ticks.
        assert clock.now() == pytest.approx(2 * DECSTATION_RESOLUTION)

    def test_readings_on_lattice(self, sim):
        clock = QuantizedClock(sim, resolution=0.003)
        for target in (0.001, 0.0142, 0.0299, 1.0001):
            sim.run(until=target)
            reading = clock.now()
            assert reading == pytest.approx(
                int(reading / 0.003 + 0.5 * 1e-9) * 0.003)

    def test_monotone(self, sim):
        clock = QuantizedClock(sim, resolution=0.01)
        previous = clock.now()
        for target in (0.004, 0.011, 0.02, 0.5):
            sim.run(until=target)
            assert clock.now() >= previous
            previous = clock.now()

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            QuantizedClock(sim, resolution=0.0)


class TestSkewedClock:
    def test_offset(self, sim):
        clock = SkewedClock(sim, offset=100.0)
        sim.run(until=2.0)
        assert clock.now() == pytest.approx(102.0)

    def test_skew(self, sim):
        clock = SkewedClock(sim, skew=0.01)
        sim.run(until=100.0)
        assert clock.now() == pytest.approx(101.0)

    def test_rtt_immune_to_offset_one_way_is_not(self, sim):
        """Why the paper sources and sinks probes on the same host."""
        local = SkewedClock(sim, offset=0.0)
        remote = SkewedClock(sim, offset=5.0)
        send_time = local.now()
        sim.run(until=0.1)  # one-way trip
        one_way = remote.now() - send_time  # wrong: offset pollutes it
        sim.run(until=0.2)  # return trip
        rtt = local.now() - send_time  # right: same clock both ends
        assert one_way == pytest.approx(5.1)
        assert rtt == pytest.approx(0.2)

    def test_quantized_skewed(self, sim):
        clock = SkewedClock(sim, offset=0.0005, resolution=0.001)
        sim.run(until=0.0012)
        assert clock.now() == pytest.approx(0.001)

    def test_negative_resolution_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            SkewedClock(sim, resolution=-1.0)
