"""Unit tests for node forwarding, TTL handling, and ICMP generation."""

import pytest

from repro.errors import RoutingError
from repro.net.icmp import ErrorContext
from repro.net.packet import (
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_TIME_EXCEEDED,
    Packet,
)
from repro.net import icmp
from repro.net.routing import Network
from repro.sim import Simulator
from repro.units import mbps


def chain(sim, count=4):
    """hosts h0 - h1 - ... - h(count-1) on fast links."""
    network = Network(sim)
    names = [f"h{i}" for i in range(count)]
    for name in names:
        network.add_host(name)
    for a, b in zip(names, names[1:]):
        network.link(a, b, rate_bps=mbps(10), prop_delay=0.001)
    network.compute_routes()
    return network, names


class TestForwarding:
    def test_multihop_delivery(self, sim):
        network, names = chain(sim)
        received = []
        network.host(names[-1]).bind_udp(9, received.append)
        network.host(names[0]).send_udp(names[-1], 9, 9, payload_bytes=10)
        sim.run()
        assert len(received) == 1
        # hops counts forwarding operations at intermediate nodes.
        assert received[0].hops == len(names) - 2

    def test_forward_counter(self, sim):
        network, names = chain(sim)
        network.host(names[-1]).bind_udp(9, lambda p: None)
        network.host(names[0]).send_udp(names[-1], 9, 9, payload_bytes=10)
        sim.run()
        assert network.node(names[1]).forwarded == 1
        assert network.node(names[2]).forwarded == 1

    def test_no_route_drops(self, sim):
        network = Network(sim)
        network.add_host("lonely")
        network.add_host("elsewhere")
        network.host("lonely").send_udp("elsewhere", 9, 9)
        sim.run()
        assert network.node("lonely").no_route_drops == 1


class TestTtl:
    def test_ttl_expiry_generates_time_exceeded(self, sim):
        network, names = chain(sim)
        errors = []
        src = network.host(names[0])
        src.add_icmp_listener(errors.append)
        src.send_udp(names[-1], 9, 9, payload_bytes=10, ttl=2)
        sim.run()
        assert len(errors) == 1
        error = errors[0]
        assert error.kind == KIND_ICMP_TIME_EXCEEDED
        assert error.src == names[2]  # the node where TTL hit zero
        context = error.payload
        assert isinstance(context, ErrorContext)
        assert context.original_dst == names[-1]

    def test_sufficient_ttl_no_error(self, sim):
        network, names = chain(sim)
        errors = []
        src = network.host(names[0])
        src.add_icmp_listener(errors.append)
        network.host(names[-1]).bind_udp(9, lambda p: None)
        src.send_udp(names[-1], 9, 9, payload_bytes=10, ttl=10)
        sim.run()
        assert errors == []

    def test_no_error_about_error(self, sim):
        """ICMP errors about ICMP errors are suppressed (RFC 1122)."""
        network, names = chain(sim)
        exceeded = icmp.make_error(
            KIND_ICMP_TIME_EXCEEDED, reporter=names[0],
            offending=Packet(src=names[-1], dst=names[0]), created_at=0.0)
        exceeded.ttl = 1  # will expire at the first hop
        listener_calls = []
        network.host(names[-1]).add_icmp_listener(listener_calls.append)
        network.host(names[0]).originate(exceeded)
        sim.run()
        assert listener_calls == []  # dropped silently, no error generated


class TestEchoReply:
    def test_node_answers_echo(self, sim):
        network, names = chain(sim)
        replies = []
        src = network.host(names[0])
        src.add_icmp_listener(replies.append)
        echo = icmp.make_echo(names[0], names[-1], ident=1, seq=0,
                              created_at=sim.now)
        src.originate(echo)
        sim.run()
        assert len(replies) == 1
        assert replies[0].kind == KIND_ICMP_ECHO_REPLY
        assert replies[0].payload.seq == 0

    def test_self_addressed_packet_delivered_locally(self, sim):
        network, names = chain(sim)
        received = []
        host = network.host(names[0])
        host.bind_udp(9, received.append)
        host.send_udp(names[0], 9, 9, payload_bytes=10)
        sim.run()
        assert len(received) == 1


class TestRoutingTable:
    def test_set_next_hop_requires_adjacency(self, sim):
        network, names = chain(sim)
        with pytest.raises(RoutingError):
            network.node(names[0]).set_next_hop(names[-1], names[2])

    def test_interface_to_unknown_peer(self, sim):
        network, names = chain(sim)
        with pytest.raises(RoutingError):
            network.node(names[0]).interface_to("nowhere")
