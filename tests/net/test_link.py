"""Unit tests for interfaces/links: serialization, queueing, faults."""

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import PeriodicStallFault, RandomDropFault
from repro.net.link import Interface
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue
from repro.net.routing import Network
from repro.sim import Simulator


def make_link(sim, rate_bps=8000.0, prop_delay=0.0, capacity=16):
    """A two-node network with one link; returns (net, a, b, iface_ab)."""
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    iface_ab, _ = network.link("a", "b", rate_bps=rate_bps,
                               prop_delay=prop_delay,
                               queue_capacity=capacity)
    network.compute_routes()
    return network, network.host("a"), network.host("b"), iface_ab


def packet(size=100):
    return Packet(src="a", dst="b", size_bytes=size)


class TestSerialization:
    def test_transmission_delay(self, sim):
        # 100 B = 800 bits at 8000 b/s -> 0.1 s.
        _, a, b, iface = make_link(sim, rate_bps=8000.0)
        arrivals = []
        b.bind_udp(9, lambda p: arrivals.append(sim.now))
        a.send_udp("b", 9, 9, payload_bytes=100 - 40)
        sim.run()
        assert arrivals == [pytest.approx(0.1)]

    def test_propagation_adds_latency(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0, prop_delay=0.25)
        arrivals = []
        b.bind_udp(9, lambda p: arrivals.append(sim.now))
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert arrivals == [pytest.approx(0.1 + 0.25)]

    def test_back_to_back_packets_serialize(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0)
        arrivals = []
        b.bind_udp(9, lambda p: arrivals.append(sim.now))
        a.send_udp("b", 9, 9, payload_bytes=60)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert arrivals == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_transmitted_bits_counter(self, sim):
        _, a, b, iface = make_link(sim)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert iface.transmitted == 1
        assert iface.transmitted_bits == 800

    def test_utilization_estimate(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run(until=0.2)
        assert iface.utilization_estimate() == pytest.approx(0.5)
        assert iface.busy_time == pytest.approx(0.1)

    def test_utilization_counts_in_progress_transmission(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run(until=0.05)  # mid-serialization of the 0.1 s packet
        assert iface.busy_time == pytest.approx(0.05)
        assert iface.utilization_estimate() == pytest.approx(1.0)


class TestQueueing:
    def test_overflow_drops_excess(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=800.0, capacity=2)
        received = []
        b.bind_udp(9, received.append)
        # First starts transmitting (1 s each); next two queue; rest drop.
        for _ in range(6):
            a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert len(received) == 3
        assert iface.queue.drops == 3

    def test_queue_drains_in_order(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0, capacity=10)
        received = []
        b.bind_udp(9, lambda p: received.append(p.payload))
        for tag in ("x", "y", "z"):
            a.send_udp("b", 9, 9, payload=tag, payload_bytes=60)
        sim.run()
        assert received == ["x", "y", "z"]


class TestFaults:
    def test_egress_random_drop(self, sim):
        _, a, b, iface = make_link(sim)
        iface.add_egress_fault(RandomDropFault(1.0, sim.streams.get("f")))
        received = []
        b.bind_udp(9, received.append)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert received == []
        assert iface.fault_drops == 1

    def test_ingress_random_drop(self, sim):
        _, a, b, iface = make_link(sim)
        iface.add_ingress_fault(RandomDropFault(1.0, sim.streams.get("f")))
        received = []
        b.bind_udp(9, received.append)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert received == []

    def test_stall_delays_transmission(self, sim):
        _, a, b, iface = make_link(sim, rate_bps=8000.0)
        iface.add_egress_fault(PeriodicStallFault(period=100.0, stall=2.0))
        arrivals = []
        b.bind_udp(9, lambda p: arrivals.append(sim.now))
        a.send_udp("b", 9, 9, payload_bytes=60)  # sent at t=0, in stall
        sim.run()
        assert arrivals == [pytest.approx(2.0 + 0.1)]

    def test_zero_probability_fault_is_noop(self, sim):
        _, a, b, iface = make_link(sim)
        iface.add_egress_fault(RandomDropFault(0.0, sim.streams.get("f")))
        received = []
        b.bind_udp(9, received.append)
        a.send_udp("b", 9, 9, payload_bytes=60)
        sim.run()
        assert len(received) == 1


class TestValidation:
    def test_bad_rate_rejected(self, sim):
        node = Node(sim, "n")
        queue = DropTailQueue(sim, capacity=1)
        with pytest.raises(ConfigurationError):
            Interface(sim, node, rate_bps=0.0, prop_delay=0.0, queue=queue)

    def test_negative_delay_rejected(self, sim):
        node = Node(sim, "n")
        queue = DropTailQueue(sim, capacity=1)
        with pytest.raises(ConfigurationError):
            Interface(sim, node, rate_bps=1.0, prop_delay=-1.0, queue=queue)

    def test_send_without_peer_rejected(self, sim):
        node = Node(sim, "n")
        queue = DropTailQueue(sim, capacity=1)
        iface = Interface(sim, node, rate_bps=1.0, prop_delay=0.0,
                          queue=queue)
        with pytest.raises(ConfigurationError):
            iface.send(packet())
