"""Unit tests for hosts: UDP demux, port errors, clocks."""

import pytest

from repro.errors import PortInUseError
from repro.net.clocks import QuantizedClock
from repro.net.packet import KIND_ICMP_PORT_UNREACHABLE
from repro.net.routing import Network
from repro.sim import Simulator
from repro.units import mbps


def pair(sim):
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    network.link("a", "b", rate_bps=mbps(10), prop_delay=0.001)
    network.compute_routes()
    return network, network.host("a"), network.host("b")


class TestUdpDemux:
    def test_delivery_to_bound_port(self, sim):
        _, a, b = pair(sim)
        got = []
        b.bind_udp(53, got.append)
        a.send_udp("b", 1000, 53, payload="hello", payload_bytes=5)
        sim.run()
        assert len(got) == 1
        assert got[0].payload == "hello"

    def test_two_ports_demultiplexed(self, sim):
        _, a, b = pair(sim)
        first, second = [], []
        b.bind_udp(1, first.append)
        b.bind_udp(2, second.append)
        a.send_udp("b", 9, 1, payload_bytes=5)
        a.send_udp("b", 9, 2, payload_bytes=5)
        a.send_udp("b", 9, 2, payload_bytes=5)
        sim.run()
        assert (len(first), len(second)) == (1, 2)

    def test_double_bind_rejected(self, sim):
        _, _, b = pair(sim)
        b.bind_udp(53, lambda p: None)
        with pytest.raises(PortInUseError):
            b.bind_udp(53, lambda p: None)

    def test_unbind_then_rebind(self, sim):
        _, _, b = pair(sim)
        b.bind_udp(53, lambda p: None)
        b.unbind_udp(53)
        b.bind_udp(53, lambda p: None)  # no error

    def test_unbind_unknown_port_ignored(self, sim):
        _, _, b = pair(sim)
        b.unbind_udp(9999)  # no error

    def test_counters(self, sim):
        _, a, b = pair(sim)
        b.bind_udp(53, lambda p: None)
        a.send_udp("b", 9, 53, payload_bytes=5)
        sim.run()
        assert a.udp_sent == 1
        assert b.udp_received == 1


class TestPortUnreachable:
    def test_unbound_port_generates_icmp(self, sim):
        _, a, b = pair(sim)
        errors = []
        a.add_icmp_listener(errors.append)
        a.send_udp("b", 1000, 9999, payload_bytes=5)
        sim.run()
        assert len(errors) == 1
        assert errors[0].kind == KIND_ICMP_PORT_UNREACHABLE
        assert errors[0].payload.original_dst_port == 9999

    def test_bound_port_no_icmp(self, sim):
        _, a, b = pair(sim)
        errors = []
        a.add_icmp_listener(errors.append)
        b.bind_udp(53, lambda p: None)
        a.send_udp("b", 1000, 53, payload_bytes=5)
        sim.run()
        assert errors == []


class TestHostClock:
    def test_default_clock_is_perfect(self, sim):
        _, a, _ = pair(sim)
        sim.run(until=1.2345)
        assert a.clock.now() == pytest.approx(1.2345)

    def test_quantized_clock_floors(self, sim):
        _, a, _ = pair(sim)
        a.clock = QuantizedClock(sim, resolution=0.01)
        sim.run(until=0.0567)
        assert a.clock.now() == pytest.approx(0.05)
