"""Unit tests for ICMP message construction."""

import pytest

from repro.net import icmp
from repro.net.packet import (
    KIND_ICMP_ECHO,
    KIND_ICMP_ECHO_REPLY,
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_ICMP_TIME_EXCEEDED,
    KIND_UDP,
    make_udp,
)


class TestEcho:
    def test_make_echo_fields(self):
        echo = icmp.make_echo("a", "b", ident=7, seq=3, created_at=1.5)
        assert echo.kind == KIND_ICMP_ECHO
        assert echo.payload == icmp.EchoContext(ident=7, seq=3)
        assert echo.size_bytes == icmp.ECHO_SIZE_BYTES
        assert echo.created_at == 1.5

    def test_reply_swaps_addresses_keeps_payload(self):
        echo = icmp.make_echo("a", "b", ident=7, seq=3, created_at=0.0)
        reply = icmp.make_echo_reply(echo, created_at=2.0)
        assert reply.kind == KIND_ICMP_ECHO_REPLY
        assert (reply.src, reply.dst) == ("b", "a")
        assert reply.payload == echo.payload
        assert reply.size_bytes == echo.size_bytes

    def test_custom_echo_size(self):
        echo = icmp.make_echo("a", "b", ident=1, seq=1, created_at=0.0,
                              size_bytes=1000)
        assert echo.size_bytes == 1000


class TestErrors:
    def test_error_context_captures_offender(self):
        offending = make_udp("src", "dst", 1111, 2222)
        error = icmp.make_error(KIND_ICMP_TIME_EXCEEDED, reporter="router",
                                offending=offending, created_at=3.0)
        context = error.payload
        assert isinstance(context, icmp.ErrorContext)
        assert context.reporter == "router"
        assert context.original_uid == offending.uid
        assert context.original_src == "src"
        assert context.original_dst == "dst"
        assert context.original_src_port == 1111
        assert context.original_dst_port == 2222

    def test_error_addressed_to_offenders_source(self):
        offending = make_udp("src", "dst", 1, 2)
        error = icmp.make_error(KIND_ICMP_PORT_UNREACHABLE, reporter="dst",
                                offending=offending, created_at=0.0)
        assert (error.src, error.dst) == ("dst", "src")
        assert error.size_bytes == icmp.ERROR_SIZE_BYTES

    def test_non_error_kind_rejected(self):
        offending = make_udp("src", "dst", 1, 2)
        with pytest.raises(ValueError):
            icmp.make_error(KIND_UDP, reporter="r", offending=offending,
                            created_at=0.0)
