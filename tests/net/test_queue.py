"""Unit and property tests for the drop-tail queue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net.packet import Packet
from repro.net.queue import DropTailQueue, MODE_BYTES, MODE_PACKETS
from repro.sim import Simulator


def make_packet(size=100):
    return Packet(src="a", dst="b", size_bytes=size)


class TestPacketMode:
    def test_fifo_order(self, sim):
        queue = DropTailQueue(sim, capacity=4)
        first, second = make_packet(), make_packet()
        queue.enqueue(first)
        queue.enqueue(second)
        assert queue.dequeue() is first
        assert queue.dequeue() is second

    def test_drop_when_full(self, sim):
        queue = DropTailQueue(sim, capacity=2)
        assert queue.enqueue(make_packet())
        assert queue.enqueue(make_packet())
        assert not queue.enqueue(make_packet())
        assert queue.drops == 1
        assert queue.arrivals == 3

    def test_dequeue_frees_space(self, sim):
        queue = DropTailQueue(sim, capacity=1)
        queue.enqueue(make_packet())
        queue.dequeue()
        assert queue.enqueue(make_packet())

    def test_dequeue_empty_returns_none(self, sim):
        assert DropTailQueue(sim, capacity=1).dequeue() is None

    def test_loss_fraction(self, sim):
        queue = DropTailQueue(sim, capacity=1)
        queue.enqueue(make_packet())
        queue.enqueue(make_packet())
        assert queue.loss_fraction == pytest.approx(0.5)

    def test_loss_fraction_no_arrivals(self, sim):
        assert DropTailQueue(sim, capacity=1).loss_fraction == 0.0


class TestByteMode:
    def test_capacity_counted_in_bytes(self, sim):
        queue = DropTailQueue(sim, capacity=250, mode=MODE_BYTES)
        assert queue.enqueue(make_packet(100))
        assert queue.enqueue(make_packet(100))
        assert not queue.enqueue(make_packet(100))
        assert queue.enqueue(make_packet(50))

    def test_small_packet_fits_where_large_does_not(self, sim):
        # The byte-mode asymmetry that protects small probes (DESIGN.md).
        queue = DropTailQueue(sim, capacity=600, mode=MODE_BYTES)
        queue.enqueue(make_packet(552))
        assert not queue.enqueue(make_packet(552))
        assert queue.enqueue(make_packet(40))

    def test_bytes_queued_tracks_content(self, sim):
        queue = DropTailQueue(sim, capacity=1000, mode=MODE_BYTES)
        queue.enqueue(make_packet(300))
        assert queue.bytes_queued == 300
        queue.dequeue()
        assert queue.bytes_queued == 0


class TestValidation:
    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            DropTailQueue(sim, capacity=0)

    def test_unknown_mode_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            DropTailQueue(sim, capacity=1, mode="liters")


class TestOccupancyStats:
    def test_time_weighted_occupancy(self):
        sim = Simulator()
        queue = DropTailQueue(sim, capacity=10)
        sim.call_at(0.0, lambda: queue.enqueue(make_packet()))
        sim.call_at(10.0, lambda: queue.dequeue())
        sim.run(until=20.0)
        # 10 s at occupancy 1, 10 s at 0 -> mean 0.5.
        assert queue.occupancy_packets.mean() == pytest.approx(0.5)


@settings(max_examples=60, deadline=None)
@given(capacity=st.integers(1, 20),
       operations=st.lists(st.one_of(st.just("deq"), st.integers(1, 1000)),
                           max_size=80))
def test_occupancy_never_exceeds_capacity(capacity, operations):
    """Invariant: whatever the op sequence, occupancy <= capacity."""
    sim = Simulator()
    queue = DropTailQueue(sim, capacity=capacity, mode=MODE_PACKETS)
    for op in operations:
        if op == "deq":
            queue.dequeue()
        else:
            queue.enqueue(make_packet(op))
        assert len(queue) <= capacity
    assert queue.arrivals == queue.drops + queue.departures + len(queue)


@settings(max_examples=60, deadline=None)
@given(capacity=st.integers(100, 5000),
       sizes=st.lists(st.integers(1, 1500), max_size=60))
def test_byte_mode_never_exceeds_capacity(capacity, sizes):
    """Byte-mode invariant: queued bytes <= capacity at all times."""
    sim = Simulator()
    queue = DropTailQueue(sim, capacity=capacity, mode=MODE_BYTES)
    for size in sizes:
        queue.enqueue(make_packet(size))
        assert queue.bytes_queued <= capacity
