"""Tests for the mini-TCP transport."""

import pytest

from repro.errors import ConfigurationError
from repro.net.faults import RandomDropFault
from repro.net.routing import Network
from repro.net.transport import (
    MiniTcpReceiver,
    MiniTcpSender,
    start_transfer,
)
from repro.sim import Simulator
from repro.units import kbps, mbps, ms


def two_hosts(sim, rate_bps=mbps(1), prop_delay=ms(10), capacity=32):
    network = Network(sim)
    network.add_host("a")
    network.add_host("b")
    network.link("a", "b", rate_bps=rate_bps, prop_delay=prop_delay,
                 queue_capacity=capacity)
    network.compute_routes()
    return network


class TestReliableDelivery:
    def test_lossless_transfer_completes(self, sim):
        network = two_hosts(sim)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=50)
        sim.run(until=60.0)
        assert sender.finished
        assert receiver.next_expected == 50
        assert sender.stats.retransmissions == 0

    def test_transfer_completes_despite_random_loss(self, sim):
        network = two_hosts(sim)
        fault = RandomDropFault(0.05, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=80)
        sim.run(until=300.0)
        assert sender.finished
        assert receiver.next_expected == 80
        assert sender.stats.retransmissions > 0

    def test_transfer_completes_despite_heavy_loss(self, sim):
        network = two_hosts(sim)
        fault = RandomDropFault(0.2, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=30)
        sim.run(until=600.0)
        assert sender.finished

    def test_finish_time_recorded(self, sim):
        network = two_hosts(sim)
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=10)
        sim.run(until=30.0)
        assert sender.finish_time is not None
        assert 0 < sender.finish_time <= 30.0


class TestCongestionControl:
    def test_slow_start_doubles_window(self, sim):
        network = two_hosts(sim, rate_bps=mbps(10))
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=40)
        sim.run(until=2.0)
        # With ~20 ms RTT and no loss, several RTTs of slow start have
        # multiplied cwnd well beyond its initial value.
        assert sender.finished or sender.cwnd >= 8.0

    def test_loss_halves_ssthresh_and_collapses_window(self, sim):
        network = two_hosts(sim, rate_bps=kbps(256), capacity=4)
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=300)
        sim.run(until=20.0)
        assert sender.stats.retransmissions > 0
        # ssthresh fell below the configured initial value of 32.
        assert sender.ssthresh < 32.0

    def test_throughput_bounded_by_bottleneck(self, sim):
        rate = kbps(256)
        network = two_hosts(sim, rate_bps=rate, capacity=16)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=200)
        sim.run(until=120.0)
        assert sender.finished
        elapsed = sender.finish_time
        goodput_bps = 200 * 512 * 8 / elapsed
        assert goodput_bps <= rate

    def test_backs_off_under_competing_load(self, sim):
        """The responsive behavior the open-loop sources lack."""
        from repro.traffic.deterministic import CBRSource
        from repro.traffic.base import TrafficSink
        network = two_hosts(sim, rate_bps=kbps(256), capacity=8)
        # Competing CBR claiming ~80% of the link from t=30.
        sink = TrafficSink(network.host("b"), port=9000)
        cbr = CBRSource(network.host("a"), "b", interval=0.022,
                        payload_bytes=512, port=9000)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=100_000)
        sim.run(until=30.0)
        delivered_before = receiver.next_expected
        cbr.start()
        sim.run(until=60.0)
        delivered_during = receiver.next_expected - delivered_before
        # TCP yields bandwidth to the aggressive flow.
        assert delivered_during < 0.7 * delivered_before
        sender.close()

    def test_rto_estimator_tracks_rtt(self, sim):
        network = two_hosts(sim, prop_delay=ms(100))
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=50)
        sim.run(until=30.0)
        assert sender._srtt is not None
        assert sender._srtt >= 0.2  # at least the physical RTT


from hypothesis import given, settings
from hypothesis import strategies as st


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), drop=st.floats(0.0, 0.3),
       segments=st.integers(1, 40))
def test_reliability_property(seed, drop, segments):
    """Whatever the (sub-saturation) loss rate, every byte arrives in
    order, exactly once, within a bounded time."""
    sim = Simulator(seed=seed)
    network = two_hosts(sim, rate_bps=mbps(1))
    if drop > 0:
        network.interface("a", "b").add_egress_fault(
            RandomDropFault(drop, sim.streams.get("loss")))
        network.interface("b", "a").add_egress_fault(
            RandomDropFault(drop, sim.streams.get("loss-acks")))
    sender, receiver = start_transfer(network.host("a"), network.host("b"),
                                      port=5000, total_segments=segments)
    # Generous horizon: at 30% loss each way the last segment alone can
    # need several retries at RTO-backoff spacing (up to 60 s apart).
    sim.run(until=3000.0)
    assert sender.finished
    assert receiver.next_expected == segments


class TestAccounting:
    """Regression tests for the retransmission/accounting bug cluster."""

    def test_goodput_equals_total_after_lossy_transfer(self, sim):
        # Every re-sent segment must count as a retransmission, so
        # distinct-segments-delivered comes out exactly right even when
        # recovery re-sends a run of segments.
        network = two_hosts(sim)
        fault = RandomDropFault(0.1, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=200)
        sim.run(until=600.0)
        assert sender.finished
        assert sender.stats.retransmissions > 0
        assert sender.stats.goodput_segments == 200
        assert receiver.next_expected == 200

    def test_send_times_pruned_on_cumulative_ack(self, sim):
        # Acked state must not accumulate across a long transfer: after
        # completion the in-flight bookkeeping is empty, not O(total).
        network = two_hosts(sim, rate_bps=mbps(10))
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=3000)
        sim.run(until=120.0)
        assert sender.finished
        assert len(sender._send_times) == 0
        assert len(sender._resent) == 0

    def test_bookkeeping_stays_bounded_under_loss(self, sim):
        network = two_hosts(sim, rate_bps=mbps(10))
        fault = RandomDropFault(0.02, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=2000)
        sim.run(until=600.0)
        assert sender.finished
        assert len(sender._send_times) == 0
        assert len(sender._resent) == 0

    def test_start_transfer_forwards_window_tuning(self, sim):
        network = two_hosts(sim, rate_bps=mbps(10))
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=400,
                                   initial_ssthresh=4.0, max_window=8.0)
        assert sender.ssthresh == 4.0
        assert sender.max_window == 8.0
        sim.run(until=60.0)
        assert sender.finished
        # The cap actually binds: cwnd may grow past it internally but
        # the effective window never exceeds max_window.
        assert min(sender.cwnd, sender.max_window) <= 8.0

    def test_receiver_counts_duplicate_segments(self, sim):
        network = two_hosts(sim)
        # Dropping ACKs (reverse path) forces the sender to re-send
        # segments the receiver already has.
        fault = RandomDropFault(0.15, sim.streams.get("loss"))
        network.interface("b", "a").add_egress_fault(fault)
        sender, receiver = start_transfer(network.host("a"),
                                          network.host("b"), port=5000,
                                          total_segments=150)
        sim.run(until=600.0)
        assert sender.finished
        assert receiver.duplicates > 0

    def test_lossless_transfer_sees_no_duplicates(self, sim):
        network = two_hosts(sim)
        _, receiver = start_transfer(network.host("a"), network.host("b"),
                                     port=5000, total_segments=100)
        sim.run(until=60.0)
        assert receiver.duplicates == 0

    def test_rto_recovers_after_backoff(self, sim):
        # RFC 6298: once a fresh ACK produces a valid RTT sample, the
        # RTO is recomputed from srtt/rttvar — exponential timeout
        # backoff must not stick for the rest of the transfer.
        network = two_hosts(sim)
        fault = RandomDropFault(0.1, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=300)
        sim.run(until=900.0)
        assert sender.finished
        assert sender.stats.timeouts > 0
        # ~20 ms RTT: the recomputed RTO sits at the 200 ms floor, far
        # below even one doubling of the initial 1 s timeout.
        assert sender._rto < 1.0

    def test_rtt_estimator_survives_retransmissions(self, sim):
        # Karn's rule: retransmitted segments must not feed ambiguous
        # RTT samples, so the smoothed RTT stays near the true ~20 ms
        # two-way latency even under heavy loss.
        network = two_hosts(sim)
        fault = RandomDropFault(0.15, sim.streams.get("loss"))
        network.interface("a", "b").add_egress_fault(fault)
        sender, _ = start_transfer(network.host("a"), network.host("b"),
                                   port=5000, total_segments=200)
        sim.run(until=900.0)
        assert sender.finished
        assert sender._srtt is not None
        assert sender._srtt < 0.5


class TestValidation:
    def test_sender_validation(self, sim):
        network = two_hosts(sim)
        with pytest.raises(ConfigurationError):
            MiniTcpSender(network.host("a"), "b", port=1,
                          total_segments=0)
        with pytest.raises(ConfigurationError):
            MiniTcpSender(network.host("a"), "b", port=1,
                          total_segments=1, segment_bytes=0)

    def test_close_releases_port(self, sim):
        network = two_hosts(sim)
        sender = MiniTcpSender(network.host("a"), "b", port=7777,
                               total_segments=5)
        sender.close()
        MiniTcpSender(network.host("a"), "b", port=7777, total_segments=5)
