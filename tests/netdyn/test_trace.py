"""Unit and property tests for ProbeTrace."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import LOST, ProbeTrace, npz_mapping


def make_trace(rtts, delta=0.05, **kwargs):
    return ProbeTrace.from_samples(delta=delta, rtts=rtts, **kwargs)


class TestBasics:
    def test_loss_convention(self):
        trace = make_trace([0.1, 0.0, 0.2, None])
        assert trace.lost.tolist() == [False, True, False, True]
        assert trace.loss_count == 2
        assert trace.loss_fraction == pytest.approx(0.5)

    def test_valid_rtts_excludes_losses(self):
        trace = make_trace([0.1, 0.0, 0.2])
        assert trace.valid_rtts.tolist() == [0.1, 0.2]

    def test_min_rtt(self):
        trace = make_trace([0.3, 0.0, 0.14, 0.2])
        assert trace.min_rtt() == pytest.approx(0.14)

    def test_min_rtt_all_lost(self):
        trace = make_trace([0.0, 0.0])
        with pytest.raises(InsufficientDataError):
            trace.min_rtt()

    def test_queueing_delays(self):
        trace = make_trace([0.14, 0.0, 0.24])
        delays = trace.queueing_delays()
        assert delays[0] == pytest.approx(0.0)
        assert np.isnan(delays[1])
        assert delays[2] == pytest.approx(0.1)

    def test_queueing_delays_custom_base(self):
        trace = make_trace([0.14, 0.24])
        delays = trace.queueing_delays(base_delay=0.1)
        assert delays[0] == pytest.approx(0.04)

    def test_send_times_spaced_by_delta(self):
        trace = make_trace([0.1] * 5, delta=0.02)
        assert np.allclose(np.diff(trace.send_times), 0.02)

    def test_slice(self):
        trace = make_trace([0.1, 0.0, 0.2, 0.3])
        part = trace.slice(1, 3)
        assert len(part) == 2
        assert part.rtts.tolist() == [0.0, 0.2]
        assert part.delta == trace.delta

    def test_len(self):
        assert len(make_trace([0.1, 0.2])) == 2


class TestValidation:
    def test_negative_rtt_rejected(self):
        with pytest.raises(AnalysisError):
            ProbeTrace(delta=0.05, send_times=np.array([0.0]),
                       rtts=np.array([-0.1]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(AnalysisError):
            ProbeTrace(delta=0.05, send_times=np.array([0.0, 0.05]),
                       rtts=np.array([0.1]))

    def test_nonpositive_delta_rejected(self):
        with pytest.raises(AnalysisError):
            ProbeTrace(delta=0.0, send_times=np.array([0.0]),
                       rtts=np.array([0.1]))


class TestPersistence:
    def test_csv_roundtrip(self, tmp_path):
        trace = make_trace([0.1, 0.0, 0.212345678], delta=0.02,
                           meta={"scenario": "test", "seed": 3})
        path = tmp_path / "trace.csv"
        trace.save_csv(path)
        loaded = ProbeTrace.load_csv(path)
        assert loaded.delta == pytest.approx(trace.delta)
        assert np.allclose(loaded.rtts, trace.rtts)
        assert np.allclose(loaded.send_times, trace.send_times)
        assert loaded.meta == trace.meta
        assert loaded.payload_bytes == trace.payload_bytes
        assert loaded.wire_bytes == trace.wire_bytes

    def test_json_roundtrip(self):
        trace = make_trace([0.1, 0.0], meta={"live": True})
        loaded = ProbeTrace.from_json(trace.to_json())
        assert np.allclose(loaded.rtts, trace.rtts)
        assert loaded.meta == {"live": True}

    def test_load_csv_missing_delta_infers_from_send_times(self, tmp_path):
        path = tmp_path / "bare.csv"
        path.write_text("n,send_time,rtt\n0,0.0,0.1\n1,0.025,0.2\n")
        loaded = ProbeTrace.load_csv(path)
        assert loaded.delta == pytest.approx(0.025)


class TestLoadCsvMalformedRows:
    """Malformed rows must raise AnalysisError naming the file and line.

    Regression: a short/long/non-numeric row used to die with a bare
    ``ValueError`` from tuple unpacking, with no hint where in the file
    the problem was.
    """

    def test_short_row(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("n,send_time,rtt\n0,0.0,0.1\n1,0.05\n")
        with pytest.raises(AnalysisError, match=r"short\.csv:3.*2"):
            ProbeTrace.load_csv(path)

    def test_long_row(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text("n,send_time,rtt\n0,0.0,0.1,extra\n")
        with pytest.raises(AnalysisError, match=r"long\.csv:2.*4"):
            ProbeTrace.load_csv(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "text.csv"
        path.write_text("n,send_time,rtt\n0,0.0,0.1\n1,0.05,oops\n")
        with pytest.raises(AnalysisError, match=r"text\.csv:3.*non-numeric"):
            ProbeTrace.load_csv(path)


class TestSaveCsvByteFormat:
    """The batched CSV writer must keep the historical byte format.

    Reference bytes are produced by the original per-row ``csv.writer``
    implementation, so any drift in terminators, field formatting, or
    header layout shows up as a byte diff (the golden-trace test pins the
    same property on a real simulated trace).
    """

    @staticmethod
    def _legacy_save_csv(trace, path):
        import csv
        import json as json_module
        with path.open("w", newline="") as handle:
            handle.write(f"# delta={trace.delta!r}\n")
            handle.write(f"# payload_bytes={trace.payload_bytes}\n")
            handle.write(f"# wire_bytes={trace.wire_bytes}\n")
            handle.write(
                f"# meta={json_module.dumps(trace.meta, sort_keys=True)}\n")
            writer = csv.writer(handle)
            writer.writerow(["n", "send_time", "rtt"])
            for n, (s, r) in enumerate(zip(trace.send_times, trace.rtts)):
                writer.writerow([n, f"{s:.9f}", f"{r:.9f}"])

    def test_matches_legacy_writer(self, tmp_path):
        trace = make_trace([0.1, 0.0, 0.12345678949, 3.0],
                           meta={"scenario": "x", "mu_bps": 128e3})
        trace.save_csv(tmp_path / "new.csv")
        self._legacy_save_csv(trace, tmp_path / "old.csv")
        assert (tmp_path / "new.csv").read_bytes() == \
            (tmp_path / "old.csv").read_bytes()

    def test_empty_trace_matches_legacy_writer(self, tmp_path):
        trace = ProbeTrace(delta=0.05, send_times=np.array([]),
                           rtts=np.array([]))
        trace.save_csv(tmp_path / "new.csv")
        self._legacy_save_csv(trace, tmp_path / "old.csv")
        assert (tmp_path / "new.csv").read_bytes() == \
            (tmp_path / "old.csv").read_bytes()

    def test_load_save_is_identity_on_disk(self, tmp_path):
        trace = make_trace([0.1, 0.0, 0.2], meta={"seed": 3})
        trace.save_csv(tmp_path / "a.csv")
        ProbeTrace.load_csv(tmp_path / "a.csv").save_csv(tmp_path / "b.csv")
        assert (tmp_path / "a.csv").read_bytes() == \
            (tmp_path / "b.csv").read_bytes()


class TestNpzPersistence:
    def test_roundtrip_bit_exact(self, tmp_path):
        trace = make_trace([0.1, 0.0, 1 / 3, 0.2],
                           meta={"scenario": "inria-umd", "seed": 7,
                                 "mu_bps": 128e3},
                           payload_bytes=64, wire_bytes=104)
        trace.save_npz(tmp_path / "t.npz")
        loaded = ProbeTrace.load_npz(tmp_path / "t.npz")
        # Binary columnar storage: no text round-trip, so bit equality.
        assert loaded.send_times.tobytes() == trace.send_times.tobytes()
        assert loaded.rtts.tobytes() == trace.rtts.tobytes()
        assert loaded.delta == trace.delta
        assert loaded.payload_bytes == 64
        assert loaded.wire_bytes == 104
        assert loaded.meta == trace.meta

    def test_extra_arrays_stored_and_ignored_by_loader(self, tmp_path):
        trace = make_trace([0.1, 0.2])
        trace.save_npz(tmp_path / "t.npz", extra={"cell": "payload"})
        with np.load(tmp_path / "t.npz") as data:
            assert str(data["cell"][()]) == "payload"
        assert len(ProbeTrace.load_npz(tmp_path / "t.npz")) == 2

    def test_extra_cannot_shadow_trace_fields(self, tmp_path):
        trace = make_trace([0.1])
        with pytest.raises(AnalysisError):
            trace.save_npz(tmp_path / "t.npz",
                           extra={"rtts": np.array([9.0])})

    def test_truncated_file_raises_analysis_error(self, tmp_path):
        trace = make_trace([0.1, 0.2])
        trace.save_npz(tmp_path / "t.npz")
        raw = (tmp_path / "t.npz").read_bytes()
        (tmp_path / "t.npz").write_bytes(raw[:len(raw) // 2])
        with pytest.raises(AnalysisError, match="t.npz"):
            ProbeTrace.load_npz(tmp_path / "t.npz")

    def test_garbage_file_raises_analysis_error(self, tmp_path):
        (tmp_path / "t.npz").write_bytes(b"garbage")
        with pytest.raises(AnalysisError, match="t.npz"):
            ProbeTrace.load_npz(tmp_path / "t.npz")

    def test_missing_file_raises_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            ProbeTrace.load_npz(tmp_path / "absent.npz")


@settings(max_examples=80, deadline=None)
@given(rtts=st.lists(
    st.one_of(st.just(0.0), st.floats(1e-4, 10.0)), min_size=1, max_size=50),
    delta=st.floats(1e-3, 1.0))
def test_npz_roundtrip_property(tmp_path_factory, rtts, delta):
    """save_npz -> load_npz is bit-exact on all trace contents."""
    trace = ProbeTrace.from_samples(delta=delta, rtts=rtts)
    path = tmp_path_factory.mktemp("npz") / "t.npz"
    trace.save_npz(path)
    loaded = ProbeTrace.load_npz(path)
    assert loaded.rtts.tobytes() == trace.rtts.tobytes()
    assert loaded.send_times.tobytes() == trace.send_times.tobytes()
    assert loaded.delta == trace.delta


@settings(max_examples=80, deadline=None)
@given(rtts=st.lists(
    st.one_of(st.just(0.0), st.floats(1e-4, 10.0)), min_size=1, max_size=50),
    delta=st.floats(1e-3, 1.0))
def test_csv_roundtrip_property(tmp_path_factory, rtts, delta):
    """save_csv -> load_csv is the identity on all trace contents."""
    trace = ProbeTrace.from_samples(delta=delta, rtts=rtts)
    path = tmp_path_factory.mktemp("traces") / "t.csv"
    trace.save_csv(path)
    loaded = ProbeTrace.load_csv(path)
    assert np.allclose(loaded.rtts, trace.rtts, atol=1e-9)
    assert loaded.loss_count == trace.loss_count


@settings(max_examples=80, deadline=None)
@given(rtts=st.lists(
    st.one_of(st.just(0.0), st.floats(1e-4, 10.0)), min_size=1, max_size=50))
def test_loss_fraction_bounds_property(rtts):
    """loss_fraction is always in [0, 1] and consistent with the mask."""
    trace = ProbeTrace.from_samples(delta=0.05, rtts=rtts)
    assert 0.0 <= trace.loss_fraction <= 1.0
    assert trace.loss_count + trace.received.sum() == len(trace)


class TestNpzMapping:
    """Memory-mapped npz reads must be value-identical to np.load."""

    def write_npz(self, path, compressed=False):
        arrays = {"send_times": np.arange(64) * 0.05,
                  "rtts": np.linspace(0.1, 0.4, 64),
                  "header": np.frombuffer(b'{"delta": 0.05}',
                                          dtype=np.uint8)}
        saver = np.savez_compressed if compressed else np.savez
        saver(path, **arrays)
        return arrays

    def test_mapped_arrays_match_np_load(self, tmp_path):
        path = tmp_path / "entry.npz"
        expected = self.write_npz(path)
        mapping = npz_mapping(path, mmap_mode="r")
        assert set(mapping) == set(expected)
        for key, value in expected.items():
            assert np.array_equal(mapping[key], value)

    def test_stored_members_are_memmaps(self, tmp_path):
        path = tmp_path / "entry.npz"
        self.write_npz(path)
        mapping = npz_mapping(path, mmap_mode="r")
        assert isinstance(mapping["send_times"], np.memmap)
        assert isinstance(mapping["rtts"], np.memmap)

    def test_compressed_members_fall_back_to_copies(self, tmp_path):
        path = tmp_path / "entry.npz"
        expected = self.write_npz(path, compressed=True)
        mapping = npz_mapping(path, mmap_mode="r")
        for key, value in expected.items():
            assert not isinstance(mapping[key], np.memmap)
            assert np.array_equal(mapping[key], value)

    def test_no_mmap_mode_reads_plainly(self, tmp_path):
        path = tmp_path / "entry.npz"
        expected = self.write_npz(path)
        mapping = npz_mapping(path)
        for key, value in expected.items():
            assert not isinstance(mapping[key], np.memmap)
            assert np.array_equal(mapping[key], value)

    def test_unreadable_archive_raises_analysis_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(AnalysisError):
            npz_mapping(path, mmap_mode="r")
