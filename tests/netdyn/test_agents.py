"""Integration tests for the NetDyn source/echo agents over the simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.clocks import QuantizedClock
from repro.net.faults import RandomDropFault
from repro.netdyn.echo import ECHO_PORT, EchoAgent
from repro.netdyn.session import run_probe_experiment
from repro.netdyn.source import SINK_PORT, SourceAgent
from repro.topology.presets import build_single_bottleneck
from repro.units import kbps, ms


def make_net(**kwargs):
    return build_single_bottleneck(seed=3, rate_bps=kbps(128),
                                   prop_delay=ms(50), **kwargs)


class TestProbeRoundTrip:
    def test_all_probes_return_on_idle_path(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=50)
        assert trace.loss_fraction == 0.0
        assert len(trace) == 50

    def test_rtt_close_to_physical_delay(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=20)
        # Two transatlantic crossings at 50 ms plus serialization.
        assert 0.1 <= trace.min_rtt() <= 0.12

    def test_rtt_constant_on_idle_path(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=20)
        assert np.ptp(trace.valid_rtts) < 1e-9

    def test_duration_interface(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.1, duration=5.0)
        assert len(trace) == 50

    def test_count_and_duration_mutually_exclusive(self):
        scenario = make_net()
        with pytest.raises(ConfigurationError):
            run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.1, count=10,
                                 duration=5.0)
        with pytest.raises(ConfigurationError):
            run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.1)

    def test_meta_recorded(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=5,
                                     meta={"tag": "x"})
        assert trace.meta["tag"] == "x"
        assert trace.meta["source"] == scenario.source
        assert trace.meta["echo"] == scenario.echo


class TestLossAccounting:
    def test_dropped_probes_marked_lost(self):
        scenario = make_net()
        fault = RandomDropFault(1.0, scenario.sim.streams.get("kill"))
        scenario.bottleneck_fwd.add_egress_fault(fault)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=30)
        assert trace.loss_fraction == 1.0

    def test_partial_loss(self):
        scenario = make_net()
        fault = RandomDropFault(0.5, scenario.sim.streams.get("half"))
        scenario.bottleneck_fwd.add_egress_fault(fault)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=400)
        assert 0.35 <= trace.loss_fraction <= 0.65


class TestClockEffects:
    def test_quantized_clock_quantizes_rtts(self):
        scenario = make_net()
        host = scenario.network.host(scenario.source)
        host.clock = QuantizedClock(scenario.sim, resolution=0.004)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=20)
        # rtt = quantized(recv) - quantized(send): multiples of 4 ms.
        remainders = np.mod(trace.valid_rtts, 0.004)
        assert np.all((remainders < 1e-9) | (remainders > 0.004 - 1e-9))

    def test_clock_resolution_in_meta(self):
        scenario = make_net()
        host = scenario.network.host(scenario.source)
        host.clock = QuantizedClock(scenario.sim, resolution=0.004)
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=5)
        assert trace.meta["clock_resolution"] == pytest.approx(0.004)


class TestReordering:
    def test_fifo_path_never_reorders(self):
        scenario = make_net()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05, count=100)
        assert trace.meta["reordered"] == 0

    def test_route_flap_causes_reordering(self):
        """Probes in flight on the long path are overtaken by probes sent
        later on the short path — the reordering [19] correlates with
        route changes."""
        from repro.net.faults import RouteFlapFault
        from repro.net.routing import Network
        from repro.sim import Simulator
        from repro.units import mbps

        sim = Simulator(seed=4)
        network = Network(sim)
        network.add_host("src")
        network.add_host("echo")
        network.add_router("short")
        network.add_router("long")
        network.link("src", "short", rate_bps=mbps(10), prop_delay=ms(1))
        network.link("short", "echo", rate_bps=mbps(10), prop_delay=ms(1))
        network.link("src", "long", rate_bps=mbps(10), prop_delay=ms(200))
        network.link("long", "echo", rate_bps=mbps(10), prop_delay=ms(200))
        network.compute_routes()
        network.node("src").set_next_hop("echo", "long")
        flap = RouteFlapFault(sim, network.node("src"), destination="echo",
                              primary_peer="long", backup_peer="short",
                              period=0.5)
        flap.install()
        trace = run_probe_experiment(network, "src", "echo", delta=0.05,
                                     count=200)
        assert trace.meta["reordered"] > 0


class TestAgentsDirectly:
    def test_source_agent_validation(self):
        scenario = make_net()
        host = scenario.network.host(scenario.source)
        with pytest.raises(ConfigurationError):
            SourceAgent(host, scenario.echo, ECHO_PORT, delta=0.0, count=10)
        with pytest.raises(ConfigurationError):
            SourceAgent(host, scenario.echo, ECHO_PORT, delta=0.1, count=0)

    def test_echo_agent_counts(self):
        scenario = make_net()
        source_host = scenario.network.host(scenario.source)
        echo_host = scenario.network.host(scenario.echo)
        agent = SourceAgent(source_host, scenario.echo, ECHO_PORT,
                            delta=0.05, count=10)
        echoer = EchoAgent(echo_host, destination=scenario.source,
                           destination_port=SINK_PORT)
        agent.start()
        scenario.sim.run(until=5.0)
        assert echoer.echoed == 10
        assert agent.trace().loss_fraction == 0.0

    def test_ports_released_after_close(self):
        scenario = make_net()
        source_host = scenario.network.host(scenario.source)
        agent = SourceAgent(source_host, scenario.echo, ECHO_PORT,
                            delta=0.05, count=1)
        agent.close()
        # Rebinding must now succeed.
        SourceAgent(source_host, scenario.echo, ECHO_PORT, delta=0.05,
                    count=1)
