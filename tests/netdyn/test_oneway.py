"""Tests for one-way measurements and the clock-synchronization problem."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.net.clocks import SkewedClock
from repro.net.routing import Network
from repro.netdyn.oneway import run_one_way_experiment
from repro.netdyn.session import run_probe_experiment
from repro.sim import Simulator
from repro.units import kbps, mbps, ms


def three_hosts(sim):
    """src -- echo -- dst, so forwarded probes travel a real second leg."""
    network = Network(sim)
    for name in ("src", "echo", "dst"):
        network.add_host(name)
    network.link("src", "echo", rate_bps=mbps(1), prop_delay=ms(10))
    network.link("echo", "dst", rate_bps=mbps(1), prop_delay=ms(15))
    network.compute_routes()
    return network


class TestOneWay:
    def test_synchronized_clocks_measure_true_delay(self):
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        trace = run_one_way_experiment(network, "src", "echo", "dst",
                                       delta=0.05, count=50)
        assert trace.loss_fraction == 0.0
        assert trace.meta["one_way"] is True
        # 25 ms propagation plus two serializations of ~0.6 ms.
        assert 0.025 <= trace.min_rtt() <= 0.03

    def test_constant_offset_pollutes_levels_not_differences(self):
        """Why the paper sources and sinks on the same host: absolute
        one-way delays absorb the clock offset, but the differences that
        feed equation (6) cancel it exactly."""
        offset = 7.0  # destination clock is 7 s ahead

        def measure(with_offset):
            sim = Simulator(seed=1)
            network = three_hosts(sim)
            if with_offset:
                network.host("dst").clock = SkewedClock(sim, offset=offset)
            return run_one_way_experiment(network, "src", "echo", "dst",
                                          delta=0.05, count=50)

        honest = measure(False)
        skewed = measure(True)
        # Levels differ by the offset (modulo the nonnegativity shift).
        shift = skewed.meta.get("offset_shift", 0.0)
        assert (skewed.rtts[0] - shift) - honest.rtts[0] == \
            pytest.approx(offset, abs=1e-6)
        # Differences are identical.
        assert np.allclose(np.diff(skewed.rtts), np.diff(honest.rtts),
                           atol=1e-9)

    def test_negative_readings_shifted_with_record(self):
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        network.host("dst").clock = SkewedClock(sim, offset=-3.0)
        trace = run_one_way_experiment(network, "src", "echo", "dst",
                                       delta=0.05, count=20)
        assert "offset_shift" in trace.meta
        assert np.all(trace.rtts[trace.received] >= 0)

    def test_drift_corrupts_even_differences(self):
        """Clock skew (frequency error) biases consecutive differences —
        the failure mode even differencing cannot fix."""
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        network.host("dst").clock = SkewedClock(sim, skew=0.01)
        drifted = run_one_way_experiment(network, "src", "echo", "dst",
                                         delta=0.05, count=50)
        # Idle network: true delay constant, so differences should be ~0;
        # with 1% skew each 50 ms interval adds ~0.5 ms of phantom delay.
        gaps = np.diff(drifted.rtts)
        assert np.median(gaps) == pytest.approx(0.0005, rel=0.05)

    def test_losses_marked(self):
        from repro.net.faults import RandomDropFault
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        network.interface("echo", "dst").add_egress_fault(
            RandomDropFault(1.0, sim.streams.get("kill")))
        trace = run_one_way_experiment(network, "src", "echo", "dst",
                                       delta=0.05, count=20)
        assert trace.loss_fraction == 1.0

    def test_round_trip_configuration_rejected(self):
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        with pytest.raises(ConfigurationError):
            run_one_way_experiment(network, "src", "echo", "src",
                                   delta=0.05, count=10)

    def test_matches_round_trip_when_clocks_perfect(self):
        """Sanity: one-way src->echo->dst plus dst->echo->src legs should
        bracket the round-trip measurement on an idle network."""
        sim = Simulator(seed=1)
        network = three_hosts(sim)
        one_way = run_one_way_experiment(network, "src", "echo", "dst",
                                         delta=0.05, count=20)
        sim2 = Simulator(seed=1)
        network2 = three_hosts(sim2)
        round_trip = run_probe_experiment(network2, "src", "echo",
                                          delta=0.05, count=20)
        # src->echo->src covers the src-echo link twice; the one-way path
        # covers src-echo plus echo-dst.  Both share the src-echo leg.
        assert one_way.min_rtt() > 0.5 * round_trip.min_rtt()
