"""Unit and property tests for the NetDyn probe wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PacketFormatError
from repro.netdyn import packetfmt


class TestEncodeDecode:
    def test_roundtrip_all_fields(self):
        payload = packetfmt.encode_probe(42, source_time=1.5, echo_time=2.25,
                                         destination_time=3.125)
        header = packetfmt.decode_probe(payload)
        assert header.seq == 42
        assert header.source_time == pytest.approx(1.5)
        assert header.echo_time == pytest.approx(2.25)
        assert header.destination_time == pytest.approx(3.125)

    def test_unset_timestamps_decode_to_none(self):
        payload = packetfmt.encode_probe(1, source_time=0.5)
        header = packetfmt.decode_probe(payload)
        assert header.echo_time is None
        assert header.destination_time is None

    def test_payload_length(self):
        assert len(packetfmt.encode_probe(0)) == \
            packetfmt.PROBE_PAYLOAD_BYTES
        assert len(packetfmt.encode_probe(0, payload_bytes=100)) == 100

    def test_microsecond_resolution(self):
        payload = packetfmt.encode_probe(0, source_time=0.123456789)
        header = packetfmt.decode_probe(payload)
        assert header.source_time == pytest.approx(0.123457, abs=1e-6)

    def test_zero_timestamp_valid(self):
        header = packetfmt.decode_probe(
            packetfmt.encode_probe(0, source_time=0.0))
        assert header.source_time == 0.0


class TestStamping:
    def test_stamp_echo_preserves_others(self):
        payload = packetfmt.encode_probe(9, source_time=1.0)
        stamped = packetfmt.stamp_echo_time(payload, 2.0)
        header = packetfmt.decode_probe(stamped)
        assert header.seq == 9
        assert header.source_time == pytest.approx(1.0)
        assert header.echo_time == pytest.approx(2.0)
        assert header.destination_time is None

    def test_stamp_destination(self):
        payload = packetfmt.encode_probe(9, source_time=1.0, echo_time=2.0)
        stamped = packetfmt.stamp_destination_time(payload, 3.0)
        header = packetfmt.decode_probe(stamped)
        assert header.destination_time == pytest.approx(3.0)
        assert header.echo_time == pytest.approx(2.0)

    def test_stamp_preserves_length(self):
        payload = packetfmt.encode_probe(1, payload_bytes=64)
        assert len(packetfmt.stamp_echo_time(payload, 1.0)) == 64


class TestValidation:
    def test_payload_too_small(self):
        with pytest.raises(PacketFormatError):
            packetfmt.encode_probe(0, payload_bytes=10)

    def test_sequence_out_of_range(self):
        with pytest.raises(PacketFormatError):
            packetfmt.encode_probe(-1)
        with pytest.raises(PacketFormatError):
            packetfmt.encode_probe(2 ** 32)

    def test_negative_timestamp(self):
        with pytest.raises(PacketFormatError):
            packetfmt.encode_probe(0, source_time=-1.0)

    def test_timestamp_overflow(self):
        with pytest.raises(PacketFormatError):
            packetfmt.encode_probe(0, source_time=2.0 ** 48 / 1e6)

    def test_decode_short_payload(self):
        with pytest.raises(PacketFormatError):
            packetfmt.decode_probe(b"short")


@settings(max_examples=200, deadline=None)
@given(seq=st.integers(0, 2 ** 32 - 1),
       source=st.one_of(st.none(), st.floats(0, 1e6)),
       echo=st.one_of(st.none(), st.floats(0, 1e6)),
       dest=st.one_of(st.none(), st.floats(0, 1e6)),
       size=st.integers(packetfmt.MIN_PAYLOAD_BYTES, 512))
def test_roundtrip_property(seq, source, echo, dest, size):
    """Encode -> decode preserves all fields to microsecond precision."""
    payload = packetfmt.encode_probe(seq, source_time=source, echo_time=echo,
                                     destination_time=dest,
                                     payload_bytes=size)
    assert len(payload) == size
    header = packetfmt.decode_probe(payload)
    assert header.seq == seq
    for original, decoded in ((source, header.source_time),
                              (echo, header.echo_time),
                              (dest, header.destination_time)):
        if original is None:
            assert decoded is None
        else:
            assert decoded == pytest.approx(original, abs=1e-6)


class TestQuantizeStamps:
    """The vectorized quantizer must match the scalar, element for element."""

    @given(st.lists(st.floats(min_value=0.0, max_value=200_000.0),
                    min_size=0, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_quantize(self, values):
        batched = packetfmt.quantize_stamps(values)
        expected = [packetfmt.quantize_stamp(value) for value in values]
        assert list(batched) == expected

    def test_half_even_rounding_agrees(self):
        # Exact .5-microsecond readings exercise banker's rounding.
        values = [0.0000005, 0.0000015, 0.0000025, 1.0000005]
        assert list(packetfmt.quantize_stamps(values)) == \
            [packetfmt.quantize_stamp(value) for value in values]

    def test_negative_raises_like_scalar(self):
        with pytest.raises(PacketFormatError):
            packetfmt.quantize_stamp(-1.0)
        with pytest.raises(PacketFormatError):
            packetfmt.quantize_stamps([0.5, -1.0])

    def test_overflow_raises_like_scalar(self):
        huge = 300_000_000.0  # microsecond count beyond the 48-bit field
        with pytest.raises(PacketFormatError):
            packetfmt.quantize_stamp(huge)
        with pytest.raises(PacketFormatError):
            packetfmt.quantize_stamps([0.5, huge])

    def test_empty_input(self):
        assert packetfmt.quantize_stamps([]).size == 0
