"""Tests for the live (real-socket) NetDyn implementation on loopback."""

import asyncio

import pytest

from repro.errors import ConfigurationError
from repro.netdyn.live import EchoServerProtocol, probe, serve_echo

#: Loopback port range for these tests; chosen to avoid common services.
BASE_PORT = 15201


def run(coro):
    return asyncio.run(coro)


class TestLiveLoopback:
    def test_probe_round_trip(self):
        async def scenario():
            transport, protocol = await serve_echo("127.0.0.1", BASE_PORT)
            try:
                trace = await probe("127.0.0.1", BASE_PORT, delta=0.005,
                                    count=40, drain=0.3)
            finally:
                transport.close()
            return trace, protocol

        trace, protocol = run(scenario())
        assert len(trace) == 40
        assert protocol.echoed >= 38  # loopback may be busy; allow slack
        assert trace.loss_fraction <= 0.05
        assert float(trace.valid_rtts.min()) > 0.0
        assert float(trace.valid_rtts.max()) < 0.25

    def test_unanswered_probes_are_losses(self):
        async def scenario():
            # No echo server: every probe is lost.
            return await probe("127.0.0.1", BASE_PORT + 1, delta=0.005,
                               count=10, drain=0.1)

        trace = run(scenario())
        assert trace.loss_fraction == 1.0

    def test_trace_metadata(self):
        async def scenario():
            transport, _ = await serve_echo("127.0.0.1", BASE_PORT + 2)
            try:
                return await probe("127.0.0.1", BASE_PORT + 2, delta=0.005,
                                   count=5, drain=0.2, meta={"path": "lo"})
            finally:
                transport.close()

        trace = run(scenario())
        assert trace.meta["live"] is True
        assert trace.meta["path"] == "lo"
        assert trace.meta["target"].endswith(str(BASE_PORT + 2))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run(probe("127.0.0.1", BASE_PORT, delta=0.0, count=1))
        with pytest.raises(ConfigurationError):
            run(probe("127.0.0.1", BASE_PORT, delta=0.01, count=0))

    def test_echo_server_ignores_garbage(self):
        async def scenario():
            transport, protocol = await serve_echo("127.0.0.1",
                                                   BASE_PORT + 3)
            loop = asyncio.get_running_loop()
            client, _ = await loop.create_datagram_endpoint(
                asyncio.DatagramProtocol,
                remote_addr=("127.0.0.1", BASE_PORT + 3))
            client.sendto(b"not a probe")
            await asyncio.sleep(0.1)
            client.close()
            transport.close()
            return protocol

        protocol = run(scenario())
        assert protocol.echoed == 0
