"""Tests for campaign statistics (intervals, replication)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import (
    mean_interval,
    replicate,
    wilson_interval,
)
from repro.errors import AnalysisError, InsufficientDataError


class TestWilson:
    def test_contains_true_proportion_typically(self, rng):
        # Coverage check: ~95% of intervals should contain p.
        p = 0.1
        hits = 0
        for _ in range(300):
            k = rng.binomial(500, p)
            if wilson_interval(int(k), 500).contains(p):
                hits += 1
        assert hits >= 270  # ≥90% observed coverage at nominal 95%

    def test_zero_successes(self):
        interval = wilson_interval(0, 100)
        assert interval.estimate == 0.0
        assert interval.low == 0.0
        assert interval.high > 0.0

    def test_all_successes(self):
        interval = wilson_interval(100, 100)
        assert interval.high == 1.0
        assert interval.low < 1.0

    def test_narrows_with_more_trials(self):
        small = wilson_interval(10, 100)
        large = wilson_interval(100, 1000)
        assert large.width < small.width

    def test_confidence_affects_width(self):
        loose = wilson_interval(10, 100, confidence=0.8)
        tight = wilson_interval(10, 100, confidence=0.99)
        assert tight.width > loose.width

    def test_validation(self):
        with pytest.raises(AnalysisError):
            wilson_interval(1, 0)
        with pytest.raises(AnalysisError):
            wilson_interval(5, 4)
        with pytest.raises(AnalysisError):
            wilson_interval(1, 10, confidence=1.0)

    def test_str(self):
        assert "@95%" in str(wilson_interval(10, 100))


class TestMeanInterval:
    def test_contains_sample_mean(self):
        interval = mean_interval([1.0, 2.0, 3.0, 4.0])
        assert interval.contains(2.5)
        assert interval.estimate == pytest.approx(2.5)

    def test_constant_samples_zero_width(self):
        interval = mean_interval([3.0, 3.0, 3.0])
        assert interval.width == 0.0

    def test_validation(self):
        with pytest.raises(InsufficientDataError):
            mean_interval([1.0])
        with pytest.raises(AnalysisError):
            mean_interval([1.0, 2.0], confidence=0.0)


@settings(max_examples=80, deadline=None)
@given(successes=st.integers(0, 100))
def test_wilson_bounds_property(successes):
    """Interval always within [0, 1] and straddles the point estimate."""
    interval = wilson_interval(successes, 100)
    assert 0.0 <= interval.low <= interval.estimate <= interval.high <= 1.0


class TestReplicate:
    def test_collects_per_seed_metrics(self):
        summary = replicate(lambda seed: {"x": float(seed), "y": 1.0},
                            seeds=[1, 2, 3])
        assert summary.values["x"] == [1.0, 2.0, 3.0]
        assert summary.values["y"] == [1.0, 1.0, 1.0]
        assert summary.seeds == [1, 2, 3]

    def test_interval_over_metric(self):
        summary = replicate(lambda seed: {"x": float(seed)},
                            seeds=[1, 2, 3, 4])
        interval = summary.interval("x")
        assert interval.estimate == pytest.approx(2.5)

    def test_unknown_metric(self):
        summary = replicate(lambda seed: {"x": 1.0}, seeds=[1])
        with pytest.raises(AnalysisError):
            summary.interval("ghost")

    def test_inconsistent_keys_rejected(self):
        def flaky(seed):
            return {"x": 1.0} if seed == 1 else {"y": 1.0}

        with pytest.raises(AnalysisError):
            replicate(flaky, seeds=[1, 2])

    def test_no_seeds_rejected(self):
        with pytest.raises(AnalysisError):
            replicate(lambda seed: {"x": 1.0}, seeds=[])

    def test_table_renders(self):
        summary = replicate(lambda seed: {"ulp": 0.1 * seed}, seeds=[1, 2])
        assert "ulp" in summary.table()
        assert "n=2" in summary.table()

    def test_precomputed_mapping(self):
        # The parallel-campaign path: metrics computed elsewhere, possibly
        # out of order, aggregated in seed order here.
        precomputed = {3: {"x": 3.0}, 1: {"x": 1.0}, 2: {"x": 2.0}}
        summary = replicate(precomputed, seeds=[1, 2, 3])
        assert summary.values["x"] == [1.0, 2.0, 3.0]
        assert summary.seeds == [1, 2, 3]

    def test_precomputed_mapping_matches_callable(self):
        fn = lambda seed: {"x": float(seed) ** 2}  # noqa: E731
        seeds = [2, 5, 7]
        from_fn = replicate(fn, seeds)
        from_map = replicate({s: fn(s) for s in seeds}, seeds)
        assert from_fn.values == from_map.values
        assert from_fn.seeds == from_map.seeds

    def test_precomputed_mapping_missing_seed_rejected(self):
        with pytest.raises(AnalysisError, match="missing seeds"):
            replicate({1: {"x": 1.0}}, seeds=[1, 2])

    def test_precomputed_mapping_inconsistent_keys_rejected(self):
        with pytest.raises(AnalysisError):
            replicate({1: {"x": 1.0}, 2: {"y": 1.0}}, seeds=[1, 2])
