"""Tests for time-series statistics on delay traces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import timeseries as timeseries_module
from repro.analysis.timeseries import (
    autocorrelation,
    autocorrelation_sums,
    delay_change_rate,
    moving_average,
    periodic_spike_period,
    periodogram,
    spike_clusters,
    summarize,
)
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def trace_of(rtts, delta=0.05):
    return ProbeTrace.from_samples(delta=delta, rtts=rtts)


def loop_reference_sums(centered, max_lag):
    """The retired scalar loop, kept as the equivalence oracle."""
    n = len(centered)
    sums = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        sums[lag] = np.dot(centered[:n - lag], centered[lag:])
    return sums


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize(trace_of([0.1, 0.2, 0.3, 0.0]))
        assert summary.count == 3
        assert summary.mean == pytest.approx(0.2)
        assert summary.minimum == pytest.approx(0.1)
        assert summary.maximum == pytest.approx(0.3)
        assert summary.median == pytest.approx(0.2)

    def test_percentiles_ordered(self):
        rng = np.random.default_rng(3)
        summary = summarize(trace_of((0.1 + rng.random(500) * 0.2).tolist()))
        assert summary.minimum <= summary.median <= summary.p90 \
            <= summary.p99 <= summary.maximum

    def test_empty_raises(self):
        with pytest.raises(InsufficientDataError):
            summarize(trace_of([0.0, 0.0]))

    def test_single_sample_std(self):
        assert summarize(trace_of([0.1])).std == 0.0


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(4)
        trace = trace_of((0.1 + rng.random(200) * 0.1).tolist())
        acf = autocorrelation(trace, max_lag=5)
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_series_has_periodic_acf(self):
        rtts = [0.1 + 0.05 * (i % 10 == 0) for i in range(400)]
        acf = autocorrelation(trace_of(rtts), max_lag=20)
        assert acf[10] > acf[5]
        assert acf[20] > acf[15]

    def test_white_noise_acf_small(self):
        rng = np.random.default_rng(5)
        trace = trace_of((0.1 + rng.random(2000) * 0.01).tolist())
        acf = autocorrelation(trace, max_lag=10)
        assert np.all(np.abs(acf[1:]) < 0.1)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            autocorrelation(trace_of([0.1] * 50), max_lag=0)
        with pytest.raises(InsufficientDataError):
            autocorrelation(trace_of([0.1] * 5), max_lag=10)
        with pytest.raises(InsufficientDataError):
            autocorrelation(trace_of([0.1] * 50), max_lag=5)  # constant

    def test_too_many_losses_rejected(self):
        rtts = [0.1, 0.0] * 50  # 50% losses
        with pytest.raises(InsufficientDataError):
            autocorrelation(trace_of(rtts + [0.0]), max_lag=5)


class TestAutocorrelationSums:
    """The vectorized lag-sum kernel must match the scalar loop exactly.

    ``autocorrelation_sums`` replaced a per-lag Python loop with
    ``np.correlate`` (short series) and an FFT path (long series); both
    routes are held to the retired loop as the oracle.
    """

    @given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                     allow_nan=False, width=32),
                           min_size=2, max_size=64),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_correlate_path_matches_loop(self, values, data):
        series = np.array(values, dtype=float)
        centered = series - series.mean()
        max_lag = data.draw(st.integers(0, len(series) - 1))
        got = autocorrelation_sums(centered, max_lag)
        want = loop_reference_sums(centered, max_lag)
        assert got.shape == (max_lag + 1,)
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6)

    @given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                     allow_nan=False, width=32),
                           min_size=2, max_size=64),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_fft_path_matches_loop(self, values, data):
        series = np.array(values, dtype=float)
        centered = series - series.mean()
        max_lag = data.draw(st.integers(0, len(series) - 1))
        # Force the FFT branch regardless of series length (a plain
        # monkeypatch fixture is function-scoped, which hypothesis
        # rejects inside @given).
        with pytest.MonkeyPatch.context() as patch:
            patch.setattr(timeseries_module, "_FFT_MIN_SIZE", 1)
            got = autocorrelation_sums(centered, max_lag)
        want = loop_reference_sums(centered, max_lag)
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6)

    def test_long_series_takes_fft_path(self):
        # Above the crossover the FFT route runs for real (no
        # monkeypatching) and must still reproduce the loop.
        rng = np.random.default_rng(11)
        centered = rng.normal(size=5000)
        centered -= centered.mean()
        got = autocorrelation_sums(centered, max_lag=40)
        want = loop_reference_sums(centered, max_lag=40)
        assert np.allclose(got, want, rtol=1e-10)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            autocorrelation_sums(np.zeros(4), max_lag=-1)
        with pytest.raises(AnalysisError):
            autocorrelation_sums(np.zeros(4), max_lag=4)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        rtts = [0.1, 0.2, 0.3]
        assert moving_average(trace_of(rtts), window=1).tolist() == \
            pytest.approx(rtts)

    def test_smooths_spikes(self):
        rtts = [0.1] * 10 + [1.0] + [0.1] * 10
        smoothed = moving_average(trace_of(rtts), window=5)
        assert smoothed.max() < 1.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            moving_average(trace_of([0.1] * 10), window=0)


class TestPeriodogram:
    def test_detects_injected_period(self):
        # 2-second period sampled at delta = 0.1 s.
        n, delta, period = 1000, 0.1, 2.0
        t = np.arange(n) * delta
        rtts = 0.15 + 0.05 * np.sin(2 * np.pi * t / period)
        spectrum = periodogram(trace_of(rtts.tolist(), delta=delta))
        assert spectrum.dominant_period() == pytest.approx(period, rel=0.05)

    def test_interpolates_occasional_losses(self):
        n, delta, period = 1000, 0.1, 2.0
        t = np.arange(n) * delta
        rtts = 0.15 + 0.05 * np.sin(2 * np.pi * t / period)
        rtts[::17] = 0.0  # ~6% losses
        spectrum = periodogram(trace_of(rtts.tolist(), delta=delta))
        assert spectrum.dominant_period() == pytest.approx(period, rel=0.05)


class TestSpikes:
    def test_cluster_extraction(self):
        rtts = [0.1] * 100
        for start in (10, 50, 90):
            for i in range(3):
                rtts[start + i] = 2.0
        trace = trace_of(rtts, delta=1.0)
        clusters = spike_clusters(trace, threshold=1.0, guard=5.0)
        assert clusters.tolist() == [10.0, 50.0, 90.0]

    def test_periodic_spike_period(self):
        rtts = [0.1] * 100
        for start in (10, 50, 90):
            rtts[start] = 2.0
        trace = trace_of(rtts, delta=1.0)
        assert periodic_spike_period(trace, threshold=1.0) == \
            pytest.approx(40.0)

    def test_no_spikes(self):
        trace = trace_of([0.1] * 10)
        assert len(spike_clusters(trace, threshold=1.0)) == 0
        with pytest.raises(InsufficientDataError):
            periodic_spike_period(trace, threshold=1.0)

    def test_long_cluster_not_split(self):
        # Regression: a single fault lasting 3x the guard interval used to
        # be split into several clusters because each spike was compared
        # against the cluster's *start* instead of the most recent spike.
        guard = 5.0
        rtts = [0.1] * 100
        for i in range(20, 35):  # one 15 s fault (3 * guard), spikes 1 s apart
            rtts[i] = 2.0
        rtts[60] = 2.0  # a separate later fault
        trace = trace_of(rtts, delta=1.0)
        clusters = spike_clusters(trace, threshold=1.0, guard=guard)
        assert clusters.tolist() == [20.0, 60.0]

    def test_long_cluster_period_not_inflated(self):
        # The same regression inflated periodic_spike_period: two 15 s
        # faults 50 s apart must yield a 50 s period, not the intra-fault
        # spike spacing.
        rtts = [0.1] * 120
        for start in (10, 60):
            for i in range(start, start + 15):
                rtts[i] = 2.0
        trace = trace_of(rtts, delta=1.0)
        assert periodic_spike_period(trace, threshold=1.0, guard=5.0) == \
            pytest.approx(50.0)

    def test_guard_validation(self):
        with pytest.raises(AnalysisError):
            spike_clusters(trace_of([0.1]), threshold=1.0, guard=0.0)


class TestChangeRate:
    def test_stable_series(self):
        assert delay_change_rate(trace_of([0.1] * 20),
                                 threshold=0.01) == 0.0

    def test_volatile_series(self):
        rtts = [0.1, 0.3] * 20
        assert delay_change_rate(trace_of(rtts), threshold=0.1) == 1.0

    def test_no_pairs(self):
        with pytest.raises(InsufficientDataError):
            delay_change_rate(trace_of([0.1, 0.0, 0.1]), threshold=0.01)


class TestOnRealSimulation:
    def test_loaded_trace_summary_sane(self, loaded_trace):
        summary = summarize(loaded_trace)
        assert 0.13 <= summary.minimum <= 0.16
        assert summary.mean < 0.6
        assert summary.maximum < 1.5

    def test_queueing_delays_positively_correlated(self, loaded_trace):
        acf = autocorrelation(loaded_trace, max_lag=3)
        assert acf[1] > 0.3  # consecutive probes see similar queues
