"""Tests for probe-compression episode detection."""

import numpy as np
import pytest

from repro.analysis.compression import detect_compression
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace

MU = 128e3
SERVICE = 576.0 / MU  # 4.5 ms
DELTA = 0.02


def trace_with_episodes(episode_lengths, spacer=5, base=2.0):
    """Compression runs of the given lengths separated by flat stretches."""
    rtts = [base]
    for length in episode_lengths:
        for _ in range(length):
            rtts.append(rtts[-1] + SERVICE - DELTA)
        for _ in range(spacer):
            rtts.append(rtts[-1])  # flat: not compression (offset 0)
    return ProbeTrace.from_samples(delta=DELTA, rtts=rtts, wire_bytes=72)


class TestDetection:
    def test_counts_episodes(self):
        trace = trace_with_episodes([3, 1, 4])
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        assert report.episode_count == 3
        assert [e.length for e in report.episodes] == [3, 1, 4]

    def test_episode_probe_counts(self):
        trace = trace_with_episodes([2, 2])
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        # An episode of k compressed pairs spans k+1 probes.
        assert report.mean_episode_probes == pytest.approx(3.0)

    def test_pair_fraction(self):
        trace = trace_with_episodes([4], spacer=4)
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        assert report.pair_fraction == pytest.approx(4 / 8)

    def test_no_compression(self):
        rtts = [0.14] * 20
        trace = ProbeTrace.from_samples(delta=DELTA, rtts=rtts,
                                        wire_bytes=72)
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        assert report.episode_count == 0
        assert report.mean_episode_probes == 0.0

    def test_trailing_episode_closed(self):
        rtts = [2.0]
        for _ in range(3):
            rtts.append(rtts[-1] + SERVICE - DELTA)
        trace = ProbeTrace.from_samples(delta=DELTA, rtts=rtts,
                                        wire_bytes=72)
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        assert report.episode_count == 1
        assert report.episodes[0].length == 3

    def test_losses_break_episodes(self):
        rtts = [2.0]
        for _ in range(2):
            rtts.append(rtts[-1] + SERVICE - DELTA)
        rtts.append(0.0)  # loss
        last = [r for r in rtts if r > 0][-1]
        for _ in range(2):
            last = last + SERVICE - DELTA
            rtts.append(last)
        trace = ProbeTrace.from_samples(delta=DELTA, rtts=rtts,
                                        wire_bytes=72)
        report = detect_compression(trace, mu=MU, tolerance=1e-3)
        # Loss splits what would otherwise be one long episode.
        assert report.episode_count == 2

    def test_validation(self):
        trace = trace_with_episodes([1])
        with pytest.raises(AnalysisError):
            detect_compression(trace, mu=0.0)
        all_lost = ProbeTrace.from_samples(delta=DELTA, rtts=[0.0, 0.0])
        with pytest.raises(InsufficientDataError):
            detect_compression(all_lost, mu=MU)


class TestOnRealSimulation:
    def test_compression_frequency_decreases_with_delta(self, loaded_trace,
                                                        loaded_trace_20ms):
        """The paper: compression becomes less frequent as δ increases."""
        report_20 = detect_compression(loaded_trace_20ms, mu=MU)
        report_50 = detect_compression(loaded_trace, mu=MU)
        assert report_20.pair_fraction > report_50.pair_fraction
        assert report_20.episode_count > 0
