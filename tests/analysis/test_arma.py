"""Tests for AR fitting and delay prediction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.arma import (
    _autocovariances,
    evaluate_prediction,
    fit_ar,
    select_order,
)
from repro.errors import AnalysisError, FitError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def ar1_series(phi=0.8, n=5000, noise=0.1, mean=1.0, seed=0):
    rng = np.random.default_rng(seed)
    series = np.empty(n)
    series[0] = mean
    for i in range(1, n):
        series[i] = mean + phi * (series[i - 1] - mean) \
            + rng.normal(0, noise)
    return series


def loop_autocovariances(series, max_lag):
    """The retired per-lag loop, kept as the equivalence oracle."""
    centered = series - series.mean()
    n = len(series)
    gammas = np.empty(max_lag + 1)
    for lag in range(max_lag + 1):
        gammas[lag] = np.dot(centered[:n - lag], centered[lag:]) / n
    return gammas


class TestAutocovariances:
    @given(values=st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                     allow_nan=False, width=32),
                           min_size=4, max_size=80),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_vectorized_matches_loop(self, values, data):
        series = np.array(values, dtype=float)
        max_lag = data.draw(st.integers(0, len(series) - 1))
        got = _autocovariances(series, max_lag)
        want = loop_autocovariances(series, max_lag)
        assert np.allclose(got, want, rtol=1e-9, atol=1e-6)

    def test_long_series_fft_route_matches_loop(self):
        series = ar1_series(n=6000)  # above the FFT crossover
        got = _autocovariances(series, max_lag=25)
        want = loop_autocovariances(series, max_lag=25)
        assert np.allclose(got, want, rtol=1e-10)


class TestFitAr:
    def test_recovers_ar1_coefficient(self):
        model = fit_ar(ar1_series(phi=0.8), order=1)
        assert model.coefficients[0] == pytest.approx(0.8, abs=0.05)
        assert model.mean == pytest.approx(1.0, abs=0.1)

    def test_noise_variance_estimate(self):
        model = fit_ar(ar1_series(phi=0.5, noise=0.2), order=1)
        assert model.noise_variance == pytest.approx(0.04, rel=0.2)

    def test_higher_order_fits_ar1(self):
        model = fit_ar(ar1_series(phi=0.7), order=3)
        assert model.coefficients[0] == pytest.approx(0.7, abs=0.1)
        assert abs(model.coefficients[2]) < 0.1

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_ar(ar1_series(n=100), order=0)
        with pytest.raises(InsufficientDataError):
            fit_ar(np.ones(15), order=5)
        with pytest.raises(FitError):
            fit_ar(np.ones(100), order=2)  # zero variance


class TestPrediction:
    def test_predict_next_uses_recent_history(self):
        model = fit_ar(ar1_series(phi=0.9), order=1)
        high = model.predict_next(np.array([2.0]))
        low = model.predict_next(np.array([0.0]))
        assert high > model.mean > low

    def test_predict_series_beats_noise_only_model(self):
        series = ar1_series(phi=0.9, noise=0.05)
        model = fit_ar(series, order=1)
        predictions = model.predict_series(series)
        errors = predictions - series[1:]
        assert np.std(errors) < 0.8 * np.std(series - series.mean())

    def test_history_too_short(self):
        model = fit_ar(ar1_series(), order=3)
        with pytest.raises(AnalysisError):
            model.predict_next(np.array([1.0]))


class TestSelectOrder:
    def test_prefers_low_order_for_ar1(self):
        order = select_order(ar1_series(phi=0.8), max_order=6)
        assert order <= 3

    def test_ar2_needs_second_lag(self):
        rng = np.random.default_rng(2)
        n = 8000
        series = np.zeros(n)
        for i in range(2, n):
            # AR(2) with an oscillatory component: phi2 strongly negative.
            series[i] = 1.2 * series[i - 1] - 0.7 * series[i - 2] \
                + rng.normal(0, 0.1)
        assert select_order(series, max_order=6) >= 2


class TestEvaluatePrediction:
    def test_report_on_smooth_trace(self):
        # Smooth AR-like delays: prediction should beat the naive model.
        series = ar1_series(phi=0.95, noise=0.01, mean=0.2)
        trace = ProbeTrace.from_samples(delta=0.05,
                                        rtts=np.abs(series).tolist())
        report = evaluate_prediction(trace, order=1)
        assert report.rmse > 0
        assert report.naive_rmse > 0

    def test_order_zero_selects_automatically(self, loaded_trace):
        report = evaluate_prediction(loaded_trace)
        assert report.order >= 1

    def test_skill_definition(self):
        series = ar1_series(phi=0.9, noise=0.02, mean=0.5)
        trace = ProbeTrace.from_samples(delta=0.05,
                                        rtts=np.abs(series).tolist())
        report = evaluate_prediction(trace, order=2)
        assert report.skill == pytest.approx(
            1.0 - report.rmse / report.naive_rmse)
