"""Tests for phase-plot analysis: diagonal, compression line, μ estimation."""

import numpy as np
import pytest

from repro.analysis.phase import (
    diagonal_fraction,
    estimate_bottleneck_mu,
    estimate_fixed_delay,
    fit_compression_line,
    phase_points,
)
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def synthetic_trace(delta=0.05, mu=128e3, wire_bytes=72, n=400,
                    compressed_fraction=0.3, base=0.14, seed=0):
    """A trace with a known mix of diagonal and compression-line pairs."""
    rng = np.random.default_rng(seed)
    rtts = [base + 0.1]
    service = wire_bytes * 8 / mu
    for _ in range(n - 1):
        if rng.random() < compressed_fraction and rtts[-1] > base + delta:
            rtts.append(rtts[-1] + service - delta)  # compression line
        else:
            level = base + rng.uniform(0.0, 0.3)
            rtts.append(level)
            rtts.append(level + rng.normal(0.0, 5e-4))  # diagonal pair
    return ProbeTrace.from_samples(delta=delta, rtts=rtts[:n],
                                   wire_bytes=wire_bytes)


class TestPhasePoints:
    def test_pairs_of_received_probes(self):
        trace = ProbeTrace.from_samples(delta=0.05,
                                        rtts=[0.1, 0.2, 0.0, 0.3, 0.4])
        plot = phase_points(trace)
        # Pairs: (0.1,0.2), (0.3,0.4); pairs with a loss are excluded.
        assert plot.x.tolist() == [0.1, 0.3]
        assert plot.y.tolist() == [0.2, 0.4]

    def test_all_lost_raises(self):
        trace = ProbeTrace.from_samples(delta=0.05, rtts=[0.0, 0.0])
        with pytest.raises(InsufficientDataError):
            phase_points(trace)

    def test_carries_delta_and_size(self):
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.1, 0.2],
                                        wire_bytes=72)
        plot = phase_points(trace)
        assert plot.delta == 0.02
        assert plot.wire_bits == 576


class TestDiagonalFraction:
    def test_pure_diagonal(self):
        trace = ProbeTrace.from_samples(delta=0.5,
                                        rtts=[0.14, 0.141, 0.14, 0.142])
        assert diagonal_fraction(phase_points(trace)) == 1.0

    def test_mixed(self):
        trace = ProbeTrace.from_samples(delta=0.5,
                                        rtts=[0.14, 0.141, 0.30, 0.301])
        # Pairs: (0.14,0.141) diag, (0.141,0.30) not, (0.30,0.301) diag.
        assert diagonal_fraction(phase_points(trace)) == pytest.approx(2 / 3)


class TestCompressionLine:
    def test_recovers_mu_from_synthetic_trace(self):
        trace = synthetic_trace(mu=128e3)
        fit = fit_compression_line(phase_points(trace), mu_hint=128e3,
                                   tolerance=1e-3)
        assert fit.point_count > 20
        assert fit.mu_estimate == pytest.approx(128e3, rel=0.1)

    def test_x_intercept_is_delta_minus_service(self):
        trace = synthetic_trace(delta=0.05, mu=128e3)
        fit = fit_compression_line(phase_points(trace), mu_hint=128e3,
                                   tolerance=1e-3)
        assert fit.x_intercept == pytest.approx(0.05 - 576 / 128e3, abs=2e-3)

    def test_tolerates_mu_hint_error(self):
        trace = synthetic_trace(mu=128e3)
        fit = fit_compression_line(phase_points(trace), mu_hint=200e3,
                                   tolerance=3e-3)
        assert fit.mu_estimate == pytest.approx(128e3, rel=0.15)

    def test_no_compression_yields_no_estimate(self):
        trace = synthetic_trace(compressed_fraction=0.0)
        fit = fit_compression_line(phase_points(trace), mu_hint=128e3,
                                   tolerance=5e-4)
        assert fit.point_count == 0
        assert fit.mu_estimate is None
        assert fit.x_intercept is None

    def test_bad_hint_rejected(self):
        trace = synthetic_trace()
        with pytest.raises(AnalysisError):
            fit_compression_line(phase_points(trace), mu_hint=0.0)

    def test_one_call_estimator(self):
        trace = synthetic_trace(mu=128e3)
        mu = estimate_bottleneck_mu(trace, mu_hint=128e3, tolerance=1e-3)
        assert mu == pytest.approx(128e3, rel=0.1)


class TestFixedDelay:
    def test_min_rtt(self):
        trace = ProbeTrace.from_samples(delta=0.05, rtts=[0.3, 0.14, 0.5])
        assert estimate_fixed_delay(trace) == pytest.approx(0.14)


class TestOnRealSimulation:
    """Phase analysis on traces from the calibrated topology."""

    def test_fixed_delay_on_loaded_path(self, loaded_trace):
        assert 0.12 <= estimate_fixed_delay(loaded_trace) <= 0.16

    def test_mu_estimate_on_loaded_path(self, loaded_trace):
        mu = estimate_bottleneck_mu(loaded_trace, mu_hint=128e3)
        assert mu is not None
        assert 90e3 <= mu <= 170e3

    def test_compression_visible_at_50ms(self, loaded_trace):
        fit = fit_compression_line(phase_points(loaded_trace),
                                   mu_hint=128e3)
        assert fit.point_count > 10
