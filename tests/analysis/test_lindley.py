"""Unit and property tests for Lindley's recurrence (Figure 7)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lindley import (
    estimate_batch_bits,
    lindley_waits,
    lindley_waits_loop,
    positive_part,
    probe_waits_with_batches,
)
from repro.errors import AnalysisError


class TestPositivePart:
    def test_clips_negatives(self):
        result = positive_part(np.array([-1.0, 0.0, 2.0]))
        assert result.tolist() == [0.0, 0.0, 2.0]


class TestLindleyWaits:
    def test_underloaded_queue_stays_empty(self):
        # Service 1, arrivals every 2: no one ever waits.
        waits = lindley_waits([1.0] * 5, [2.0] * 5)
        assert waits.tolist() == [0.0] * 5

    def test_overloaded_queue_grows_linearly(self):
        # Service 2, arrivals every 1: wait grows by 1 per customer.
        waits = lindley_waits([2.0] * 5, [1.0] * 5)
        assert waits.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_alternating_load(self):
        waits = lindley_waits([3.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert waits.tolist() == [0.0, 1.0, 0.0]

    def test_initial_wait(self):
        waits = lindley_waits([1.0, 1.0], [2.0, 2.0], initial_wait=5.0)
        assert waits[0] == 5.0
        assert waits[1] == pytest.approx(4.0)

    def test_empty_input(self):
        assert len(lindley_waits([], [])) == 0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            lindley_waits([1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            lindley_waits([-1.0], [1.0])


@settings(max_examples=120, deadline=None)
@given(services=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60),
       gaps=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=60))
def test_lindley_invariants(services, gaps):
    """Waits are nonnegative and satisfy the recurrence exactly."""
    n = min(len(services), len(gaps))
    y, x = services[:n], gaps[:n]
    waits = lindley_waits(y, x)
    assert np.all(waits >= 0.0)
    for i in range(n - 1):
        expected = max(0.0, waits[i] + y[i] - x[i])
        assert waits[i + 1] == pytest.approx(expected)


@settings(max_examples=80, deadline=None)
@given(services=st.lists(st.floats(0.0, 10.0), min_size=0, max_size=80),
       gaps=st.lists(st.floats(0.0, 10.0), min_size=0, max_size=80),
       initial=st.floats(0.0, 5.0))
def test_vectorized_matches_reference_loop(services, gaps, initial):
    """The closed-form cumsum evaluation equals the literal recurrence."""
    n = min(len(services), len(gaps))
    y, x = services[:n], gaps[:n]
    fast = lindley_waits(y, x, initial_wait=initial)
    slow = lindley_waits_loop(y, x, initial_wait=initial)
    np.testing.assert_allclose(fast, slow, rtol=0.0, atol=1e-9)


@settings(max_examples=80, deadline=None)
@given(services=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=40))
def test_lindley_monotone_in_service(services):
    """Inflating every service time cannot reduce any wait."""
    gaps = [0.5] * len(services)
    base = lindley_waits(services, gaps)
    inflated = lindley_waits([s + 0.1 for s in services], gaps)
    assert np.all(inflated >= base - 1e-12)


class TestProbeWaitsWithBatches:
    def test_no_batches_no_wait(self):
        waits = probe_waits_with_batches(delta=0.05, probe_service=0.0045,
                                         batch_bits=[0.0] * 10, mu=128e3)
        assert np.allclose(waits, 0.0)

    def test_single_large_batch_creates_backlog(self):
        # One 3200-bit batch at offset delta/2: takes 25 ms to serve,
        # arriving 25 ms before the next probe -> next wait ~ 0 + spillover.
        batches = [6400.0, 0.0, 0.0]
        waits = probe_waits_with_batches(delta=0.05, probe_service=0.0045,
                                         batch_bits=batches, mu=128e3)
        assert waits[0] == 0.0
        assert waits[1] > 0.0
        assert waits[2] <= waits[1]

    def test_sustained_batches_grow_waits(self):
        # Batches of delta*mu bits: queue just saturated by cross traffic,
        # probe bits push it over -> monotone growth.
        batch = 0.05 * 128e3
        waits = probe_waits_with_batches(delta=0.05, probe_service=0.0045,
                                         batch_bits=[batch] * 20, mu=128e3)
        assert np.all(np.diff(waits[5:]) >= -1e-9)
        assert waits[-1] > waits[5]

    def test_offsets_validation(self):
        with pytest.raises(AnalysisError):
            probe_waits_with_batches(delta=0.05, probe_service=0.001,
                                     batch_bits=[1.0], mu=1e3,
                                     batch_offsets=[0.06])  # > delta
        with pytest.raises(AnalysisError):
            probe_waits_with_batches(delta=0.0, probe_service=0.001,
                                     batch_bits=[1.0], mu=1e3)


class TestEstimateBatchBits:
    def test_recovers_exact_batches_when_busy(self):
        """Equation (6) inverts the recursion while the queue stays busy."""
        mu = 128e3
        delta = 0.02
        probe_bits = 576.0
        rng = np.random.default_rng(7)
        # Heavy load so the queue never empties between probes.
        batches = rng.uniform(0.8, 1.4, size=200) * delta * mu
        waits = probe_waits_with_batches(delta=delta,
                                         probe_service=probe_bits / mu,
                                         batch_bits=batches, mu=mu)
        estimated = estimate_batch_bits(waits, delta=delta, mu=mu,
                                        probe_bits=probe_bits)
        busy = waits[:-1] > delta  # definitely no idle period before next
        assert np.allclose(estimated[busy], batches[busy], rtol=1e-9)

    def test_idle_periods_break_equation_six(self):
        """When the buffer empties, eq. (6) does not hold (documented).

        An idle queue gives ``w_{n+1} = w_n = 0`` so the estimator returns
        ``μ δ − P`` regardless of the true (tiny) batch — this is exactly
        the paper's caveat, and why the δ-peak of Figures 8/9 corresponds
        to 'idle', not to a real workload of ``μ δ − P`` bits.
        """
        mu = 128e3
        delta = 0.05
        batches = np.zeros(10)
        batches[5] = 320.0  # a tiny batch into an idle queue
        waits = probe_waits_with_batches(delta=delta, probe_service=0.0045,
                                         batch_bits=batches, mu=mu)
        estimated = estimate_batch_bits(waits, delta=delta, mu=mu,
                                        probe_bits=576.0)
        assert estimated[5] == pytest.approx(mu * delta - 576.0)
        assert estimated[5] != pytest.approx(batches[5])

    def test_validation(self):
        with pytest.raises(AnalysisError):
            estimate_batch_bits([1.0], delta=0.05, mu=1e3, probe_bits=1.0)
