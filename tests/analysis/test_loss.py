"""Tests for loss-process analysis (Table 3 metrics, Gilbert, runs test)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.loss import (
    fit_gilbert,
    GilbertModel,
    loss_gap_distribution,
    loss_runs,
    loss_stats,
    mean_loss_gap,
    runs_test,
)
from repro.errors import InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def trace_from_losses(pattern):
    """0 = received (rtt 0.1), 1 = lost."""
    return ProbeTrace.from_samples(
        delta=0.05, rtts=[0.0 if bit else 0.1 for bit in pattern])


class TestLossStats:
    def test_ulp(self):
        stats = loss_stats(trace_from_losses([0, 1, 0, 1]))
        assert stats.ulp == pytest.approx(0.5)
        assert stats.losses == 2
        assert stats.count == 4

    def test_clp_counts_consecutive_losses(self):
        # Losses at 1,2 and 4: one loss->loss transition out of three
        # loss-predecessors (positions 1, 2, 4 is last so excluded? no:
        # predecessors are positions 0..n-2 that are lost: 1, 2).
        stats = loss_stats(trace_from_losses([0, 1, 1, 0, 1]))
        assert stats.clp == pytest.approx(0.5)

    def test_plg_from_clp(self):
        stats = loss_stats(trace_from_losses([0, 1, 1, 0, 1]))
        assert stats.plg == pytest.approx(1.0 / (1.0 - 0.5))

    def test_no_losses(self):
        stats = loss_stats(trace_from_losses([0, 0, 0]))
        assert stats.ulp == 0.0
        assert stats.clp == 0.0
        assert stats.plg == 1.0

    def test_all_lost(self):
        stats = loss_stats(trace_from_losses([1, 1, 1]))
        assert stats.ulp == 1.0
        assert stats.clp == 1.0
        assert math.isinf(stats.plg)

    def test_burstiness_flag(self):
        # Losses come in pairs: ulp = 0.25 but clp = 0.5.
        bursty = loss_stats(trace_from_losses([1, 1, 0, 0, 0, 0, 0, 0] * 10))
        assert bursty.is_bursty()
        # Isolated losses: clp = 0 < ulp.
        random = loss_stats(trace_from_losses([1, 0, 0, 0] * 10))
        assert not random.is_bursty()

    def test_too_short(self):
        with pytest.raises(InsufficientDataError):
            loss_stats(trace_from_losses([1]))


class TestLossRuns:
    def test_run_extraction(self):
        assert loss_runs(trace_from_losses([1, 1, 0, 1, 0, 1, 1, 1])) == \
            [2, 1, 3]

    def test_trailing_run(self):
        assert loss_runs(trace_from_losses([0, 1, 1])) == [2]

    def test_no_losses(self):
        assert loss_runs(trace_from_losses([0, 0])) == []

    def test_gap_distribution(self):
        dist = loss_gap_distribution(trace_from_losses([1, 0, 1, 0, 1, 1]))
        assert dist == {1: 2, 2: 1}

    def test_mean_loss_gap(self):
        trace = trace_from_losses([1, 0, 1, 1, 0, 1, 1, 1, 0])
        assert mean_loss_gap(trace) == pytest.approx(2.0)

    def test_mean_loss_gap_requires_losses(self):
        with pytest.raises(InsufficientDataError):
            mean_loss_gap(trace_from_losses([0, 0]))


class TestGilbert:
    def test_fit_recovers_known_chain(self, rng):
        model = GilbertModel(p=0.05, q=0.4)
        sequence = model.simulate(100_000, rng)
        trace = trace_from_losses(sequence.tolist())
        fitted = fit_gilbert(trace)
        assert fitted.p == pytest.approx(0.05, abs=0.01)
        assert fitted.q == pytest.approx(0.4, abs=0.05)

    def test_derived_quantities(self):
        model = GilbertModel(p=0.1, q=0.5)
        assert model.stationary_loss == pytest.approx(0.1 / 0.6)
        assert model.mean_burst_length == pytest.approx(2.0)
        assert model.conditional_loss == pytest.approx(0.5)

    def test_degenerate_models(self):
        assert GilbertModel(p=0.0, q=0.0).stationary_loss == 0.0
        assert math.isinf(GilbertModel(p=0.5, q=0.0).mean_burst_length)

    def test_gilbert_consistent_with_loss_stats(self, rng):
        model = GilbertModel(p=0.08, q=0.6)
        trace = trace_from_losses(model.simulate(50_000, rng).tolist())
        stats = loss_stats(trace)
        fitted = fit_gilbert(trace)
        # clp estimated by loss_stats = 1 - q estimated by the fit.
        assert stats.clp == pytest.approx(fitted.conditional_loss, abs=1e-9)


class TestRunsTest:
    def test_independent_losses_pass(self, rng):
        pattern = (rng.random(5000) < 0.1).astype(int)
        result = runs_test(trace_from_losses(pattern.tolist()))
        assert result.looks_random(alpha=0.001)

    def test_bursty_losses_fail(self, rng):
        model = GilbertModel(p=0.05, q=0.2)  # strongly bursty
        pattern = model.simulate(5000, rng)
        result = runs_test(trace_from_losses(pattern.tolist()))
        assert not result.looks_random(alpha=0.001)
        assert result.z < 0  # fewer runs than expected under independence

    def test_requires_both_outcomes(self):
        with pytest.raises(InsufficientDataError):
            runs_test(trace_from_losses([0, 0, 0]))
        with pytest.raises(InsufficientDataError):
            runs_test(trace_from_losses([1, 1, 1]))

    def test_extreme_z_p_value_does_not_underflow(self):
        # Regression: 2*(1 - cdf(|z|)) rounds to exactly 0.0 for |z| >~ 8.
        # A perfectly alternating sequence of n probes has z ~ sqrt(n), so
        # n = 120 pushes |z| past 10 where only the sf() form survives.
        pattern = [0, 1] * 60
        result = runs_test(trace_from_losses(pattern))
        assert abs(result.z) > 8
        assert 0.0 < result.p_value < 1e-12
        assert result.p_value == pytest.approx(
            2.0 * math.erfc(abs(result.z) / math.sqrt(2.0)) / 2.0, rel=1e-6)


@settings(max_examples=100, deadline=None)
@given(pattern=st.lists(st.integers(0, 1), min_size=2, max_size=200))
def test_loss_stats_invariants(pattern):
    """ulp, clp in [0,1]; plg >= 1; counts consistent."""
    trace = trace_from_losses(pattern)
    stats = loss_stats(trace)
    assert 0.0 <= stats.ulp <= 1.0
    assert 0.0 <= stats.clp <= 1.0
    assert stats.plg >= 1.0
    assert stats.losses == sum(pattern)
    assert sum(loss_runs(trace)) == sum(pattern)


class TestOnRealSimulation:
    def test_loaded_path_loss_in_paper_range(self, loaded_trace):
        stats = loss_stats(loaded_trace)
        assert 0.03 <= stats.ulp <= 0.25
        assert stats.clp >= stats.ulp  # positive correlation at delta=50ms
