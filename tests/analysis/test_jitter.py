"""Tests for delay-variation metrics."""

import numpy as np
import pytest

from repro.analysis.jitter import (
    ipdv,
    jitter_vs_buffer_tradeoff,
    rfc3550_jitter,
)
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def trace_of(rtts, delta=0.02):
    return ProbeTrace.from_samples(delta=delta, rtts=rtts)


class TestRfc3550:
    def test_constant_delay_zero_jitter(self):
        assert rfc3550_jitter(trace_of([0.14] * 50)) == 0.0

    def test_alternating_delay_converges_to_step(self):
        # |Δ| = 10 ms every step: J converges to 10 ms.
        rtts = [0.14, 0.15] * 200
        assert rfc3550_jitter(trace_of(rtts)) == pytest.approx(0.01,
                                                               rel=0.02)

    def test_gain_controls_convergence(self):
        rtts = [0.14] * 50 + [0.15, 0.14] * 5
        slow = rfc3550_jitter(trace_of(rtts), gain=1.0 / 64.0)
        fast = rfc3550_jitter(trace_of(rtts), gain=0.5)
        assert fast > slow

    def test_losses_skipped(self):
        rtts = [0.14, 0.0, 0.14, 0.14]
        assert rfc3550_jitter(trace_of(rtts)) == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            rfc3550_jitter(trace_of([0.1, 0.2]), gain=0.0)
        with pytest.raises(InsufficientDataError):
            rfc3550_jitter(trace_of([0.1, 0.0, 0.1]))


class TestIpdv:
    def test_quantiles_ordered(self):
        rng = np.random.default_rng(3)
        rtts = 0.14 + rng.exponential(0.02, 1000)
        summary = ipdv(trace_of(rtts.tolist()))
        assert 0.0 <= summary.p50 <= summary.p95 <= summary.p99 \
            <= summary.maximum

    def test_constant_delay(self):
        summary = ipdv(trace_of([0.14] * 20))
        assert summary.maximum == 0.0
        assert summary.mean_abs == 0.0

    def test_str_in_ms(self):
        assert "ms" in str(ipdv(trace_of([0.14, 0.15, 0.14])))


class TestBufferTradeoff:
    def test_jitter_budget(self):
        # One packet in a hundred is 100 ms late; the 99.5th-percentile
        # budget interpolates between the 99th and 100th order statistics.
        rtts = [0.14] * 99 + [0.24]
        budget = jitter_vs_buffer_tradeoff(trace_of(rtts), quantile=0.995)
        assert 0.04 <= budget <= 0.1

    def test_higher_quantile_bigger_budget(self):
        rng = np.random.default_rng(4)
        rtts = (0.14 + rng.exponential(0.05, 2000)).tolist()
        trace = trace_of(rtts)
        assert jitter_vs_buffer_tradeoff(trace, 0.999) > \
            jitter_vs_buffer_tradeoff(trace, 0.9)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            jitter_vs_buffer_tradeoff(trace_of([0.1, 0.2]), quantile=1.0)


class TestOnRealSimulation:
    def test_jitter_grows_with_load(self, idle_trace, loaded_trace):
        assert rfc3550_jitter(loaded_trace) > rfc3550_jitter(idle_trace)

    def test_ipdv_on_loaded_path(self, loaded_trace):
        summary = ipdv(loaded_trace)
        # Delay steps on a 128 kb/s bottleneck are multiples of packet
        # service times: tens of milliseconds at the tail.
        assert 0.001 <= summary.p95 <= 0.3
