"""Tests for delay-distribution fitting (constant + gamma, [19])."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.analysis.distributions import (
    delay_histogram,
    ecdf,
    fit_constant_plus_gamma,
    playback_buffer_delay,
)
from repro.errors import FitError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


def gamma_trace(constant=0.14, shape=2.0, scale=0.02, n=2000, seed=0):
    rng = np.random.default_rng(seed)
    rtts = constant + rng.gamma(shape, scale, size=n)
    return ProbeTrace.from_samples(delta=0.05, rtts=rtts.tolist())


class TestConstantPlusGamma:
    def test_recovers_known_parameters(self):
        fit = fit_constant_plus_gamma(gamma_trace(), constant=0.14)
        assert fit.shape == pytest.approx(2.0, rel=0.15)
        assert fit.scale == pytest.approx(0.02, rel=0.15)

    def test_good_fit_passes_ks(self):
        fit = fit_constant_plus_gamma(gamma_trace(), constant=0.14)
        assert fit.ks_p_value > 0.01

    def test_default_constant_below_min(self):
        trace = gamma_trace()
        fit = fit_constant_plus_gamma(trace)
        assert fit.constant < trace.min_rtt()

    def test_moments(self):
        fit = fit_constant_plus_gamma(gamma_trace(), constant=0.14)
        assert fit.mean == pytest.approx(0.14 + 2.0 * 0.02, rel=0.1)
        assert fit.variance == pytest.approx(2.0 * 0.02 ** 2, rel=0.3)

    def test_quantile_monotone(self):
        fit = fit_constant_plus_gamma(gamma_trace())
        assert fit.quantile(0.5) < fit.quantile(0.9) < fit.quantile(0.99)
        assert fit.quantile(0.5) > fit.constant

    def test_wrong_model_fails_ks(self):
        # Uniform delays are a bad gamma unless shape compensates; use a
        # bimodal distribution which gamma cannot capture.
        rng = np.random.default_rng(1)
        rtts = np.where(rng.random(3000) < 0.5,
                        0.14 + rng.normal(0.001, 1e-4, 3000),
                        0.4 + rng.normal(0.001, 1e-4, 3000))
        trace = ProbeTrace.from_samples(delta=0.05,
                                        rtts=np.abs(rtts).tolist())
        fit = fit_constant_plus_gamma(trace)
        assert fit.ks_p_value < 0.01

    def test_constant_delays_rejected_as_degenerate(self):
        trace = ProbeTrace.from_samples(delta=0.05, rtts=[0.14] * 100)
        with pytest.raises(FitError):
            fit_constant_plus_gamma(trace)

    def test_too_few_samples(self):
        with pytest.raises(InsufficientDataError):
            fit_constant_plus_gamma(
                ProbeTrace.from_samples(delta=0.05, rtts=[0.1] * 5))

    def test_constant_above_samples_rejected(self):
        with pytest.raises(FitError):
            fit_constant_plus_gamma(gamma_trace(), constant=10.0)


class TestEcdf:
    def test_sorted_and_reaches_one(self):
        values, probabilities = ecdf(np.array([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probabilities.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(InsufficientDataError):
            ecdf(np.array([]))


class TestDelayHistogram:
    def test_counts_sum_to_samples(self):
        trace = gamma_trace(n=500)
        counts, edges = delay_histogram(trace, bin_width=5e-3)
        assert counts.sum() == 500
        assert len(edges) == len(counts) + 1

    def test_losses_excluded(self):
        trace = ProbeTrace.from_samples(delta=0.05,
                                        rtts=[0.1, 0.0, 0.2, 0.15] * 10)
        counts, _ = delay_histogram(trace)
        assert counts.sum() == 30


class TestPlaybackBuffer:
    def test_matches_percentile(self):
        trace = gamma_trace(n=5000)
        delay = playback_buffer_delay(trace, target_loss=0.05)
        late = np.mean(trace.valid_rtts > delay)
        assert late == pytest.approx(0.05, abs=0.01)

    def test_stricter_target_needs_larger_buffer(self):
        trace = gamma_trace(n=5000)
        assert playback_buffer_delay(trace, target_loss=0.001) > \
            playback_buffer_delay(trace, target_loss=0.1)

    def test_validation(self):
        trace = gamma_trace(n=100)
        with pytest.raises(FitError):
            playback_buffer_delay(trace, target_loss=0.0)
        with pytest.raises(FitError):
            playback_buffer_delay(trace, target_loss=1.0)


class TestOnRealSimulation:
    def test_constant_plus_gamma_fits_simulated_path(self, loaded_trace):
        """The [19] delay model applies to our simulated path too."""
        fit = fit_constant_plus_gamma(loaded_trace)
        assert 0.1 <= fit.constant <= 0.16
        assert fit.shape > 0
        # The KS statistic should at least show a rough fit (the trace is
        # quantized and autocorrelated, so p-values are not meaningful).
        assert fit.ks_statistic < 0.2
