"""Tests for equation-(6) workload estimation and peak classification."""

import numpy as np
import pytest

from repro.analysis.workload import (
    classify_peaks,
    find_peaks,
    probe_gap_samples,
    workload_distribution,
)
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace

MU = 128e3
WIRE_BITS = 576.0
SERVICE = WIRE_BITS / MU  # 4.5 ms


def trace_with_gaps(gaps, delta=0.02):
    """Build a trace whose consecutive rtt differences are gaps - delta.

    The base rtt is raised so a long run of compression gaps (which shrink
    the rtt by ``delta - gap`` each step) never drives it negative; the
    analysis only ever looks at differences.
    """
    steps = np.asarray(gaps, dtype=float) - delta
    cumulative = np.concatenate([[0.0], np.cumsum(steps)])
    base = 0.14 + max(0.0, -float(cumulative.min()))
    rtts = base + cumulative
    return ProbeTrace.from_samples(delta=delta, rtts=rtts.tolist(),
                                   wire_bytes=72)


class TestProbeGapSamples:
    def test_equals_rtt_difference_plus_delta(self):
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.10, 0.13, 0.12])
        samples = probe_gap_samples(trace)
        assert samples == pytest.approx([0.05, 0.01])

    def test_losses_excluded(self):
        trace = ProbeTrace.from_samples(delta=0.02,
                                        rtts=[0.10, 0.0, 0.12, 0.13])
        samples = probe_gap_samples(trace)
        assert len(samples) == 1  # only the (0.12, 0.13) pair

    def test_no_pairs_raises(self):
        trace = ProbeTrace.from_samples(delta=0.02, rtts=[0.1, 0.0, 0.1])
        with pytest.raises(InsufficientDataError):
            probe_gap_samples(trace)


class TestWorkloadDistribution:
    def test_histogram_covers_samples(self):
        gaps = [SERVICE] * 50 + [0.02] * 50
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU)
        assert dist.counts.sum() == len(gaps)

    def test_batch_bits_equation_six(self):
        gaps = [0.035]  # the paper's worked example
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU)
        # b = mu * 0.035 - P = 4480 - 576 = 3904 bits = 488 bytes.
        assert dist.batch_bits()[0] == pytest.approx(3904.0)

    def test_validation(self):
        trace = trace_with_gaps([0.02] * 5)
        with pytest.raises(AnalysisError):
            workload_distribution(trace, mu=0.0)
        with pytest.raises(AnalysisError):
            workload_distribution(trace, mu=MU, bin_width=0.0)


class TestFindPeaks:
    def test_finds_isolated_modes(self):
        gaps = [SERVICE] * 100 + [0.02] * 60 + [0.039] * 30
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU,
                                     bin_width=2e-3)
        peaks = find_peaks(dist, min_height_fraction=0.05)
        locations = sorted(p.location for p in peaks)
        assert len(locations) == 3
        assert locations[0] == pytest.approx(SERVICE, abs=2e-3)
        assert locations[1] == pytest.approx(0.02, abs=2e-3)
        assert locations[2] == pytest.approx(0.039, abs=2e-3)

    def test_tallest_first(self):
        gaps = [SERVICE] * 100 + [0.02] * 10
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU)
        peaks = find_peaks(dist, min_height_fraction=0.01)
        assert peaks[0].height >= peaks[-1].height

    def test_min_height_filters(self):
        gaps = [SERVICE] * 100 + [0.039] * 2
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU)
        peaks = find_peaks(dist, min_height_fraction=0.1)
        assert all(abs(p.location - 0.039) > 1e-3 for p in peaks)

    def test_implied_bytes(self):
        gaps = [0.039] * 100 + [SERVICE] * 50
        dist = workload_distribution(trace_with_gaps(gaps), mu=MU)
        peaks = find_peaks(dist, min_height_fraction=0.1)
        one_packet = max(peaks, key=lambda p: p.location)
        # mu * 0.039 - 576 bits = 4416 bits = 552 bytes.
        assert one_packet.implied_bytes == pytest.approx(552.0, abs=32.0)


class TestClassifyPeaks:
    def make_classified(self, gaps, delta=0.02):
        dist = workload_distribution(trace_with_gaps(gaps, delta=delta),
                                     mu=MU, bin_width=2e-3)
        peaks = find_peaks(dist, min_height_fraction=0.02)
        return classify_peaks(peaks, delta=delta, mu=MU,
                              probe_bits=WIRE_BITS, tolerance=3e-3)

    def test_three_mechanisms_separated(self):
        gaps = [SERVICE] * 100 + [0.02] * 60 + [0.039] * 30
        classified = self.make_classified(gaps)
        assert classified["compression"] is not None
        assert classified["idle"] is not None
        assert classified["one_packet"] is not None
        assert classified["compression"].location == pytest.approx(
            SERVICE, abs=2e-3)
        assert classified["idle"].location == pytest.approx(0.02, abs=2e-3)
        assert classified["one_packet"].location == pytest.approx(
            0.039, abs=2e-3)

    def test_one_packet_found_below_delta(self):
        """Workload peaks sit at (S+P)/mu regardless of delta (eq. 6)."""
        gaps = [SERVICE] * 100 + [0.1] * 60 + [0.039] * 30
        classified = self.make_classified(gaps, delta=0.1)
        assert classified["one_packet"] is not None
        assert classified["one_packet"].location == pytest.approx(
            0.039, abs=2e-3)

    def test_absent_mechanisms_are_none(self):
        gaps = [0.02] * 100  # idle only
        classified = self.make_classified(gaps)
        assert classified["compression"] is None
        assert classified["one_packet"] is None
        assert classified["idle"] is not None


class TestOnRealSimulation:
    def test_figure8_peak_structure(self, loaded_trace_20ms):
        resolution = loaded_trace_20ms.meta["clock_resolution"]
        dist = workload_distribution(loaded_trace_20ms, mu=MU,
                                     bin_width=max(2e-3, resolution))
        peaks = find_peaks(dist, min_height_fraction=0.004)
        classified = classify_peaks(peaks, delta=0.02, mu=MU,
                                    probe_bits=WIRE_BITS,
                                    tolerance=max(4e-3, resolution))
        assert classified["compression"] is not None
        assert classified["idle"] is not None
        assert classified["one_packet"] is not None
        # One cross packet = one 512 B FTP packet + overhead.
        assert 400 <= classified["one_packet"].implied_bytes <= 700
