"""Tests for the command-line entry points."""

import pytest

from repro import cli


class TestExperimentCli:
    def test_basic_run(self, capsys):
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "20",
                                    "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "probes sent: 200" in output
        assert "loss: ulp" in output
        assert "delay ms:" in output

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                                    "--save-trace", str(path)])
        assert code == 0
        assert path.exists()
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(path)
        assert len(trace) == 100

    def test_umd_pitt_scenario(self, capsys):
        code = cli.main_experiment(["--delta-ms", "50", "--duration", "10",
                                    "--scenario", "umd-pitt"])
        assert code == 0


class TestFiguresCli:
    def test_single_figure(self, capsys):
        code = cli.main_figures(["table1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "comparison rows passed" in output

    def test_render_flag(self, capsys):
        cli.main_figures(["table1", "--render"])
        output = capsys.readouterr().out
        assert "tom.inria.fr" in output

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_figures(["figure99"])

    def test_export_dir_writes_csv(self, tmp_path, capsys):
        code = cli.main_figures(["figure1", "--export-dir", str(tmp_path)])
        assert code == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "figure1_trace.csv" in written
        assert "figure1_phase.csv" in written
        assert "figure1_workload_hist.csv" in written
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(tmp_path / "figure1_trace.csv")
        assert len(trace) == 800


class TestTracerouteCli:
    def test_inria_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "inria-umd"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Ithaca.NY.NSS.NSF.NET" in output
        assert "mimsy.umd.edu" in output

    def test_pitt_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "umd-pitt"])
        assert code == 0
        assert "pitt" in capsys.readouterr().out
