"""Tests for the command-line entry points."""

import pytest

from repro import cli


class TestExperimentCli:
    def test_basic_run(self, capsys):
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "20",
                                    "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "probes sent: 200" in output
        assert "loss: ulp" in output
        assert "delay ms:" in output

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                                    "--save-trace", str(path)])
        assert code == 0
        assert path.exists()
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(path)
        assert len(trace) == 100

    def test_umd_pitt_scenario(self, capsys):
        code = cli.main_experiment(["--delta-ms", "50", "--duration", "10",
                                    "--scenario", "umd-pitt"])
        assert code == 0

    def test_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel trace written to" in output
        from repro.obs import read_events_jsonl, read_hops_jsonl
        assert read_events_jsonl(path)
        assert read_hops_jsonl(tmp_path / "events_hops.jsonl")

    def test_trace_chrome_inferred_from_extension(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path)])
        assert code == 0
        assert "chrome trace written to" in capsys.readouterr().out
        from repro.obs import read_chrome_trace
        rows = read_chrome_trace(path)
        assert {row["cat"] for row in rows} == {"kernel", "packet"}

    def test_trace_format_override(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path),
                                    "--trace-format", "jsonl"])
        assert code == 0
        from repro.obs import read_events_jsonl
        assert read_events_jsonl(path)  # JSONL despite the .json suffix

    def test_metrics_flag(self, capsys):
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--metrics"])
        assert code == 0
        output = capsys.readouterr().out
        assert "metrics (" in output
        assert "netdyn/probes_sent = 50" in output

    def test_manifest_flag(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--seed", "2", "--manifest", str(path)])
        assert code == 0
        from repro.obs import read_manifest
        manifest = read_manifest(path)
        assert manifest["config"]["seed"] == 2
        assert manifest["metrics"]["netdyn"]["probes_sent"] == 50

    def test_observed_run_matches_bare_run(self, tmp_path, capsys):
        bare = tmp_path / "bare.csv"
        observed = tmp_path / "observed.csv"
        cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                             "--seed", "5", "--save-trace", str(bare)])
        cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                             "--seed", "5", "--save-trace", str(observed),
                             "--trace", str(tmp_path / "t.json"),
                             "--metrics"])
        assert bare.read_bytes() == observed.read_bytes()


class TestCampaignCli:
    def test_basic_grid(self, capsys):
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1", "2",
                                  "--duration", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 deltas x 2 seeds = 2 cells" in out
        assert "100ms" in out
        assert "drops" in out  # queue table rendered

    def test_output_dir_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "campaign"
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5", "--workers", "2",
                                  "--output-dir", str(out_dir)])
        assert code == 0
        assert (out_dir / "trace_d100_s1.csv").exists()
        from repro.obs import read_manifest, read_timing
        manifest = read_manifest(out_dir / "manifest.json")
        assert manifest["extra"]["traces"] == ["trace_d100_s1.csv"]
        timing = read_timing(out_dir / "timing.json")
        assert timing["workers"] == 2

    def test_workers_validation(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--workers", "0"])

    def test_cache_dir_flag_warm_run_all_hits(self, tmp_path, capsys):
        args = ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main_campaign(args) == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out
        assert cli.main_campaign(args) == 0
        assert "cache: 1 hit, 0 misses" in capsys.readouterr().out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        code = cli.main_campaign(
            ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
             "--cache-dir", str(tmp_path / "cache"), "--no-cache"])
        assert code == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_env_var_default_cache_dir(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5"])
        assert code == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out
        assert list((tmp_path / "envcache").glob("*.npz"))

    def test_refresh_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--refresh"])
        with pytest.raises(SystemExit):
            cli.main_campaign(["--refresh", "--no-cache",
                               "--cache-dir", "somewhere"])

    def test_refresh_recomputes(self, tmp_path, capsys):
        base = ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main_campaign(base) == 0
        capsys.readouterr()
        assert cli.main_campaign(base + ["--refresh"]) == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out

    def test_spans_flag_writes_span_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "campaign"
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5",
                                  "--output-dir", str(out_dir), "--spans"])
        assert code == 0
        assert "spans written to" in capsys.readouterr().out
        assert (out_dir / "spans" / "spans.jsonl").exists()
        assert (out_dir / "spans" / "trace.json").exists()

    def test_spans_explicit_directory(self, tmp_path, capsys):
        span_dir = tmp_path / "telemetry"
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5",
                                  "--spans", str(span_dir)])
        assert code == 0
        assert (span_dir / "spans.jsonl").exists()

    def test_spans_without_output_dir_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--spans"])

    def test_progress_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--progress", "--no-progress"])

    def test_progress_auto_off_when_not_a_tty(self, capsys):
        # pytest's captured stderr is not a TTY, so the default (auto)
        # must not draw progress lines into it.
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5"])
        assert code == 0
        assert "\r" not in capsys.readouterr().err

    def test_progress_forced_on(self, capsys):
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5", "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "campaign 1/1 cells" in err

    def test_no_progress_silences(self, capsys):
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5", "--no-progress"])
        assert code == 0
        assert capsys.readouterr().err == ""


class TestFiguresCli:
    def test_single_figure(self, capsys):
        code = cli.main_figures(["table1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "comparison rows passed" in output

    def test_render_flag(self, capsys):
        cli.main_figures(["table1", "--render"])
        output = capsys.readouterr().out
        assert "tom.inria.fr" in output

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_figures(["figure99"])

    def test_export_dir_writes_csv(self, tmp_path, capsys):
        code = cli.main_figures(["figure1", "--export-dir", str(tmp_path)])
        assert code == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "figure1_trace.csv" in written
        assert "figure1_phase.csv" in written
        assert "figure1_workload_hist.csv" in written
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(tmp_path / "figure1_trace.csv")
        assert len(trace) == 800


TOY_SUITE = '''\
from repro.obs.bench import build_report, metric

SUITE = "toy"


def run_suite(quick=False):
    return build_report(SUITE,
                        {"speed": metric(2.0 if quick else 4.0, "x")},
                        mode="quick" if quick else "full",
                        salt="repro-cell-v2-toy")
'''


class TestBenchCli:
    @pytest.fixture()
    def bench_dir(self, tmp_path):
        directory = tmp_path / "benchmarks"
        directory.mkdir()
        (directory / "toy_suite.py").write_text(TOY_SUITE)
        (directory / "test_perf_toy.py").write_text(
            "SUITE = 'ignored'\n")  # test_ files are never suites
        (directory / "helper.py").write_text("def nothing():\n    pass\n")
        return directory

    def test_run_discovers_and_writes_report(self, bench_dir, capsys):
        code = cli.main_bench(["run", "--benchmarks-dir", str(bench_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "toy: speed=4 x" in out
        from repro.obs.bench import read_report
        report = read_report(bench_dir / "BENCH_toy.json")
        assert report["suite"] == "toy"
        assert report["mode"] == "full"

    def test_run_quick_mode(self, bench_dir, capsys):
        code = cli.main_bench(["run", "toy", "--quick",
                               "--benchmarks-dir", str(bench_dir)])
        assert code == 0
        from repro.obs.bench import read_report
        report = read_report(bench_dir / "BENCH_toy.json")
        assert report["mode"] == "quick"
        assert report["metrics"]["speed"]["value"] == 2.0

    def test_run_separate_output_dir(self, bench_dir, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = cli.main_bench(["run", "toy",
                               "--benchmarks-dir", str(bench_dir),
                               "--output-dir", str(out_dir)])
        assert code == 0
        assert (out_dir / "BENCH_toy.json").exists()
        assert not (bench_dir / "BENCH_toy.json").exists()

    def test_run_unknown_suite_rejected(self, bench_dir):
        with pytest.raises(SystemExit):
            cli.main_bench(["run", "nope",
                            "--benchmarks-dir", str(bench_dir)])

    def test_real_benchmarks_dir_discovered(self, tmp_path, capsys):
        # The repo's own benchmarks/ must expose all four suites without
        # running them: unknown-suite errors list what was discovered.
        with pytest.raises(SystemExit):
            cli.main_bench(["run", "definitely-not-a-suite"])
        err = capsys.readouterr().err
        for suite in ("cache", "campaign", "kernel", "obs"):
            assert suite in err

    def compare(self, tmp_path, old_value, new_value, threshold=None):
        from repro.obs.bench import build_report, metric, write_report
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        write_report(build_report(
            "toy", {"speed": metric(old_value, "x")},
            salt="repro-cell-v2-toy"), old)
        write_report(build_report(
            "toy", {"speed": metric(new_value, "x")},
            salt="repro-cell-v2-toy"), new)
        args = ["compare", str(old), str(new)]
        if threshold is not None:
            args += ["--threshold", str(threshold)]
        return cli.main_bench(args)

    def test_compare_identical_passes(self, tmp_path, capsys):
        assert self.compare(tmp_path, 4.0, 4.0) == 0
        out = capsys.readouterr().out
        assert "ok  speed" in out
        assert "0 regression(s)" in out

    def test_compare_regression_exits_non_zero(self, tmp_path, capsys):
        # Acceptance criterion: a >= 10% injected regression fails.
        assert self.compare(tmp_path, 4.0, 3.5) == 1
        out = capsys.readouterr().out
        assert "REGRESSION  speed" in out
        assert "1 regression(s)" in out

    def test_compare_threshold_flag(self, tmp_path, capsys):
        assert self.compare(tmp_path, 4.0, 3.5, threshold=0.2) == 0

    def test_compare_unreadable_report_exits_two(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        code = cli.main_bench(["compare", str(bogus), str(bogus)])
        assert code == 2
        assert "repro-bench:" in capsys.readouterr().err


class TestTracerouteCli:
    def test_inria_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "inria-umd"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Ithaca.NY.NSS.NSF.NET" in output
        assert "mimsy.umd.edu" in output

    def test_pitt_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "umd-pitt"])
        assert code == 0
        assert "pitt" in capsys.readouterr().out
