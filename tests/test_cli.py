"""Tests for the command-line entry points."""

import pytest

from repro import cli


class TestExperimentCli:
    def test_basic_run(self, capsys):
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "20",
                                    "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "probes sent: 200" in output
        assert "loss: ulp" in output
        assert "delay ms:" in output

    def test_save_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.csv"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                                    "--save-trace", str(path)])
        assert code == 0
        assert path.exists()
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(path)
        assert len(trace) == 100

    def test_umd_pitt_scenario(self, capsys):
        code = cli.main_experiment(["--delta-ms", "50", "--duration", "10",
                                    "--scenario", "umd-pitt"])
        assert code == 0

    def test_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "kernel trace written to" in output
        from repro.obs import read_events_jsonl, read_hops_jsonl
        assert read_events_jsonl(path)
        assert read_hops_jsonl(tmp_path / "events_hops.jsonl")

    def test_trace_chrome_inferred_from_extension(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path)])
        assert code == 0
        assert "chrome trace written to" in capsys.readouterr().out
        from repro.obs import read_chrome_trace
        rows = read_chrome_trace(path)
        assert {row["cat"] for row in rows} == {"kernel", "packet"}

    def test_trace_format_override(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--trace", str(path),
                                    "--trace-format", "jsonl"])
        assert code == 0
        from repro.obs import read_events_jsonl
        assert read_events_jsonl(path)  # JSONL despite the .json suffix

    def test_metrics_flag(self, capsys):
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--metrics"])
        assert code == 0
        output = capsys.readouterr().out
        assert "metrics (" in output
        assert "netdyn/probes_sent = 50" in output

    def test_manifest_flag(self, tmp_path, capsys):
        path = tmp_path / "manifest.json"
        code = cli.main_experiment(["--delta-ms", "100", "--duration", "5",
                                    "--seed", "2", "--manifest", str(path)])
        assert code == 0
        from repro.obs import read_manifest
        manifest = read_manifest(path)
        assert manifest["config"]["seed"] == 2
        assert manifest["metrics"]["netdyn"]["probes_sent"] == 50

    def test_observed_run_matches_bare_run(self, tmp_path, capsys):
        bare = tmp_path / "bare.csv"
        observed = tmp_path / "observed.csv"
        cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                             "--seed", "5", "--save-trace", str(bare)])
        cli.main_experiment(["--delta-ms", "100", "--duration", "10",
                             "--seed", "5", "--save-trace", str(observed),
                             "--trace", str(tmp_path / "t.json"),
                             "--metrics"])
        assert bare.read_bytes() == observed.read_bytes()


class TestCampaignCli:
    def test_basic_grid(self, capsys):
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1", "2",
                                  "--duration", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 deltas x 2 seeds = 2 cells" in out
        assert "100ms" in out
        assert "drops" in out  # queue table rendered

    def test_output_dir_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "campaign"
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5", "--workers", "2",
                                  "--output-dir", str(out_dir)])
        assert code == 0
        assert (out_dir / "trace_d100_s1.csv").exists()
        from repro.obs import read_manifest, read_timing
        manifest = read_manifest(out_dir / "manifest.json")
        assert manifest["extra"]["traces"] == ["trace_d100_s1.csv"]
        timing = read_timing(out_dir / "timing.json")
        assert timing["workers"] == 2

    def test_workers_validation(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--workers", "0"])

    def test_cache_dir_flag_warm_run_all_hits(self, tmp_path, capsys):
        args = ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main_campaign(args) == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out
        assert cli.main_campaign(args) == 0
        assert "cache: 1 hit, 0 misses" in capsys.readouterr().out

    def test_no_cache_overrides_cache_dir(self, tmp_path, capsys):
        code = cli.main_campaign(
            ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
             "--cache-dir", str(tmp_path / "cache"), "--no-cache"])
        assert code == 0
        assert "cache:" not in capsys.readouterr().out
        assert not (tmp_path / "cache").exists()

    def test_env_var_default_cache_dir(self, tmp_path, capsys,
                                       monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        code = cli.main_campaign(["--deltas-ms", "100", "--seeds", "1",
                                  "--duration", "5"])
        assert code == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out
        assert list((tmp_path / "envcache").glob("*.npz"))

    def test_refresh_requires_cache_dir(self):
        with pytest.raises(SystemExit):
            cli.main_campaign(["--refresh"])
        with pytest.raises(SystemExit):
            cli.main_campaign(["--refresh", "--no-cache",
                               "--cache-dir", "somewhere"])

    def test_refresh_recomputes(self, tmp_path, capsys):
        base = ["--deltas-ms", "100", "--seeds", "1", "--duration", "5",
                "--cache-dir", str(tmp_path / "cache")]
        assert cli.main_campaign(base) == 0
        capsys.readouterr()
        assert cli.main_campaign(base + ["--refresh"]) == 0
        assert "cache: 0 hits, 1 miss" in capsys.readouterr().out


class TestFiguresCli:
    def test_single_figure(self, capsys):
        code = cli.main_figures(["table1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert "comparison rows passed" in output

    def test_render_flag(self, capsys):
        cli.main_figures(["table1", "--render"])
        output = capsys.readouterr().out
        assert "tom.inria.fr" in output

    def test_unknown_name_rejected(self):
        with pytest.raises(SystemExit):
            cli.main_figures(["figure99"])

    def test_export_dir_writes_csv(self, tmp_path, capsys):
        code = cli.main_figures(["figure1", "--export-dir", str(tmp_path)])
        assert code == 0
        written = sorted(p.name for p in tmp_path.iterdir())
        assert "figure1_trace.csv" in written
        assert "figure1_phase.csv" in written
        assert "figure1_workload_hist.csv" in written
        from repro.netdyn.trace import ProbeTrace
        trace = ProbeTrace.load_csv(tmp_path / "figure1_trace.csv")
        assert len(trace) == 800


class TestTracerouteCli:
    def test_inria_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "inria-umd"])
        assert code == 0
        output = capsys.readouterr().out
        assert "Ithaca.NY.NSS.NSF.NET" in output
        assert "mimsy.umd.edu" in output

    def test_pitt_route(self, capsys):
        code = cli.main_traceroute(["--scenario", "umd-pitt"])
        assert code == 0
        assert "pitt" in capsys.readouterr().out
