"""Tests for CSV figure-data export."""

import csv

import pytest

from repro.errors import AnalysisError
from repro.plotting.export import export_columns, export_histogram


class TestExportColumns:
    def test_writes_header_and_rows(self, tmp_path):
        path = tmp_path / "fig.csv"
        export_columns(path, ["x", "y"], [1.0, 2.0], [3.0, 4.0])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "3"]
        assert len(rows) == 3

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "fig.csv"
        export_columns(path, ["x"], [1.0])
        assert path.exists()

    def test_header_count_checked(self, tmp_path):
        with pytest.raises(AnalysisError):
            export_columns(tmp_path / "f.csv", ["x"], [1.0], [2.0])

    def test_length_mismatch_checked(self, tmp_path):
        with pytest.raises(AnalysisError):
            export_columns(tmp_path / "f.csv", ["x", "y"], [1.0], [2.0, 3.0])

    def test_precision_preserved(self, tmp_path):
        path = tmp_path / "fig.csv"
        export_columns(path, ["v"], [0.123456789])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert float(rows[1][0]) == pytest.approx(0.123456789)


class TestExportHistogram:
    def test_bin_rows(self, tmp_path):
        path = tmp_path / "hist.csv"
        export_histogram(path, [5, 7], [0.0, 1.0, 2.0])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["bin_lo", "bin_hi", "count"]
        assert rows[1] == ["0", "1", "5"]
        assert rows[2] == ["1", "2", "7"]

    def test_edges_checked(self, tmp_path):
        with pytest.raises(AnalysisError):
            export_histogram(tmp_path / "h.csv", [1], [0.0])
