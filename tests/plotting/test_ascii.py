"""Tests for the ASCII figure renderers."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.plotting.ascii import histogram, line, scatter


class TestScatter:
    def test_renders_title_and_scale(self):
        output = scatter([1.0, 2.0], [1.0, 2.0], title="phase")
        assert output.startswith("phase")
        assert "[1, 2]" in output

    def test_diagonal_drawn(self):
        output = scatter([0.0, 10.0], [0.0, 10.0], width=20, height=10,
                         diagonal=True)
        assert "/" in output

    def test_dense_regions_marked_darker(self):
        x = [1.0] * 100 + [2.0]
        y = [1.0] * 100 + [2.0]
        output = scatter(x, y, width=10, height=5)
        assert "#" in output  # the dense cell
        assert "." in output or ":" in output or "*" in output

    def test_dimension_mismatch(self):
        with pytest.raises(AnalysisError):
            scatter([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            scatter([], [])

    def test_constant_data_no_crash(self):
        output = scatter([1.0, 1.0], [1.0, 1.0])
        assert output

    def test_output_width_bounded(self):
        output = scatter(np.random.default_rng(0).random(500),
                         np.random.default_rng(1).random(500),
                         width=40, height=12)
        for row in output.splitlines():
            assert len(row) <= 42  # border + width + slack


class TestLine:
    def test_losses_marked(self):
        output = line([0.1, 0.2, 0.0, 0.3], missing=[False, False, True,
                                                     False])
        assert "x" in output
        assert "(x = loss)" in output

    def test_scale_footer(self):
        output = line([1.0, 5.0], y_label="rtt")
        assert "rtt" in output
        assert "[1, 5]" in output

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            line([])

    def test_all_missing_rejected(self):
        with pytest.raises(AnalysisError):
            line([0.0, 0.0], missing=[True, True])

    def test_more_samples_than_columns(self):
        output = line(list(np.sin(np.linspace(0, 10, 500)) + 2), width=40)
        assert output  # bucketing must not crash

    def test_constant_series(self):
        output = line([1.0, 1.0, 1.0])
        assert output


class TestHistogram:
    def test_counts_shown(self):
        output = histogram([5, 10, 2], [0.0, 1.0, 2.0, 3.0])
        assert " 5" in output
        assert " 10" in output

    def test_bar_lengths_proportional(self):
        output = histogram([1, 10], [0.0, 1.0, 2.0], width=20)
        rows = [r for r in output.splitlines() if "|" in r]
        assert rows[1].count("#") > rows[0].count("#")

    def test_min_count_filters_rows(self):
        output = histogram([1, 100], [0.0, 1.0, 2.0], min_count=50)
        rows = [r for r in output.splitlines() if "|" in r]
        assert len(rows) == 1

    def test_edges_length_checked(self):
        with pytest.raises(AnalysisError):
            histogram([1, 2], [0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            histogram([], [0.0])
