"""Warm worker pool: lease planning, transports, handshake, serving.

The pool is pure transport — it moves CellResults between processes but
computes nothing — so these tests pin three things: the lease partition
is deterministic, both transports (shared memory and the inline-pickle
fallback) reproduce CellResults exactly, and the salt handshake refuses
stale workers.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import pool as pool_module
from repro.experiments.campaign import CampaignSpec, CellResult, _run_cell
from repro.experiments.pool import (
    LeaseError,
    StaleWorkerError,
    WarmWorkerPool,
    pack_lease,
    plan_leases,
    unpack_lease,
)
from repro.netdyn.trace import ProbeTrace

#: Injected handshake salt: skips the (slow) source analysis in tests
#: that only exercise the transport, not the staleness check itself.
TEST_SALT = "repro-cell-v2-test"


def analytic_spec(**kwargs):
    defaults = dict(deltas=(0.05, 0.1), seeds=(1, 2), duration=5.0,
                    scenario_kwargs={"utilization_fwd": 0.3,
                                     "utilization_rev": 0.3},
                    mode="analytic")
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def fast_pool(workers=2, **kwargs):
    kwargs.setdefault("expected_salt", TEST_SALT)
    kwargs.setdefault("worker_salt", TEST_SALT)
    return WarmWorkerPool(workers, **kwargs)


def make_cell(delta=0.05, seed=1, n=16):
    rng = np.random.default_rng(seed)
    trace = ProbeTrace(delta=delta,
                       send_times=np.arange(n) * delta,
                       rtts=rng.uniform(0.1, 0.2, size=n),
                       meta={"seed": seed, "scenario": "test"})
    return CellResult(delta=delta, seed=seed, trace=trace,
                      queue_stats={"a->b": {"drops": 1.0, "arrivals": 9.0}},
                      metrics={"ulp": 0.1, "clp": 0.2, "mean_rtt": 0.15},
                      wall_seconds=0.5)


def assert_cells_equal(rebuilt, originals, compare_wall=True):
    # ``compare_wall=False`` when the two sides are independent *runs*:
    # wall seconds are host bookkeeping, not a deterministic output.
    assert len(rebuilt) == len(originals)
    for got, want in zip(rebuilt, originals):
        assert got.delta == want.delta
        assert got.seed == want.seed
        assert got.queue_stats == want.queue_stats
        # dict order must survive the transport (byte-identity depends
        # on it downstream), not just dict equality.
        assert list(got.metrics) == list(want.metrics)
        assert got.metrics == want.metrics
        if compare_wall:
            assert got.wall_seconds == want.wall_seconds
        assert np.array_equal(got.trace.send_times, want.trace.send_times)
        assert np.array_equal(got.trace.rtts, want.trace.rtts)
        assert got.trace.meta == want.trace.meta
        assert got.trace.delta == want.trace.delta


class TestPlanLeases:
    def test_empty_grid(self):
        assert plan_leases([], workers=4) == []

    def test_explicit_batch_size_partitions_contiguously(self):
        cells = [(0.1, s) for s in range(7)]
        leases = plan_leases(cells, workers=2, batch_size=3)
        assert leases == [cells[0:3], cells[3:6], cells[6:7]]

    def test_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            plan_leases([(0.1, 1)], workers=1, batch_size=0)

    def test_deterministic(self):
        cells = [(0.05, s) for s in range(16)]
        assert plan_leases(cells, 2) == plan_leases(cells, 2)

    def test_auto_tune_fair_share(self):
        # 16 cells over 2 workers x LEASES_PER_WORKER leases -> batch 2.
        cells = [(0.05, s) for s in range(16)]
        leases = plan_leases(cells, workers=2)
        assert all(len(lease) == 2 for lease in leases)
        assert [cell for lease in leases for cell in lease] == cells

    def test_auto_tune_shrinks_for_expensive_cells(self):
        # A cell estimated above TARGET_LEASE_SECONDS forces batch 1.
        cells = [(0.05, s) for s in range(16)]
        leases = plan_leases(cells, workers=2, cell_seconds=5.0)
        assert all(len(lease) == 1 for lease in leases)

    def test_cheap_cells_keep_fair_share(self):
        cells = [(0.05, s) for s in range(16)]
        assert plan_leases(cells, workers=2, cell_seconds=1e-3) \
            == plan_leases(cells, workers=2)

    def test_covers_grid_for_any_batch_size(self):
        cells = [(0.1, s) for s in range(11)]
        for batch in (1, 2, 3, 5, 11, 50):
            leases = plan_leases(cells, workers=3, batch_size=batch)
            assert [cell for lease in leases for cell in lease] == cells


class TestSeedAffinity:
    #: δ-major grid order, the shape CampaignSpec.cells() produces.
    GRID = [(delta, seed) for delta in (0.05, 0.1, 0.2) for seed in (1, 2)]

    def test_regroups_seed_major_preserving_delta_order(self):
        leases = plan_leases(self.GRID, workers=1, batch_size=3,
                             affinity="seed")
        assert leases == [[(0.05, 1), (0.1, 1), (0.2, 1)],
                          [(0.05, 2), (0.1, 2), (0.2, 2)]]

    def test_lease_never_straddles_seeds(self):
        leases = plan_leases(self.GRID, workers=1, batch_size=2,
                             affinity="seed")
        for lease in leases:
            assert len({seed for _, seed in lease}) == 1
        assert leases == [[(0.05, 1), (0.1, 1)], [(0.2, 1)],
                          [(0.05, 2), (0.1, 2)], [(0.2, 2)]]

    def test_covers_grid_exactly(self):
        for batch in (1, 2, 3, 7):
            leases = plan_leases(self.GRID, workers=2, batch_size=batch,
                                 affinity="seed")
            flat = [cell for lease in leases for cell in lease]
            assert sorted(flat) == sorted(self.GRID)
            assert len(flat) == len(self.GRID)

    def test_deterministic(self):
        assert plan_leases(self.GRID, 2, affinity="seed") \
            == plan_leases(self.GRID, 2, affinity="seed")

    def test_none_affinity_unchanged(self):
        assert plan_leases(self.GRID, 2, batch_size=2, affinity=None) \
            == plan_leases(self.GRID, 2, batch_size=2)

    def test_unknown_affinity_rejected(self):
        with pytest.raises(ConfigurationError):
            plan_leases(self.GRID, 2, affinity="delta")


class TestLeaseTransports:
    def test_shm_round_trip(self):
        originals = [make_cell(seed=1), make_cell(seed=2, n=33)]
        payload = pack_lease(originals, use_shm=True)
        if pool_module._shared_memory is None:  # pragma: no cover
            pytest.skip("platform without multiprocessing.shared_memory")
        assert payload["transport"] == "shm"
        assert payload["shm_bytes"] == sum(
            cell.trace.send_times.nbytes + cell.trace.rtts.nbytes
            for cell in originals)
        cells, info = unpack_lease(payload)
        assert info == {"transport": "shm",
                        "shm_bytes": payload["shm_bytes"]}
        assert_cells_equal(cells, originals)

    def test_inline_round_trip(self):
        originals = [make_cell(seed=3)]
        payload = pack_lease(originals, use_shm=False)
        assert payload["transport"] == "inline"
        assert payload["shm_bytes"] == 0
        cells, info = unpack_lease(payload)
        assert info == {"transport": "inline", "shm_bytes": 0}
        assert_cells_equal(cells, originals)

    def test_fallback_when_shared_memory_missing(self, monkeypatch):
        monkeypatch.setattr(pool_module, "_shared_memory", None)
        payload = pack_lease([make_cell()], use_shm=True)
        assert payload["transport"] == "inline"

    def test_fallback_when_shm_packing_fails(self, monkeypatch):
        def boom(records, arrays, tracer):
            raise OSError("no /dev/shm")
        monkeypatch.setattr(pool_module, "_pack_shm", boom)
        originals = [make_cell(seed=4)]
        payload = pack_lease(originals, use_shm=True)
        assert payload["transport"] == "inline"
        cells, _ = unpack_lease(payload)
        assert_cells_equal(cells, originals)

    def test_empty_lease(self):
        payload = pack_lease([], use_shm=True)
        cells, _ = unpack_lease(payload)
        assert cells == []


class TestWarmWorkerPool:
    def test_worker_count_validation(self):
        with pytest.raises(ConfigurationError):
            WarmWorkerPool(0)

    def test_handshake_accepts_matching_salt(self):
        with fast_pool(workers=2) as pool:
            assert pool.started
            assert pool.salt == TEST_SALT
            assert len(pool.worker_pids) == 2
        assert not pool.started

    def test_handshake_refuses_stale_worker(self):
        pool = fast_pool(workers=1, worker_salt="repro-cell-v2-stale")
        with pytest.raises(StaleWorkerError, match="stale"):
            pool.start()
        assert not pool.started  # refused pool fully torn down

    def test_start_is_idempotent(self):
        with fast_pool(workers=1) as pool:
            pids = pool.worker_pids
            pool.start()
            assert pool.worker_pids == pids

    def test_close_is_idempotent(self):
        pool = fast_pool(workers=1).start()
        pool.close()
        pool.close()

    def test_serves_leases_matching_serial_results(self):
        spec = analytic_spec()
        grid = spec.cells()
        leases = plan_leases(grid, workers=2, batch_size=1)
        with fast_pool(workers=2) as pool:
            served = {}
            for index, cells, info in pool.run_leases(spec, leases):
                served[index] = cells
                assert info["transport"] in ("shm", "inline")
            assert pool.leases_served == len(leases)
            assert pool.shm_leases + pool.inline_leases == len(leases)
        assert sorted(served) == list(range(len(leases)))
        flat = [cell for index in sorted(served)
                for cell in served[index]]
        reference = [_run_cell(spec, delta, seed) for delta, seed in grid]
        assert_cells_equal(flat, reference, compare_wall=False)

    def test_worker_failure_raises_lease_error_and_closes(self):
        spec = analytic_spec()
        pool = fast_pool(workers=1).start()
        with pytest.raises(LeaseError, match="lease 0 failed"):
            # delta <= 0 fails config validation inside the worker.
            list(pool.run_leases(spec, [[(-1.0, 1)]]))
        assert not pool.started

    def test_pool_reusable_across_campaigns(self, tmp_path):
        from repro.experiments.campaign import run_campaign
        spec_a = analytic_spec(output_dir=tmp_path / "a")
        spec_b = analytic_spec(output_dir=tmp_path / "b")
        serial = run_campaign(analytic_spec(output_dir=tmp_path / "s"))
        with fast_pool(workers=2) as pool:
            first = run_campaign(spec_a, pool=pool)
            served_after_first = pool.leases_served
            second = run_campaign(spec_b, pool=pool)
            assert pool.started  # shared pool left running
            assert served_after_first > 0
            assert pool.leases_served > served_after_first
        assert first.table() == serial.table() == second.table()
        for name in ("manifest.json",):
            assert (tmp_path / "a" / name).read_bytes() \
                == (tmp_path / "s" / name).read_bytes()
            assert (tmp_path / "b" / name).read_bytes() \
                == (tmp_path / "s" / name).read_bytes()
