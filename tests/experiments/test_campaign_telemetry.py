"""Campaign telemetry: spans/progress must never perturb the results.

The zero-perturbation invariant (DESIGN.md), extended to campaign
telemetry: a same-seed campaign with spans and progress enabled produces
byte-identical ``manifest.json``, summary tables, and per-cell trace CSVs
versus one with telemetry off.  Wall-clock data is quarantined in the
span directory and the ``timing.json`` sidecar.
"""

import io

from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.obs import read_timing
from repro.obs.export import read_chrome_trace, read_spans_jsonl
from repro.obs.progress import ProgressReporter
from repro.obs.spans import (
    CHROME_SPAN_FILE,
    MERGED_SPAN_FILE,
    PHASE_ANALYSIS,
    PHASE_CAMPAIGN,
    PHASE_CELL,
    PHASE_LEASE,
    PHASE_MERGE,
    PHASE_SETUP,
    PHASE_SHM,
    PHASE_SIM,
    read_span_dir,
)


def grid_spec(output_dir, **kwargs):
    defaults = dict(deltas=(0.1, 0.2), seeds=(1, 2), duration=5.0,
                    scenario_kwargs={"utilization_fwd": 0.3,
                                     "utilization_rev": 0.3},
                    output_dir=output_dir)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def quiet_reporter(total=4, workers=2):
    return ProgressReporter(total=total, workers=workers,
                            stream=io.StringIO())


class TestZeroPerturbation:
    def test_telemetry_on_is_byte_identical_to_off(self, tmp_path):
        """Acceptance criterion: spans+progress change no deterministic
        artifact — not the manifest, not the tables, not one trace CSV."""
        plain_dir = tmp_path / "plain"
        traced_dir = tmp_path / "traced"
        plain = run_campaign(grid_spec(plain_dir), workers=1)
        traced = run_campaign(grid_spec(traced_dir), workers=2,
                              spans=True, progress=quiet_reporter())

        assert plain.table() == traced.table()
        assert plain.queue_table() == traced.queue_table()
        assert (plain_dir / "manifest.json").read_bytes() \
            == (traced_dir / "manifest.json").read_bytes()
        names = sorted(p.name for p in plain_dir.glob("trace_*.csv"))
        assert names == sorted(p.name
                               for p in traced_dir.glob("trace_*.csv"))
        assert len(names) == 4
        for name in names:
            assert (plain_dir / name).read_bytes() \
                == (traced_dir / name).read_bytes(), name

    def test_span_artifacts_quarantined_outside_manifest(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)),
                     spans=True)
        manifest = (tmp_path / "manifest.json").read_text()
        assert "span" not in manifest
        timing = read_timing(tmp_path / "timing.json")
        assert "spans" in timing


class TestSpanRecording:
    def test_merged_spans_cover_every_phase(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1, 2)),
                     workers=2, spans=True)
        span_dir = tmp_path / "spans"
        merged = read_spans_jsonl(span_dir / MERGED_SPAN_FILE)
        phases = {span.phase for span in merged}
        assert {PHASE_CAMPAIGN, PHASE_CELL, PHASE_SETUP, PHASE_SIM,
                PHASE_ANALYSIS, PHASE_MERGE} <= phases
        cells = {span.cell for span in merged if span.phase == PHASE_CELL}
        assert cells == {"d100_s1", "d100_s2"}
        # Grid order, not completion order: s1's spans precede s2's.
        cell_sequence = [span.cell for span in merged if span.cell]
        assert cell_sequence == sorted(cell_sequence)

    def test_worker_files_cleaned_after_merge(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)),
                     workers=2, spans=True)
        span_dir = tmp_path / "spans"
        assert read_span_dir(span_dir) == []  # per-worker files gone
        assert (span_dir / MERGED_SPAN_FILE).exists()

    def test_chrome_trace_written_for_campaign(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)),
                     spans=True)
        rows = read_chrome_trace(tmp_path / "spans" / CHROME_SPAN_FILE)
        assert rows
        assert all(row["cat"] == "span" and row["ph"] == "X"
                   for row in rows)
        assert any(row["args"]["phase"] == PHASE_SIM for row in rows)

    def test_explicit_span_dir_without_output_dir(self, tmp_path):
        span_dir = tmp_path / "just-spans"
        run_campaign(grid_spec(None, deltas=(0.1,), seeds=(1,)),
                     spans=span_dir)
        assert (span_dir / MERGED_SPAN_FILE).exists()

    def test_stale_worker_files_ignored(self, tmp_path):
        # A crashed earlier run leaves worker files behind; a new run
        # must not merge those foreign records into its own log.
        from repro.obs.spans import SpanRecord, append_spans
        span_dir = tmp_path / "spans"
        span_dir.mkdir(parents=True)
        append_spans(span_dir, [SpanRecord(
            name="stale", phase="cell", start=1.0, duration=1.0,
            pid=999, worker="w999", cell="d999_s9")])
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)),
                     spans=True)
        merged = read_spans_jsonl(span_dir / MERGED_SPAN_FILE)
        assert all(span.name != "stale" for span in merged)

    def test_spans_off_touches_nothing(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)))
        assert not (tmp_path / "spans").exists()

    def test_timing_summary_aggregates_phases(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1, 2)),
                     spans=True)
        summary = read_timing(tmp_path / "timing.json")["spans"]
        assert summary[PHASE_CELL]["count"] == 2
        assert summary[PHASE_SIM]["count"] == 2
        assert summary[PHASE_CAMPAIGN]["count"] == 1
        assert summary[PHASE_SIM]["total_seconds"] > 0

    def test_warm_pool_records_lease_and_shm_phases(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1, 2)),
                     workers=2, spans=True)
        merged = read_spans_jsonl(tmp_path / "spans" / MERGED_SPAN_FILE)
        phases = {span.phase for span in merged}
        assert PHASE_LEASE in phases
        lease_spans = [span for span in merged
                       if span.phase == PHASE_LEASE]
        # Both sides of the hand-off are timed: the worker serving the
        # lease and the parent folding its cells.
        assert any("collect" in span.name for span in lease_spans)
        assert any("collect" not in span.name for span in lease_spans)
        timing = read_timing(tmp_path / "timing.json")
        if timing["dispatch"]["shm_leases"]:
            assert PHASE_SHM in phases


class TestDispatchTelemetry:
    def test_timing_records_dispatch_block(self, tmp_path):
        run_campaign(grid_spec(tmp_path), workers=2)
        dispatch = read_timing(tmp_path / "timing.json")["dispatch"]
        assert dispatch["pool"] == "warm"
        assert dispatch["workers"] == 2
        assert dispatch["leases"] > 0
        assert dispatch["batch_size"] >= 1
        assert dispatch["shm_leases"] + dispatch["inline_leases"] \
            == dispatch["leases"]

    def test_serial_dispatch_block(self, tmp_path):
        run_campaign(grid_spec(tmp_path, deltas=(0.1,), seeds=(1,)))
        dispatch = read_timing(tmp_path / "timing.json")["dispatch"]
        assert dispatch == {"pool": "serial", "workers": 1, "leases": 0,
                            "batch_size": 0, "shm_leases": 0,
                            "inline_leases": 0, "shm_bytes": 0,
                            "replay_memo": True, "replay_hits": 0,
                            "replay_misses": 0}

    def test_dispatch_quarantined_outside_manifest(self, tmp_path):
        run_campaign(grid_spec(tmp_path), workers=2)
        manifest = (tmp_path / "manifest.json").read_text()
        for word in ("dispatch", "lease", "shm", "pool"):
            assert word not in manifest


class TestProgressFeed:
    def test_reporter_sees_every_cell(self, tmp_path):
        reporter = quiet_reporter(total=4, workers=2)
        run_campaign(grid_spec(None), workers=2, progress=reporter)
        assert reporter.done == 4
        assert reporter.cached == 0
        assert reporter.busy_seconds > 0
        output = reporter.stream.getvalue()
        assert "campaign 4/4 cells" in output
        assert output.endswith("\n")  # finished line

    def test_cache_hits_reported_separately(self, tmp_path):
        from repro.experiments.cache import CampaignCache
        cache = CampaignCache(tmp_path / "cache")
        spec = grid_spec(None, deltas=(0.1,), seeds=(1, 2))
        run_campaign(spec, cache=cache)  # cold fill
        reporter = quiet_reporter(total=2, workers=1)
        run_campaign(spec, cache=cache, progress=reporter)
        assert reporter.done == 2
        assert reporter.cached == 2

    def test_progress_off_by_default_writes_nothing(self, capsys):
        run_campaign(grid_spec(None, deltas=(0.1,), seeds=(1,)))
        captured = capsys.readouterr()
        assert captured.err == ""
