"""Smoke tests for the figure/table reproduction functions.

The full-length reproductions run in the benchmark suite; here each
function runs with a reduced sample count and must produce a structurally
complete result (rows, rendering) with the cheap checks passing.
"""

import pytest

from repro.experiments import figures


class TestRoutes:
    def test_table1(self):
        result = figures.table1()
        assert result.all_ok
        assert "tom.inria.fr" in result.rendering
        assert "avwhub-gw.umd.edu" in result.rendering

    def test_table2(self):
        result = figures.table2()
        assert result.all_ok
        assert "lena.cs.umd.edu" in result.rendering


class TestDelayFigures:
    def test_figure1_structure(self):
        result = figures.figure1(seed=1, count=400)
        assert result.trace is not None
        assert len(result.trace) == 400
        assert result.rendering
        names = [row.name for row in result.rows]
        assert "loss probability" in names
        assert "min rtt (D)" in names

    def test_figure2_estimates_bottleneck(self):
        result = figures.figure2(seed=1, count=1200)
        assert result.all_ok, result.summary()

    def test_figure4_diagonal(self):
        result = figures.figure4(seed=1, count=400)
        assert any("diagonal" in row.name for row in result.rows)

    def test_figure5_clock_banding(self):
        result = figures.figure5(seed=1, count=1200)
        banding = [r for r in result.rows if "banding" in r.name]
        assert banding and banding[0].ok

    def test_figure6_diagonal(self):
        result = figures.figure6(seed=1, count=1200)
        assert result.all_ok, result.summary()


class TestWorkloadFigures:
    def test_figure8_peaks(self):
        result = figures.figure8(seed=1, duration=150.0)
        assert result.all_ok, result.summary()
        assert result.rendering

    def test_figure9_relative_heights(self):
        result = figures.figure9(seed=1, duration=200.0)
        ratio_rows = [r for r in result.rows if "ratio" in r.name]
        assert ratio_rows and ratio_rows[0].ok


class TestTable3:
    def test_shape_checks(self):
        result = figures.table3(seed=2, duration=60.0,
                                deltas=(0.008, 0.05, 0.5))
        assert result.rendering.count("ms") >= 3

    def test_comparison_rows_present(self):
        result = figures.table3(seed=2, duration=60.0,
                                deltas=(0.008, 0.05, 0.5))
        assert len(result.rows) == 5


class TestFigureResult:
    def test_summary_contains_status(self):
        result = figures.FigureResult("X", "test")
        result.add("a", "1", "2", True)
        result.add("b", "1", "3", False)
        summary = result.summary()
        assert "[OK ]" in summary
        assert "[MISS]" in summary
        assert not result.all_ok

    def test_registry_complete(self):
        expected = {"table1", "table2", "figure1", "figure2", "figure4",
                    "figure5", "figure6", "figure8", "figure9", "table3"}
        assert set(figures.ALL_FIGURES) == expected
