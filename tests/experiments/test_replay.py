"""Cross-traffic replay reuse: prefix exactness, memoization, executors.

The grid-batched analytic engine builds each seed's cross-traffic replay
once and slices it per cell.  Correctness rests on one property — a
replay built at a long horizon, cut at a shorter one, is *bit-identical*
to a fresh build at that shorter horizon (emission generation truncates
only the tail and every downstream pass is causal) — and on the memo
being pure execution mechanics: artifacts are byte-identical with the
memo on or off, across every campaign executor, and memo accounting
never leaks outside ``timing.json``.
"""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import fastforward as ff
from repro.experiments.cache import cache_salt, replay_fingerprint
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import build_scenario
from repro.obs.spans import PHASE_REPLAY, SpanTracer

#: Light mix so replay builds stay fast; deep buffer so every cell takes
#: the vectorized no-drop path.
LIGHT_KWARGS = {"utilization_fwd": 0.3, "utilization_rev": 0.3,
                "buffer_packets": 512}


def config_for(delta=0.05, duration=5.0, seed=1, **overrides):
    return ExperimentConfig(delta=delta, duration=duration, seed=seed,
                            scenario="inria-umd",
                            scenario_kwargs=dict(LIGHT_KWARGS),
                            mode="analytic", **overrides)


def assert_stream_prefix(long, short):
    """``short`` must be a bitwise prefix of ``long`` (same build rules)."""
    n = short.emit_times.size
    assert np.array_equal(long.emit_times[:n], short.emit_times)
    assert np.array_equal(long.arrivals[:n], short.arrivals)
    assert np.array_equal(long.bits[:n], short.bits)
    assert np.array_equal(long.peak_backlogs[:n], short.peak_backlogs)


class TestPrefixProperty:
    def test_short_build_is_bitwise_prefix_of_long(self):
        long = ff.build_cross_replay(build_scenario(config_for()), 90.0)
        short = ff.build_cross_replay(build_scenario(config_for()), 40.0)
        for side in (0, 1):
            assert_stream_prefix(long.streams[side], short.streams[side])

    def test_slice_matches_fresh_build_across_deltas(self):
        """One long replay serves every δ's horizon bit-for-bit."""
        configs = [config_for(delta=delta)
                   for delta in (0.02, 0.05, 0.1, 0.25)]
        horizons = [ff.cell_horizon(config) for config in configs]
        long = ff.build_cross_replay(build_scenario(configs[0]),
                                     max(horizons))
        for config, horizon in zip(configs, horizons):
            fresh = ff.build_cross_replay(build_scenario(config), horizon)
            for side in (0, 1):
                sliced = ff.slice_stream(long.streams[side], horizon)
                direct = ff.slice_stream(fresh.streams[side], horizon)
                assert np.array_equal(sliced[0], direct[0])
                assert np.array_equal(sliced[1], direct[1])

    def test_slice_certificate_matches_fresh_scan(self):
        """The running-peak lookup equals a fresh max/min certificate."""
        scenario = build_scenario(config_for())
        stream = ff.build_cross_replay(scenario, 60.0).streams[0]
        for horizon in (10.0, 30.0, 60.0):
            cut = int(np.searchsorted(stream.emit_times, horizon,
                                      side="right"))
            # The stored running peak at the cut must equal the fresh
            # full-scan value over the same prefix (identical float ops).
            fresh_build = ff.build_cross_replay(
                build_scenario(config_for()), horizon).streams[0]
            assert stream.peak_backlogs[cut - 1] == \
                fresh_build.peak_backlogs[cut - 1]

    def test_ftp_vectorized_burst_matches_scalar_loop(self):
        """``np.repeat`` burst emission == the per-packet reference loop."""
        from repro.net.packet import UDP_WIRE_OVERHEAD_BYTES
        from repro.topology.inria_umd import build_inria_umd
        from repro.traffic.ftp import FtpSource
        from repro.units import bytes_to_bits

        def reference_loop(source, horizon):
            rng = source.rng
            wire_bits = float(bytes_to_bits(source.payload_bytes
                                            + UDP_WIRE_OVERHEAD_BYTES))
            times, bits = [], []
            t = rng.exponential(source._mean_session_interval)
            while t <= horizon:
                remaining = int(rng.geometric(source._file_size_p))
                tick = t
                while remaining > 0 and tick <= horizon:
                    burst = min(source.window, remaining)
                    for _ in range(burst):
                        times.append(tick)
                        bits.append(wire_bits)
                    remaining -= burst
                    if remaining > 0:
                        tick = tick + source.window_interval
                t = t + rng.exponential(source._mean_session_interval)
            return np.asarray(times, dtype=float), np.asarray(bits)

        def ftp_source(seed):
            scenario = build_inria_umd(seed=seed, **LIGHT_KWARGS)
            source = scenario.mix_fwd.sources[0]
            assert isinstance(source, FtpSource)
            return source

        vec_times, vec_bits = ff._ftp_emissions(ftp_source(7), 60.0)
        ref_times, ref_bits = reference_loop(ftp_source(7), 60.0)
        assert vec_times.size > 0
        assert np.array_equal(vec_times, ref_times)
        assert np.array_equal(vec_bits, ref_bits)


class TestReplayFingerprint:
    def test_stable_and_salted(self):
        key = replay_fingerprint("inria-umd", LIGHT_KWARGS, 1)
        assert key == replay_fingerprint("inria-umd", dict(LIGHT_KWARGS), 1)
        assert key == replay_fingerprint("inria-umd", LIGHT_KWARGS, 1,
                                         salt=cache_salt())
        assert key != replay_fingerprint("inria-umd", LIGHT_KWARGS, 1,
                                         salt="other-code-version")

    def test_sensitive_to_causal_inputs_only(self):
        key = replay_fingerprint("inria-umd", LIGHT_KWARGS, 1)
        assert key != replay_fingerprint("umd-pitt", LIGHT_KWARGS, 1)
        assert key != replay_fingerprint("inria-umd", LIGHT_KWARGS, 2)
        assert key != replay_fingerprint(
            "inria-umd", dict(LIGHT_KWARGS, utilization_fwd=0.4), 1)

    def test_delta_and_duration_excluded(self):
        """Cells differing only in δ/duration share one replay key."""
        assert ff.replay_key(config_for(delta=0.02, duration=5.0)) == \
            ff.replay_key(config_for(delta=0.5, duration=60.0))


class TestCrossReplayMemo:
    def test_covering_horizon_hits(self):
        memo = ff.CrossReplayMemo()
        replay = ff.CrossReplay(horizon=50.0, streams=(None, None))
        memo.put("k", replay)
        assert memo.get("k", 30.0) is replay
        assert memo.get("k", 50.0) is replay
        assert memo.counters() == (2, 0)

    def test_shorter_entry_misses(self):
        memo = ff.CrossReplayMemo()
        memo.put("k", ff.CrossReplay(horizon=20.0, streams=(None, None)))
        assert memo.get("k", 30.0) is None
        assert memo.counters() == (0, 1)

    def test_lru_eviction_bounds_entries(self):
        memo = ff.CrossReplayMemo(entries=2)
        for key in ("a", "b", "c"):
            memo.put(key, ff.CrossReplay(horizon=1.0,
                                         streams=(None, None)))
        assert len(memo) == 2
        assert memo.get("a", 1.0) is None  # oldest evicted
        assert memo.get("c", 1.0) is not None

    def test_get_refreshes_recency(self):
        memo = ff.CrossReplayMemo(entries=2)
        memo.put("a", ff.CrossReplay(horizon=1.0, streams=(None, None)))
        memo.put("b", ff.CrossReplay(horizon=1.0, streams=(None, None)))
        memo.get("a", 1.0)
        memo.put("c", ff.CrossReplay(horizon=1.0, streams=(None, None)))
        assert memo.get("a", 1.0) is not None  # refreshed, "b" evicted
        assert memo.get("b", 1.0) is None

    def test_rejects_zero_entries(self):
        with pytest.raises(ConfigurationError):
            ff.CrossReplayMemo(entries=0)


class TestGridExecution:
    def grid(self, deltas=(0.05, 0.1), seeds=(1, 2)):
        return [config_for(delta=delta, seed=seed)
                for seed in seeds for delta in deltas]

    def test_grid_matches_percell_bitwise(self):
        configs = self.grid(deltas=(0.02, 0.05, 0.1), seeds=(1, 2))
        percell = [ff.run_fastforward_experiment(c) for c in configs]
        batched = ff.run_fastforward_grid(configs)
        for one, many in zip(percell, batched):
            assert one.mode_used == many.mode_used == "analytic"
            assert np.array_equal(one.trace.rtts, many.trace.rtts,
                                  equal_nan=True)
            assert np.array_equal(one.trace.send_times,
                                  many.trace.send_times)
            assert one.queue_stats == many.queue_stats
            assert one.trace.meta == many.trace.meta

    def test_grid_builds_one_replay_per_seed(self):
        configs = self.grid(deltas=(0.02, 0.05, 0.1), seeds=(1, 2))
        memo = ff.CrossReplayMemo(entries=8)
        ff.run_fastforward_grid(configs, memo=memo)
        assert memo.misses == 2          # one build per seed
        assert memo.hits == len(configs) - 2

    def test_replay_span_on_miss_only(self):
        memo = ff.CrossReplayMemo()
        tracer = SpanTracer(worker="test")
        config = config_for()
        ff.run_fastforward_experiment(config, memo=memo, tracer=tracer)
        ff.run_fastforward_experiment(config, memo=memo, tracer=tracer)
        replay_spans = [r for r in tracer.records
                        if r.phase == PHASE_REPLAY]
        assert len(replay_spans) == 1    # second run hit the memo


@pytest.fixture()
def fresh_process_memo():
    """Reset the process-global memo so hit/miss counts are deterministic."""
    ff._process_memo = None
    yield
    ff._process_memo = None


class TestExecutorMatrix:
    """{serial, warm, spawn} × {memo on, off} ⇒ byte-identical artifacts."""

    DETERMINISTIC = ("manifest.json", "trace_d50_s1.csv",
                     "trace_d50_s2.csv", "trace_d100_s1.csv",
                     "trace_d100_s2.csv")

    def spec(self, tmp_path, name):
        return CampaignSpec(deltas=(0.05, 0.1), seeds=(1, 2), duration=5.0,
                            scenario_kwargs=dict(LIGHT_KWARGS),
                            mode="analytic",
                            output_dir=str(tmp_path / name))

    def read_artifacts(self, tmp_path, name):
        return {artifact: (tmp_path / name / artifact).read_bytes()
                for artifact in self.DETERMINISTIC}

    def test_artifacts_identical_across_executors_and_memo(self, tmp_path):
        cache_salt()  # warm before forking so pool handshakes are cheap
        runs = {
            "serial-on": dict(workers=1, replay_memo=True),
            "serial-off": dict(workers=1, replay_memo=False),
            "warm-on": dict(workers=2, pool="warm", replay_memo=True),
            "warm-off": dict(workers=2, pool="warm", replay_memo=False),
            "spawn-on": dict(workers=2, pool="spawn", replay_memo=True),
            "spawn-off": dict(workers=2, pool="spawn", replay_memo=False),
        }
        artifacts = {}
        for name, kwargs in runs.items():
            run_campaign(self.spec(tmp_path, name), **kwargs)
            artifacts[name] = self.read_artifacts(tmp_path, name)
        baseline = artifacts["serial-on"]
        for name, files in artifacts.items():
            assert files == baseline, \
                f"{name} artifacts diverged from serial-on"

    def test_serial_replay_accounting_in_timing(self, tmp_path,
                                                fresh_process_memo):
        run_campaign(self.spec(tmp_path, "counted"), workers=1)
        timing = json.loads(
            (tmp_path / "counted" / "timing.json").read_text())
        dispatch = timing["dispatch"]
        assert dispatch["replay_memo"] is True
        # Grid order is δ-major (s1, s2, s1, s2): both seeds build once
        # and stay resident, so the second δ sweep hits.
        assert dispatch["replay_misses"] == 2
        assert dispatch["replay_hits"] == 2

    def test_memo_off_counts_nothing(self, tmp_path):
        run_campaign(self.spec(tmp_path, "uncounted"), workers=1,
                     replay_memo=False)
        dispatch = json.loads(
            (tmp_path / "uncounted" / "timing.json").read_text())["dispatch"]
        assert dispatch["replay_memo"] is False
        assert dispatch["replay_hits"] == 0
        assert dispatch["replay_misses"] == 0

    def test_warm_pool_replay_accounting_in_timing(self, tmp_path):
        cache_salt()
        result = run_campaign(self.spec(tmp_path, "warm-counted"),
                              workers=2, pool="warm")
        dispatch = result.dispatch_stats
        assert dispatch["pool"] == "warm"
        # Worker scheduling decides the split, but every build and every
        # reuse is accounted: one event per cell.
        assert dispatch["replay_hits"] + dispatch["replay_misses"] == 4
        assert dispatch["replay_misses"] >= 2  # at least one per seed

    def test_replay_accounting_never_in_manifest(self, tmp_path):
        run_campaign(self.spec(tmp_path, "quarantine"), workers=1)
        manifest = (tmp_path / "quarantine" / "manifest.json").read_text()
        assert "replay" not in manifest
        assert "memo" not in manifest
