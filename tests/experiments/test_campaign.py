"""Tests for measurement campaigns."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    CampaignSpec,
    _run_cell,
    cell_key,
    load_campaign_traces,
    run_campaign,
)


def small_spec(**kwargs):
    defaults = dict(deltas=(0.1,), seeds=(1,), duration=10.0,
                    scenario_kwargs={"utilization_fwd": 0.3,
                                     "utilization_rev": 0.3})
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(), seeds=(1,))
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(0.1,), seeds=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(0.1,), seeds=(1,), duration=0.0)


class TestRunCampaign:
    def test_grid_coverage(self):
        spec = small_spec(deltas=(0.1, 0.2), seeds=(1, 2))
        result = run_campaign(spec)
        assert set(result.traces) == {(0.1, 1), (0.1, 2),
                                      (0.2, 1), (0.2, 2)}
        assert set(result.summaries) == {0.1, 0.2}

    def test_metrics_collected_per_delta(self):
        spec = small_spec(seeds=(1, 2, 3))
        result = run_campaign(spec)
        summary = result.summaries[0.1]
        assert len(summary.values["ulp"]) == 3
        assert "mean_rtt" in summary.values

    def test_traces_saved_and_reloadable(self, tmp_path):
        spec = small_spec(deltas=(0.1, 0.2), seeds=(1,),
                          output_dir=tmp_path)
        result = run_campaign(spec)
        loaded = load_campaign_traces(tmp_path)
        assert len(loaded) == 2
        deltas = sorted(trace.delta for trace in loaded)
        assert deltas == pytest.approx([0.1, 0.2])

    def test_table_renders(self):
        spec = small_spec(seeds=(1, 2))
        result = run_campaign(spec)
        table = result.table()
        assert "100ms" in table
        assert "±" in table  # cross-seed spread shown

    def test_single_seed_table(self):
        result = run_campaign(small_spec())
        assert "±" not in result.table()

    def test_queue_stats_collected_per_cell(self):
        spec = small_spec(deltas=(0.1,), seeds=(1, 2))
        result = run_campaign(spec)
        assert set(result.queue_stats) == {(0.1, 1), (0.1, 2)}
        stats = result.queue_stats[(0.1, 1)]
        assert stats  # at least one queue saw traffic
        for queue_stats in stats.values():
            assert queue_stats["arrivals"] > 0
            assert queue_stats["drops"] >= 0
            assert 0.0 <= queue_stats["loss_fraction"] <= 1.0
            assert queue_stats["occupancy_max_pkts"] >= \
                queue_stats["occupancy_mean_pkts"] >= 0.0

    def test_queue_table_renders(self):
        result = run_campaign(small_spec())
        table = result.queue_table()
        assert "drops" in table
        assert "100ms" in table

    def test_manifest_written_with_campaign(self, tmp_path):
        from repro.obs import read_manifest
        spec = small_spec(output_dir=tmp_path)
        run_campaign(spec)
        manifest = read_manifest(tmp_path / "manifest.json")
        assert manifest["config"]["deltas"] == [0.1]
        assert manifest["config"]["seeds"] == [1]
        assert "repro" in manifest["versions"]
        assert "d100_s1" in manifest["metrics"]["cells"]
        assert "ulp" in manifest["metrics"]["cells"]["d100_s1"]
        assert manifest["extra"]["traces"] == ["trace_d100_s1.csv"]
        queues = manifest["extra"]["queues"]["d100_s1"]
        assert any(stats["arrivals"] > 0 for stats in queues.values())

    def test_no_manifest_without_output_dir(self):
        result = run_campaign(small_spec())
        assert result.spec.output_dir is None  # nothing written anywhere

    def test_umd_pitt_campaign(self):
        spec = CampaignSpec(deltas=(0.05,), seeds=(1,), duration=5.0,
                            scenario="umd-pitt",
                            scenario_kwargs={"utilization_fwd": 0.2,
                                             "utilization_rev": 0.2})
        result = run_campaign(spec)
        assert (0.05, 1) in result.traces

    def test_manifest_ignores_stale_traces(self, tmp_path):
        # Regression: the manifest used to glob the output directory, so a
        # leftover trace from an earlier run in the same directory leaked
        # into the new campaign's artifact list.
        from repro.obs import read_manifest
        (tmp_path / "trace_d999_s9.csv").write_text(
            "n,send_time,rtt\n0,0.0,0.1\n")
        run_campaign(small_spec(output_dir=tmp_path))
        manifest = read_manifest(tmp_path / "manifest.json")
        assert manifest["extra"]["traces"] == ["trace_d100_s1.csv"]

    def test_cell_wall_seconds_recorded(self):
        result = run_campaign(small_spec(seeds=(1, 2)))
        assert set(result.cell_wall_seconds) == {"d100_s1", "d100_s2"}
        assert all(wall > 0 for wall in result.cell_wall_seconds.values())
        assert result.workers == 1

    def test_timing_sidecar_written(self, tmp_path):
        from repro.obs import read_timing
        run_campaign(small_spec(output_dir=tmp_path), workers=2)
        timing = read_timing(tmp_path / "timing.json")
        assert timing["workers"] == 2
        assert set(timing["cell_wall_seconds"]) == {"d100_s1"}
        assert timing["total_cell_seconds"] > 0

    def test_workers_validation(self):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec(), workers=0)

    def test_cell_key(self):
        assert cell_key(0.1, 1) == "d100_s1"
        assert cell_key(0.008, 12) == "d8_s12"

    def test_load_campaign_traces_in_grid_order(self, tmp_path):
        # Regression: traces used to come back in filesystem-glob
        # (lexicographic) order, which puts d100 before d8.  The loader
        # must sort numerically by (delta, seed) parsed from the name.
        def write(name, delta, seed):
            (tmp_path / name).write_text(
                f'# delta={delta!r}\n# meta={{"seed": {seed}}}\n'
                f"n,send_time,rtt\n0,0.0,0.1\n1,{delta},0.2\n")
        write("trace_d100_s2.csv", 0.1, 2)
        write("trace_d100_s1.csv", 0.1, 1)
        write("trace_d8_s1.csv", 0.008, 1)
        write("trace_d50_s10.csv", 0.05, 10)
        write("trace_d50_s9.csv", 0.05, 9)
        loaded = load_campaign_traces(tmp_path)
        assert [(t.delta, t.meta["seed"]) for t in loaded] == \
            [(0.008, 1), (0.05, 9), (0.05, 10), (0.1, 1), (0.1, 2)]


class TestCellMetrics:
    def test_plg_clamp_surfaced(self):
        from repro.experiments.campaign import PLG_CEILING, _cell_metrics
        from repro.netdyn.trace import ProbeTrace

        # Every probe after the first is lost => clp == 1 => plg diverges.
        diverging = ProbeTrace.from_samples(
            delta=0.05, rtts=[0.1] + [0.0] * 20)
        metrics = _cell_metrics(diverging)
        assert metrics["plg"] == PLG_CEILING
        assert metrics["plg_clamped"] is True

        healthy = ProbeTrace.from_samples(
            delta=0.05, rtts=[0.1, 0.0, 0.1, 0.1, 0.0, 0.1] * 5)
        metrics = _cell_metrics(healthy)
        assert metrics["plg"] < PLG_CEILING
        assert metrics["plg_clamped"] is False

    def test_plg_clamped_flows_into_manifest_and_summaries(self, tmp_path):
        from repro.obs import read_manifest
        spec = small_spec(output_dir=tmp_path)
        result = run_campaign(spec)
        manifest = read_manifest(tmp_path / "manifest.json")
        cell = manifest["metrics"]["cells"]["d100_s1"]
        assert cell["plg_clamped"] in (True, False)
        assert "plg_clamped" in result.summaries[0.1].values


class TestParallelCampaign:
    """Parallel and serial execution must be indistinguishable on disk."""

    def grid_spec(self, output_dir):
        return small_spec(deltas=(0.1, 0.2), seeds=(1, 2), duration=5.0,
                          output_dir=output_dir)

    def test_parallel_matches_serial_byte_identical(self, tmp_path):
        serial_dir = tmp_path / "serial"
        parallel_dir = tmp_path / "parallel"
        serial = run_campaign(self.grid_spec(serial_dir), workers=1)
        parallel = run_campaign(self.grid_spec(parallel_dir), workers=4)

        assert serial.table() == parallel.table()
        assert serial.queue_table() == parallel.queue_table()

        serial_files = sorted(p.name for p in serial_dir.glob("trace_*.csv"))
        parallel_files = sorted(
            p.name for p in parallel_dir.glob("trace_*.csv"))
        assert serial_files == parallel_files == [
            "trace_d100_s1.csv", "trace_d100_s2.csv",
            "trace_d200_s1.csv", "trace_d200_s2.csv"]
        for name in serial_files:
            assert (serial_dir / name).read_bytes() == \
                (parallel_dir / name).read_bytes(), name
        assert (serial_dir / "manifest.json").read_bytes() == \
            (parallel_dir / "manifest.json").read_bytes()

    def test_parallel_grid_coverage_and_summaries(self):
        spec = small_spec(deltas=(0.1, 0.2), seeds=(1, 2))
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert set(parallel.traces) == set(serial.traces)
        for delta in spec.deltas:
            assert parallel.summaries[delta].values == \
                serial.summaries[delta].values
        assert parallel.workers == 2

    def test_run_cell_is_pure_and_deterministic(self):
        spec = small_spec()
        first = _run_cell(spec, 0.1, 1)
        second = _run_cell(spec, 0.1, 1)
        assert first.trace.rtts.tolist() == second.trace.rtts.tolist()
        assert first.metrics == second.metrics
        assert first.queue_stats == second.queue_stats


def artifact_bytes(directory):
    """Every deterministic artifact of a campaign run, by name."""
    return {path.name: path.read_bytes()
            for path in sorted(directory.glob("*"))
            if path.name == "manifest.json"
            or path.name.startswith("trace_")}


class TestExecutorMatrix:
    """Serial, warm lease pipeline, and spawn pool: one artifact set.

    The executor is pure mechanics — every path must write byte-identical
    manifests and trace CSVs, whatever transport carried the results and
    however cache hits interleaved with fresh cells.
    """

    def analytic_spec(self, output_dir, **kwargs):
        defaults = dict(deltas=(0.05, 0.1), seeds=(1, 2), duration=5.0,
                        scenario_kwargs={"utilization_fwd": 0.3,
                                         "utilization_rev": 0.3},
                        mode="analytic", output_dir=output_dir)
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_warm_and_spawn_match_serial_byte_identical(self, tmp_path):
        serial = run_campaign(self.analytic_spec(tmp_path / "serial"))
        warm = run_campaign(self.analytic_spec(tmp_path / "warm"),
                            workers=2, pool="warm")
        spawn = run_campaign(self.analytic_spec(tmp_path / "spawn"),
                             workers=2, pool="spawn")
        reference = artifact_bytes(tmp_path / "serial")
        assert len(reference) == 5  # manifest + 4 traces
        assert artifact_bytes(tmp_path / "warm") == reference
        assert artifact_bytes(tmp_path / "spawn") == reference
        assert serial.table() == warm.table() == spawn.table()
        assert serial.dispatch_stats["pool"] == "serial"
        assert warm.dispatch_stats["pool"] == "warm"
        assert spawn.dispatch_stats["pool"] == "spawn"

    def test_warm_dispatch_accounting(self, tmp_path):
        result = run_campaign(self.analytic_spec(tmp_path),
                              workers=2, batch_size=1)
        dispatch = result.dispatch_stats
        assert dispatch["pool"] == "warm"
        assert dispatch["leases"] == 4
        assert dispatch["batch_size"] == 1
        assert dispatch["shm_leases"] + dispatch["inline_leases"] == 4
        assert dispatch["salt"]  # handshake-verified closure salt

    def test_mixed_cache_hits_and_fresh_cells(self, tmp_path):
        from repro.experiments.cache import CampaignCache
        cache = CampaignCache(tmp_path / "cache")
        # Prefill half the grid (seed 1 of each delta): hits and fresh
        # cells then interleave in grid order on the full run.
        run_campaign(self.analytic_spec(None, seeds=(1,)), cache=cache)
        reference = run_campaign(self.analytic_spec(tmp_path / "plain"))
        mixed = run_campaign(self.analytic_spec(tmp_path / "mixed"),
                             workers=2, cache=cache, batch_size=1)
        assert artifact_bytes(tmp_path / "mixed") \
            == artifact_bytes(tmp_path / "plain")
        assert mixed.cache_stats["hits"] == 2
        assert mixed.cache_stats["misses"] == 2
        assert mixed.dispatch_stats["leases"] == 2  # only the misses
        assert reference.table() == mixed.table()

    def test_shm_disabled_pool_falls_back_inline(self, tmp_path):
        from repro.experiments.pool import WarmWorkerPool
        reference = run_campaign(self.analytic_spec(tmp_path / "plain"))
        with WarmWorkerPool(2, use_shm=False) as pool:
            inline = run_campaign(self.analytic_spec(tmp_path / "inline"),
                                  pool=pool)
        assert artifact_bytes(tmp_path / "inline") \
            == artifact_bytes(tmp_path / "plain")
        dispatch = inline.dispatch_stats
        assert dispatch["shm_leases"] == 0
        assert dispatch["shm_bytes"] == 0
        assert dispatch["inline_leases"] == dispatch["leases"] > 0
        assert reference.table() == inline.table()

    def test_event_mode_through_warm_pool(self, tmp_path):
        spec = lambda d: small_spec(deltas=(0.1,), seeds=(1, 2),
                                    duration=5.0, output_dir=d)
        run_campaign(spec(tmp_path / "serial"))
        run_campaign(spec(tmp_path / "warm"), workers=2, pool="warm")
        assert artifact_bytes(tmp_path / "warm") \
            == artifact_bytes(tmp_path / "serial")

    def test_pool_argument_validation(self):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec(), workers=2, pool="lukewarm")

    def test_batch_size_validation(self):
        with pytest.raises(ConfigurationError):
            run_campaign(small_spec(deltas=(0.1, 0.2)), workers=2,
                         batch_size=0)
