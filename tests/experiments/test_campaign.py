"""Tests for measurement campaigns."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.campaign import (
    CampaignSpec,
    load_campaign_traces,
    run_campaign,
)


def small_spec(**kwargs):
    defaults = dict(deltas=(0.1,), seeds=(1,), duration=10.0,
                    scenario_kwargs={"utilization_fwd": 0.3,
                                     "utilization_rev": 0.3})
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(), seeds=(1,))
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(0.1,), seeds=())
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(0.1,), seeds=(1,), duration=0.0)


class TestRunCampaign:
    def test_grid_coverage(self):
        spec = small_spec(deltas=(0.1, 0.2), seeds=(1, 2))
        result = run_campaign(spec)
        assert set(result.traces) == {(0.1, 1), (0.1, 2),
                                      (0.2, 1), (0.2, 2)}
        assert set(result.summaries) == {0.1, 0.2}

    def test_metrics_collected_per_delta(self):
        spec = small_spec(seeds=(1, 2, 3))
        result = run_campaign(spec)
        summary = result.summaries[0.1]
        assert len(summary.values["ulp"]) == 3
        assert "mean_rtt" in summary.values

    def test_traces_saved_and_reloadable(self, tmp_path):
        spec = small_spec(deltas=(0.1, 0.2), seeds=(1,),
                          output_dir=tmp_path)
        result = run_campaign(spec)
        loaded = load_campaign_traces(tmp_path)
        assert len(loaded) == 2
        deltas = sorted(trace.delta for trace in loaded)
        assert deltas == pytest.approx([0.1, 0.2])

    def test_table_renders(self):
        spec = small_spec(seeds=(1, 2))
        result = run_campaign(spec)
        table = result.table()
        assert "100ms" in table
        assert "±" in table  # cross-seed spread shown

    def test_single_seed_table(self):
        result = run_campaign(small_spec())
        assert "±" not in result.table()

    def test_queue_stats_collected_per_cell(self):
        spec = small_spec(deltas=(0.1,), seeds=(1, 2))
        result = run_campaign(spec)
        assert set(result.queue_stats) == {(0.1, 1), (0.1, 2)}
        stats = result.queue_stats[(0.1, 1)]
        assert stats  # at least one queue saw traffic
        for queue_stats in stats.values():
            assert queue_stats["arrivals"] > 0
            assert queue_stats["drops"] >= 0
            assert 0.0 <= queue_stats["loss_fraction"] <= 1.0
            assert queue_stats["occupancy_max_pkts"] >= \
                queue_stats["occupancy_mean_pkts"] >= 0.0

    def test_queue_table_renders(self):
        result = run_campaign(small_spec())
        table = result.queue_table()
        assert "drops" in table
        assert "100ms" in table

    def test_manifest_written_with_campaign(self, tmp_path):
        from repro.obs import read_manifest
        spec = small_spec(output_dir=tmp_path)
        run_campaign(spec)
        manifest = read_manifest(tmp_path / "manifest.json")
        assert manifest["config"]["deltas"] == [0.1]
        assert manifest["config"]["seeds"] == [1]
        assert "repro" in manifest["versions"]
        assert "d100_s1" in manifest["metrics"]["cells"]
        assert "ulp" in manifest["metrics"]["cells"]["d100_s1"]
        assert manifest["extra"]["traces"] == ["trace_d100_s1.csv"]
        queues = manifest["extra"]["queues"]["d100_s1"]
        assert any(stats["arrivals"] > 0 for stats in queues.values())

    def test_no_manifest_without_output_dir(self):
        result = run_campaign(small_spec())
        assert result.spec.output_dir is None  # nothing written anywhere

    def test_umd_pitt_campaign(self):
        spec = CampaignSpec(deltas=(0.05,), seeds=(1,), duration=5.0,
                            scenario="umd-pitt",
                            scenario_kwargs={"utilization_fwd": 0.2,
                                             "utilization_rev": 0.2})
        result = run_campaign(spec)
        assert (0.05, 1) in result.traces
