"""Golden-trace regression: the standard 50 ms cell is frozen byte-for-byte.

``tests/data/golden_inria_umd_50ms.csv`` is the CSV of the calibrated
INRIA→UMd scenario at δ=50 ms, duration 30 s, seed 1, saved before the
hot-path rework.  Any change to the kernel, the RNG layering, the traffic
sources, or the network substrate that perturbs a single draw or timestamp
shows up here as a byte diff.  The observed variant additionally pins the
zero-perturbation observer contract: tracing everything changes nothing.
"""

from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_observed_experiment

GOLDEN = Path(__file__).resolve().parents[1] / "data" \
    / "golden_inria_umd_50ms.csv"
CONFIG = ExperimentConfig(delta=0.05, duration=30.0, seed=1)


def _csv_bytes(trace, tmp_path) -> bytes:
    path = tmp_path / "trace.csv"
    trace.save_csv(path)
    return path.read_bytes()


def test_standard_cell_matches_golden_trace(tmp_path):
    trace = run_experiment(CONFIG)
    assert _csv_bytes(trace, tmp_path) == GOLDEN.read_bytes()


def test_standard_cell_matches_golden_trace_with_observers(tmp_path):
    trace, _, obs = run_observed_experiment(CONFIG, kernel_trace=True,
                                            lifecycle=True)
    # The observers must have actually recorded something, or this test
    # would trivially collapse into the untraced variant.
    assert obs.lifecycle is not None and len(obs.lifecycle) > 0
    assert _csv_bytes(trace, tmp_path) == GOLDEN.read_bytes()
