"""The calibration targets of DESIGN.md, checked executably."""

from repro.experiments.calibration import validate_calibration


def test_calibration_targets_hold():
    result = validate_calibration(seed=1, duration=90.0)
    assert result.all_ok, f"\n{result.summary()}"


def test_calibration_report_structure():
    result = validate_calibration(seed=2, duration=60.0)
    names = [row.name for row in result.rows]
    assert "fixed round trip D" in names
    assert "bottleneck rate" in names
    assert any("fault" in n for n in names)
    assert any("utilization" in n for n in names)
