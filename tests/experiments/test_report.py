"""Tests for report generation."""

from repro.experiments.figures import ComparisonRow, FigureResult
from repro.experiments.report import as_markdown, as_text


def sample_results():
    first = FigureResult("Table 9", "demo")
    first.add("metric", "1.0", "1.1", True)
    second = FigureResult("Figure 42", "demo2")
    second.add("other", "x", "y", False)
    second.rendering = "ASCII ART"
    return [first, second]


class TestAsText:
    def test_contains_all_rows(self):
        text = as_text(sample_results())
        assert "Table 9" in text
        assert "Figure 42" in text
        assert "1/2 comparison rows passed" in text

    def test_renderings_optional(self):
        results = sample_results()
        assert "ASCII ART" not in as_text(results, renderings=False)
        assert "ASCII ART" in as_text(results, renderings=True)


class TestAsMarkdown:
    def test_table_structure(self):
        markdown = as_markdown(sample_results())
        lines = markdown.splitlines()
        assert lines[0].startswith("| Experiment |")
        assert any("| Table 9 | metric | 1.0 | 1.1 | yes |" in line
                   for line in lines)
        assert any("| no |" in line for line in lines)
