"""Tests for the content-addressed campaign cell cache."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import cache as cache_module
from repro.experiments.cache import (
    CampaignCache,
    cache_salt,
    cell_fingerprint,
    instrument_cache,
    resolve_cache,
)
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.obs import MetricsRegistry


def small_spec(**kwargs):
    defaults = dict(deltas=(0.1,), seeds=(1,), duration=10.0,
                    scenario_kwargs={"utilization_fwd": 0.3,
                                     "utilization_rev": 0.3})
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestFingerprint:
    def test_stable(self):
        spec = small_spec()
        assert cell_fingerprint(spec, 0.1, 1) == \
            cell_fingerprint(small_spec(), 0.1, 1)

    def test_excludes_output_dir_and_workers(self, tmp_path):
        assert cell_fingerprint(small_spec(), 0.1, 1) == \
            cell_fingerprint(small_spec(output_dir=tmp_path), 0.1, 1)

    @pytest.mark.parametrize("variation", [
        dict(delta=0.2),
        dict(seed=2),
        dict(spec=dict(duration=20.0)),
        dict(spec=dict(scenario="umd-pitt")),
        dict(spec=dict(scenario_kwargs={"utilization_fwd": 0.4,
                                        "utilization_rev": 0.3})),
        dict(spec=dict(mode="analytic")),
        dict(salt="other-salt"),
    ])
    def test_sensitive_to_every_causal_input(self, variation):
        base = cell_fingerprint(small_spec(), 0.1, 1)
        spec = small_spec(**variation.get("spec", {}))
        varied = cell_fingerprint(spec,
                                  variation.get("delta", 0.1),
                                  variation.get("seed", 1),
                                  salt=variation.get("salt",
                                                     cache_module.CACHE_SALT))
        assert varied != base

    def test_sensitive_to_probe_bytes(self, monkeypatch):
        base = cell_fingerprint(small_spec(), 0.1, 1)
        monkeypatch.setattr(cache_module, "PROBE_PAYLOAD_BYTES", 64)
        assert cell_fingerprint(small_spec(), 0.1, 1) != base

    def test_code_salt_bump_invalidates(self, monkeypatch):
        base = cell_fingerprint(small_spec(), 0.1, 1)
        monkeypatch.setattr(cache_module, "CACHE_SALT", "repro-cell-v999")
        # Callers pick up the module constant as their default.
        assert cell_fingerprint(
            small_spec(), 0.1, 1, salt=cache_module.CACHE_SALT) != base


class TestDerivedSalt:
    def test_salt_is_derived_from_code(self):
        salt = cache_salt()
        assert salt.startswith("repro-cell-v2-")
        assert salt == cache_salt()  # memoized, stable in-process

    def test_legacy_constant_is_the_derived_salt(self):
        # CACHE_SALT survives as a lazy module attribute; existing cache
        # dirs keyed on the old hand-bumped value invalidate exactly once.
        assert cache_module.CACHE_SALT == cache_salt()
        assert cache_module.CACHE_SALT != "repro-cell-v1"
        from repro import experiments
        assert experiments.CACHE_SALT == cache_salt()

    def test_unknown_module_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            cache_module.NOT_A_THING

    def test_fingerprint_defaults_to_derived_salt(self):
        explicit = cell_fingerprint(small_spec(), 0.1, 1, salt=cache_salt())
        assert cell_fingerprint(small_spec(), 0.1, 1) == explicit

    def test_cache_defaults_to_derived_salt(self, tmp_path):
        assert CampaignCache(tmp_path).salt == cache_salt()

    def test_matches_the_analyzer_report(self):
        from repro.devtools.fingerprint import derived_cache_salt
        assert cache_salt() == derived_cache_salt()

    def test_fallback_when_sources_unreadable(self, monkeypatch, caplog):
        monkeypatch.setattr(cache_module, "_salt_cache", None)
        import repro.devtools.fingerprint as fp

        def boom():
            raise OSError("no sources")

        monkeypatch.setattr(fp, "derived_cache_salt", boom)
        with caplog.at_level("WARNING"):
            salt = cache_salt()
        assert salt == cache_module._FALLBACK_SALT
        assert "cache-salt-underivable" in caplog.text
        assert "no sources" in caplog.text
        assert caplog.records[-1].name == "repro.obs.cache"
        monkeypatch.setattr(cache_module, "_salt_cache", None)


class TestCacheSemantics:
    def test_hit_on_identical_spec(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        cold = run_campaign(small_spec(), cache=cache)
        warm = run_campaign(small_spec(), cache=cache)
        assert cold.cache_stats["misses"] == 1
        assert cold.cache_stats["hits"] == 0
        assert warm.cache_stats["hits"] == 1
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["cells"] == {"d100_s1": "hit"}
        assert cold.table() == warm.table()
        assert cold.queue_table() == warm.queue_table()
        np.testing.assert_array_equal(cold.traces[(0.1, 1)].rtts,
                                      warm.traces[(0.1, 1)].rtts)

    def test_miss_on_changed_duration(self, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(small_spec(), cache=cache)
        again = run_campaign(small_spec(duration=12.0), cache=cache)
        assert again.cache_stats["misses"] == 1

    def test_miss_on_changed_scenario_kwargs(self, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(small_spec(), cache=cache)
        again = run_campaign(
            small_spec(scenario_kwargs={"utilization_fwd": 0.4,
                                        "utilization_rev": 0.3}),
            cache=cache)
        assert again.cache_stats["misses"] == 1

    def test_salt_bump_forces_recompute(self, tmp_path):
        run_campaign(small_spec(), cache=CampaignCache(tmp_path))
        other = CampaignCache(tmp_path, salt="repro-cell-v999")
        again = run_campaign(small_spec(), cache=other)
        assert again.cache_stats["misses"] == 1
        # The original salt's entry is untouched and still hits.
        back = run_campaign(small_spec(), cache=CampaignCache(tmp_path))
        assert back.cache_stats["hits"] == 1

    def test_refresh_forces_recompute_and_overwrites(self, tmp_path):
        run_campaign(small_spec(), cache=CampaignCache(tmp_path))
        refreshed = run_campaign(
            small_spec(), cache=CampaignCache(tmp_path, refresh=True))
        assert refreshed.cache_stats["misses"] == 1
        assert refreshed.cache_stats["refresh"] is True
        assert refreshed.cache_stats["bytes_written"] > 0
        # The refreshed entry is valid: a normal run hits it.
        warm = run_campaign(small_spec(), cache=CampaignCache(tmp_path))
        assert warm.cache_stats["hits"] == 1

    def test_corrupted_entries_recomputed_and_healed(self, tmp_path):
        cache = CampaignCache(tmp_path)
        cold = run_campaign(small_spec(), cache=cache)
        entries = list(tmp_path.glob("*.npz"))
        assert len(entries) == 1
        # Garble the entry: a prefix of valid bytes (truncated zip).
        raw = entries[0].read_bytes()
        entries[0].write_bytes(raw[:len(raw) // 2])
        healed = run_campaign(small_spec(), cache=cache)
        assert healed.cache_stats["misses"] == 1
        assert cache.corrupt_entries == 1
        assert healed.table() == cold.table()
        # The recomputation overwrote the damaged entry.
        warm = run_campaign(small_spec(), cache=cache)
        assert warm.cache_stats["hits"] == 1

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(small_spec(), cache=cache)
        entry = next(iter(tmp_path.glob("*.npz")))
        entry.write_bytes(b"not a zip file at all")
        again = run_campaign(small_spec(), cache=cache)
        assert again.cache_stats["misses"] == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = CampaignCache(tmp_path)
        run_campaign(small_spec(), cache=cache)
        run_campaign(small_spec(), cache=cache)
        assert not list(tmp_path.glob(".tmp-*"))

    def test_cache_accepts_plain_directory_path(self, tmp_path):
        cold = run_campaign(small_spec(), cache=tmp_path / "c")
        warm = run_campaign(small_spec(), cache=str(tmp_path / "c"))
        assert cold.cache_stats["misses"] == 1
        assert warm.cache_stats["hits"] == 1

    def test_no_cache_means_no_stats(self):
        result = run_campaign(small_spec())
        assert result.cache_stats is None


class TestColdWarmArtifacts:
    def grid_spec(self, output_dir):
        return small_spec(deltas=(0.1, 0.2), seeds=(1, 2), duration=5.0,
                          output_dir=output_dir)

    def test_cold_and_warm_byte_identical(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(self.grid_spec(tmp_path / "cold"), cache=cache)
        run_campaign(self.grid_spec(tmp_path / "warm"), cache=cache)
        names = ["manifest.json", "trace_d100_s1.csv", "trace_d100_s2.csv",
                 "trace_d200_s1.csv", "trace_d200_s2.csv"]
        for name in names:
            assert (tmp_path / "cold" / name).read_bytes() == \
                (tmp_path / "warm" / name).read_bytes(), name

    def test_warm_parallel_matches_cold_serial(self, tmp_path):
        """cold==warm composes with serial==parallel."""
        cache = CampaignCache(tmp_path / "cache")
        cold = run_campaign(self.grid_spec(tmp_path / "cold"), workers=1,
                            cache=cache)
        warm = run_campaign(self.grid_spec(tmp_path / "warm"), workers=2,
                            cache=cache)
        assert warm.cache_stats["hits"] == 4
        assert cold.table() == warm.table()
        assert (tmp_path / "cold" / "manifest.json").read_bytes() == \
            (tmp_path / "warm" / "manifest.json").read_bytes()

    def test_partial_hits_merge_in_grid_order(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(small_spec(deltas=(0.1,), seeds=(1, 2)), cache=cache)
        # Superset grid: two cells hit, two (new delta) miss.
        mixed = run_campaign(small_spec(deltas=(0.1, 0.2), seeds=(1, 2)),
                             cache=cache)
        assert mixed.cache_stats["hits"] == 2
        assert mixed.cache_stats["misses"] == 2
        reference = run_campaign(small_spec(deltas=(0.1, 0.2), seeds=(1, 2)))
        assert mixed.table() == reference.table()
        assert mixed.queue_table() == reference.queue_table()

    def test_timing_sidecar_records_cache_block(self, tmp_path):
        from repro.obs import read_timing
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(small_spec(output_dir=tmp_path / "cold"), cache=cache)
        run_campaign(small_spec(output_dir=tmp_path / "warm"), cache=cache)
        cold = read_timing(tmp_path / "cold" / "timing.json")
        warm = read_timing(tmp_path / "warm" / "timing.json")
        assert cold["cache"]["cells"] == {"d100_s1": "miss"}
        assert cold["cache"]["bytes_written"] > 0
        assert warm["cache"]["cells"] == {"d100_s1": "hit"}
        assert warm["cache"]["hits"] == 1
        assert warm["cache"]["bytes_read"] > 0
        assert warm["cache"]["saved_cell_seconds"] > 0

    def test_manifest_never_mentions_cache(self, tmp_path):
        cache = CampaignCache(tmp_path / "cache")
        run_campaign(small_spec(output_dir=tmp_path / "out"), cache=cache)
        manifest = (tmp_path / "out" / "manifest.json").read_text()
        assert "cache" not in json.loads(manifest).get("extra", {})
        assert "cache" not in manifest


class TestResolveCache:
    def test_refresh_without_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_cache(None, refresh=True)

    def test_refresh_conflict_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            resolve_cache(CampaignCache(tmp_path), refresh=True)

    def test_passthrough(self, tmp_path):
        cache = CampaignCache(tmp_path)
        assert resolve_cache(cache) is cache
        assert resolve_cache(None) is None


class TestInstrumentCache:
    def test_counters_track_cache_activity(self, tmp_path):
        cache = CampaignCache(tmp_path)
        registry = MetricsRegistry()
        instrument_cache(registry, cache)
        flat = registry.flat_snapshot()
        assert flat["campaign/cache/hits"] == 0
        run_campaign(small_spec(), cache=cache)
        run_campaign(small_spec(), cache=cache)
        flat = registry.flat_snapshot()
        assert flat["campaign/cache/hits"] == 1
        assert flat["campaign/cache/misses"] == 1
        assert flat["campaign/cache/stores"] == 1
        assert flat["campaign/cache/bytes_read"] > 0
        assert flat["campaign/cache/bytes_written"] > 0
        assert flat["campaign/cache/corrupt_entries"] == 0


class TestLoadMany:
    """The batched lookup: one directory scan, memory-mapped entry reads."""

    def grid_spec(self, **kwargs):
        return small_spec(deltas=(0.05, 0.1), seeds=(1, 2),
                          mode="analytic", duration=5.0, **kwargs)

    def populate(self, tmp_path):
        cache = CampaignCache(tmp_path)
        spec = self.grid_spec()
        run_campaign(spec, cache=cache)
        return CampaignCache(tmp_path), spec  # fresh counters

    def test_matches_per_cell_load(self, tmp_path):
        cache, spec = self.populate(tmp_path)
        grid = spec.cells()
        batched = cache.load_many(spec, grid)
        assert set(batched) == set(grid)
        reference = CampaignCache(tmp_path)
        for cell in grid:
            single = reference.load(spec, *cell)
            many = batched[cell]
            np.testing.assert_array_equal(single.trace.rtts,
                                          many.trace.rtts)
            np.testing.assert_array_equal(single.trace.send_times,
                                          many.trace.send_times)
            assert single.queue_stats == many.queue_stats
            assert single.metrics == many.metrics
        assert cache.hits == len(grid)
        assert cache.misses == 0

    def test_partial_population_counts_misses(self, tmp_path):
        cache, spec = self.populate(tmp_path)
        grid = spec.cells()
        extra = [(0.25, 1), (0.25, 2)]
        batched = cache.load_many(spec, grid + extra)
        assert set(batched) == set(grid)
        assert cache.hits == len(grid)
        assert cache.misses == len(extra)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache, spec = self.populate(tmp_path)
        entry = sorted(tmp_path.glob("*.npz"))[0]
        raw = entry.read_bytes()
        entry.write_bytes(raw[:len(raw) // 3])
        batched = cache.load_many(spec, spec.cells())
        assert len(batched) == len(spec.cells()) - 1
        assert cache.corrupt_entries == 1
        assert cache.misses == 1

    def test_refresh_skips_every_entry(self, tmp_path):
        cache, spec = self.populate(tmp_path)
        refreshing = CampaignCache(tmp_path, refresh=True)
        assert refreshing.load_many(spec, spec.cells()) == {}
        assert refreshing.misses == len(spec.cells())

    def test_empty_directory_all_misses(self, tmp_path):
        cache = CampaignCache(tmp_path / "never-written")
        spec = self.grid_spec()
        assert cache.load_many(spec, spec.cells()) == {}
        assert cache.misses == len(spec.cells())
