"""Tests for experiment configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    ExperimentConfig,
    PAPER_DELTAS,
    PAPER_DURATION,
    default_duration,
    full_experiments,
)


class TestExperimentConfig:
    def test_count_from_duration(self):
        config = ExperimentConfig(delta=0.05, duration=10.0)
        assert config.count == 200

    def test_count_at_least_one(self):
        config = ExperimentConfig(delta=10.0, duration=1.0)
        assert config.count == 1

    def test_paper_constants(self):
        assert PAPER_DELTAS == (0.008, 0.020, 0.050, 0.100, 0.200, 0.500)
        assert PAPER_DURATION == 600.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(delta=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(delta=0.05, duration=0.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(delta=0.05, warmup=-1.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig(delta=0.05, scenario="mars-net")

    def test_scenario_kwargs_default_empty(self):
        assert ExperimentConfig(delta=0.05).scenario_kwargs == {}

    def test_mode_defaults_to_event(self):
        assert ExperimentConfig(delta=0.05).mode == "event"

    def test_mode_accepts_analytic(self):
        assert ExperimentConfig(delta=0.05, mode="analytic").mode == \
            "analytic"

    def test_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(delta=0.05, mode="quantum")


class TestEnvironmentSwitch:
    def test_default_duration_scaled(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_EXPERIMENTS", raising=False)
        assert not full_experiments()
        assert default_duration(120.0) == 120.0

    def test_full_experiments_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_EXPERIMENTS", "1")
        assert full_experiments()
        assert default_duration(120.0) == PAPER_DURATION

    def test_zero_means_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL_EXPERIMENTS", "0")
        assert not full_experiments()
