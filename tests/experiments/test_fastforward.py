"""Equivalence and eligibility tests for the analytic execution mode.

Event mode is the golden reference (pinned byte-for-byte by
``test_golden_trace.py``).  The analytic fast-forward must match it
*bit for bit* on every eligible scenario: the engine replays the
identical RNG draw sequence and per-packet arrival order, so any
divergence — one flipped loss, one shifted tick — is a bug here, never
a re-baseline.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import fastforward as ff
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_scenario,
    run_experiment,
    run_experiment_with_scenario,
    run_observed_experiment,
)
from repro.net.clocks import SkewedClock
from repro.net.faults import PeriodicStallFault
from repro.netdyn.trace import LOST


def config_for(scenario, delta, duration, seed=3, mode="event"):
    return ExperimentConfig(delta=delta, duration=duration, seed=seed,
                            scenario=scenario, mode=mode)


class TestEligibility:
    @pytest.mark.parametrize("scenario", ["inria-umd", "umd-pitt"])
    def test_calibrated_scenarios_are_eligible(self, scenario):
        built = build_scenario(config_for(scenario, 0.05, 10.0))
        assert ff.fastforward_ineligibilities(built) == []

    def test_lifecycle_hook_blocks(self):
        built = build_scenario(config_for("inria-umd", 0.05, 10.0))
        built.bottleneck_fwd.lifecycle = object()
        reasons = ff.fastforward_ineligibilities(built)
        assert any("lifecycle" in reason for reason in reasons)

    def test_stall_fault_blocks(self):
        built = build_scenario(config_for("inria-umd", 0.05, 10.0))
        path = built.network.path(built.source, built.echo)
        first = built.network.node(path[0]).interface_to(path[1])
        first.add_egress_fault(PeriodicStallFault(period=90.0, stall=1.0))
        reasons = ff.fastforward_ineligibilities(built)
        assert any("PeriodicStallFault" in reason for reason in reasons)

    def test_skewed_clock_blocks(self):
        built = build_scenario(config_for("inria-umd", 0.05, 10.0))
        built.network.host(built.source).clock = SkewedClock(
            built.sim, offset=1.0)
        reasons = ff.fastforward_ineligibilities(built)
        assert any("clock" in reason for reason in reasons)

    def test_fault_on_bottleneck_blocks(self):
        from repro.net.faults import RandomDropFault
        built = build_scenario(config_for("inria-umd", 0.05, 10.0))
        built.bottleneck_rev.add_egress_fault(
            RandomDropFault(0.01, built.sim.streams.get("test.bottleneck")))
        reasons = ff.fastforward_ineligibilities(built)
        assert any("bottleneck" in reason for reason in reasons)


class TestExactEquivalence:
    """Analytic == event, bit for bit — including under real losses."""

    @pytest.mark.parametrize("scenario,delta,duration", [
        ("inria-umd", 0.05, 12.0),
        ("inria-umd", 0.5, 30.0),
        # Long enough for the bottleneck to overflow: the per-packet
        # FluidQueue walk must reproduce every drop decision, not just
        # the no-drop certificate path.
        ("inria-umd", 0.05, 60.0),
        ("umd-pitt", 0.02, 4.0),
    ])
    def test_bit_identical_traces(self, scenario, delta, duration):
        event = run_experiment(config_for(scenario, delta, duration))
        result = ff.run_fastforward_experiment(
            config_for(scenario, delta, duration, mode="analytic"))
        assert result.mode_used == "analytic"
        trace = result.trace
        assert np.array_equal(event.send_times, trace.send_times)
        assert np.array_equal(event.rtts, trace.rtts)

    def test_losses_occur_and_match_exactly(self):
        # Guards the parametrization above: the long cell really does
        # exercise the drop path, and every lost probe agrees.
        event = run_experiment(config_for("inria-umd", 0.05, 60.0))
        result = ff.run_fastforward_experiment(
            config_for("inria-umd", 0.05, 60.0, mode="analytic"))
        event_lost = event.rtts == LOST
        assert event_lost.any()
        assert np.array_equal(event_lost, result.trace.rtts == LOST)

    def test_bottleneck_drop_counts_match_event_queues(self):
        config = config_for("inria-umd", 0.05, 60.0)
        _, scenario = run_experiment_with_scenario(config)
        result = ff.run_fastforward_experiment(
            config_for("inria-umd", 0.05, 60.0, mode="analytic"))
        for bottleneck in (scenario.bottleneck_fwd, scenario.bottleneck_rev):
            stats = result.queue_stats[bottleneck.name]
            assert stats["drops"] == bottleneck.queue.drops
            assert stats["arrivals"] == bottleneck.queue.arrivals

    def test_trace_meta_records_the_mode(self):
        result = ff.run_fastforward_experiment(
            config_for("inria-umd", 0.05, 6.0, mode="analytic"))
        meta = result.trace.meta
        assert meta["mode"] == "analytic"
        assert "fallback" not in meta
        assert meta["scenario"] == "inria-umd"
        assert meta["seed"] == 3


class TestFallback:
    def test_ineligible_scenario_falls_back_to_event(self, monkeypatch):
        def build_with_stall(config):
            built = build_scenario(config)
            path = built.network.path(built.source, built.echo)
            first = built.network.node(path[0]).interface_to(path[1])
            first.add_egress_fault(
                PeriodicStallFault(period=90.0, stall=1.0))
            return built

        monkeypatch.setattr(ff, "build_scenario", build_with_stall)
        result = ff.run_fastforward_experiment(
            config_for("inria-umd", 0.05, 6.0, mode="analytic"))
        assert result.mode_used == "event"
        assert result.fallback_reasons
        assert result.trace.meta["mode"] == "event"
        assert result.trace.meta["fallback"] == result.fallback_reasons
        # The event fallback reports every active queue, campaign-style.
        assert result.queue_stats


class TestRunnerDispatch:
    def test_run_experiment_dispatches_on_mode(self):
        trace = run_experiment(
            config_for("inria-umd", 0.05, 6.0, mode="analytic"))
        assert trace.meta["mode"] == "analytic"
        assert len(trace) == 120

    def test_event_mode_traces_carry_no_mode_key(self):
        trace = run_experiment(config_for("inria-umd", 0.05, 6.0))
        # Event-mode metadata is golden (see test_golden_trace) and must
        # not grow keys because the analytic mode exists.
        assert "mode" not in trace.meta

    def test_observed_experiment_rejects_analytic_mode(self):
        with pytest.raises(ConfigurationError):
            run_observed_experiment(
                config_for("inria-umd", 0.05, 6.0, mode="analytic"))


class TestCampaignAnalytic:
    def test_campaign_runs_analytic_cells(self):
        spec = CampaignSpec(deltas=(0.05,), seeds=(3,), duration=6.0,
                            scenario="inria-umd", mode="analytic")
        result = run_campaign(spec)
        trace = result.traces[(0.05, 3)]
        assert trace.meta["mode"] == "analytic"
        stats = result.queue_stats[(0.05, 3)]
        built = build_scenario(config_for("inria-umd", 0.05, 6.0))
        assert set(stats) == {built.bottleneck_fwd.name,
                              built.bottleneck_rev.name}
        assert 0.05 in result.summaries

    def test_campaign_mode_is_validated(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(deltas=(0.05,), seeds=(1,), mode="wavelet")
