"""Tests for the experiment runner."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    build_scenario,
    run_experiment,
    run_experiment_with_scenario,
)
from repro.topology.inria_umd import InriaUmdScenario
from repro.topology.umd_pitt import UmdPittScenario


class TestBuildScenario:
    def test_inria_umd(self):
        scenario = build_scenario(ExperimentConfig(delta=0.05))
        assert isinstance(scenario, InriaUmdScenario)

    def test_umd_pitt(self):
        scenario = build_scenario(ExperimentConfig(delta=0.05,
                                                   scenario="umd-pitt"))
        assert isinstance(scenario, UmdPittScenario)

    def test_scenario_kwargs_forwarded(self):
        config = ExperimentConfig(delta=0.05,
                                  scenario_kwargs={"utilization_fwd": 0.0,
                                                   "utilization_rev": 0.0,
                                                   "fault_drop_prob": 0.0})
        scenario = build_scenario(config)
        assert scenario.mix_fwd is None
        assert scenario.faults == []


class TestRunExperiment:
    def test_trace_shape(self):
        config = ExperimentConfig(delta=0.05, duration=10.0, seed=3,
                                  warmup=5.0)
        trace = run_experiment(config)
        assert len(trace) == config.count
        assert trace.meta["scenario"] == "inria-umd"
        assert trace.meta["seed"] == 3
        assert trace.meta["mu_bps"] == pytest.approx(128e3)

    def test_warmup_shifts_send_times(self):
        config = ExperimentConfig(delta=0.05, duration=5.0, warmup=20.0)
        trace = run_experiment(config)
        assert trace.send_times[0] >= 20.0

    def test_with_scenario_exposes_queues(self):
        config = ExperimentConfig(delta=0.05, duration=20.0, warmup=5.0)
        trace, scenario = run_experiment_with_scenario(config)
        assert scenario.bottleneck_fwd.queue.arrivals > 0
        assert len(trace) == config.count

    def test_reproducibility(self):
        config = ExperimentConfig(delta=0.05, duration=15.0, seed=7)
        first = run_experiment(config)
        second = run_experiment(config)
        assert first.rtts.tolist() == second.rtts.tolist()
