"""The repro-audit command: exit codes, reports, JSON contract."""

import json
import subprocess
import sys

import pytest

from repro.cli import main_audit
from repro.devtools.audit import (
    PARSE_RULE_ID,
    audit_paths,
    iter_python_files,
    main,
)
from repro.devtools.core import Finding
from repro.devtools.reporters import render_github

CLEAN = "from repro.units import ms\n\ndelta = ms(50.0)\n"

VIOLATING = ("import random\n"
             "\n"
             "def jitter(delta):\n"
             "    return delta * 1e3 + random.random()\n")


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "good.py").write_text(CLEAN)
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "good.py").write_text(CLEAN)
    (tmp_path / "bad.py").write_text(VIOLATING)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([str(clean_tree)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, dirty_tree, capsys):
        assert main([str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:4" in out  # file:line diagnostics
        assert "DET001" in out and "UNIT001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "repro-audit" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        assert main(["--select", "BOGUS1", str(clean_tree)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_reintroduced_violation_is_caught(self, clean_tree, capsys):
        assert main([str(clean_tree)]) == 0
        (clean_tree / "regress.py").write_text("bits = size * 8\n")
        assert main([str(clean_tree)]) == 1
        assert "regress.py:1" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_findings_schema(self, dirty_tree, capsys):
        assert main(["--format", "json", str(dirty_tree)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        assert payload["files_checked"] == 2
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["line"], int)

    def test_json_clean_tree(self, clean_tree, capsys):
        assert main(["--format", "json", str(clean_tree)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "files_checked": 1, "findings": []}


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "UNIT001", "UNIT002", "SIM001",
                        "EXC001"):
            assert rule_id in out

    def test_select_limits_rules(self, dirty_tree, capsys):
        assert main(["--select", "DET001", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "UNIT001" not in out

    def test_single_file_argument(self, dirty_tree):
        assert main([str(dirty_tree / "good.py")]) == 0
        assert main([str(dirty_tree / "bad.py")]) == 1

    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        findings, checked = audit_paths([str(tmp_path)])
        assert checked == 1
        assert [f.rule for f in findings] == [PARSE_RULE_ID]


class TestOverlappingPaths:
    def test_overlapping_directories_dedupe(self, dirty_tree):
        sub = dirty_tree / "sub"
        sub.mkdir()
        (sub / "nested.py").write_text(VIOLATING)
        once, checked_once = audit_paths([str(dirty_tree)])
        twice, checked_twice = audit_paths([str(dirty_tree), str(sub)])
        assert checked_once == checked_twice == 3
        assert [f.sort_key() for f in once] == [f.sort_key() for f in twice]

    def test_same_file_spelled_twice_dedupes(self, dirty_tree):
        bad = dirty_tree / "bad.py"
        files = iter_python_files([str(bad), str(bad), bad.as_posix()])
        assert len(files) == 1

    def test_dot_spelling_dedupes(self, dirty_tree):
        dotted = str(dirty_tree / "." / "bad.py")
        files = iter_python_files([str(dirty_tree / "bad.py"), dotted])
        assert len(files) == 1

    def test_result_is_sorted(self, dirty_tree):
        files = iter_python_files([str(dirty_tree)])
        assert files == sorted(files)


class TestGithubFormat:
    def test_annotations_emitted(self, dirty_tree, capsys):
        assert main(["--format", "github", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.startswith("::error ")]
        assert lines, out
        assert any("file=" in ln and ",line=4," in ln
                   and "title=DET001" in ln for ln in lines)

    def test_columns_are_one_based(self, tmp_path, capsys):
        (tmp_path / "m.py").write_text("bits = size * 8\n")
        assert main(["--format", "github", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        # The UNIT001 finding anchors at col 0 in AST terms -> col=8 is
        # 0-based 7 ("size * 8"); whatever the anchor, col must be >= 1.
        for line in out.splitlines():
            if line.startswith("::error "):
                col = int(line.split(",col=")[1].split(",")[0])
                assert col >= 1

    def test_clean_tree_has_no_annotations(self, clean_tree, capsys):
        assert main(["--format", "github", str(clean_tree)]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "0 findings" in out

    def test_message_and_property_escaping(self):
        finding = Finding(rule="DET001", path="dir,x/a.py", line=2, col=0,
                          message="bad%stuff\nline two")
        rendered = render_github([finding], files_checked=1)
        annotation = rendered.splitlines()[0]
        assert annotation.startswith("::error file=dir%2Cx/a.py,line=2,")
        assert "bad%25stuff%0Aline two" in annotation
        assert "\n" not in annotation


class TestFingerprintSubcommand:
    @pytest.fixture
    def mini_pkg(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "worker.py").write_text("def run_cell():\n    return 1\n")
        return pkg

    def test_reports_salt(self, mini_pkg, capsys):
        assert main(["fingerprint", "--package", str(mini_pkg),
                     "--entry", "pkg.worker.run_cell"]) == 0
        out = capsys.readouterr().out
        assert "salt: repro-cell-v2-" in out
        assert "entry: pkg.worker.run_cell" in out

    def test_stable_across_runs(self, mini_pkg, capsys):
        main(["fingerprint", "--package", str(mini_pkg),
              "--entry", "pkg.worker"])
        first = capsys.readouterr().out
        main(["fingerprint", "--package", str(mini_pkg),
              "--entry", "pkg.worker"])
        assert capsys.readouterr().out == first

    def test_json_output_parseable(self, mini_pkg, capsys):
        assert main(["fingerprint", "--package", str(mini_pkg),
                     "--entry", "pkg.worker", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["salt"].startswith("repro-cell-v2-")
        assert "pkg.worker" in payload["modules"]
        assert payload["modules_in_project"] == 2

    def test_verbose_lists_modules(self, mini_pkg, capsys):
        assert main(["fingerprint", "--package", str(mini_pkg),
                     "--entry", "pkg.worker", "--verbose"]) == 0
        assert "pkg.worker" in capsys.readouterr().out

    def test_missing_entry_exits_two(self, mini_pkg, capsys):
        assert main(["fingerprint", "--package", str(mini_pkg),
                     "--entry", "pkg.gone"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_default_package_is_installed_tree(self, capsys):
        assert main(["fingerprint"]) == 0
        out = capsys.readouterr().out
        assert "salt: repro-cell-v2-" in out
        assert "repro.experiments.campaign._run_cell" in out


class TestProjectRulesInCli:
    def test_select_project_rule_only(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "kernel.py").write_text(
            "import random\n"
            "class Simulator:\n"
            "    def run(self):\n"
            "        return random.random()\n")
        assert main(["--select", "FLOW001", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FLOW001" in out
        # Per-file DET001 was not selected, so it must not appear.
        assert "DET001" not in out

    def test_project_findings_respect_noqa(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "kernel.py").write_text(
            "import random\n"
            "class Simulator:\n"
            "    def run(self):\n"
            "        return random.random()  # repro: noqa[FLOW001]\n")
        assert main(["--select", "FLOW001", str(tmp_path)]) == 0

    def test_list_rules_shows_both_registries(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "FLOW001" in out and "UNIT003" in out and "DET001" in out


class TestEntryPoints:
    def test_cli_wrapper_delegates(self, dirty_tree):
        assert main_audit([str(dirty_tree)]) == 1

    def test_python_dash_m_execution(self, dirty_tree):
        result = subprocess.run(
            [sys.executable, "-m", "repro.devtools.audit", str(dirty_tree)],
            capture_output=True, text=True)
        assert result.returncode == 1
        assert "DET001" in result.stdout
