"""The repro-audit command: exit codes, reports, JSON contract."""

import json
import subprocess
import sys

import pytest

from repro.cli import main_audit
from repro.devtools.audit import PARSE_RULE_ID, audit_paths, main

CLEAN = "from repro.units import ms\n\ndelta = ms(50.0)\n"

VIOLATING = ("import random\n"
             "\n"
             "def jitter(delta):\n"
             "    return delta * 1e3 + random.random()\n")


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "good.py").write_text(CLEAN)
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "good.py").write_text(CLEAN)
    (tmp_path / "bad.py").write_text(VIOLATING)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([str(clean_tree)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, dirty_tree, capsys):
        assert main([str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "bad.py:4" in out  # file:line diagnostics
        assert "DET001" in out and "UNIT001" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "repro-audit" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, clean_tree, capsys):
        assert main(["--select", "BOGUS1", str(clean_tree)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_reintroduced_violation_is_caught(self, clean_tree, capsys):
        assert main([str(clean_tree)]) == 0
        (clean_tree / "regress.py").write_text("bits = size * 8\n")
        assert main([str(clean_tree)]) == 1
        assert "regress.py:1" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_findings_schema(self, dirty_tree, capsys):
        assert main(["--format", "json", str(dirty_tree)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == len(payload["findings"]) > 0
        assert payload["files_checked"] == 2
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "col", "message"}
            assert isinstance(finding["line"], int)

    def test_json_clean_tree(self, clean_tree, capsys):
        assert main(["--format", "json", str(clean_tree)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "files_checked": 1, "findings": []}


class TestOptions:
    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "UNIT001", "UNIT002", "SIM001",
                        "EXC001"):
            assert rule_id in out

    def test_select_limits_rules(self, dirty_tree, capsys):
        assert main(["--select", "DET001", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "UNIT001" not in out

    def test_single_file_argument(self, dirty_tree):
        assert main([str(dirty_tree / "good.py")]) == 0
        assert main([str(dirty_tree / "bad.py")]) == 1

    def test_syntax_error_reported_as_parse_finding(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        findings, checked = audit_paths([str(tmp_path)])
        assert checked == 1
        assert [f.rule for f in findings] == [PARSE_RULE_ID]


class TestEntryPoints:
    def test_cli_wrapper_delegates(self, dirty_tree):
        assert main_audit([str(dirty_tree)]) == 1

    def test_python_dash_m_execution(self, dirty_tree):
        result = subprocess.run(
            [sys.executable, "-m", "repro.devtools.audit", str(dirty_tree)],
            capture_output=True, text=True)
        assert result.returncode == 1
        assert "DET001" in result.stdout
