"""Normalized-AST fingerprints and the derived cache salt.

The acceptance property for the whole analyzer lives here: on a copy of
the real tree, a comment/docstring-only edit to kernel code leaves the
derived salt unchanged, while a semantic edit changes it.
"""

import shutil
from pathlib import Path

import pytest

import repro
from repro.devtools.fingerprint import (
    SALT_ENTRY_FUNCTION,
    SALT_PREFIX,
    changed_modules,
    compute_salt_report,
    derived_cache_salt,
    derived_salt_report,
    fingerprint_source,
    normalized_dump,
)
from repro.devtools.symbols import Project
from repro.errors import AnalysisError

from tests.devtools.test_symbols import build_tree

PACKAGE_ROOT = Path(repro.__file__).parent


class TestFingerprintSource:
    def test_stable(self):
        src = "def f(x):\n    return x + 1\n"
        assert fingerprint_source(src) == fingerprint_source(src)

    def test_comment_changes_ignored(self):
        base = "def f(x):\n    return x + 1\n"
        commented = "# a comment\ndef f(x):\n    # inline\n    return x + 1\n"
        assert fingerprint_source(base) == fingerprint_source(commented)

    def test_docstring_changes_ignored(self):
        with_doc = 'def f(x):\n    """Docs."""\n    return x + 1\n'
        other_doc = 'def f(x):\n    """Other."""\n    return x + 1\n'
        without = "def f(x):\n    return x + 1\n"
        assert fingerprint_source(with_doc) == fingerprint_source(other_doc)
        assert fingerprint_source(with_doc) == fingerprint_source(without)

    def test_docstring_only_body_equals_pass(self):
        doc_only = 'def f():\n    """Docs."""\n'
        with_pass = "def f():\n    pass\n"
        assert fingerprint_source(doc_only) == fingerprint_source(with_pass)

    def test_reformatting_ignored(self):
        one_line = "def f(a, b):\n    return g(a, b)\n"
        wrapped = "def f(a,\n      b):\n    return g(\n        a, b)\n"
        assert fingerprint_source(one_line) == fingerprint_source(wrapped)

    def test_semantic_change_detected(self):
        assert fingerprint_source("def f(x):\n    return x + 1\n") != \
            fingerprint_source("def f(x):\n    return x + 2\n")

    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            normalized_dump("def broken(:\n")


@pytest.fixture
def salt_tree(tmp_path):
    build_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/worker.py": ("from pkg.kernel import step\n"
                          "def run_cell():\n"
                          "    return step()\n"),
        "pkg/kernel.py": "def step():\n    return 1\n",
        "pkg/unrelated.py": "def elsewhere():\n    return 2\n",
        "pkg/lint.py": "def rule():\n    return 3\n",
    })
    return tmp_path / "pkg"


class TestDerivedSalt:
    def test_prefix_and_stability(self, salt_tree):
        first = derived_cache_salt(salt_tree, entry="pkg.worker.run_cell")
        second = derived_cache_salt(salt_tree, entry="pkg.worker.run_cell")
        assert first.startswith(SALT_PREFIX + "-")
        assert first == second

    def test_entry_accepts_module_name(self, salt_tree):
        assert derived_cache_salt(salt_tree, entry="pkg.worker") == \
            derived_cache_salt(salt_tree, entry="pkg.worker.run_cell")

    def test_missing_entry_raises(self, salt_tree):
        with pytest.raises(AnalysisError, match="moved or renamed"):
            derived_cache_salt(salt_tree, entry="pkg.worker.gone")

    def test_missing_package_dir_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            derived_cache_salt(tmp_path / "nope")

    def test_unreachable_module_excluded(self, salt_tree):
        report = derived_salt_report(salt_tree, entry="pkg.worker.run_cell")
        assert "pkg.kernel" in report.fingerprints
        assert "pkg.unrelated" not in report.fingerprints

    def test_exclude_prefixes(self, salt_tree):
        (salt_tree / "worker.py").write_text(
            "from pkg.kernel import step\n"
            "from pkg import lint\n"
            "def run_cell():\n"
            "    return step()\n")
        with_lint = derived_salt_report(salt_tree,
                                        entry="pkg.worker.run_cell")
        without = derived_salt_report(salt_tree, entry="pkg.worker.run_cell",
                                      exclude_prefixes=("pkg.lint",))
        assert "pkg.lint" in with_lint.fingerprints
        assert "pkg.lint" not in without.fingerprints
        assert with_lint.salt != without.salt

    def test_semantic_edit_to_reachable_module_changes_salt(self, salt_tree):
        base = derived_cache_salt(salt_tree, entry="pkg.worker.run_cell")
        (salt_tree / "kernel.py").write_text("def step():\n    return 99\n")
        assert derived_cache_salt(salt_tree,
                                  entry="pkg.worker.run_cell") != base

    def test_edit_to_unreachable_module_keeps_salt(self, salt_tree):
        base = derived_cache_salt(salt_tree, entry="pkg.worker.run_cell")
        (salt_tree / "unrelated.py").write_text(
            "def elsewhere():\n    return 99\n")
        assert derived_cache_salt(salt_tree,
                                  entry="pkg.worker.run_cell") == base

    def test_changed_modules_names_the_culprit(self, salt_tree):
        before = derived_salt_report(salt_tree, entry="pkg.worker.run_cell")
        (salt_tree / "kernel.py").write_text("def step():\n    return 99\n")
        after = derived_salt_report(salt_tree, entry="pkg.worker.run_cell")
        assert changed_modules(before, after) == ["pkg.kernel"]


class TestRealTree:
    """The acceptance criterion, on a copy of the shipped sources."""

    @pytest.fixture
    def tree_copy(self, tmp_path):
        copy = tmp_path / "repro"
        shutil.copytree(PACKAGE_ROOT, copy,
                        ignore=shutil.ignore_patterns("__pycache__"))
        return copy

    def test_entry_function_exists_in_shipped_tree(self):
        project = Project.from_package(PACKAGE_ROOT)
        report = compute_salt_report(project)
        assert report.entry == SALT_ENTRY_FUNCTION
        assert "repro.sim.kernel" in report.fingerprints
        assert "repro.experiments.campaign" in report.fingerprints
        # The analyzer never fingerprints itself.
        assert not any(name.startswith("repro.devtools")
                       for name in report.fingerprints)

    def test_comment_only_kernel_edit_keeps_salt(self, tree_copy):
        base = derived_cache_salt(tree_copy)
        kernel = tree_copy / "sim" / "kernel.py"
        kernel.write_text(kernel.read_text()
                          + "\n# a trailing comment, purely cosmetic\n")
        assert derived_cache_salt(tree_copy) == base

    def test_docstring_only_kernel_edit_keeps_salt(self, tree_copy):
        base = derived_cache_salt(tree_copy)
        kernel = tree_copy / "sim" / "kernel.py"
        source = kernel.read_text()
        assert source.startswith('"""')
        kernel.write_text(source.replace(
            source[:source.index('"""', 3) + 3],
            '"""A completely rewritten module docstring."""', 1))
        assert derived_cache_salt(tree_copy) == base

    def test_semantic_kernel_edit_changes_salt(self, tree_copy):
        base = derived_cache_salt(tree_copy)
        kernel = tree_copy / "sim" / "kernel.py"
        kernel.write_text(kernel.read_text() + "\nKERNEL_TWEAK = 1\n")
        changed = derived_cache_salt(tree_copy)
        assert changed != base
        assert changed.startswith(SALT_PREFIX + "-")

    def test_lint_rule_edit_keeps_salt(self, tree_copy):
        base = derived_cache_salt(tree_copy)
        rule = tree_copy / "devtools" / "rules_determinism.py"
        rule.write_text(rule.read_text() + "\nRULE_TWEAK = 1\n")
        assert derived_cache_salt(tree_copy) == base

    def test_pool_plumbing_excluded_from_closure(self):
        # The warm-pool dispatcher moves results between processes but
        # computes none of them, so it must not participate in the salt.
        project = Project.from_package(PACKAGE_ROOT)
        report = compute_salt_report(project)
        assert not any(name.startswith("repro.experiments.pool")
                       for name in report.fingerprints)

    def test_comment_only_dispatcher_edit_keeps_salt(self, tree_copy):
        base = derived_cache_salt(tree_copy)
        dispatcher = tree_copy / "experiments" / "pool.py"
        dispatcher.write_text(dispatcher.read_text()
                              + "\n# cosmetic dispatcher note\n")
        assert derived_cache_salt(tree_copy) == base

    def test_semantic_dispatcher_edit_keeps_salt(self, tree_copy):
        # Stronger than comment-immunity: even real code changes to the
        # lease/transport plumbing leave cached physics valid, because
        # the transports are proven byte-exact separately.
        base = derived_cache_salt(tree_copy)
        dispatcher = tree_copy / "experiments" / "pool.py"
        dispatcher.write_text(dispatcher.read_text()
                              + "\nLEASES_PER_WORKER = 8\n")
        assert derived_cache_salt(tree_copy) == base
