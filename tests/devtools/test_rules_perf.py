"""PERF001: no slot-less dataclasses in the sim/net hot-path packages."""

from repro.devtools.core import audit_source, get_rule


def findings(source, path="src/repro/sim/events.py"):
    return audit_source(source, path=path, rules=[get_rule("PERF001")])


DATACLASS = (
    "from dataclasses import dataclass\n"
    "@dataclass\n"
    "class Record:\n"
    "    x: int = 0\n")


class TestPerf001:
    def test_bare_dataclass_flagged(self):
        result = findings(DATACLASS)
        assert len(result) == 1
        assert result[0].rule == "PERF001"
        assert "Record" in result[0].message

    def test_dataclass_call_form_flagged(self):
        source = DATACLASS.replace("@dataclass", "@dataclass(order=True)")
        assert len(findings(source)) == 1

    def test_dotted_decorator_flagged(self):
        source = ("import dataclasses\n"
                  "@dataclasses.dataclass\n"
                  "class Record:\n"
                  "    x: int = 0\n")
        assert len(findings(source)) == 1

    def test_net_package_covered(self):
        assert len(findings(DATACLASS,
                            path="src/repro/net/transport.py")) == 1

    def test_slots_true_clean(self):
        source = DATACLASS.replace("@dataclass", "@dataclass(slots=True)")
        assert findings(source) == []

    def test_explicit_slots_clean(self):
        source = (DATACLASS.replace("    x: int = 0\n",
                                    "    __slots__ = ('x',)\n"))
        assert findings(source) == []

    def test_plain_slots_class_clean(self):
        source = ("class Event:\n"
                  "    __slots__ = ('time',)\n")
        assert findings(source) == []

    def test_other_packages_out_of_scope(self):
        assert findings(DATACLASS,
                        path="src/repro/experiments/config.py") == []
        assert findings(DATACLASS, path="src/repro/obs/tracer.py") == []

    def test_other_decorators_ignored(self):
        source = ("@register\n"
                  "class Rule:\n"
                  "    x = 1\n")
        assert findings(source) == []

    def test_noqa_suppression(self):
        # Findings anchor to the ``class`` line, so that is where the
        # suppression comment goes.
        source = ("from dataclasses import dataclass\n"
                  "@dataclass\n"
                  "class Record:  # repro: noqa[PERF001]\n"
                  "    x: int = 0\n")
        assert findings(source) == []

    def test_registered_in_default_rule_set(self):
        result = audit_source(DATACLASS, path="src/repro/sim/kernel.py")
        assert any(f.rule == "PERF001" for f in result)
