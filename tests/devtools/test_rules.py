"""Each rule: at least one violating snippet and one clean snippet."""

import textwrap

from repro.devtools.core import audit_source, get_rule


def rules_hit(source: str, path: str = "src/repro/example.py") -> set:
    """Rule ids found in ``source`` (dedented for inline fixtures)."""
    findings = audit_source(textwrap.dedent(source), path=path)
    return {finding.rule for finding in findings}


class TestDET001EntropySources:
    def test_wall_clock_time_flagged(self):
        assert "DET001" in rules_hit("""\
            import time
            start = time.time()
        """)

    def test_datetime_now_flagged(self):
        assert "DET001" in rules_hit("""\
            from datetime import datetime
            stamp = datetime.now()
        """)

    def test_module_random_flagged(self):
        assert "DET001" in rules_hit("""\
            import random
            value = random.uniform(0.0, 1.0)
        """)

    def test_from_random_import_flagged(self):
        assert "DET001" in rules_hit("""\
            from random import choice
            pick = choice([1, 2, 3])
        """)

    def test_numpy_random_flagged_through_alias(self):
        assert "DET001" in rules_hit("""\
            import numpy as np
            rng = np.random.default_rng()
        """)

    def test_time_monotonic_allowed_for_live_measurement(self):
        assert "DET001" not in rules_hit("""\
            import time
            elapsed = time.monotonic()
        """)

    def test_seeded_stream_usage_clean(self):
        assert "DET001" not in rules_hit("""\
            def jitter(sim):
                rng = sim.streams.get("traffic.jitter")
                return rng.uniform(0.0, 1.0)
        """)

    def test_local_variable_named_random_not_flagged(self):
        assert "DET001" not in rules_hit("""\
            def draw(random):
                return random.uniform(0.0, 1.0)
        """)

    def test_annotation_without_call_not_flagged(self):
        assert "DET001" not in rules_hit("""\
            import numpy as np

            def sample(rng: np.random.Generator) -> float:
                return rng.exponential(1.0)
        """)


class TestDET002SetIteration:
    def test_for_over_set_call_flagged(self):
        assert "DET002" in rules_hit("""\
            for name in set(names):
                handle(name)
        """)

    def test_for_over_set_literal_flagged(self):
        assert "DET002" in rules_hit("""\
            for port in {5201, 5202, 5000}:
                probe(port)
        """)

    def test_comprehension_over_set_flagged(self):
        assert "DET002" in rules_hit("""\
            rates = [lookup(n) for n in set(nodes)]
        """)

    def test_sorted_set_clean(self):
        assert "DET002" not in rules_hit("""\
            for name in sorted(set(names)):
                handle(name)
        """)

    def test_for_over_list_clean(self):
        assert "DET002" not in rules_hit("""\
            for name in names:
                handle(name)
        """)


class TestUNIT001MagicLiterals:
    def test_ms_conversion_flagged(self):
        assert "UNIT001" in rules_hit("delta = delta_input * 1e-3\n")

    def test_seconds_to_ms_conversion_flagged(self):
        assert "UNIT001" in rules_hit("label = rtt * 1e3\n")

    def test_mega_conversion_flagged(self):
        assert "UNIT001" in rules_hit("rate = rate_input * 1e6\n")

    def test_bytes_to_bits_flagged(self):
        assert "UNIT001" in rules_hit("bits = size_bytes * 8\n")

    def test_bits_to_bytes_flagged(self):
        assert "UNIT001" in rules_hit("size = bits / 8\n")

    def test_division_by_1000_flagged(self):
        assert "UNIT001" in rules_hit("kb = mu / 1e3\n")

    def test_helper_call_clean(self):
        assert "UNIT001" not in rules_hit("""\
            from repro.units import bytes_to_bits, ms
            delta = ms(50.0)
            bits = bytes_to_bits(size_bytes)
        """)

    def test_unrelated_arithmetic_clean(self):
        assert "UNIT001" not in rules_hit("""\
            epsilon = wait + 1e-6
            clamped = min(gap, 1e6)
            doubled = count * 2
        """)


class TestUNIT002UnitSuffixedNames:
    def test_ms_parameter_flagged(self):
        assert "UNIT002" in rules_hit("""\
            def schedule(delay_ms):
                return delay_ms
        """)

    def test_kwonly_kbps_parameter_flagged(self):
        assert "UNIT002" in rules_hit("""\
            def build(*, rate_kbps=128):
                return rate_kbps
        """)

    def test_self_attribute_flagged(self):
        assert "UNIT002" in rules_hit("""\
            class Link:
                def __init__(self, delay):
                    self.prop_delay_ms = delay
        """)

    def test_dataclass_field_flagged(self):
        assert "UNIT002" in rules_hit("""\
            from dataclasses import dataclass

            @dataclass
            class Config:
                timeout_us: float = 0.0
        """)

    def test_si_names_clean(self):
        assert "UNIT002" not in rules_hit("""\
            def build(delta, rate_bps, size_bytes):
                return delta * rate_bps

            class Link:
                def __init__(self, prop_delay):
                    self.prop_delay = prop_delay
        """)

    def test_local_display_variable_allowed(self):
        # Locals are display-formatting territory; only the API surface
        # (parameters/attributes) must stay SI.
        assert "UNIT002" not in rules_hit("""\
            from repro.units import seconds_to_ms

            def label(rtt):
                rtt_ms = seconds_to_ms(rtt)
                return f"{rtt_ms:.1f} ms"
        """)


class TestSIM001KernelPrivateAccess:
    def test_foreign_now_access_flagged(self):
        assert "SIM001" in rules_hit("""\
            def rewind(sim):
                sim._now = 0.0
        """)

    def test_foreign_heap_access_flagged(self):
        assert "SIM001" in rules_hit("""\
            def drain(queue):
                return list(queue._heap)
        """)

    def test_public_api_clean(self):
        assert "SIM001" not in rules_hit("""\
            def snapshot(sim):
                return sim.now, sim.pending_events(), sim.events_executed
        """)

    def test_own_private_attribute_clean(self):
        assert "SIM001" not in rules_hit("""\
            class Tracker:
                def __init__(self):
                    self._now = 0.0

                def tick(self, t):
                    self._now = t
        """)

    def test_kernel_itself_exempt(self):
        source = "def peek(self):\n    return self._queue._heap\n"
        assert audit_source(source, path="src/repro/sim/kernel.py") == []


class TestEXC001BroadExcept:
    def test_bare_except_flagged(self):
        assert "EXC001" in rules_hit("""\
            try:
                risky()
            except:
                pass
        """)

    def test_except_exception_pass_flagged(self):
        assert "EXC001" in rules_hit("""\
            try:
                risky()
            except Exception:
                pass
        """)

    def test_except_exception_continue_flagged(self):
        assert "EXC001" in rules_hit("""\
            for item in items:
                try:
                    risky(item)
                except Exception:
                    continue
        """)

    def test_wrapping_reraise_clean(self):
        assert "EXC001" not in rules_hit("""\
            from repro.errors import FitError

            try:
                fit()
            except Exception as exc:
                raise FitError(str(exc)) from exc
        """)

    def test_specific_library_error_clean(self):
        assert "EXC001" not in rules_hit("""\
            from repro.errors import PacketFormatError

            try:
                decode(data)
            except PacketFormatError:
                pass
        """)


class TestRuleSelection:
    def test_single_rule_run_in_isolation(self):
        source = ("import random\n"
                  "x = random.random()\n"
                  "y = delta * 1e3\n")
        only_units = audit_source(source, path="m.py",
                                  rules=[get_rule("UNIT001")])
        assert {finding.rule for finding in only_units} == {"UNIT001"}
