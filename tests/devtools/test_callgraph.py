"""Call graph construction and interprocedural reachability."""

import pytest

from repro.devtools.callgraph import CallGraph, kernel_reachable, module_unit
from repro.devtools.symbols import Project

from tests.devtools.test_symbols import build_tree


def project_from(tmp_path, files):
    build_tree(tmp_path, files)
    return Project.from_package(tmp_path / "pkg")


class TestDirectEdges:
    def test_imported_call_reachable(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import worker\n"
                         "def entry():\n"
                         "    return worker()\n"),
            "pkg/b.py": "def worker():\n    return 1\n",
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.b.worker" in reach

    def test_same_module_call_without_import(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("def helper():\n"
                         "    return 1\n"
                         "def entry():\n"
                         "    return helper()\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.a.helper" in reach

    def test_uncalled_function_not_reachable(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("def entry():\n"
                         "    return 1\n"
                         "def unused():\n"
                         "    return 2\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.a.unused" not in reach


class TestCallbackReferences:
    def test_bare_function_reference_counts_as_call(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import on_timer\n"
                         "def schedule(cb):\n"
                         "    return cb\n"
                         "def entry():\n"
                         "    return schedule(on_timer)\n"),
            "pkg/b.py": "def on_timer():\n    return 1\n",
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.b.on_timer" in reach

    def test_self_method_callback(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("class Agent:\n"
                         "    def start(self):\n"
                         "        return self._emit\n"
                         "    def _emit(self):\n"
                         "        return 1\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.Agent.start"])
        assert "pkg.a.Agent._emit" in reach


class TestLiveClasses:
    def test_instantiation_reaches_init_and_dynamic_methods(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import Queue\n"
                         "def entry():\n"
                         "    q = Queue()\n"
                         "    return q.drain()\n"),
            "pkg/b.py": ("class Queue:\n"
                         "    def __init__(self):\n"
                         "        self.items = []\n"
                         "    def drain(self):\n"
                         "        return self.items\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.b.Queue.__init__" in reach
        assert "pkg.b.Queue.drain" in reach
        assert "pkg.b.Queue" in reach.live_classes

    def test_dynamic_name_does_not_reach_dead_class(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import Live\n"
                         "def entry(obj):\n"
                         "    live = Live()\n"
                         "    return obj.drain()\n"),
            "pkg/b.py": ("class Live:\n"
                         "    def drain(self):\n"
                         "        return 1\n"
                         "\n"
                         "class Dead:\n"
                         "    def drain(self):\n"
                         "        return 2\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.b.Live.drain" in reach
        assert "pkg.b.Dead.drain" not in reach

    def test_ancestor_methods_live_with_subclass(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import Child\n"
                         "def entry(obj):\n"
                         "    c = Child()\n"
                         "    return obj.greet()\n"),
            "pkg/b.py": ("class Base:\n"
                         "    def greet(self):\n"
                         "        return 'hi'\n"
                         "\n"
                         "class Child(Base):\n"
                         "    pass\n"),
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert "pkg.b.Base.greet" in reach


class TestModuleBodies:
    def test_import_closure_seeds_module_bodies(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg import b\n"
                         "def entry():\n"
                         "    return 1\n"),
            "pkg/b.py": ("from pkg.c import setup\n"
                         "REGISTRY = {'setup': setup}\n"),
            "pkg/c.py": "def setup():\n    return 1\n",
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        assert module_unit("pkg.b") in reach
        # The module body references setup, so it is live too.
        assert "pkg.c.setup" in reach

    def test_module_body_excludes_function_bodies(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("def entry():\n"
                         "    return inner()\n"
                         "def inner():\n"
                         "    return 1\n"),
        })
        reach = CallGraph(project).reachable_from([module_unit("pkg.a")],
                                                  seed_import_closure=False)
        # The module body defines entry/inner but calls neither.
        assert "pkg.a.entry" not in reach
        assert "pkg.a.inner" not in reach


class TestQueries:
    def test_chain_gives_provenance_from_root(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from pkg.b import middle\n"
                         "def entry():\n"
                         "    return middle()\n"),
            "pkg/b.py": ("from pkg.c import leaf\n"
                         "def middle():\n"
                         "    return leaf()\n"),
            "pkg/c.py": "def leaf():\n    return 1\n",
        })
        reach = CallGraph(project).reachable_from(["pkg.a.entry"])
        chain = reach.chain("pkg.c.leaf")
        assert chain[0] == "pkg.a.entry"
        assert chain[-1] == "pkg.c.leaf"
        assert "pkg.b.middle" in chain

    def test_unknown_root_raises(self, tmp_path):
        project = project_from(tmp_path, {"pkg/__init__.py": ""})
        with pytest.raises(KeyError):
            CallGraph(project).reachable_from(["pkg.missing.entry"])

    def test_module_name_as_root(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "X = 1\n",
        })
        reach = CallGraph(project).reachable_from(["pkg.a"])
        assert module_unit("pkg.a") in reach

    def test_kernel_reachable_none_without_roots(self, tmp_path):
        project = project_from(tmp_path, {"pkg/__init__.py": ""})
        assert kernel_reachable(project, ("pkg.missing.entry",)) is None

    def test_kernel_reachable_with_present_root(self, tmp_path):
        project = project_from(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": "def entry():\n    return 1\n",
        })
        result = kernel_reachable(project, ("pkg.a.entry", "pkg.gone.f"))
        assert result is not None
        _, reach = result
        assert "pkg.a.entry" in reach
