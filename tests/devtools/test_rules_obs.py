"""OBS001: no print() in library code.  OBS002: kernel telemetry ban."""

from repro.devtools.core import (
    all_project_rules,
    audit_source,
    get_rule,
)

from tests.devtools.test_rules_flow import project_from, run_rule

#: Minimal telemetry stubs so banned targets resolve as project modules.
TELEMETRY_STUBS = {
    "repro/obs/__init__.py": "",
    "repro/obs/spans.py": ("class SpanTracer:\n"
                           "    pass\n"),
    "repro/obs/progress.py": ("class ProgressReporter:\n"
                              "    pass\n"),
    "repro/obs/bench.py": ("def build_report(suite, metrics):\n"
                           "    return {}\n"),
}


def findings(source, path="src/repro/net/link.py"):
    return audit_source(source, path=path, rules=[get_rule("OBS001")])


class TestObs001:
    def test_print_flagged(self):
        result = findings("print('debug')\n")
        assert len(result) == 1
        assert result[0].rule == "OBS001"
        assert "print()" in result[0].message

    def test_print_in_function_flagged(self):
        result = findings("def f():\n    print(1, 2)\n")
        assert [f.line for f in result] == [2]

    def test_non_print_calls_clean(self):
        assert findings("import logging\nlogging.warning('x')\n") == []

    def test_shadowed_attribute_print_not_flagged(self):
        # console.print(...) is not the builtin.
        assert findings("console.print('rich output')\n") == []

    def test_docstring_mentioning_print_clean(self):
        assert findings('"""Use print() sparingly."""\n') == []

    def test_cli_exempt(self):
        assert findings("print('usage: ...')\n",
                        path="src/repro/cli.py") == []

    def test_audit_reporter_exempt(self):
        assert findings("print('finding')\n",
                        path="src/repro/devtools/audit.py") == []

    def test_plotting_package_exempt(self):
        assert findings("print('ascii art')\n",
                        path="src/repro/plotting/render.py") == []

    def test_noqa_suppression(self):
        assert findings("print('x')  # repro: noqa[OBS001]\n") == []

    def test_registered_in_default_rule_set(self):
        result = audit_source("print('oops')\n",
                              path="src/repro/net/queue.py")
        assert any(f.rule == "OBS001" for f in result)


def telemetry_project(tmp_path, files):
    merged = dict(TELEMETRY_STUBS)
    merged.update(files)
    return project_from(tmp_path, merged)


class TestObs002:
    def test_registered_as_project_rule(self):
        ids = {rule.rule_id for rule in all_project_rules()}
        assert "OBS002" in ids

    def test_spans_import_in_kernel_flagged(self, tmp_path):
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.obs.spans import SpanTracer\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return SpanTracer()\n"),
        })
        findings = run_rule("OBS002", project)
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/sim/kernel.py")
        assert "repro.obs.spans" in findings[0].message

    def test_import_without_call_still_flagged(self, tmp_path):
        # The *import* is the violation: telemetry in scope on the hot
        # path is one refactor away from being consulted.
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "import repro.obs.progress\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
        })
        findings = run_rule("OBS002", project)
        assert len(findings) == 1
        assert "repro.obs.progress" in findings[0].message

    def test_reachable_helper_module_flagged(self, tmp_path):
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.sim.tick import advance\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return advance()\n"),
            "repro/sim/tick.py": (
                "from repro.obs.bench import build_report\n"
                "def advance():\n"
                "    return 0\n"),
        })
        findings = run_rule("OBS002", project)
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/sim/tick.py")
        assert "repro.obs.bench" in findings[0].message

    def test_message_carries_provenance_chain(self, tmp_path):
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.sim.tick import advance\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return advance()\n"),
            "repro/sim/tick.py": (
                "from repro.obs.spans import SpanTracer\n"
                "def advance():\n"
                "    return SpanTracer()\n"),
        })
        message = run_rule("OBS002", project)[0].message
        assert "repro.sim.kernel.Simulator.run" in message
        assert "repro.sim.tick.advance" in message

    def test_campaign_worker_may_emit_spans(self, tmp_path):
        # _run_cell wraps the simulation in spans by design; only the
        # Simulator.run call graph is off-limits.
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
            "repro/experiments/__init__.py": "",
            "repro/experiments/campaign.py": (
                "from repro.obs.spans import SpanTracer\n"
                "from repro.sim.kernel import Simulator\n"
                "def _run_cell(spec):\n"
                "    tracer = SpanTracer()\n"
                "    return Simulator().run()\n"),
        })
        assert run_rule("OBS002", project) == []

    def test_unreachable_module_not_flagged(self, tmp_path):
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
            "repro/report.py": (
                "from repro.obs.bench import build_report\n"
                "def render():\n"
                "    return build_report('x', {})\n"),
        })
        assert run_rule("OBS002", project) == []

    def test_non_telemetry_obs_import_ok(self, tmp_path):
        # The registry/tracer side of repro.obs stays allowed; only the
        # campaign telemetry trio is banned.
        project = telemetry_project(tmp_path, {
            "repro/obs/registry.py": ("class MetricsRegistry:\n"
                                      "    pass\n"),
            "repro/sim/kernel.py": (
                "from repro.obs.registry import MetricsRegistry\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return MetricsRegistry()\n"),
        })
        assert run_rule("OBS002", project) == []

    def test_pool_import_in_kernel_flagged(self, tmp_path):
        # The warm-pool dispatcher is orchestration plumbing: the kernel
        # computes results, it never leases or ships them.
        project = telemetry_project(tmp_path, {
            "repro/experiments/__init__.py": "",
            "repro/experiments/pool.py": ("class WarmWorkerPool:\n"
                                          "    pass\n"),
            "repro/sim/kernel.py": (
                "from repro.experiments.pool import WarmWorkerPool\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return WarmWorkerPool()\n"),
        })
        findings = run_rule("OBS002", project)
        assert len(findings) == 1
        assert "repro.experiments.pool" in findings[0].message

    def test_campaign_may_import_pool(self, tmp_path):
        # Outside the Simulator.run closure the dispatcher is fair game
        # — that is where it is supposed to live.
        project = telemetry_project(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
            "repro/experiments/__init__.py": "",
            "repro/experiments/pool.py": ("class WarmWorkerPool:\n"
                                          "    pass\n"),
            "repro/experiments/campaign.py": (
                "from repro.experiments.pool import WarmWorkerPool\n"
                "from repro.sim.kernel import Simulator\n"
                "def run_campaign(spec):\n"
                "    pool = WarmWorkerPool()\n"
                "    return Simulator().run()\n"),
        })
        assert run_rule("OBS002", project) == []

    def test_real_tree_is_clean(self):
        from repro.devtools.fingerprint import default_package_dir
        from repro.devtools.symbols import Project

        project = Project.from_package(default_package_dir())
        assert run_rule("OBS002", project) == []
