"""OBS001: no print() in library code."""

from repro.devtools.core import audit_source, get_rule


def findings(source, path="src/repro/net/link.py"):
    return audit_source(source, path=path, rules=[get_rule("OBS001")])


class TestObs001:
    def test_print_flagged(self):
        result = findings("print('debug')\n")
        assert len(result) == 1
        assert result[0].rule == "OBS001"
        assert "print()" in result[0].message

    def test_print_in_function_flagged(self):
        result = findings("def f():\n    print(1, 2)\n")
        assert [f.line for f in result] == [2]

    def test_non_print_calls_clean(self):
        assert findings("import logging\nlogging.warning('x')\n") == []

    def test_shadowed_attribute_print_not_flagged(self):
        # console.print(...) is not the builtin.
        assert findings("console.print('rich output')\n") == []

    def test_docstring_mentioning_print_clean(self):
        assert findings('"""Use print() sparingly."""\n') == []

    def test_cli_exempt(self):
        assert findings("print('usage: ...')\n",
                        path="src/repro/cli.py") == []

    def test_audit_reporter_exempt(self):
        assert findings("print('finding')\n",
                        path="src/repro/devtools/audit.py") == []

    def test_plotting_package_exempt(self):
        assert findings("print('ascii art')\n",
                        path="src/repro/plotting/render.py") == []

    def test_noqa_suppression(self):
        assert findings("print('x')  # repro: noqa[OBS001]\n") == []

    def test_registered_in_default_rule_set(self):
        result = audit_source("print('oops')\n",
                              path="src/repro/net/queue.py")
        assert any(f.rule == "OBS001" for f in result)
