"""Whole-program rules: FLOW001, FLOW002, UNIT003.

Fixtures build miniature ``repro`` packages on disk so the fixed kernel
roots (``repro.sim.kernel.Simulator.run``,
``repro.experiments.campaign._run_cell``) resolve exactly as they do on
the real tree.
"""

from repro.devtools.core import all_project_rules, get_rule
from repro.devtools.symbols import Project

from tests.devtools.test_symbols import build_tree

KERNEL_SKELETON = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/units.py": ("def ms(value):\n"
                       "    return value * 1e-3\n"
                       "def seconds_to_ms(value):\n"
                       "    return value * 1e3\n"
                       "def bps_to_kbps(value):\n"
                       "    return value / 1e3\n"),
}


def project_from(tmp_path, files):
    merged = dict(KERNEL_SKELETON)
    merged.update(files)
    build_tree(tmp_path, merged)
    return Project.from_package(tmp_path / "repro")


def run_rule(rule_id, project):
    rule = get_rule(rule_id)
    return sorted((f for f in rule.check_project(project)
                   if rule.applies_to(f.path)),
                  key=lambda f: f.sort_key())


class TestRegistry:
    def test_flow_rules_registered(self):
        ids = {rule.rule_id for rule in all_project_rules()}
        assert {"FLOW001", "FLOW002", "UNIT003"} <= ids

    def test_project_rules_have_summaries(self):
        for rule in all_project_rules():
            assert rule.summary, f"{rule.rule_id} has no summary"


class TestFlow001:
    def test_entropy_reachable_from_kernel_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.sim.jitter import wobble\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return wobble()\n"),
            "repro/sim/jitter.py": (
                "import random\n"
                "def wobble():\n"
                "    return random.random()\n"),
        })
        findings = run_rule("FLOW001", project)
        assert len(findings) == 1
        assert findings[0].path.endswith("repro/sim/jitter.py")
        assert "random.random" in findings[0].message

    def test_message_carries_provenance_chain(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.sim.jitter import wobble\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return wobble()\n"),
            "repro/sim/jitter.py": (
                "import random\n"
                "def wobble():\n"
                "    return random.random()\n"),
        })
        message = run_rule("FLOW001", project)[0].message
        assert "repro.sim.kernel.Simulator.run" in message
        assert "repro.sim.jitter.wobble" in message

    def test_unreachable_entropy_not_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
            "repro/live.py": (
                "import time\n"
                "def measure():\n"
                "    return time.monotonic()\n"),
        })
        assert run_rule("FLOW001", project) == []

    def test_monotonic_banned_when_reachable(self, tmp_path):
        # Legitimate for live measurement, banned on the simulated path —
        # this is exactly what per-file DET001 cannot see.
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "import time\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return time.monotonic()\n"),
        })
        findings = run_rule("FLOW001", project)
        assert [f.rule for f in findings] == ["FLOW001"]
        assert "time.monotonic" in findings[0].message

    def test_sim_random_module_exempt(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.sim.random import draw\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return draw()\n"),
            "repro/sim/random.py": (
                "import numpy as np\n"
                "def draw():\n"
                "    return np.random.default_rng(0)\n"),
        })
        assert run_rule("FLOW001", project) == []

    def test_worker_root_also_checked(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/experiments/__init__.py": "",
            "repro/experiments/campaign.py": (
                "import random\n"
                "def _run_cell(spec):\n"
                "    return random.random()\n"),
        })
        findings = run_rule("FLOW001", project)
        assert len(findings) == 1
        assert "repro.experiments.campaign._run_cell" in findings[0].message


class TestFlow002:
    def test_environ_read_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "import os\n"
                "class Simulator:\n"
                "    def run(self):\n"
                "        return os.environ.get('FAST', '')\n"),
        })
        findings = run_rule("FLOW002", project)
        assert len(findings) == 1
        assert "os.environ" in findings[0].message

    def test_globals_call_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return globals()\n"),
        })
        findings = run_rule("FLOW002", project)
        assert len(findings) == 1
        assert "globals()" in findings[0].message

    def test_unreachable_environ_not_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "class Simulator:\n"
                "    def run(self):\n"
                "        return 1\n"),
            "repro/cli_helpers.py": (
                "import os\n"
                "def cache_dir():\n"
                "    return os.environ.get('CACHE', '')\n"),
        })
        assert run_rule("FLOW002", project) == []


class TestUnit003:
    def test_display_value_into_computation_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.units import seconds_to_ms\n"
                "def compute(delay):\n"
                "    return delay * 2\n"
                "def entry(d):\n"
                "    return compute(seconds_to_ms(d))\n"),
        })
        findings = run_rule("UNIT003", project)
        assert len(findings) == 1
        assert "ms" in findings[0].message
        assert "repro.sim.kernel.compute" in findings[0].message

    def test_matching_inverse_converter_ok(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.units import ms, seconds_to_ms\n"
                "def entry(d):\n"
                "    return ms(seconds_to_ms(d))\n"),
        })
        assert run_rule("UNIT003", project) == []

    def test_display_module_sink_ok(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/plotting/__init__.py": "",
            "repro/plotting/axes.py": (
                "def label(value):\n"
                "    return f'{value} ms'\n"),
            "repro/sim/kernel.py": (
                "from repro.plotting.axes import label\n"
                "from repro.units import seconds_to_ms\n"
                "def entry(d):\n"
                "    return label(seconds_to_ms(d))\n"),
        })
        assert run_rule("UNIT003", project) == []

    def test_display_module_caller_ok(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/plotting/__init__.py": "",
            "repro/plotting/axes.py": (
                "from repro.units import seconds_to_ms\n"
                "def fmt(value):\n"
                "    return value\n"
                "def label(d):\n"
                "    return fmt(seconds_to_ms(d))\n"),
        })
        assert run_rule("UNIT003", project) == []

    def test_wrapper_return_tag_propagates(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.units import seconds_to_ms\n"
                "def delay_ms(d):\n"
                "    return seconds_to_ms(d)\n"
                "def compute(delay):\n"
                "    return delay * 2\n"
                "def entry(d):\n"
                "    return compute(delay_ms(d))\n"),
        })
        findings = run_rule("UNIT003", project)
        assert len(findings) == 1
        assert "repro.sim.kernel.delay_ms" in findings[0].message

    def test_external_callee_not_flagged(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "import math\n"
                "from repro.units import seconds_to_ms\n"
                "def entry(d):\n"
                "    return math.floor(seconds_to_ms(d))\n"),
        })
        assert run_rule("UNIT003", project) == []

    def test_rate_converters_tracked_too(self, tmp_path):
        project = project_from(tmp_path, {
            "repro/sim/kernel.py": (
                "from repro.units import bps_to_kbps\n"
                "def compute(rate):\n"
                "    return rate * 2\n"
                "def entry(r):\n"
                "    return compute(bps_to_kbps(r))\n"),
        })
        findings = run_rule("UNIT003", project)
        assert len(findings) == 1
        assert "kb/s" in findings[0].message
