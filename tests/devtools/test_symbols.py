"""Project symbol table: indexing, resolution, import closure."""

import pytest

from repro.devtools.symbols import Project, module_name_for_path


def build_tree(tmp_path, files):
    """Write ``{relative_path: source}`` under tmp_path, mkdirs included."""
    for relative, source in files.items():
        path = tmp_path / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return tmp_path


@pytest.fixture
def project(tmp_path):
    build_tree(tmp_path, {
        "pkg/__init__.py": "from pkg.util import helper\n",
        "pkg/util.py": ("def helper(x):\n"
                        "    return x\n"
                        "\n"
                        "class Base:\n"
                        "    def greet(self):\n"
                        "        return 'hi'\n"),
        "pkg/mod.py": ("from pkg.util import Base, helper as h\n"
                       "\n"
                       "class Child(Base):\n"
                       "    def run(self):\n"
                       "        return h(1)\n"),
        "pkg/sub/__init__.py": "",
        "pkg/sub/deep.py": ("from .. import helper\n"
                            "\n"
                            "def local_import():\n"
                            "    from pkg import mod\n"
                            "    return mod\n"),
    })
    return Project.from_package(tmp_path / "pkg")


class TestModuleNames:
    def test_plain_module(self, tmp_path):
        build_tree(tmp_path, {"pkg/__init__.py": "", "pkg/mod.py": ""})
        assert module_name_for_path(tmp_path / "pkg" / "mod.py") == "pkg.mod"

    def test_package_init(self, tmp_path):
        build_tree(tmp_path, {"pkg/__init__.py": "",
                              "pkg/sub/__init__.py": ""})
        path = tmp_path / "pkg" / "sub" / "__init__.py"
        assert module_name_for_path(path) == "pkg.sub"

    def test_file_outside_any_package_is_none(self, tmp_path):
        loose = tmp_path / "loose.py"
        loose.write_text("")
        assert module_name_for_path(loose) is None


class TestIndexing:
    def test_modules_functions_classes(self, project):
        assert {"pkg", "pkg.util", "pkg.mod", "pkg.sub",
                "pkg.sub.deep"} == set(project.modules)
        assert "pkg.util.helper" in project.functions
        assert "pkg.util.Base" in project.classes
        assert "pkg.mod.Child" in project.classes

    def test_methods_indexed_with_class_qualname(self, project):
        info = project.functions["pkg.util.Base.greet"]
        assert info.class_qualname == "pkg.util.Base"
        assert project.classes["pkg.util.Base"].methods == {
            "greet": "pkg.util.Base.greet"}

    def test_base_classes_resolved_through_imports(self, project):
        assert project.classes["pkg.mod.Child"].bases == ["pkg.util.Base"]

    def test_unparseable_files_are_skipped(self, tmp_path):
        build_tree(tmp_path, {"pkg/__init__.py": "",
                              "pkg/ok.py": "def f():\n    return 1\n",
                              "pkg/broken.py": "def broken(:\n"})
        proj = Project.from_package(tmp_path / "pkg")
        assert "pkg.ok" in proj.modules
        assert "pkg.broken" not in proj.modules


class TestResolve:
    def test_direct_definition(self, project):
        assert project.resolve("pkg.util.helper") == "pkg.util.helper"

    def test_reexport_through_init(self, project):
        assert project.resolve("pkg.helper") == "pkg.util.helper"

    def test_alias_hop(self, project):
        assert project.resolve("pkg.mod.h") == "pkg.util.helper"

    def test_method_access_on_class(self, project):
        assert project.resolve("pkg.util.Base.greet") == "pkg.util.Base.greet"

    def test_inherited_method_access(self, project):
        assert project.resolve("pkg.mod.Child.greet") == "pkg.util.Base.greet"

    def test_external_and_unknown_are_none(self, project):
        assert project.resolve("os.path.join") is None
        assert project.resolve("pkg.util.nothing") is None
        assert project.resolve(None) is None

    def test_resolve_method_walks_bases(self, project):
        assert project.resolve_method("pkg.mod.Child", "greet") == \
            "pkg.util.Base.greet"
        assert project.resolve_method("pkg.mod.Child", "absent") is None

    def test_class_and_ancestors(self, project):
        assert project.class_and_ancestors("pkg.mod.Child") == [
            "pkg.mod.Child", "pkg.util.Base"]


class TestImportClosure:
    def test_includes_ancestor_packages(self, project):
        closure = project.import_closure("pkg.sub.deep")
        assert "pkg" in closure and "pkg.sub" in closure

    def test_function_local_imports_count(self, project):
        # pkg.sub.deep imports pkg.mod only inside a function body.
        assert "pkg.mod" in project.import_closure("pkg.sub.deep")

    def test_relative_imports_resolve(self, project):
        # ``from .. import helper`` in pkg/sub/deep.py pulls in pkg.
        assert "pkg" in project.modules["pkg.sub.deep"].imported_modules

    def test_exclude_prefixes_drop_subtrees(self, project):
        closure = project.import_closure("pkg.sub.deep",
                                         exclude_prefixes=("pkg.mod",))
        assert "pkg.mod" not in closure

    def test_unknown_entry_raises(self, project):
        with pytest.raises(KeyError):
            project.import_closure("pkg.nope")

    def test_closure_is_sorted(self, project):
        closure = project.import_closure("pkg.sub.deep")
        assert closure == sorted(closure)

    def test_type_checking_imports_count(self, tmp_path):
        build_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/a.py": ("from typing import TYPE_CHECKING\n"
                         "if TYPE_CHECKING:\n"
                         "    from pkg import b\n"),
            "pkg/b.py": "",
        })
        proj = Project.from_package(tmp_path / "pkg")
        assert "pkg.b" in proj.import_closure("pkg.a")
