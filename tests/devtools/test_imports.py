"""Import-alias resolution: attribute_chain / resolve_call_path edges."""

import ast

from repro.devtools.imports import (
    ImportMap,
    attribute_chain,
    resolve_call_path,
)


def expr(source):
    """The AST of a single expression."""
    return ast.parse(source, mode="eval").body


def import_map(source):
    return ImportMap.from_tree(ast.parse(source))


class TestAttributeChain:
    def test_plain_name(self):
        assert attribute_chain(expr("helper")) == ["helper"]

    def test_nested_attributes(self):
        assert attribute_chain(expr("np.random.default_rng")) == \
            ["np", "random", "default_rng"]

    def test_call_in_chain_is_none(self):
        # getattr(obj, 'x').y — the root is a call, not a name.
        assert attribute_chain(expr("factory().run")) is None

    def test_subscript_in_chain_is_none(self):
        assert attribute_chain(expr("table['k'].run")) is None

    def test_literal_is_none(self):
        assert attribute_chain(expr("42")) is None


class TestImportMap:
    def test_plain_import(self):
        assert import_map("import numpy").bindings == {"numpy": "numpy"}

    def test_aliased_import(self):
        assert import_map("import numpy as np").bindings == {"np": "numpy"}

    def test_dotted_import_binds_root(self):
        # ``import numpy.random`` makes only ``numpy`` referencable.
        assert import_map("import numpy.random").bindings == \
            {"numpy": "numpy"}

    def test_from_import(self):
        assert import_map("from random import choice").bindings == \
            {"choice": "random.choice"}

    def test_from_import_as(self):
        assert import_map("from numpy import random as nr").bindings == \
            {"nr": "numpy.random"}

    def test_relative_import_ignored(self):
        # Relative imports never alias stdlib/numpy namespaces.
        assert import_map("from . import sibling").bindings == {}
        assert import_map("from .mod import thing").bindings == {}


class TestResolveCallPath:
    def test_aliased_module_attribute(self):
        imports = import_map("import numpy as np")
        assert resolve_call_path(expr("np.random.default_rng"), imports) == \
            "numpy.random.default_rng"

    def test_from_import_as_alias(self):
        imports = import_map("from numpy import random as nr")
        assert resolve_call_path(expr("nr.default_rng"), imports) == \
            "numpy.random.default_rng"

    def test_from_import_function_alias(self):
        imports = import_map("from x import y as z")
        assert resolve_call_path(expr("z"), imports) == "x.y"

    def test_unknown_root_resolves_to_itself(self):
        imports = import_map("import numpy as np")
        assert resolve_call_path(expr("helper"), imports) == "helper"
        assert resolve_call_path(expr("obj.method"), imports) == "obj.method"

    def test_dynamic_expression_is_none(self):
        imports = import_map("import numpy as np")
        assert resolve_call_path(expr("getattr(np, 'random')"),
                                 imports) is None
        assert resolve_call_path(expr("factory().run"), imports) is None

    def test_local_shadowing_produces_harmless_nonmatch(self):
        # A local variable named ``random`` (no import) resolves to the
        # bare chain, which cannot match a qualified ban list entry like
        # ``numpy.random.default_rng`` — by design.
        imports = import_map("x = 1")
        assert resolve_call_path(expr("random.random"), imports) == \
            "random.random"
        assert "random" not in imports.bindings
