"""Tier-1 regression gate: the shipped source tree is violation-free.

This is the test that turns the auditor from a one-shot sweep into a
permanent invariant: reintroducing a wall-clock call, an unseeded RNG, a
magic unit literal, or a kernel-privacy violation anywhere in ``src/repro``
fails the suite with a file:line diagnostic.
"""

from pathlib import Path

import repro
from repro.devtools.audit import audit_paths

PACKAGE_ROOT = Path(repro.__file__).parent


def test_package_root_is_the_real_source_tree():
    assert (PACKAGE_ROOT / "units.py").is_file()
    assert (PACKAGE_ROOT / "devtools" / "audit.py").is_file()


def test_src_repro_is_violation_free():
    findings, files_checked = audit_paths([str(PACKAGE_ROOT)])
    report = "\n".join(finding.format() for finding in findings)
    assert not findings, f"repro-audit found violations:\n{report}"
    # Sanity: the walk actually covered the tree, not an empty directory.
    assert files_checked > 80
