"""Framework behavior: registry, suppressions, findings, exemptions."""

import ast

import pytest

from repro.devtools.core import (
    Finding,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    audit_source,
    expand_statement_suppressions,
    get_rule,
    parse_suppressions,
    register,
    register_project,
)

EXPECTED_RULES = {"DET001", "DET002", "UNIT001", "UNIT002", "SIM001",
                  "EXC001"}


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert EXPECTED_RULES <= {rule.rule_id for rule in all_rules()}

    def test_project_rules_in_separate_registry(self):
        file_ids = {rule.rule_id for rule in all_rules()}
        project_ids = {rule.rule_id for rule in all_project_rules()}
        assert "FLOW001" in project_ids
        assert not file_ids & project_ids

    def test_get_rule_finds_project_rules(self):
        assert get_rule("FLOW001").rule_id == "FLOW001"
        assert isinstance(get_rule("FLOW001"), ProjectRule)

    def test_register_project_rejects_file_rule_id(self):
        class Clash(ProjectRule):
            rule_id = "UNIT001"

        with pytest.raises(ValueError):
            register_project(Clash)

    def test_all_rules_sorted_by_id(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)

    def test_get_rule_by_id(self):
        assert get_rule("UNIT001").rule_id == "UNIT001"

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_register_requires_rule_id(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError):
            register(Anonymous)

    def test_register_rejects_duplicate_id(self):
        class Duplicate(Rule):
            rule_id = "UNIT001"

        with pytest.raises(ValueError):
            register(Duplicate)

    def test_every_rule_has_a_summary(self):
        for rule in all_rules():
            assert rule.summary, f"{rule.rule_id} has no summary"


class TestSuppressions:
    def test_plain_line_not_suppressed(self):
        assert parse_suppressions("x = 1\n") == {}

    def test_bare_noqa_suppresses_all(self):
        supp = parse_suppressions("x = delta * 1e3  # repro: noqa\n")
        assert supp == {1: {"*"}}

    def test_noqa_with_single_rule(self):
        supp = parse_suppressions("x = delta * 1e3  # repro: noqa[UNIT001]\n")
        assert supp == {1: {"UNIT001"}}

    def test_noqa_with_rule_list(self):
        supp = parse_suppressions(
            "bad()  # repro: noqa[UNIT001, DET001]\n")
        assert supp == {1: {"UNIT001", "DET001"}}

    def test_suppressed_finding_dropped(self):
        dirty = "x = delta * 1e3\n"
        clean = "x = delta * 1e3  # repro: noqa[UNIT001]\n"
        assert audit_source(dirty, path="m.py")
        assert audit_source(clean, path="m.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = "x = delta * 1e3  # repro: noqa[DET001]\n"
        findings = audit_source(src, path="m.py")
        assert [f.rule for f in findings] == ["UNIT001"]

    def test_suppression_only_covers_its_line(self):
        src = ("a = delta * 1e3  # repro: noqa[UNIT001]\n"
               "b = delta * 1e3\n")
        findings = audit_source(src, path="m.py")
        assert [(f.rule, f.line) for f in findings] == [("UNIT001", 2)]


class TestMultilineSuppressions:
    """A noqa on any physical line of a multi-line simple statement
    suppresses findings anywhere in that statement — in particular a
    comment on the closing line covers findings anchored at the first."""

    def test_noqa_on_closing_line_suppresses(self):
        src = ("import random\n"
               "x = random.random(\n"
               ")  # repro: noqa[DET001]\n")
        assert audit_source(src, path="m.py") == []

    def test_noqa_on_first_line_still_works(self):
        src = ("import random\n"
               "x = random.random(  # repro: noqa[DET001]\n"
               ")\n")
        assert audit_source(src, path="m.py") == []

    def test_wrong_rule_on_closing_line_does_not_suppress(self):
        src = ("import random\n"
               "x = random.random(\n"
               ")  # repro: noqa[UNIT001]\n")
        findings = audit_source(src, path="m.py")
        assert [f.rule for f in findings] == ["DET001"]

    def test_finding_mid_statement_suppressed_from_closing_line(self):
        src = ("value = compute(\n"
               "    delta * 1e3,\n"
               ")  # repro: noqa[UNIT001]\n")
        assert audit_source(src, path="m.py") == []

    def test_noqa_inside_compound_body_does_not_bleed_to_header(self):
        # DET002 anchors on the set expression in the ``for`` header; a
        # noqa inside the loop body must not reach it.
        src = ("for item in set([1, 2]):\n"
               "    pass  # repro: noqa[DET002]\n")
        findings = audit_source(src, path="m.py")
        assert [f.rule for f in findings] == ["DET002"]

    def test_adjacent_statements_unaffected(self):
        src = ("a = delta * 1e3\n"
               "b = compute(\n"
               "    delta * 1e3,\n"
               ")  # repro: noqa[UNIT001]\n")
        findings = audit_source(src, path="m.py")
        assert [(f.rule, f.line) for f in findings] == [("UNIT001", 1)]

    def test_expand_helper_maps_all_statement_lines(self):
        tree = ast.parse("x = f(\n    1,\n    2,\n)\n")
        expanded = expand_statement_suppressions(tree, {4: {"UNIT001"}})
        assert expanded == {1: {"UNIT001"}, 2: {"UNIT001"},
                            3: {"UNIT001"}, 4: {"UNIT001"}}

    def test_expand_helper_noop_without_suppressions(self):
        tree = ast.parse("x = f(\n    1,\n)\n")
        assert expand_statement_suppressions(tree, {}) == {}


class TestFinding:
    def test_format_is_compiler_style(self):
        finding = Finding(rule="UNIT001", path="src/m.py", line=3, col=7,
                          message="boom")
        assert finding.format() == "src/m.py:3:7: UNIT001 boom"

    def test_as_dict_keys_are_stable(self):
        finding = Finding(rule="DET001", path="p.py", line=1, col=0,
                          message="m")
        assert finding.as_dict() == {"rule": "DET001", "path": "p.py",
                                     "line": 1, "col": 0, "message": "m"}

    def test_findings_sorted_by_location(self):
        src = ("import random\n"
               "b = delta * 1e3\n"
               "a = random.random()\n")
        findings = audit_source(src, path="m.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestExemptions:
    def test_units_py_exempt_from_unit001(self):
        src = "def ms(value):\n    return value * 1e-3\n"
        assert audit_source(src, path="src/repro/units.py") == []
        assert audit_source(src, path="src/repro/other.py")

    def test_sim_random_exempt_from_det001(self):
        src = ("import numpy as np\n"
               "gen = np.random.default_rng(0)\n")
        assert audit_source(src, path="src/repro/sim/random.py") == []
        assert audit_source(src, path="src/repro/netdyn/source.py")
