"""Framework behavior: registry, suppressions, findings, exemptions."""

import pytest

from repro.devtools.core import (
    Finding,
    Rule,
    all_rules,
    audit_source,
    get_rule,
    parse_suppressions,
    register,
)

EXPECTED_RULES = {"DET001", "DET002", "UNIT001", "UNIT002", "SIM001",
                  "EXC001"}


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert EXPECTED_RULES <= {rule.rule_id for rule in all_rules()}

    def test_all_rules_sorted_by_id(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == sorted(ids)

    def test_get_rule_by_id(self):
        assert get_rule("UNIT001").rule_id == "UNIT001"

    def test_get_rule_unknown_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_register_requires_rule_id(self):
        class Anonymous(Rule):
            pass

        with pytest.raises(ValueError):
            register(Anonymous)

    def test_register_rejects_duplicate_id(self):
        class Duplicate(Rule):
            rule_id = "UNIT001"

        with pytest.raises(ValueError):
            register(Duplicate)

    def test_every_rule_has_a_summary(self):
        for rule in all_rules():
            assert rule.summary, f"{rule.rule_id} has no summary"


class TestSuppressions:
    def test_plain_line_not_suppressed(self):
        assert parse_suppressions("x = 1\n") == {}

    def test_bare_noqa_suppresses_all(self):
        supp = parse_suppressions("x = delta * 1e3  # repro: noqa\n")
        assert supp == {1: {"*"}}

    def test_noqa_with_single_rule(self):
        supp = parse_suppressions("x = delta * 1e3  # repro: noqa[UNIT001]\n")
        assert supp == {1: {"UNIT001"}}

    def test_noqa_with_rule_list(self):
        supp = parse_suppressions(
            "bad()  # repro: noqa[UNIT001, DET001]\n")
        assert supp == {1: {"UNIT001", "DET001"}}

    def test_suppressed_finding_dropped(self):
        dirty = "x = delta * 1e3\n"
        clean = "x = delta * 1e3  # repro: noqa[UNIT001]\n"
        assert audit_source(dirty, path="m.py")
        assert audit_source(clean, path="m.py") == []

    def test_wrong_rule_id_does_not_suppress(self):
        src = "x = delta * 1e3  # repro: noqa[DET001]\n"
        findings = audit_source(src, path="m.py")
        assert [f.rule for f in findings] == ["UNIT001"]

    def test_suppression_only_covers_its_line(self):
        src = ("a = delta * 1e3  # repro: noqa[UNIT001]\n"
               "b = delta * 1e3\n")
        findings = audit_source(src, path="m.py")
        assert [(f.rule, f.line) for f in findings] == [("UNIT001", 2)]


class TestFinding:
    def test_format_is_compiler_style(self):
        finding = Finding(rule="UNIT001", path="src/m.py", line=3, col=7,
                          message="boom")
        assert finding.format() == "src/m.py:3:7: UNIT001 boom"

    def test_as_dict_keys_are_stable(self):
        finding = Finding(rule="DET001", path="p.py", line=1, col=0,
                          message="m")
        assert finding.as_dict() == {"rule": "DET001", "path": "p.py",
                                     "line": 1, "col": 0, "message": "m"}

    def test_findings_sorted_by_location(self):
        src = ("import random\n"
               "b = delta * 1e3\n"
               "a = random.random()\n")
        findings = audit_source(src, path="m.py")
        assert [f.line for f in findings] == sorted(f.line for f in findings)


class TestExemptions:
    def test_units_py_exempt_from_unit001(self):
        src = "def ms(value):\n    return value * 1e-3\n"
        assert audit_source(src, path="src/repro/units.py") == []
        assert audit_source(src, path="src/repro/other.py")

    def test_sim_random_exempt_from_det001(self):
        src = ("import numpy as np\n"
               "gen = np.random.default_rng(0)\n")
        assert audit_source(src, path="src/repro/sim/random.py") == []
        assert audit_source(src, path="src/repro/netdyn/source.py")
