"""The governing invariant: observers never perturb the simulation.

Same seed ⇒ bit-identical ``ProbeTrace`` whether observability is off,
metrics-only, or fully on (kernel + lifecycle tracing).
"""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_observed_experiment
from repro.netdyn.session import run_probe_experiment
from repro.obs import KernelTracer, Observability
from repro.topology.inria_umd import build_inria_umd

CONFIG_KWARGS = dict(delta=0.05, duration=10.0, seed=7)


def bits(trace):
    """The trace's numeric payload, bit-exact."""
    return (trace.send_times.tobytes(), trace.rtts.tobytes())


class TestSameSeedEquality:
    def test_full_observability_is_bit_identical(self):
        bare = run_experiment(ExperimentConfig(**CONFIG_KWARGS))
        observed, _scenario, obs = run_observed_experiment(
            ExperimentConfig(**CONFIG_KWARGS),
            kernel_trace=True, lifecycle=True)
        assert bits(observed) == bits(bare)
        # The collectors really ran.
        assert len(obs.kernel) > 0
        assert len(obs.lifecycle.records) > 0

    def test_metrics_only_is_bit_identical(self):
        bare = run_experiment(ExperimentConfig(**CONFIG_KWARGS))
        observed, _scenario, obs = run_observed_experiment(
            ExperimentConfig(**CONFIG_KWARGS))
        assert bits(observed) == bits(bare)
        assert obs.kernel is None and obs.lifecycle is None
        assert len(obs.registry) > 0

    def test_observability_bundle_is_bit_identical(self):
        def run(observe):
            scenario = build_inria_umd(seed=3)
            obs = Observability.full(scenario.sim, scenario.network) \
                if observe else None
            scenario.start_traffic()
            trace = run_probe_experiment(scenario.network, scenario.source,
                                         scenario.echo, delta=0.05,
                                         count=100)
            if obs:
                obs.close(sim=scenario.sim)
            return trace

        assert bits(run(True)) == bits(run(False))


class TestKernelObserverNeutrality:
    def test_event_count_unchanged_by_tracing(self):
        def events(trace_on):
            scenario = build_inria_umd(seed=11)
            if trace_on:
                scenario.sim.attach_observer(KernelTracer())
            scenario.start_traffic()
            scenario.sim.run(until=5.0)
            return scenario.sim.events_executed, scenario.sim.now

        assert events(True) == events(False)

    def test_simulated_clock_identical_under_tracing(self):
        scenario_a = build_inria_umd(seed=2)
        scenario_b = build_inria_umd(seed=2)
        tracer = KernelTracer()
        scenario_b.sim.attach_observer(tracer)
        scenario_a.start_traffic()
        scenario_b.start_traffic()
        scenario_a.sim.run(until=3.0)
        scenario_b.sim.run(until=3.0)
        assert scenario_a.sim.now == scenario_b.sim.now
        assert scenario_a.sim.events_executed == \
            scenario_b.sim.events_executed
        # Every recorded simulated timestamp is within the run window.
        times = np.array([record.time for record in tracer.records])
        assert (times <= 3.0).all()
        assert (np.diff(times) >= 0).all()  # time-ordered
