"""Packet uids are a per-simulation coordinate system.

Constructing a :class:`~repro.sim.kernel.Simulator` resets the packet-uid
counter, so the lifecycle trace of a cell depends only on the cell itself —
never on what else ran earlier in the same process.  This is what lets
campaign workers run many cells back-to-back and still produce traces that
join against single-cell reference runs.
"""

from repro.netdyn.session import run_probe_experiment
from repro.obs import PacketLifecycleTracer
from repro.topology.inria_umd import build_inria_umd


def _traced_cell():
    scenario = build_inria_umd(seed=5)
    tracer = PacketLifecycleTracer(scenario.network)
    scenario.start_traffic(at=0.0)
    run_probe_experiment(scenario.network, scenario.source, scenario.echo,
                         delta=0.05, count=60, start_at=2.0)
    return tracer.records


def test_back_to_back_cells_emit_identical_lifecycle_traces():
    first = _traced_cell()
    second = _traced_cell()
    assert len(first) > 0
    # HopRecord equality covers time, uid, event, place, kind, src, dst and
    # queue_len — uid continuity across runs would fail this immediately.
    assert first == second


def test_uids_restart_at_one_per_simulator():
    records = _traced_cell()
    assert min(record.uid for record in records) == 1
    records = _traced_cell()
    assert min(record.uid for record in records) == 1
