"""Progress reporter: counters, ETA, rendering, TTY resolution."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.obs.progress import ProgressReporter, resolve_progress


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TTYBuffer(io.StringIO):
    def isatty(self):
        return True


def reporter(total=8, workers=4, clock=None):
    return ProgressReporter(total=total, workers=workers,
                            stream=io.StringIO(),
                            clock=clock or FakeClock())


class TestCounters:
    def test_done_and_cached_accounting(self):
        progress = reporter()
        progress.start()
        progress.cell_cached("d50_s1")
        progress.cell_done("d50_s2", wall_seconds=2.0)
        assert progress.done == 2
        assert progress.cached == 1
        assert progress.busy_seconds == 2.0

    def test_negative_wall_seconds_clamped(self):
        progress = reporter()
        progress.cell_done("k", wall_seconds=-1.0)
        assert progress.busy_seconds == 0.0

    def test_elapsed_zero_before_start(self):
        assert reporter().elapsed() == 0.0

    def test_elapsed_follows_clock(self):
        clock = FakeClock()
        progress = reporter(clock=clock)
        progress.start()
        clock.advance(12.5)
        assert progress.elapsed() == pytest.approx(12.5)


class TestDerived:
    def test_utilization(self):
        clock = FakeClock()
        progress = reporter(workers=2, clock=clock)
        progress.start()
        clock.advance(10.0)
        progress.cell_done("a", wall_seconds=15.0)
        # 15s of work over 10s * 2 workers = 75% busy.
        assert progress.utilization() == pytest.approx(0.75)

    def test_utilization_unknown_when_only_cache_hits(self):
        clock = FakeClock()
        progress = reporter(clock=clock)
        progress.start()
        clock.advance(1.0)
        progress.cell_cached("a")
        assert progress.utilization() is None

    def test_utilization_capped_at_one(self):
        clock = FakeClock()
        progress = reporter(workers=1, clock=clock)
        progress.start()
        clock.advance(1.0)
        progress.cell_done("a", wall_seconds=50.0)
        assert progress.utilization() == 1.0

    def test_eta_from_mean_cell_cost(self):
        progress = reporter(total=8, workers=2)
        progress.start()
        progress.cell_done("a", wall_seconds=4.0)
        progress.cell_done("b", wall_seconds=6.0)
        # 6 cells left at 5s mean over 2 workers.
        assert progress.eta_seconds() == pytest.approx(15.0)

    def test_eta_unknown_without_simulated_cells(self):
        progress = reporter(total=4)
        progress.start()
        progress.cell_cached("a")
        assert progress.eta_seconds() is None

    def test_eta_none_when_grid_complete(self):
        progress = reporter(total=1)
        progress.start()
        progress.cell_done("a", wall_seconds=1.0)
        assert progress.eta_seconds() is None


class TestEtaCacheSkew:
    """Cache hits must not skew the ETA (regression).

    A burst of near-instant cache hits used to be a risk for the
    projected finish time: folding their (historical) wall cost or their
    count into the mean simulated-cell cost craters the estimate.  Hits
    are accounted on a separate ``saved_seconds`` channel instead.
    """

    def test_eta_unchanged_by_interleaved_cache_hits(self):
        clock = FakeClock()
        fresh_only = reporter(total=16, workers=2, clock=clock)
        fresh_only.start()
        mixed = reporter(total=16, workers=2, clock=clock)
        mixed.start()
        for i in range(4):
            fresh_only.cell_done(f"f{i}", wall_seconds=4.0)
            mixed.cell_done(f"f{i}", wall_seconds=4.0)
            # The mixed run additionally resolves hits carrying large
            # historical wall costs between every simulated cell.
            mixed.cell_cached(f"c{i}", saved_seconds=100.0)
        remaining_penalty = fresh_only.eta_seconds() - mixed.eta_seconds()
        # Same mean (4.0s over 2 workers); the mixed run just has 4
        # fewer cells left, so its ETA is exactly 4 cells shorter.
        assert fresh_only.eta_seconds() == pytest.approx(4 * 4.0 / 2 + 16.0)
        assert remaining_penalty == pytest.approx(4 * 4.0 / 2)
        assert mixed.saved_seconds == pytest.approx(400.0)
        assert mixed.busy_seconds == pytest.approx(16.0)

    def test_cell_done_cached_routes_to_hit_accounting(self):
        progress = reporter(total=4, workers=1)
        progress.start()
        progress.cell_done("fresh", wall_seconds=2.0)
        progress.cell_done("hit", wall_seconds=50.0, cached=True)
        assert progress.done == 2
        assert progress.cached == 1
        assert progress.busy_seconds == pytest.approx(2.0)
        assert progress.saved_seconds == pytest.approx(50.0)
        # ETA projects from the one simulated cell only.
        assert progress.eta_seconds() == pytest.approx(2 * 2.0)

    def test_saved_seconds_clamped_nonnegative(self):
        progress = reporter()
        progress.cell_cached("a", saved_seconds=-3.0)
        assert progress.saved_seconds == 0.0

    def test_render_reports_saved_time_separately(self):
        clock = FakeClock()
        progress = reporter(total=4, clock=clock)
        progress.start()
        progress.cell_cached("a", saved_seconds=12.25)
        line = progress.render()
        assert "1 cached (saved 12.2s)" in line

    def test_render_omits_saved_time_when_zero(self):
        progress = reporter(total=4)
        progress.start()
        progress.cell_cached("a")
        assert "saved" not in progress.render()


class TestRendering:
    def test_render_full_line(self):
        clock = FakeClock()
        progress = reporter(total=8, workers=4, clock=clock)
        progress.start()
        clock.advance(10.0)
        progress.cell_cached("a")
        progress.cell_done("b", wall_seconds=20.0)
        line = progress.render()
        assert line.startswith("campaign 2/8 cells")
        assert "1 cached" in line
        assert "4 workers 50% busy" in line
        assert "10.0s elapsed" in line
        assert "s left" in line

    def test_render_singular_worker(self):
        assert "1 worker" in reporter(workers=1).render()
        assert "1 workers" not in reporter(workers=1).render()

    def test_draw_uses_carriage_return_and_padding(self):
        progress = reporter()
        progress.start()
        output = progress.stream.getvalue()
        assert output.startswith("\r")
        assert len(output) == 1 + 78

    def test_finish_terminates_line_once(self):
        progress = reporter()
        progress.start()
        progress.finish()
        progress.finish()
        progress.cell_done("ignored")
        assert progress.stream.getvalue().count("\n") == 1


class TestResolveProgress:
    def test_off_values(self):
        for request in (None, False, "off"):
            assert resolve_progress(request, total=4, workers=1) is None

    def test_existing_reporter_passes_through(self):
        existing = reporter()
        assert resolve_progress(existing, total=4, workers=1) is existing

    def test_auto_needs_a_tty(self):
        assert resolve_progress("auto", total=4, workers=1,
                                stream=io.StringIO()) is None
        assert resolve_progress(True, total=4, workers=1,
                                stream=io.StringIO()) is None

    def test_auto_on_a_tty(self):
        resolved = resolve_progress("auto", total=4, workers=2,
                                    stream=TTYBuffer())
        assert isinstance(resolved, ProgressReporter)
        assert resolved.total == 4
        assert resolved.workers == 2

    def test_on_forces_reporter_without_tty(self):
        resolved = resolve_progress("on", total=4, workers=1,
                                    stream=io.StringIO())
        assert isinstance(resolved, ProgressReporter)

    def test_unknown_request_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_progress("loud", total=4, workers=1)
