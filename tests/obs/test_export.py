"""Exporters and manifests: JSONL/Chrome round-trips, Observability.save."""

import json

import pytest

from repro.obs import (
    EventRecord,
    HopRecord,
    KernelTracer,
    Observability,
    SpanRecord,
    build_manifest,
    read_chrome_trace,
    read_events_jsonl,
    read_hops_jsonl,
    read_manifest,
    read_spans_jsonl,
    write_chrome_trace,
    write_events_jsonl,
    write_hops_jsonl,
    write_manifest,
    write_profiles_json,
    write_spans_jsonl,
)
from repro.sim import Simulator

EVENTS = [
    EventRecord(time=0.5, label="tx-done a->b", priority=10,
                wall_seconds=2e-6),
    EventRecord(time=1.25, label="", priority=0, wall_seconds=5e-7),
]
HOPS = [
    HopRecord(time=0.5, uid=7, event="enqueued", place="a->b", kind="udp",
              src="a", dst="b", queue_len=3),
    HopRecord(time=0.6, uid=7, event="received", place="b", kind="udp",
              src="a", dst="b"),
]


class TestJsonlRoundTrip:
    def test_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(EVENTS, path) == 2
        assert read_events_jsonl(path) == EVENTS

    def test_hops(self, tmp_path):
        path = tmp_path / "hops.jsonl"
        assert write_hops_jsonl(HOPS, path) == 2
        assert read_hops_jsonl(path) == HOPS

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(EVENTS, path)
        path.write_text(path.read_text() + "\n\n")
        assert read_events_jsonl(path) == EVENTS

    def test_spans(self, tmp_path):
        spans = [SpanRecord(name="cell d50_s1", phase="cell", start=100.0,
                            duration=2.0, pid=11, worker="w11",
                            cell="d50_s1"),
                 SpanRecord(name="sim", phase="sim", start=100.5,
                            duration=1.0, pid=11, worker="w11",
                            cell="d50_s1", depth=1)]
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(spans, path) == 2
        assert read_spans_jsonl(path) == spans

    def test_empty_ring_buffer_round_trips(self, tmp_path):
        # A tracer that saw nothing still exports a valid (empty) file.
        tracer = KernelTracer()
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(tracer.records, path) == 0
        assert read_events_jsonl(path) == []
        assert write_chrome_trace(tmp_path / "trace.json",
                                  events=tracer.records) == 0
        assert read_chrome_trace(tmp_path / "trace.json") == []

    def test_wrapped_ring_buffer_exports_survivors_only(self, tmp_path):
        # Capacity 3, 10 events: the ring keeps the last 3; the export
        # must contain exactly those, in order, and nothing overwritten.
        sim = Simulator(seed=1)
        tracer = KernelTracer(capacity=3)
        sim.attach_observer(tracer)
        for n in range(10):
            sim.call_at(float(n), lambda: None, label=f"tick-{n}")
        sim.run()
        assert tracer.events_seen == 10
        assert tracer.overwritten == 7
        path = tmp_path / "events.jsonl"
        assert write_events_jsonl(tracer.records, path) == 3
        labels = [record.label for record in read_events_jsonl(path)]
        assert labels == ["tick-7", "tick-8", "tick-9"]


class TestChromeTrace:
    def test_round_trip_and_layout(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(path, events=EVENTS, hops=HOPS)
        assert count == 4
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        rows = read_chrome_trace(path)
        kernel = [row for row in rows if row["cat"] == "kernel"]
        packet = [row for row in rows if row["cat"] == "packet"]
        assert [row["ph"] for row in kernel] == ["X", "X"]
        assert [row["ph"] for row in packet] == ["i", "i"]
        # Simulated seconds land on the µs timeline.
        assert kernel[0]["ts"] == pytest.approx(0.5e6)
        assert kernel[0]["dur"] == pytest.approx(2.0)
        assert kernel[1]["name"] == "<unlabelled>"
        assert packet[0]["tid"] == "a->b"
        assert packet[0]["args"]["queue_len"] == 3

    def test_events_only(self, tmp_path):
        path = tmp_path / "trace.json"
        assert write_chrome_trace(path, events=EVENTS) == 2

    def test_multi_worker_span_merge_lanes(self, tmp_path):
        # Spans merged from two worker processes: one lane per worker
        # (pid/tid), timestamps normalized to the earliest span so the
        # whole campaign reads as one flame graph from t=0.
        from repro.obs.spans import merge_spans

        epoch = 1700000000.0
        spans = [
            SpanRecord(name="cell d50_s2", phase="cell", start=epoch + 1.0,
                       duration=2.0, pid=12, worker="w12", cell="d50_s2"),
            SpanRecord(name="cell d50_s1", phase="cell", start=epoch + 1.5,
                       duration=1.0, pid=11, worker="w11", cell="d50_s1"),
            SpanRecord(name="campaign", phase="campaign", start=epoch,
                       duration=4.0, pid=10, worker="main"),
        ]
        merged = merge_spans(spans, ["d50_s1", "d50_s2"])
        path = tmp_path / "trace.json"
        assert write_chrome_trace(path, spans=merged) == 3
        rows = read_chrome_trace(path)
        assert [row["name"] for row in rows] \
            == ["campaign", "cell d50_s1", "cell d50_s2"]
        assert all(row["cat"] == "span" and row["ph"] == "X"
                   for row in rows)
        # One lane per recording process.
        assert [(row["pid"], row["tid"]) for row in rows] \
            == [(10, "main"), (11, "w11"), (12, "w12")]
        # Wall clock normalized to the earliest span, in microseconds.
        assert rows[0]["ts"] == pytest.approx(0.0)
        assert rows[1]["ts"] == pytest.approx(1.5e6)
        assert rows[1]["dur"] == pytest.approx(1.0e6)
        assert rows[2]["args"]["cell"] == "d50_s2"


class TestProfilesJson:
    def test_document_shape(self, tmp_path):
        sim = Simulator(seed=1)
        tracer = KernelTracer()
        sim.attach_observer(tracer)
        sim.call_at(1.0, lambda: None, label="tick")
        sim.run()
        path = tmp_path / "profiles.json"
        write_profiles_json(tracer, path)
        document = json.loads(path.read_text())
        assert document["events_seen"] == 1
        assert document["profiles"][0]["label"] == "tick"
        assert document["profiles"][0]["count"] == 1


class TestManifest:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        written = write_manifest(path, config={"delta": 0.05}, seed=3,
                                 metrics={"net": {"x": 1}},
                                 extra={"note": "hello"})
        assert read_manifest(path) == written
        assert written["seed"] == 3
        assert written["config"] == {"delta": 0.05}
        assert "repro" in written["versions"]
        assert "python" in written["versions"]

    def test_dataclass_config_serialized(self):
        from repro.experiments.config import ExperimentConfig
        manifest = build_manifest(
            config=ExperimentConfig(delta=0.1, duration=1.0, seed=2))
        assert manifest["config"]["delta"] == 0.1
        assert manifest["config"]["seed"] == 2

    def test_same_inputs_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        write_manifest(a, config={"k": 1}, seed=5)
        write_manifest(b, config={"k": 1}, seed=5)
        assert a.read_bytes() == b.read_bytes()


class TestObservabilitySave:
    def test_full_bundle_writes_every_artifact(self, tmp_path):
        from repro.topology.inria_umd import build_inria_umd
        scenario = build_inria_umd(seed=1)
        obs = Observability.full(scenario.sim, scenario.network)
        scenario.start_traffic()
        scenario.sim.run(until=1.0)
        obs.close(sim=scenario.sim)
        written = obs.save(tmp_path / "out")
        names = sorted(path.name for path in written)
        assert names == ["events.jsonl", "hops.jsonl", "profiles.json",
                         "trace.json"]
        assert read_events_jsonl(tmp_path / "out" / "events.jsonl")

    def test_metrics_only_bundle_writes_nothing(self, tmp_path):
        from repro.topology.inria_umd import build_inria_umd
        scenario = build_inria_umd(seed=1)
        obs = Observability.metrics_only(scenario.network)
        assert obs.save(tmp_path) == []
        assert obs.snapshot()
