"""Kernel tracer: ring buffer, per-label profiles, attach/detach rules."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.obs import KernelTracer
from repro.sim import Simulator


def run_ticks(tracer, count=5, label="tick", capacity_sim_seed=1):
    sim = Simulator(seed=capacity_sim_seed)
    sim.attach_observer(tracer)
    for n in range(count):
        sim.call_at(float(n), lambda: None, label=label)
    sim.run()
    return sim


class TestRecording:
    def test_records_every_event(self):
        tracer = KernelTracer()
        run_ticks(tracer, count=5)
        assert len(tracer) == 5
        assert tracer.events_seen == 5
        assert [record.time for record in tracer.records] == \
            [0.0, 1.0, 2.0, 3.0, 4.0]
        assert {record.label for record in tracer.records} == {"tick"}

    def test_wall_cost_is_positive(self):
        tracer = KernelTracer()
        run_ticks(tracer, count=3)
        assert all(record.wall_seconds >= 0 for record in tracer.records)
        assert tracer.total_wall_seconds >= 0
        assert tracer.events_per_wall_second() > 0

    def test_ring_buffer_discards_oldest(self):
        tracer = KernelTracer(capacity=3)
        run_ticks(tracer, count=10)
        assert len(tracer) == 3
        assert tracer.events_seen == 10
        assert tracer.overwritten == 7
        assert [record.time for record in tracer.records] == [7.0, 8.0, 9.0]

    def test_unbounded_keeps_everything(self):
        tracer = KernelTracer(capacity=None)
        run_ticks(tracer, count=10)
        assert len(tracer) == 10
        assert tracer.overwritten == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelTracer(capacity=0)

    def test_clear(self):
        tracer = KernelTracer()
        run_ticks(tracer, count=4)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.events_seen == 0
        assert tracer.profiles() == []


class TestProfiles:
    def test_per_label_aggregation(self):
        tracer = KernelTracer()
        sim = Simulator(seed=1)
        sim.attach_observer(tracer)
        for n in range(4):
            sim.call_at(float(n), lambda: None, label="a")
        sim.call_at(10.0, lambda: None, label="b")
        sim.run()
        profile = tracer.profile("a")
        assert profile.count == 4
        assert profile.first_time == 0.0
        assert profile.last_time == 3.0
        assert profile.events_per_sim_second() == pytest.approx(4 / 3.0)
        assert profile.total_wall_seconds >= profile.max_wall_seconds > 0
        assert tracer.profile("b").count == 1
        with pytest.raises(KeyError):
            tracer.profile("never-scheduled")

    def test_hot_labels_sorted_by_total_cost(self):
        tracer = KernelTracer()
        run_ticks(tracer, count=5)
        hot = tracer.hot_labels(3)
        assert [p.label for p in hot] == ["tick"]
        totals = [p.total_wall_seconds for p in tracer.profiles()]
        assert totals == sorted(totals, reverse=True)


class TestAttachment:
    def test_double_attach_rejected(self):
        sim = Simulator(seed=0)
        sim.attach_observer(KernelTracer())
        with pytest.raises(SimulationError):
            sim.attach_observer(KernelTracer())

    def test_detach_stops_recording(self):
        sim = Simulator(seed=0)
        tracer = KernelTracer()
        sim.attach_observer(tracer)
        sim.call_at(1.0, lambda: None, label="before")
        sim.run()
        sim.detach_observer()
        assert sim.observer is None
        sim.call_at(2.0, lambda: None, label="after")
        sim.run()
        assert [record.label for record in tracer.records] == ["before"]
