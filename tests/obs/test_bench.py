"""Benchmark report schema, round-trips, and regression comparison."""

import json

import pytest

from repro.errors import AnalysisError
from repro.obs.bench import (
    DEFAULT_THRESHOLD,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    MetricChange,
    build_report,
    compare_reports,
    flat_metrics,
    format_comparison,
    iter_report_paths,
    machine_info,
    metric,
    read_report,
    write_report,
)

SALT = "repro-cell-v2-test"


def report(metrics=None, suite="kernel", mode="full", salt=SALT, **kwargs):
    if metrics is None:
        metrics = {"throughput": metric(100.0, "events/s")}
    return build_report(suite, metrics, mode=mode, salt=salt, **kwargs)


class TestBuildReport:
    def test_document_shape(self):
        document = report(details={"rounds": 3})
        assert document["schema"] == SCHEMA_NAME
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["suite"] == "kernel"
        assert document["salt"] == SALT
        assert document["details"] == {"rounds": 3}
        assert document["metrics"]["throughput"]["value"] == 100.0
        assert set(document["machine"]) == set(machine_info())

    def test_default_salt_is_the_derived_cache_salt(self):
        from repro.experiments.cache import cache_salt
        assert build_report("kernel", {})["salt"] == cache_salt()

    def test_no_timestamps(self):
        rendered = json.dumps(report())
        assert "time" not in rendered
        assert "date" not in rendered

    def test_malformed_metric_rejected(self):
        with pytest.raises(AnalysisError, match="missing field"):
            build_report("kernel", {"x": {"value": 1.0}}, salt=SALT)

    def test_bad_direction_rejected(self):
        with pytest.raises(AnalysisError, match="direction"):
            metric(1.0, "s", direction="sideways")


class TestReadWrite:
    def test_round_trip(self, tmp_path):
        document = report()
        path = write_report(document, tmp_path / "BENCH_kernel.json")
        assert read_report(path) == document

    def test_write_is_deterministic(self, tmp_path):
        write_report(report(), tmp_path / "a.json")
        write_report(report(), tmp_path / "b.json")
        assert (tmp_path / "a.json").read_bytes() \
            == (tmp_path / "b.json").read_bytes()

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(AnalysisError, match="cannot read"):
            read_report(tmp_path / "nope.json")

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": "other"}))
        with pytest.raises(AnalysisError, match="not a repro-bench"):
            read_report(path)

    def test_future_schema_version_rejected(self, tmp_path):
        document = report()
        document["schema_version"] = SCHEMA_VERSION + 1
        path = write_report(document, tmp_path / "x.json")
        with pytest.raises(AnalysisError, match="schema_version"):
            read_report(path)

    def test_missing_metrics_rejected(self, tmp_path):
        document = report()
        del document["metrics"]
        path = write_report(document, tmp_path / "x.json")
        with pytest.raises(AnalysisError, match="missing"):
            read_report(path)


class TestMetricChange:
    def test_higher_is_better_drop_is_regression(self):
        change = MetricChange("x", old=100.0, new=85.0, unit="events/s",
                              direction="higher")
        assert change.relative_change() == pytest.approx(-0.15)
        assert change.is_regression(0.10)
        assert not change.is_regression(0.20)

    def test_lower_is_better_rise_is_regression(self):
        change = MetricChange("x", old=1.0, new=1.3, unit="s",
                              direction="lower")
        assert change.relative_change() == pytest.approx(-0.3)
        assert change.is_regression(0.10)

    def test_improvement_is_positive_both_directions(self):
        faster = MetricChange("x", old=100.0, new=120.0, unit="",
                              direction="higher")
        leaner = MetricChange("y", old=2.0, new=1.0, unit="",
                              direction="lower")
        assert faster.relative_change() == pytest.approx(0.2)
        assert leaner.relative_change() == pytest.approx(0.5)

    def test_zero_old_value_is_incomparable_not_a_regression(self):
        change = MetricChange("x", old=0.0, new=5.0, unit="",
                              direction="higher")
        assert change.relative_change() is None
        assert not change.is_regression(0.0)


class TestCompareReports:
    def test_identical_reports_pass(self):
        comparison = compare_reports(report(), report())
        assert comparison["regressions"] == []
        assert comparison["caveats"] == []
        assert len(comparison["changes"]) == 1

    def test_injected_regression_detected(self):
        old = report(metrics={"throughput": metric(100.0, "events/s")})
        new = report(metrics={"throughput": metric(85.0, "events/s")})
        comparison = compare_reports(old, new, threshold=0.10)
        assert [c.name for c in comparison["regressions"]] == ["throughput"]

    def test_threshold_is_respected(self):
        old = report(metrics={"throughput": metric(100.0, "events/s")})
        new = report(metrics={"throughput": metric(85.0, "events/s")})
        assert compare_reports(old, new, threshold=0.20)["regressions"] == []

    def test_negative_threshold_rejected(self):
        with pytest.raises(AnalysisError, match="threshold"):
            compare_reports(report(), report(), threshold=-0.1)

    def test_suite_mode_salt_mismatches_are_caveats(self):
        old = report(suite="kernel", mode="full", salt="repro-cell-v2-a")
        new = report(suite="cache", mode="quick", salt="repro-cell-v2-b")
        caveats = "\n".join(compare_reports(old, new)["caveats"])
        assert "suite mismatch" in caveats
        assert "mode mismatch" in caveats
        assert "salt differs" in caveats

    def test_one_sided_metrics_are_caveats_not_failures(self):
        old = report(metrics={"gone": metric(1.0, "s")})
        new = report(metrics={"fresh": metric(1.0, "s")})
        comparison = compare_reports(old, new)
        assert comparison["changes"] == []
        assert comparison["regressions"] == []
        assert any("'gone' only in old" in c for c in comparison["caveats"])
        assert any("'fresh' only in new" in c for c in comparison["caveats"])


class TestFormatComparison:
    def test_regression_and_ok_lines(self):
        old = report(metrics={"a": metric(100.0, "events/s"),
                              "b": metric(10.0, "s", direction="lower")})
        new = report(metrics={"a": metric(50.0, "events/s"),
                              "b": metric(9.0, "s", direction="lower")})
        text = format_comparison(compare_reports(old, new))
        assert "REGRESSION  a: 100 -> 50 events/s (-50.0%)" in text
        assert "ok  b: 10 -> 9 s (+10.0%)" in text
        assert "1 regression(s) past 10% threshold" in text

    def test_caveats_rendered_as_notes(self):
        old = report(salt="repro-cell-v2-a")
        new = report(salt="repro-cell-v2-b")
        text = format_comparison(compare_reports(old, new))
        assert "note  code salt differs" in text


class TestHelpers:
    def test_flat_metrics_lifts_workloads(self):
        metrics = flat_metrics(
            {"event_loop": {"events_per_second": 200.0, "events": 5},
             "skipped": "not a dict"},
            unit="events/s")
        assert list(metrics) == ["event_loop_events_per_second"]
        assert metrics["event_loop_events_per_second"]["value"] == 200.0

    def test_default_threshold_value(self):
        assert DEFAULT_THRESHOLD == 0.10

    def test_iter_report_paths_sorted(self, tmp_path):
        for name in ("BENCH_b.json", "BENCH_a.json", "notes.json"):
            (tmp_path / name).write_text("{}")
        assert [p.name for p in iter_report_paths(tmp_path)] \
            == ["BENCH_a.json", "BENCH_b.json"]
