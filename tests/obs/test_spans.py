"""Span tracer, per-worker files, grid-order merge, timing summary."""

import os

import pytest

from repro.errors import ConfigurationError
from repro.obs.spans import (
    MERGED_SPAN_FILE,
    PHASE_CACHE,
    PHASE_CAMPAIGN,
    PHASE_CELL,
    PHASE_SIM,
    SpanRecord,
    SpanTracer,
    append_spans,
    clear_worker_files,
    merge_spans,
    read_span_dir,
    resolve_span_dir,
    summarize_spans,
    worker_span_path,
)


def record(name="sim", phase=PHASE_SIM, start=10.0, duration=1.0,
           pid=1, worker="main", cell="", depth=0):
    return SpanRecord(name=name, phase=phase, start=start,
                      duration=duration, pid=pid, worker=worker,
                      cell=cell, depth=depth)


class TestSpanRecord:
    def test_dict_round_trip(self):
        original = record(cell="d50_s1", depth=2)
        assert SpanRecord.from_dict(original.as_dict()) == original

    def test_from_dict_defaults_optional_fields(self):
        row = record().as_dict()
        del row["cell"], row["depth"]
        rebuilt = SpanRecord.from_dict(row)
        assert rebuilt.cell == ""
        assert rebuilt.depth == 0

    def test_equality_and_hash(self):
        assert record() == record()
        assert hash(record()) == hash(record())
        assert record() != record(duration=2.0)

    def test_repr_names_fields(self):
        assert "phase='sim'" in repr(record())


class TestSpanTracer:
    def test_records_on_exit_innermost_first(self):
        tracer = SpanTracer(worker="main")
        with tracer.span("outer", phase=PHASE_CELL, cell="d50_s1"):
            with tracer.span("inner", phase=PHASE_SIM):
                pass
        assert [s.name for s in tracer.records] == ["inner", "outer"]

    def test_child_inherits_enclosing_cell_and_depth(self):
        tracer = SpanTracer()
        with tracer.span("cell", phase=PHASE_CELL, cell="d50_s1"):
            with tracer.span("sim", phase=PHASE_SIM):
                pass
        inner, outer = tracer.records
        assert inner.cell == "d50_s1"
        assert inner.depth == 1
        assert outer.depth == 0

    def test_explicit_cell_overrides_inherited(self):
        tracer = SpanTracer()
        with tracer.span("cell", phase=PHASE_CELL, cell="d50_s1"):
            with tracer.span("cache", phase=PHASE_CACHE, cell="d50_s2"):
                pass
        assert tracer.records[0].cell == "d50_s2"

    def test_duration_is_non_negative_and_start_ordered(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        span = tracer.records[0]
        assert span.duration >= 0.0
        assert span.start > 0.0

    def test_records_even_when_body_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tracer.records] == ["boom"]

    def test_worker_defaults_to_pid_label(self):
        tracer = SpanTracer()
        assert tracer.worker == f"w{os.getpid()}"
        assert SpanTracer(worker="main").worker == "main"

    def test_len_and_repr(self):
        tracer = SpanTracer(worker="main")
        with tracer.span("a"):
            pass
        assert len(tracer) == 1
        assert "main" in repr(tracer)


class TestWorkerFiles:
    def test_append_read_round_trip(self, tmp_path):
        records = [record(name="a"), record(name="b", cell="d50_s1")]
        path = append_spans(tmp_path, records)
        assert path == worker_span_path(tmp_path)
        assert read_span_dir(tmp_path) == records

    def test_append_accumulates(self, tmp_path):
        append_spans(tmp_path, [record(name="a")])
        append_spans(tmp_path, [record(name="b")])
        assert [s.name for s in read_span_dir(tmp_path)] == ["a", "b"]

    def test_read_merges_multiple_worker_files_sorted(self, tmp_path):
        for pid, name in ((20, "late"), (3, "early")):
            target = worker_span_path(tmp_path, pid=pid)
            append_spans(tmp_path, [])  # ensure directory exists
            target.write_text(
                __import__("json").dumps(record(name=name).as_dict()) + "\n")
        names = [s.name for s in read_span_dir(tmp_path)]
        # File name order, not numeric pid order: spans-w20 < spans-w3.
        assert names == ["late", "early"]

    def test_clear_worker_files(self, tmp_path):
        append_spans(tmp_path, [record()])
        assert clear_worker_files(tmp_path) == 1
        assert read_span_dir(tmp_path) == []
        assert clear_worker_files(tmp_path) == 0

    def test_merged_file_not_treated_as_worker_file(self, tmp_path):
        append_spans(tmp_path, [record()])
        (tmp_path / MERGED_SPAN_FILE).write_text("")
        assert clear_worker_files(tmp_path) == 1
        assert (tmp_path / MERGED_SPAN_FILE).exists()


class TestMergeSpans:
    def test_grid_order_beats_completion_order(self):
        grid = ["d50_s1", "d50_s2"]
        spans = [record(name="second", cell="d50_s2", start=1.0),
                 record(name="first", cell="d50_s1", start=5.0),
                 record(name="campaign", phase=PHASE_CAMPAIGN, start=0.0)]
        merged = merge_spans(spans, grid)
        assert [s.name for s in merged] == ["campaign", "first", "second"]

    def test_within_cell_sorted_by_start_then_depth(self):
        spans = [record(name="cell", cell="k", start=1.0, depth=0),
                 record(name="sim", cell="k", start=1.0, depth=1),
                 record(name="setup", cell="k", start=0.5, depth=1)]
        merged = merge_spans(spans, ["k"])
        assert [s.name for s in merged] == ["setup", "cell", "sim"]

    def test_foreign_cells_sort_after_grid(self):
        spans = [record(name="alien", cell="zz"),
                 record(name="grid", cell="k")]
        merged = merge_spans(spans, ["k"])
        assert [s.name for s in merged] == ["grid", "alien"]


class TestSummarizeSpans:
    def test_phase_aggregates(self):
        spans = [record(phase=PHASE_SIM, duration=1.0),
                 record(phase=PHASE_SIM, duration=3.0),
                 record(phase=PHASE_CELL, duration=4.0)]
        summary = summarize_spans(spans)
        assert list(summary) == [PHASE_CELL, PHASE_SIM]
        assert summary[PHASE_SIM] == {"count": 2, "total_seconds": 4.0,
                                      "max_seconds": 3.0}

    def test_unlabeled_phase_groups_as_other(self):
        summary = summarize_spans([record(phase="", duration=2.0)])
        assert summary["other"]["count"] == 1

    def test_empty_input(self):
        assert summarize_spans([]) == {}


class TestResolveSpanDir:
    def test_disabled(self, tmp_path):
        assert resolve_span_dir(None, tmp_path) is None
        assert resolve_span_dir(False, tmp_path) is None

    def test_true_lands_inside_output_dir(self, tmp_path):
        assert resolve_span_dir(True, tmp_path) == tmp_path / "spans"

    def test_true_without_output_dir_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_span_dir(True, None)

    def test_explicit_path_used_as_is(self, tmp_path):
        target = tmp_path / "elsewhere"
        assert resolve_span_dir(str(target), None) == target
