"""Packet-lifecycle tracing: reconstruction, fates, and the probe join."""

import pytest

from repro.net.packet import KIND_UDP
from repro.netdyn.session import run_probe_experiment
from repro.obs import PacketLifecycleTracer, probe_uids
from repro.obs.lifecycle import (
    EVENT_CREATED,
    EVENT_ENQUEUED,
    EVENT_RECEIVED,
    EVENT_TX_DONE,
    TERMINAL_EVENTS,
)
from repro.netdyn.trace import LOST
from repro.topology.inria_umd import build_inria_umd


@pytest.fixture(scope="module")
def traced_run():
    """One idle-path probe run with lifecycle tracing attached."""
    scenario = build_inria_umd(seed=9, utilization_fwd=0.0,
                               utilization_rev=0.0, fault_drop_prob=0.0)
    tracer = PacketLifecycleTracer(scenario.network)
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.05, count=50)
    tracer.close()
    return scenario, tracer, trace


class TestReconstruction:
    def test_every_probe_has_a_path(self, traced_run):
        scenario, tracer, trace = traced_run
        uids = probe_uids(tracer, scenario.source, scenario.echo)
        assert len(uids) == len(trace) == 50
        for uid in uids:
            path = tracer.path(uid)
            assert path[0].event == EVENT_CREATED
            assert path[0].place == scenario.source
            times = [record.time for record in path]
            assert times == sorted(times)

    def test_surviving_probe_reaches_echo(self, traced_run):
        scenario, tracer, trace = traced_run
        uids = probe_uids(tracer, scenario.source, scenario.echo)
        # Idle path, no faults: every probe survives.
        assert trace.loss_count == 0
        fate = tracer.fate(uids[0])
        assert fate is not None
        assert fate.event == EVENT_RECEIVED
        assert fate.place == scenario.echo

    def test_hop_sequence_crosses_each_queue_once(self, traced_run):
        scenario, tracer, _trace = traced_run
        uid = probe_uids(tracer, scenario.source, scenario.echo)[0]
        path = tracer.path(uid)
        enqueues = [record for record in path
                    if record.event == EVENT_ENQUEUED]
        tx_dones = [record for record in path
                    if record.event == EVENT_TX_DONE]
        assert len(enqueues) == len(tx_dones) > 0
        # Occupancy at enqueue includes the packet itself.
        assert all(record.queue_len >= 1 for record in enqueues)

    def test_join_with_probe_trace_rtt(self, traced_run):
        scenario, tracer, trace = traced_run
        uids = probe_uids(tracer, scenario.source, scenario.echo)
        for n in (0, 10, 49):
            outbound = tracer.path(uids[n])
            assert outbound[0].time == pytest.approx(trace.send_times[n])

    def test_no_records_after_close(self, traced_run):
        scenario, tracer, _trace = traced_run
        count = len(tracer.records)
        scenario.sim.run(until=scenario.sim.now + 1.0)
        assert len(tracer.records) == count


class TestDropsAndFilters:
    def test_drops_recorded_under_load(self):
        scenario = build_inria_umd(seed=3)
        tracer = PacketLifecycleTracer(scenario.network)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.02, count=400,
                                     start_at=10.0)
        tracer.close()
        assert trace.loss_count > 0
        drops = tracer.drops()
        assert drops
        assert all(record.event in TERMINAL_EVENTS for record in drops)
        # Every lost probe's fate is a drop record (or it vanished in
        # flight at the horizon, which the idle drain makes impossible).
        uids = probe_uids(tracer, scenario.source, scenario.echo)
        lost_fates = [tracer.fate(uids[n])
                      for n in range(len(trace))
                      if trace.rtts[n] == LOST]
        assert lost_fates
        # NetDyn probes are echoed as a *new* packet at the echo host, so
        # a lost return leg shows the outbound uid terminating 'received'.
        for fate in lost_fates:
            assert fate is not None

    def test_join_stays_index_aligned_under_loss(self):
        # The probe<->lifecycle join is positional: probe n of the trace
        # is the n-th UDP packet created at the source.  Dropped probes
        # must not shift the alignment — every later probe still joins to
        # its own path.
        scenario = build_inria_umd(seed=3)
        tracer = PacketLifecycleTracer(scenario.network)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.02, count=400,
                                     start_at=10.0)
        tracer.close()
        assert trace.loss_count > 0
        uids = probe_uids(tracer, scenario.source, scenario.echo)
        assert len(uids) == len(trace)
        lost = [n for n in range(len(trace)) if trace.rtts[n] == LOST]
        survivors = [n for n in range(len(trace)) if trace.rtts[n] != LOST]
        for n in lost + survivors[-3:]:
            path = tracer.path(uids[n])
            assert path[0].event == EVENT_CREATED
            assert path[0].time == pytest.approx(trace.send_times[n])
        # A lost probe's outbound uid still has a terminal fate: either a
        # drop on the outbound leg, or 'received' at the echo host when
        # the *return* leg's packet was the one dropped.
        for n in lost:
            fate = tracer.fate(uids[n])
            assert fate is not None
            assert fate.event in TERMINAL_EVENTS
        outbound_drop_uids = {record.uid for record in tracer.drops()}
        returned = [n for n in lost
                    if uids[n] not in outbound_drop_uids]
        dropped_outbound = [n for n in lost
                            if uids[n] in outbound_drop_uids]
        assert len(returned) + len(dropped_outbound) == len(lost)

    def test_kind_filter(self):
        scenario = build_inria_umd(seed=3)
        tracer = PacketLifecycleTracer(scenario.network,
                                       kinds=(KIND_UDP,))
        scenario.start_traffic()
        scenario.sim.run(until=2.0)
        tracer.close()
        assert tracer.records
        assert {record.kind for record in tracer.records} == {KIND_UDP}
