"""Metrics registry: instruments, snapshots, and network instrumentation."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, instrument_network, instrument_traffic
from repro.obs.registry import SEPARATOR
from repro.topology.inria_umd import build_inria_umd


class TestInstruments:
    def test_owned_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs/done")
        counter.increment()
        counter.increment(by=4)
        assert counter.value() == 5

    def test_bound_counter_reads_source(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        counter = registry.counter("jobs/seen", source=lambda: state["n"])
        state["n"] = 7
        assert counter.value() == 7

    def test_bound_counter_rejects_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs/seen", source=lambda: 1)
        with pytest.raises(ConfigurationError):
            counter.increment()

    def test_gauge(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue/depth", source=lambda: 3)
        assert gauge.value() == 3.0

    def test_histogram_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("rtt", bounds=(0.1, 0.2, 0.5))
        for sample in (0.05, 0.15, 0.15, 0.4, 9.0):
            hist.observe(sample)
        value = hist.value()
        assert value["count"] == 5
        assert value["bucket_counts"] == [1, 2, 1, 1]
        assert value["max"] == 9.0

    def test_histogram_bounds_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", bounds=(0.5, 0.1))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", bounds=())


class TestRegistry:
    def test_duplicate_names_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a/b")
        with pytest.raises(ConfigurationError):
            registry.gauge("a/b", source=lambda: 0.0)

    def test_lookup_and_contains(self):
        registry = MetricsRegistry()
        counter = registry.counter("x/y/z")
        assert "x/y/z" in registry
        assert registry.get("x/y/z") is counter
        assert len(registry) == 1
        assert registry.names() == ["x/y/z"]

    def test_snapshot_nests_on_separator(self):
        registry = MetricsRegistry()
        registry.counter("net/a/sent", source=lambda: 1)
        registry.counter("net/a/lost", source=lambda: 2)
        registry.gauge("net/b/util", source=lambda: 0.5)
        assert SEPARATOR == "/"
        assert registry.snapshot() == {
            "net": {"a": {"sent": 1, "lost": 2}, "b": {"util": 0.5}}}

    def test_dotted_hostnames_stay_one_level(self):
        registry = MetricsRegistry()
        registry.counter("net/icm-sophia.icp.net/forwarded",
                         source=lambda: 9)
        snap = registry.snapshot()
        assert snap["net"]["icm-sophia.icp.net"]["forwarded"] == 9


class TestInstrumentNetwork:
    @pytest.fixture(scope="class")
    def scenario(self):
        scenario = build_inria_umd(seed=4)
        scenario.start_traffic()
        scenario.sim.run(until=10.0)
        return scenario

    def test_standard_instruments_registered(self, scenario):
        registry = MetricsRegistry()
        instrument_network(registry, scenario.network)
        names = registry.names()
        assert any(name.endswith("/queue/drops") for name in names)
        assert any(name.endswith("/utilization") for name in names)
        assert any(name.endswith("/forwarded") for name in names)

    def test_snapshot_reflects_simulated_traffic(self, scenario):
        registry = MetricsRegistry()
        instrument_network(registry, scenario.network)
        flat = registry.flat_snapshot()
        assert sum(value for name, value in flat.items()
                   if name.endswith("/transmitted")) > 0

    def test_utilization_gauge_matches_interface(self, scenario):
        registry = MetricsRegistry()
        instrument_network(registry, scenario.network)
        iface = scenario.bottleneck_fwd
        name = (f"net/{iface.node.name}/if/{iface.peer.name}/utilization")
        assert registry.get(name).value() == iface.utilization_estimate()
        assert 0.0 < iface.utilization_estimate() <= 1.0

    def test_instrumentation_after_run_sees_final_counts(self, scenario):
        # Pull-based: registering after the run reads the same state.
        before = MetricsRegistry()
        instrument_network(before, scenario.network)
        after = MetricsRegistry()
        instrument_network(after, scenario.network)
        assert before.flat_snapshot() == after.flat_snapshot()

    def test_instrument_traffic(self, scenario):
        registry = MetricsRegistry()
        instrument_traffic(registry, scenario.mix_fwd.sources)
        flat = registry.flat_snapshot()
        sent = [value for name, value in flat.items()
                if name.endswith("/packets_sent")]
        assert sent and all(value > 0 for value in sent)
