"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .`` with build isolation) cannot build an
editable wheel.  This shim enables the legacy path::

    pip install -e . --no-use-pep517 --no-build-isolation

All project metadata lives in ``pyproject.toml``; setuptools reads it.
"""

from setuptools import setup

setup()
