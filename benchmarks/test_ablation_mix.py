"""Ablation: cross-traffic composition vs the workload histogram.

Figures 8/9's peaks at multiples of one FTP packet exist because the
Internet stream is dominated by large bulk packets.  This ablation varies
the bulk share of the mix and checks that the one-packet peak appears with
bulk traffic and disappears when the cross traffic is all-interactive
(small packets blur into the idle peak).
"""

from conftest import record_result, run_once

from repro.analysis.workload import (
    classify_peaks,
    find_peaks,
    workload_distribution,
)
from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_experiment

MU = 128e3


def mix_sweep() -> FigureResult:
    result = FigureResult(
        "Ablation: traffic mix",
        "Workload-histogram peaks vs bulk share of cross traffic")
    peaks_by_share = {}
    lines = [f"{'bulk share':>10}  one-packet peak"]
    for bulk in (0.0, 0.85):
        config = ExperimentConfig(
            delta=0.02, seed=5, duration=default_duration(180.0),
            scenario_kwargs={"bulk_fraction": bulk})
        trace = run_experiment(config)
        resolution = float(trace.meta.get("clock_resolution", 0.0) or 0.0)
        bin_width = max(2e-3, resolution)
        dist = workload_distribution(trace, mu=MU, bin_width=bin_width)
        classified = classify_peaks(
            find_peaks(dist, min_height_fraction=0.004), delta=0.02, mu=MU,
            probe_bits=trace.wire_bytes * 8,
            tolerance=max(4e-3, bin_width))
        peak = classified["one_packet"]
        peaks_by_share[bulk] = peak
        description = (f"at {peak.location * 1e3:.1f} ms "
                       f"(~{peak.implied_bytes:.0f} B)" if peak else "absent")
        lines.append(f"{bulk:>10.0%}  {description}")
    result.rendering = "\n".join(lines)

    bulk_peak = peaks_by_share[0.85]
    result.add("bulk mix shows one-FTP-packet peak",
               "peak implies ~500 B cross packets",
               f"{bulk_peak.implied_bytes:.0f} B" if bulk_peak else "absent",
               bulk_peak is not None
               and 380 <= bulk_peak.implied_bytes <= 700)
    telnet_peak = peaks_by_share[0.0]
    result.add("interactive-only mix lacks large-packet peak",
               "no ~500 B peak without bulk traffic",
               f"{telnet_peak.implied_bytes:.0f} B" if telnet_peak
               else "absent",
               telnet_peak is None or telnet_peak.implied_bytes < 380)
    return result


def test_ablation_mix(benchmark):
    result = run_once(benchmark, mix_sweep)
    record_result(benchmark, result)
