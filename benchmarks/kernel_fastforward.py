"""Measure analytic-vs-event speedup; ``benchmarks/BENCH_fastforward.json``.

Run directly (CI's fastforward-smoke job does) or via ``repro-bench run
fastforward``::

    python benchmarks/kernel_fastforward.py [OUTPUT.json] [--quick]

Runs one calibrated cell (INRIA-UMd, delta=0.05) twice: once through the
event kernel (``run_experiment``) and once through the analytic
fast-forward engine (``run_fastforward_experiment``), which replays the
same RNG draws through vectorized Lindley recursions and a fluid
bottleneck instead of simulating every packet event.  Records both wall
times, the speedup, and the equivalence of the two traces — which must
be *bit-identical*: same loss mask, zero RTT gap — in the shared
``repro-bench`` report schema (:mod:`repro.obs.bench`).
``benchmarks/test_perf_fastforward.py`` asserts the >= 10x speedup floor
and the equivalence; a report whose traces diverged benchmarked a bug,
not a fast path.

``--quick`` shrinks the simulated duration (CI smoke); quick numbers are
only comparable to other quick runs, and the report says which mode ran.
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.fastforward import run_fastforward_experiment
from repro.experiments.runner import run_experiment
from repro.netdyn.trace import LOST
from repro.obs.bench import (
    LOWER_IS_BETTER,
    build_report,
    metric,
    write_report,
)

SUITE = "fastforward"

#: The calibrated cell: long enough that the event kernel executes
#: millions of events while the analytic engine stays vectorized.
BENCH_CELL = dict(delta=0.05, seed=3, scenario="inria-umd")
FULL_DURATION = 120.0
QUICK_DURATION = 20.0

#: Analytic passes are cheap; take the best of several.  The event pass
#: dominates the budget and runs once.
ANALYTIC_ROUNDS = 3

#: Required analytic-over-event speedup (asserted by
#: test_perf_fastforward.py and the CI compare gate).
SPEEDUP_FLOOR = 10.0


def _config(duration: float, mode: str) -> ExperimentConfig:
    return ExperimentConfig(duration=duration, mode=mode, **BENCH_CELL)


def _equivalence(event_trace, analytic_trace) -> dict:
    """Trace agreement facts: loss masks and RTT gap in clock ticks."""
    event_lost = event_trace.rtts == LOST
    analytic_lost = analytic_trace.rtts == LOST
    losses_identical = bool(np.array_equal(event_lost, analytic_lost))
    received = ~event_lost & ~analytic_lost
    if received.any():
        gap = float(np.abs(event_trace.rtts[received]
                           - analytic_trace.rtts[received]).max())
    else:
        gap = 0.0
    resolution = float(analytic_trace.meta["clock_resolution"])
    return {
        "losses_identical": losses_identical,
        "max_rtt_gap_seconds": gap,
        "max_rtt_gap_ticks": gap / resolution if resolution else 0.0,
        "clock_resolution": resolution,
        "probes": len(event_trace),
    }


def collect(quick: bool = False) -> dict:
    """Time the cell through both kernels; derive speedup + equivalence."""
    duration = QUICK_DURATION if quick else FULL_DURATION

    started = perf_counter()
    event_trace = run_experiment(_config(duration, "event"))
    event_seconds = perf_counter() - started

    analytic_seconds = float("inf")
    analytic_trace = None
    for _ in range(ANALYTIC_ROUNDS):
        started = perf_counter()
        result = run_fastforward_experiment(_config(duration, "analytic"))
        analytic_seconds = min(analytic_seconds, perf_counter() - started)
        analytic_trace = result.trace
        assert result.mode_used == "analytic", result.fallback_reasons

    return {
        "cell": dict(BENCH_CELL, duration=duration),
        "analytic_rounds": ANALYTIC_ROUNDS,
        "event_seconds": event_seconds,
        "analytic_seconds": analytic_seconds,
        "speedup": event_seconds / analytic_seconds,
        "equivalence": _equivalence(event_trace, analytic_trace),
    }


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    metrics = {
        "event_seconds": metric(details["event_seconds"], "s",
                                direction=LOWER_IS_BETTER),
        "analytic_seconds": metric(details["analytic_seconds"], "s",
                                   direction=LOWER_IS_BETTER),
        "analytic_speedup": metric(details["speedup"], "x"),
    }
    return build_report(SUITE, metrics,
                        mode="quick" if quick else "full", details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    output = argv[0] if argv else "benchmarks/BENCH_fastforward.json"

    report = run_suite(quick=quick)
    details = report["details"]
    write_report(report, output)
    sys.stderr.write(
        f"event: {details['event_seconds']:.2f}s  analytic: "
        f"{details['analytic_seconds']:.2f}s  speedup: "
        f"{details['speedup']:.1f}x\n")
    sys.stderr.write(f"wrote {output}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
