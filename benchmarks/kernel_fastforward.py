"""Measure analytic-vs-event speedup; ``benchmarks/BENCH_fastforward.json``.

Run directly (CI's fastforward-smoke job does) or via ``repro-bench run
fastforward``::

    python benchmarks/kernel_fastforward.py [OUTPUT.json] [--quick]

Runs one calibrated cell (INRIA-UMd, delta=0.05) twice: once through the
event kernel (``run_experiment``) and once through the analytic
fast-forward engine (``run_fastforward_experiment``), which replays the
same RNG draws through vectorized Lindley recursions and a fluid
bottleneck instead of simulating every packet event.  Records both wall
times, the speedup, and the equivalence of the two traces — which must
be *bit-identical*: same loss mask, zero RTT gap — in the shared
``repro-bench`` report schema (:mod:`repro.obs.bench`).
``benchmarks/test_perf_fastforward.py`` asserts the >= 10x speedup floor
and the equivalence; a report whose traces diverged benchmarked a bug,
not a fast path.

A second section, ``batched_vs_percell``, benchmarks grid-batched
analytic execution: a multi-δ × multi-seed campaign grid run through
:func:`run_fastforward_grid` (one cross-traffic replay per seed, reused
across every δ via the :class:`CrossReplayMemo`) against the same cells
run independently (every cell rebuilding its replay).  The grid's
scenario carries a deep bottleneck buffer so every cell satisfies the
no-drop certificate and stays on the vectorized path; the section
asserts the batched results are byte-identical to the per-cell ones and
records the ``batched_speedup`` (floor: 3x committed, 2x in
``test_perf_fastforward.py``).

``--quick`` shrinks the simulated duration (CI smoke); quick numbers are
only comparable to other quick runs, and the report says which mode ran.
"""

from __future__ import annotations

import sys
from time import perf_counter

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.experiments.fastforward import (
    run_fastforward_experiment,
    run_fastforward_grid,
)
from repro.experiments.runner import run_experiment
from repro.netdyn.trace import LOST
from repro.obs.bench import (
    LOWER_IS_BETTER,
    build_report,
    metric,
    write_report,
)

SUITE = "fastforward"

#: The calibrated cell: long enough that the event kernel executes
#: millions of events while the analytic engine stays vectorized.
BENCH_CELL = dict(delta=0.05, seed=3, scenario="inria-umd")
FULL_DURATION = 120.0
QUICK_DURATION = 20.0

#: Analytic passes are cheap; take the best of several.  The event pass
#: dominates the budget and runs once.
ANALYTIC_ROUNDS = 3

#: Required analytic-over-event speedup (asserted by
#: test_perf_fastforward.py and the CI compare gate).
SPEEDUP_FLOOR = 10.0

#: The batched grid: the paper's probe intervals × two seeds.  The deep
#: buffer keeps every cell — even δ=8 ms, whose probe-inclusive
#: occupancy peaks near 5k packets — inside the no-drop certificate, so
#: both modes run fully vectorized and the comparison isolates the
#: replay-reuse win rather than certificate fallbacks.
GRID_DELTAS = (0.008, 0.02, 0.05, 0.1, 0.2, 0.5)
GRID_SEEDS = (1, 2)
GRID_KWARGS = {"buffer_packets": 8192}
GRID_ROUNDS = 3

#: Required grid-batched-over-per-cell speedup on the committed (full)
#: benchmark; test_perf_fastforward.py enforces a 2x noise-tolerant
#: floor, CI's quick smoke a 1.5x one.
BATCHED_SPEEDUP_FLOOR = 3.0


def _config(duration: float, mode: str) -> ExperimentConfig:
    return ExperimentConfig(duration=duration, mode=mode, **BENCH_CELL)


def _equivalence(event_trace, analytic_trace) -> dict:
    """Trace agreement facts: loss masks and RTT gap in clock ticks."""
    event_lost = event_trace.rtts == LOST
    analytic_lost = analytic_trace.rtts == LOST
    losses_identical = bool(np.array_equal(event_lost, analytic_lost))
    received = ~event_lost & ~analytic_lost
    if received.any():
        gap = float(np.abs(event_trace.rtts[received]
                           - analytic_trace.rtts[received]).max())
    else:
        gap = 0.0
    resolution = float(analytic_trace.meta["clock_resolution"])
    return {
        "losses_identical": losses_identical,
        "max_rtt_gap_seconds": gap,
        "max_rtt_gap_ticks": gap / resolution if resolution else 0.0,
        "clock_resolution": resolution,
        "probes": len(event_trace),
    }


def _grid_configs(duration: float) -> list:
    return [ExperimentConfig(delta=delta, duration=duration, seed=seed,
                             scenario="inria-umd",
                             scenario_kwargs=dict(GRID_KWARGS),
                             mode="analytic")
            for seed in GRID_SEEDS for delta in GRID_DELTAS]


def collect_batched(quick: bool = False) -> dict:
    """Time the grid per-cell vs batched; assert byte-identity."""
    duration = QUICK_DURATION if quick else FULL_DURATION
    configs = _grid_configs(duration)

    # Warm the one-time process costs both modes share — the derived
    # cache salt (replay keying) and the engine's import closure — so
    # the timed region measures execution, not first-call setup.
    from repro.experiments.cache import cache_salt
    cache_salt()
    run_fastforward_experiment(configs[0])

    percell_seconds = batched_seconds = float("inf")
    percell = batched = None
    for _ in range(GRID_ROUNDS):
        started = perf_counter()
        percell = [run_fastforward_experiment(config)
                   for config in configs]
        percell_seconds = min(percell_seconds, perf_counter() - started)
        started = perf_counter()
        batched = run_fastforward_grid(configs)
        batched_seconds = min(batched_seconds, perf_counter() - started)

    for one, many in zip(percell, batched):
        assert one.mode_used == many.mode_used == "analytic", (
            one.fallback_reasons, many.fallback_reasons)
        assert np.array_equal(one.trace.rtts, many.trace.rtts,
                              equal_nan=True)
        assert np.array_equal(one.trace.send_times, many.trace.send_times)
        assert one.queue_stats == many.queue_stats

    return {
        "grid": {"deltas": list(GRID_DELTAS), "seeds": list(GRID_SEEDS),
                 "duration": duration, "scenario": "inria-umd",
                 "scenario_kwargs": dict(GRID_KWARGS),
                 "cells": len(configs)},
        "rounds": GRID_ROUNDS,
        "percell_seconds": percell_seconds,
        "batched_seconds": batched_seconds,
        "batched_speedup": percell_seconds / batched_seconds,
        "byte_identical": True,
    }


def collect(quick: bool = False) -> dict:
    """Time the cell through both kernels; derive speedup + equivalence."""
    duration = QUICK_DURATION if quick else FULL_DURATION

    started = perf_counter()
    event_trace = run_experiment(_config(duration, "event"))
    event_seconds = perf_counter() - started

    analytic_seconds = float("inf")
    analytic_trace = None
    for _ in range(ANALYTIC_ROUNDS):
        started = perf_counter()
        result = run_fastforward_experiment(_config(duration, "analytic"))
        analytic_seconds = min(analytic_seconds, perf_counter() - started)
        analytic_trace = result.trace
        assert result.mode_used == "analytic", result.fallback_reasons

    return {
        "cell": dict(BENCH_CELL, duration=duration),
        "analytic_rounds": ANALYTIC_ROUNDS,
        "event_seconds": event_seconds,
        "analytic_seconds": analytic_seconds,
        "speedup": event_seconds / analytic_seconds,
        "equivalence": _equivalence(event_trace, analytic_trace),
        "batched_vs_percell": collect_batched(quick=quick),
    }


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    batched = details["batched_vs_percell"]
    metrics = {
        "event_seconds": metric(details["event_seconds"], "s",
                                direction=LOWER_IS_BETTER),
        "analytic_seconds": metric(details["analytic_seconds"], "s",
                                   direction=LOWER_IS_BETTER),
        "analytic_speedup": metric(details["speedup"], "x"),
        "percell_grid_seconds": metric(batched["percell_seconds"], "s",
                                       direction=LOWER_IS_BETTER),
        "batched_grid_seconds": metric(batched["batched_seconds"], "s",
                                       direction=LOWER_IS_BETTER),
        "batched_speedup": metric(batched["batched_speedup"], "x"),
    }
    return build_report(SUITE, metrics,
                        mode="quick" if quick else "full", details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    output = argv[0] if argv else "benchmarks/BENCH_fastforward.json"

    report = run_suite(quick=quick)
    details = report["details"]
    write_report(report, output)
    batched = details["batched_vs_percell"]
    sys.stderr.write(
        f"event: {details['event_seconds']:.2f}s  analytic: "
        f"{details['analytic_seconds']:.2f}s  speedup: "
        f"{details['speedup']:.1f}x\n")
    sys.stderr.write(
        f"grid ({batched['grid']['cells']} cells): percell "
        f"{batched['percell_seconds']:.2f}s  batched "
        f"{batched['batched_seconds']:.2f}s  speedup: "
        f"{batched['batched_speedup']:.1f}x\n")
    sys.stderr.write(f"wrote {output}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
