"""Table 3: ulp, clp, and plg versus the probe interval δ.

Paper values (with the textual reading of the δ=500 ms ulp; see DESIGN.md):

    δ (ms):   8     20    50    100   200   500
    ulp:      0.23  0.16  0.12  0.10  0.11  ~0.10
    clp:      0.60  0.42  0.27  0.18  0.18  0.09
    plg:      2.5   1.7   1.3   1.2   1.2   1.1

The checks assert the shape: ulp decays to a ~10% floor, clp >> ulp at
small δ (bursty losses) but clp ≈ ulp at large δ (essentially random),
and plg decays toward 1.
"""

from conftest import record_result, run_once

from repro.experiments.figures import table3


def test_table3_loss(benchmark):
    result = run_once(benchmark, table3, seed=2)
    record_result(benchmark, result)
