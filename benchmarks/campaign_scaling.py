"""Measure campaign dispatch + scaling; ``benchmarks/BENCH_campaign.json``.

Run directly (CI's campaign-bench-smoke job does) or via ``repro-bench
run campaign``::

    python benchmarks/campaign_scaling.py [OUTPUT.json] [--quick]

Two measurements, written in the shared ``repro-bench`` report schema
(:mod:`repro.obs.bench`):

* **Dispatch overhead** (the headline): the same analytic-mode grid run
  through the warm lease pipeline (persistent salt-verified workers,
  batched leases, shared-memory trace hand-off, streaming merge) versus
  the legacy per-cell pool over cold ``spawn``-start workers.  Analytic
  cells cost milliseconds, so the wall-time difference *is* the dispatch
  overhead — worker cold-start imports, per-cell pickle round trips, the
  end-of-grid barrier — the exact costs the warm pipeline exists to
  eliminate.  ``warm_vs_spawn_speedup`` is floor-tested (>= 1.4x) in
  ``benchmarks/test_perf_campaign.py`` on any CPU count, because the
  overhead being eliminated is per-worker/per-cell, not per-core.
* **Worker scaling**: the fixed event-mode (δ × seed) grid timed
  serially and with 2 and 4 warm workers.  Cells are independent
  simulations, so on an unloaded machine with >= 4 CPUs the 4-worker
  run should beat serial by well over 1.5×; the test module asserts that
  wherever the hardware can express it.

Wall times are best-of-``REPEATS`` minima — the low-noise statistic for
short runs — and the derived cache salt is computed *before* any timing
so salt derivation (a one-off analysis pass) never lands in a measured
window.
"""

from __future__ import annotations

import os
import sys
from time import perf_counter

from repro.experiments.cache import cache_salt
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.obs.bench import LOWER_IS_BETTER, build_report, metric, \
    write_report

SUITE = "campaign"

#: The fixed scaling grid: 2 deltas x 4 seeds = 8 cells, sized so each
#: cell costs enough wall time that pool start-up cost is noise.
BENCH_GRID = dict(
    deltas=(0.02, 0.05),
    seeds=(1, 2, 3, 4),
    duration=30.0,
    scenario="inria-umd",
    scenario_kwargs={"utilization_fwd": 0.5, "utilization_rev": 0.5},
)

#: The dispatch-overhead grid: analytic cells cost milliseconds, so the
#: campaign wall time is almost entirely executor overhead — which is
#: the quantity under test.
DISPATCH_GRID = dict(
    deltas=(0.02, 0.05),
    seeds=(1, 2, 3, 4),
    duration=30.0,
    scenario="inria-umd",
    scenario_kwargs={"utilization_fwd": 0.5, "utilization_rev": 0.5},
    mode="analytic",
)

WORKER_COUNTS = (1, 2, 4)

#: Workers for the dispatch-overhead comparison (both executors).
DISPATCH_WORKERS = 2

#: Best-of-N repeats per timed configuration.  The minimum is the
#: stable statistic for sub-second runs; the cold-start spawn runs are
#: expensive, so they repeat less.
REPEATS = 3
SPAWN_REPEATS = 2

#: Resolution floor (seconds) applied to the dispatch-overhead *metrics*
#: (the raw values stay in ``details``).  The warm pipeline's overhead
#: sits near scheduler-jitter level; clamping to the measurement noise
#: floor keeps ``repro-bench compare`` from flagging a 0.02s -> 0.04s
#: wobble as a 100% regression.
OVERHEAD_RESOLUTION_SECONDS = 0.1


def available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def time_campaign(workers: int, grid: dict = BENCH_GRID,
                  pool: str = "warm") -> float:
    """Wall seconds for one full run of a benchmark grid."""
    spec = CampaignSpec(**grid)
    started = perf_counter()
    run_campaign(spec, workers=workers, pool=pool)
    return perf_counter() - started


def best_of(repeats: int, workers: int, grid: dict,
            pool: str = "warm") -> float:
    """Minimum wall seconds over ``repeats`` runs of the grid."""
    return min(time_campaign(workers, grid=grid, pool=pool)
               for _ in range(max(1, repeats)))


def collect_dispatch(quick: bool = False) -> dict:
    """Warm lease pipeline vs cold spawn pool on the analytic grid."""
    grid = dict(DISPATCH_GRID)
    if quick:
        grid["seeds"] = DISPATCH_GRID["seeds"][:2]
    spec = CampaignSpec(**grid)
    cells = len(grid["deltas"]) * len(grid["seeds"])

    serial = best_of(REPEATS, 1, grid)
    warm = best_of(REPEATS, DISPATCH_WORKERS, grid, pool="warm")
    spawn = best_of(SPAWN_REPEATS, DISPATCH_WORKERS, grid, pool="spawn")

    # One instrumented warm run for the transport accounting (its wall
    # time is not used; the timed runs above stay uninstrumented).
    result = run_campaign(spec, workers=DISPATCH_WORKERS, pool="warm")
    dispatch = result.dispatch_stats or {}

    return {
        "grid_cells": cells,
        "mode": "analytic",
        "workers": DISPATCH_WORKERS,
        "serial_seconds": serial,
        "warm_seconds": warm,
        "spawn_seconds": spawn,
        "warm_vs_spawn_speedup": spawn / warm,
        # Executor cost over and above the (tiny) serial compute: what
        # each dispatch path adds to an overhead-free baseline.
        "dispatch_overhead_warm_seconds": max(0.0, warm - serial),
        "dispatch_overhead_spawn_seconds": max(0.0, spawn - serial),
        "leases": dispatch.get("leases", 0),
        "lease_batch_size": dispatch.get("batch_size", 0),
        "shm_leases": dispatch.get("shm_leases", 0),
        "inline_leases": dispatch.get("inline_leases", 0),
        "shm_bytes": dispatch.get("shm_bytes", 0),
    }


def collect_scaling(quick: bool = False) -> dict:
    """Run the event-mode grid at every worker count; derive speedups."""
    grid = dict(BENCH_GRID, duration=5.0) if quick else BENCH_GRID
    if quick:
        grid["seeds"] = BENCH_GRID["seeds"][:2]
    cells = len(grid["deltas"]) * len(grid["seeds"])
    document = {
        "grid_cells": cells,
        "cell_duration_seconds": grid["duration"],
        "cpus": available_cpus(),
        "wall_seconds": {},
        "speedup_vs_serial": {},
    }
    for workers in WORKER_COUNTS:
        document["wall_seconds"][str(workers)] = time_campaign(workers,
                                                               grid=grid)
    serial = document["wall_seconds"]["1"]
    for workers in WORKER_COUNTS:
        document["speedup_vs_serial"][str(workers)] = \
            serial / document["wall_seconds"][str(workers)]
    return document


def collect(quick: bool = False) -> dict:
    """Both measurements, merged into one details document."""
    # The derived cache salt is memoized process state; derive it before
    # any timed window so the one-off analysis pass (and its imports)
    # cannot be booked against the first executor measured.
    cache_salt()
    document = collect_scaling(quick=quick)
    document["dispatch"] = collect_dispatch(quick=quick)
    return document


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    dispatch = details["dispatch"]
    metrics = {
        f"speedup_{workers}_workers":
            metric(details["speedup_vs_serial"][str(workers)], "x")
        for workers in WORKER_COUNTS if workers > 1
    }
    metrics["serial_seconds"] = metric(details["wall_seconds"]["1"], "s",
                                       direction=LOWER_IS_BETTER)
    metrics["warm_vs_spawn_speedup"] = metric(
        dispatch["warm_vs_spawn_speedup"], "x")
    metrics["dispatch_overhead_warm_seconds"] = metric(
        max(dispatch["dispatch_overhead_warm_seconds"],
            OVERHEAD_RESOLUTION_SECONDS), "s",
        direction=LOWER_IS_BETTER)
    metrics["dispatch_overhead_spawn_seconds"] = metric(
        max(dispatch["dispatch_overhead_spawn_seconds"],
            OVERHEAD_RESOLUTION_SECONDS), "s",
        direction=LOWER_IS_BETTER)
    # Deterministic transport volume: how many trace bytes rode shared
    # memory instead of the pickle pipe.  More on the fast path is
    # better; the count is byte-stable across runs of the same grid.
    metrics["shm_bytes"] = metric(dispatch["shm_bytes"], "bytes")
    return build_report(SUITE, metrics, mode="quick" if quick else "full",
                        details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    positional = [arg for arg in argv if not arg.startswith("--")]
    output = positional[0] if positional \
        else "benchmarks/BENCH_campaign.json"
    report = run_suite(quick=quick)
    document = report["details"]
    dispatch = document["dispatch"]
    write_report(report, output)
    print(f"campaign scaling on {document['cpus']} CPU(s), "
          f"{document['grid_cells']} cells:")
    for workers in WORKER_COUNTS:
        wall = document["wall_seconds"][str(workers)]
        speedup = document["speedup_vs_serial"][str(workers)]
        print(f"  workers={workers}: {wall:7.2f}s  ({speedup:.2f}x)")
    print(f"dispatch overhead ({dispatch['grid_cells']} analytic cells, "
          f"{dispatch['workers']} workers):")
    print(f"  warm  pipeline: {dispatch['warm_seconds']:7.2f}s "
          f"(+{dispatch['dispatch_overhead_warm_seconds']:.2f}s overhead, "
          f"{dispatch['shm_bytes']} shm bytes over "
          f"{dispatch['leases']} leases)")
    print(f"  spawn pool:     {dispatch['spawn_seconds']:7.2f}s "
          f"(+{dispatch['dispatch_overhead_spawn_seconds']:.2f}s overhead)")
    print(f"  warm vs spawn:  {dispatch['warm_vs_spawn_speedup']:.2f}x")
    print(f"written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
