"""Measure campaign worker scaling; ``benchmarks/BENCH_campaign.json``.

Run directly (CI's campaign-smoke job does) or via ``repro-bench run
campaign``::

    python benchmarks/campaign_scaling.py [OUTPUT.json]

Times the same fixed (δ × seed) grid serially and with 2 and 4 worker
processes, written in the shared ``repro-bench`` report schema
(:mod:`repro.obs.bench`).  Cells are independent simulations, so on an
unloaded machine with >= 4 CPUs the 4-worker run should beat serial by
well over 1.5×; ``benchmarks/test_perf_campaign.py`` asserts exactly that
(and skips the assertion, but still records the numbers, on smaller
machines where the hardware cannot show a speedup).
"""

from __future__ import annotations

import os
import sys
from time import perf_counter

from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.obs.bench import build_report, metric, write_report

SUITE = "campaign"

#: The fixed benchmark grid: 2 deltas x 4 seeds = 8 cells, sized so each
#: cell costs enough wall time that pool start-up cost is noise.
BENCH_GRID = dict(
    deltas=(0.02, 0.05),
    seeds=(1, 2, 3, 4),
    duration=30.0,
    scenario="inria-umd",
    scenario_kwargs={"utilization_fwd": 0.5, "utilization_rev": 0.5},
)

WORKER_COUNTS = (1, 2, 4)


def available_cpus() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


def time_campaign(workers: int, grid: dict = BENCH_GRID) -> float:
    """Wall seconds for one full run of the benchmark grid."""
    spec = CampaignSpec(**grid)
    started = perf_counter()
    run_campaign(spec, workers=workers)
    return perf_counter() - started


def collect(quick: bool = False) -> dict:
    """Run the grid at every worker count and derive speedups."""
    grid = dict(BENCH_GRID, duration=5.0) if quick else BENCH_GRID
    cells = len(grid["deltas"]) * len(grid["seeds"])
    document = {
        "grid_cells": cells,
        "cell_duration_seconds": grid["duration"],
        "cpus": available_cpus(),
        "wall_seconds": {},
        "speedup_vs_serial": {},
    }
    for workers in WORKER_COUNTS:
        document["wall_seconds"][str(workers)] = time_campaign(workers,
                                                               grid=grid)
    serial = document["wall_seconds"]["1"]
    for workers in WORKER_COUNTS:
        document["speedup_vs_serial"][str(workers)] = \
            serial / document["wall_seconds"][str(workers)]
    return document


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    metrics = {
        f"speedup_{workers}_workers":
            metric(details["speedup_vs_serial"][str(workers)], "x")
        for workers in WORKER_COUNTS if workers > 1
    }
    metrics["serial_seconds"] = metric(details["wall_seconds"]["1"], "s",
                                       direction="lower")
    return build_report(SUITE, metrics, mode="quick" if quick else "full",
                        details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "benchmarks/BENCH_campaign.json"
    report = run_suite()
    document = report["details"]
    write_report(report, output)
    print(f"campaign scaling on {document['cpus']} CPU(s), "
          f"{document['grid_cells']} cells:")
    for workers in WORKER_COUNTS:
        wall = document["wall_seconds"][str(workers)]
        speedup = document["speedup_vs_serial"][str(workers)]
        print(f"  workers={workers}: {wall:7.2f}s  ({speedup:.2f}x)")
    print(f"written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
