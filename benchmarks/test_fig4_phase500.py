"""Figure 4: phase plot at δ = 500 ms.

At large δ consecutive probes almost never queue behind one another: the
paper counts only two points on the compression line and the rest scatter
around the diagonal.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure4


def test_fig4_phase500(benchmark):
    result = run_once(benchmark, figure4, seed=1, count=800)
    record_result(benchmark, result)
