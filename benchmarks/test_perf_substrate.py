"""Performance benchmarks of the substrate itself (not paper figures).

These use pytest-benchmark conventionally (multiple rounds) to track the
simulator's speed: event-loop throughput, hop-by-hop forwarding cost, and
the full calibrated scenario's cost per simulated second.  They guard
against performance regressions that would make the paper-length
(REPRO_FULL_EXPERIMENTS=1) runs impractical.
"""

from repro.net.routing import Network
from repro.netdyn.session import run_probe_experiment
from repro.sim import Simulator
from repro.topology.inria_umd import build_inria_umd
from repro.traffic.base import TrafficSink
from repro.traffic.poisson import PoissonSource
from repro.units import mbps, ms


def test_perf_event_loop(benchmark):
    """Schedule-and-run throughput of the bare kernel (100k events)."""

    def run_events():
        sim = Simulator(seed=0)

        def chain(remaining):
            if remaining:
                sim.schedule(0.001, lambda: chain(remaining - 1))

        sim.call_at(0.0, lambda: chain(100_000))
        sim.run()
        return sim.events_executed

    events = benchmark(run_events)
    assert events == 100_001


def test_perf_forwarding_path(benchmark):
    """Packets per second through a 5-hop store-and-forward chain."""

    def run_packets():
        sim = Simulator(seed=0)
        network = Network(sim)
        names = [f"n{i}" for i in range(6)]
        network.add_host(names[0])
        for name in names[1:-1]:
            network.add_router(name)
        network.add_host(names[-1])
        for a, b in zip(names, names[1:]):
            network.link(a, b, rate_bps=mbps(100), prop_delay=ms(0.1))
        network.compute_routes()
        sink = TrafficSink(network.host(names[-1]))
        source = PoissonSource(network.host(names[0]), names[-1],
                               rate_pps=2000.0)
        source.start()
        sim.run(until=5.0)
        source.stop()
        sim.run()
        return sink.packets

    delivered = benchmark(run_packets)
    assert delivered > 8000  # ~10k expected


def test_perf_calibrated_scenario(benchmark):
    """Cost of one simulated minute of the full INRIA-UMd scenario."""

    def run_minute():
        scenario = build_inria_umd(seed=0)
        scenario.start_traffic()
        trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=0.05,
                                     duration=60.0, start_at=5.0)
        return len(trace)

    probes = benchmark.pedantic(run_minute, rounds=3, iterations=1)
    assert probes == 1200
