"""Figure 3's reduction, quantified: the batch queue model vs the full path.

The paper models the 10-hop INRIA-UMd connection as one fixed delay plus
one finite FIFO queue fed by probes and batch cross traffic (Figure 3), and
reports in Section 6 that the model's analysis reproduces probe compression
and essentially-random loss.  This benchmark runs both systems — the
abstract D+batch/D/1/K recursion and the full hop-by-hop simulation — with
matched parameters and compares the statistics the paper cares about.
"""

import numpy as np
from conftest import record_result, run_once

from repro.analysis.compression import detect_compression
from repro.analysis.loss import loss_stats
from repro.experiments.figures import FigureResult
from repro.netdyn.session import run_probe_experiment
from repro.queueing.batchmodel import (
    BatchArrivalQueue,
    geometric_packet_batches,
)
from repro.topology.inria_umd import build_inria_umd

DELTA = 0.02
MU = 128e3
PROBE_BITS = 576.0


def compare_model_and_simulation() -> FigureResult:
    # Full-path simulation.
    scenario = build_inria_umd(seed=21)
    scenario.start_traffic()
    sim_trace = run_probe_experiment(scenario.network, scenario.source,
                                     scenario.echo, delta=DELTA,
                                     count=9000, start_at=30.0)
    sim_loss = loss_stats(sim_trace)
    sim_compression = detect_compression(sim_trace, mu=MU)

    # Matched abstract model: one direction's bulk share of the mix at
    # ~70% utilization in geometric window batches, K = 15 packets.
    batch = geometric_packet_batches(
        3.0, 552 * 8,
        arrival_probability=0.70 * MU * DELTA / (3.0 * 552 * 8))
    model = BatchArrivalQueue(mu=MU, buffer_packets=15, delta=DELTA,
                              probe_bits=PROBE_BITS, batch_bits=batch)
    model_trace = model.run(9000, np.random.default_rng(21)).to_trace(0.137)
    model_loss = loss_stats(model_trace)
    model_compression = detect_compression(model_trace, mu=MU)

    result = FigureResult(
        "Figure 3 (model)",
        "D + batch/D/1/K model vs full hop-by-hop simulation")
    result.add("compression present in both", "paper: model brings it out",
               f"sim {sim_compression.pair_fraction:.2%}, "
               f"model {model_compression.pair_fraction:.2%}",
               sim_compression.pair_fraction > 0.02
               and model_compression.pair_fraction > 0.02)
    result.add("loss probability same order", "model ~ measurements",
               f"sim ulp {sim_loss.ulp:.3f}, model ulp {model_loss.ulp:.3f}",
               0.2 <= (model_loss.ulp + 1e-3) / (sim_loss.ulp + 1e-3) <= 5.0)
    result.add("loss burstiness same direction", "clp > ulp at delta=20ms",
               f"sim clp-ulp {sim_loss.clp - sim_loss.ulp:+.3f}, "
               f"model clp-ulp {model_loss.clp - model_loss.ulp:+.3f}",
               sim_loss.clp >= sim_loss.ulp - 0.02
               and model_loss.clp >= model_loss.ulp - 0.02)
    return result


def test_model_vs_simulation(benchmark):
    result = run_once(benchmark, compare_model_and_simulation)
    record_result(benchmark, result)
