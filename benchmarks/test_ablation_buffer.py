"""Ablation: bottleneck buffer size K vs delay ceiling and loss.

The paper's model has a finite buffer K (Figure 3); its size determines
both the maximum queueing delay (620 ms observed) and the loss floor.  We
sweep K and check the expected monotonicity: bigger buffers trade loss for
delay.  The M/D/1/K oracle provides the analytic reference trend.
"""

from conftest import record_result, run_once

from repro.analysis.loss import loss_stats
from repro.analysis.timeseries import summarize
from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_experiment
from repro.queueing.mdk1 import mdk1_blocking_probability


def buffer_sweep() -> FigureResult:
    result = FigureResult(
        "Ablation: buffer size",
        "Loss/delay trade-off vs bottleneck buffer K (packets)")
    lines = [f"{'K':>4} {'ulp':>6} {'max rtt':>9} {'M/D/1/K ref':>12}"]
    ulps, max_rtts = {}, {}
    # Analytic reference: Poisson 552-byte packets at 80% load.
    service = 552 * 8 / 128e3
    for k in (5, 15, 40):
        config = ExperimentConfig(
            delta=0.05, seed=4, duration=default_duration(150.0),
            scenario_kwargs={"buffer_packets": k, "fault_drop_prob": 0.0})
        trace = run_experiment(config)
        stats = loss_stats(trace)
        delay = summarize(trace)
        ulps[k] = stats.ulp
        max_rtts[k] = delay.maximum
        reference = mdk1_blocking_probability(0.8 / service, service, k)
        lines.append(f"{k:>4} {stats.ulp:6.3f} {delay.maximum * 1e3:7.0f}ms"
                     f" {reference:12.4f}")
    result.rendering = "\n".join(lines)

    result.add("loss decreases with K", "drop-tail fundamentals",
               f"{ulps[5]:.3f} > {ulps[15]:.3f} >= {ulps[40]:.3f}",
               ulps[5] > ulps[15] >= ulps[40] - 0.01)
    result.add("delay ceiling grows with K", "max queueing ~ K * S / mu",
               f"{max_rtts[5] * 1e3:.0f} < {max_rtts[15] * 1e3:.0f} < "
               f"{max_rtts[40] * 1e3:.0f} ms",
               max_rtts[5] < max_rtts[15] < max_rtts[40])
    result.add("paper's K=15 hits ~620 ms max queueing",
               "max rtt ~ 760 ms (140 fixed + 620 queueing)",
               f"{max_rtts[15] * 1e3:.0f} ms",
               0.45 <= max_rtts[15] <= 0.95)
    return result


def test_ablation_buffer(benchmark):
    result = run_once(benchmark, buffer_sweep)
    record_result(benchmark, result)
