"""Campaign cell-cache benchmarks.

The governing requirement of the cache (DESIGN.md): a cache hit is
byte-identical to a cold run — the cache is an optimization, never an
input — and a warm full-grid re-run is at least an order of magnitude
faster than the cold one.  This module records the numbers in
``BENCH_cache.json`` and asserts both halves.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from campaign_cache import SPEEDUP_FLOOR, run_suite

from repro.obs.bench import write_report


@pytest.fixture(scope="module")
def cache_document():
    """Run the cold/warm passes once and persist BENCH_cache.json."""
    report = run_suite()
    out = Path(__file__).resolve().parent / "BENCH_cache.json"
    write_report(report, out)
    return report["details"]


def test_cache_document_complete(cache_document):
    assert cache_document["grid_cells"] == 6
    assert cache_document["cold_seconds"] > 0
    assert cache_document["warm_seconds"] > 0
    assert cache_document["cold_misses"] == 6


def test_warm_run_is_all_hits(cache_document):
    assert cache_document["warm_hits"] == 6
    assert cache_document["warm_misses"] == 0
    assert cache_document["cache_bytes_read"] > 0
    assert cache_document["cache_bytes_written"] > 0


def test_warm_speedup_floor(cache_document):
    """A warm full-grid re-run must beat the cold one >= 10x.

    The warm pass does no simulation at all — it loads six npz entries and
    re-serializes the artifacts — so unlike the multi-worker scaling floor
    this holds on any hardware, single-core included.
    """
    assert cache_document["speedup"] >= SPEEDUP_FLOOR, \
        (f"warm {cache_document['warm_seconds']:.2f}s vs cold "
         f"{cache_document['cold_seconds']:.2f}s = "
         f"{cache_document['speedup']:.1f}x")


def test_cold_and_warm_artifacts_byte_identical(cache_document):
    assert cache_document["artifacts_identical"] is True
