"""Campaign parallelization benchmarks.

The governing requirement of the parallel executors: fanning the (δ × seed)
grid over worker processes changes *nothing* about the results (that is
tier-1 tested in ``tests/experiments/test_campaign.py``) and makes the
sweep substantially faster.  Two separate claims are recorded in
``BENCH_campaign.json`` and floor-tested here:

* the warm lease pipeline eliminates dispatch overhead — cold worker
  imports, per-cell pickle round trips, the end-of-grid barrier — so it
  beats the legacy cold-spawn pool by >= 1.4x on the overhead-dominated
  analytic grid *on any CPU count* (the win is per-worker/per-cell, not
  per-core);
* independent cells scale across cores, >= 1.5× at 4 workers wherever
  the hardware can express it.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from campaign_scaling import available_cpus, run_suite, time_campaign

from repro.obs.bench import write_report

SPEEDUP_FLOOR = 1.5

#: Required warm-pipeline advantage over the cold-spawn baseline on the
#: overhead-dominated dispatch grid (the ISSUE's >= 1.4x acceptance
#: floor; measured advantage is far larger).
DISPATCH_SPEEDUP_FLOOR = 1.4


@pytest.fixture(scope="module")
def scaling_document():
    """Run the full scaling grid once and persist BENCH_campaign.json."""
    report = run_suite()
    out = Path(__file__).resolve().parent / "BENCH_campaign.json"
    write_report(report, out)
    return report["details"]


def test_scaling_document_complete(scaling_document):
    assert scaling_document["grid_cells"] == 8
    assert set(scaling_document["wall_seconds"]) == {"1", "2", "4"}
    assert all(wall > 0
               for wall in scaling_document["wall_seconds"].values())
    assert scaling_document["speedup_vs_serial"]["1"] == pytest.approx(1.0)


def test_speedup_at_4_workers(scaling_document):
    if scaling_document["cpus"] < 4:
        pytest.skip(f"speedup floor needs >= 4 CPUs, have "
                    f"{scaling_document['cpus']}")
    assert scaling_document["speedup_vs_serial"]["4"] > SPEEDUP_FLOOR


def test_warm_pipeline_beats_cold_spawn(scaling_document):
    """The tentpole claim: dispatch overhead is engineered away.

    Runs (and must pass) on a 1-CPU host: both executors get the same
    worker count, so the ratio isolates per-worker cold-start imports and
    per-cell dispatch cost, not core-count parallelism.
    """
    dispatch = scaling_document["dispatch"]
    assert dispatch["warm_vs_spawn_speedup"] >= DISPATCH_SPEEDUP_FLOOR, \
        (f"warm {dispatch['warm_seconds']:.2f}s vs spawn "
         f"{dispatch['spawn_seconds']:.2f}s")


def test_dispatch_accounting_consistent(scaling_document):
    """Every lease is accounted to exactly one transport."""
    dispatch = scaling_document["dispatch"]
    assert dispatch["leases"] > 0
    assert dispatch["shm_leases"] + dispatch["inline_leases"] \
        == dispatch["leases"]
    if dispatch["shm_leases"]:
        assert dispatch["shm_bytes"] > 0


def test_parallel_not_pathologically_slower():
    """Even on small machines the pool must not collapse throughput.

    Guards the fan-out overhead (process start-up, spec pickling, trace
    pickling) rather than the speedup: with 2 workers the same grid may
    not run any meaningful factor *slower* than serial, whatever the CPU
    count.
    """
    serial = time_campaign(1)
    parallel = time_campaign(2)
    budget = 1.5 if available_cpus() == 1 else 1.2
    assert parallel < serial * budget, \
        f"2-worker run {parallel:.2f}s vs serial {serial:.2f}s"
