"""Figure 6: UMd-Pitt phase plot at δ = 50 ms (diagonal scatter)."""

from conftest import record_result, run_once

from repro.experiments.figures import figure6


def test_fig6_pitt50(benchmark):
    result = run_once(benchmark, figure6, seed=1, count=2400)
    record_result(benchmark, result)
