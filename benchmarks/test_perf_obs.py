"""Observability overhead benchmarks.

The governing performance requirement of :mod:`repro.obs`: with no observer
attached, the kernel hot path pays one ``is None`` branch per event and
nothing else, so tracing-off throughput must stay within a few percent of
the pre-observability kernel.  These benchmarks track both sides — the
untraced path (the regression guard) and the fully traced path (the cost of
turning everything on).
"""

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment, run_observed_experiment
from repro.obs import KernelTracer
from repro.sim import Simulator

EVENT_COUNT = 100_000


def run_chain(tracer=None):
    """The bare-kernel 100k-event chain (test_perf_substrate's workload)."""
    sim = Simulator(seed=0)
    if tracer is not None:
        sim.attach_observer(tracer)

    def chain(remaining):
        if remaining:
            sim.schedule(0.001, lambda: chain(remaining - 1))

    sim.call_at(0.0, lambda: chain(EVENT_COUNT))
    sim.run()
    return sim.events_executed


def test_perf_kernel_tracing_off(benchmark):
    """Untraced kernel throughput — the ≤5% overhead budget lives here."""
    events = benchmark(run_chain)
    assert events == EVENT_COUNT + 1


def test_perf_kernel_tracing_on(benchmark):
    """Fully traced kernel throughput (ring buffer + profiles)."""

    def traced():
        return run_chain(tracer=KernelTracer())

    events = benchmark(traced)
    assert events == EVENT_COUNT + 1


def test_perf_experiment_observed_vs_bare(benchmark):
    """Full experiment with every collector on (kernel + lifecycle)."""

    def observed():
        trace, _scenario, obs = run_observed_experiment(
            ExperimentConfig(delta=0.05, duration=30.0, seed=0),
            kernel_trace=True, lifecycle=True)
        return len(trace), obs.kernel.events_seen

    probes, events = benchmark.pedantic(observed, rounds=3, iterations=1)
    assert probes == 600
    assert events > 0


def test_perf_experiment_metrics_only(benchmark):
    """Pull-based registry only: should be indistinguishable from bare."""

    def metrics_only():
        trace, _scenario, _obs = run_observed_experiment(
            ExperimentConfig(delta=0.05, duration=30.0, seed=0))
        return len(trace)

    probes = benchmark.pedantic(metrics_only, rounds=3, iterations=1)
    assert probes == 600


def test_perf_experiment_bare_reference(benchmark):
    """Reference: the unobserved experiment the others compare against."""

    def bare():
        return len(run_experiment(
            ExperimentConfig(delta=0.05, duration=30.0, seed=0)))

    probes = benchmark.pedantic(bare, rounds=3, iterations=1)
    assert probes == 600
