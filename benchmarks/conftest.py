"""Shared helpers for the reproduction benchmarks.

Each benchmark module regenerates one table or figure of the paper,
asserts the paper-vs-measured comparison rows, records them in
``benchmark.extra_info``, and prints the rendering so
``pytest benchmarks/ --benchmark-only -s`` shows the reproduced figure.

Durations are scaled down from the paper's 10-minute experiments so the
suite completes in a few minutes; set ``REPRO_FULL_EXPERIMENTS=1`` for
paper-length runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import FigureResult


def record_result(benchmark, result: FigureResult,
                  require_all: bool = True) -> None:
    """Stash comparison rows in the benchmark report and assert them."""
    for row in result.rows:
        benchmark.extra_info[row.name] = (
            f"paper: {row.paper} | measured: {row.measured} | "
            f"{'ok' if row.ok else 'MISS'}")
    print()
    print(result.summary())
    if result.rendering:
        print(result.rendering)
    if require_all:
        assert result.all_ok, f"\n{result.summary()}"


def run_once(benchmark, function, *args, **kwargs):
    """Run an expensive reproduction exactly once under the benchmark."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
