"""Section 6's closed loop: batch distribution from eq. (6) -> model -> data.

The paper: "We derive the batch size distribution from our measurements
using equation (6).  Preliminary investigations show that the analytical
results show good correlation with our experimental data.  In particular,
they bring out the probe compression phenomenon."

This benchmark measures the calibrated path at δ = 20 ms, inverts the trace
into an empirical batch-size distribution, runs the D+batch/D/1/K model with
it, and compares loss and compression statistics in both directions.
"""

from conftest import record_result, run_once

from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_experiment
from repro.queueing.closure import closed_loop_comparison

MU = 128e3


def closure() -> FigureResult:
    config = ExperimentConfig(delta=0.02, seed=9,
                              duration=default_duration(180.0))
    trace = run_experiment(config)
    report = closed_loop_comparison(trace, mu=MU, buffer_packets=15, seed=9)

    result = FigureResult(
        "Section 6 closure",
        "Batch distribution fitted via eq. (6), model re-run, compared")
    result.rendering = (
        f"inferred cross-traffic load: {report.mean_load:.1%} of mu\n"
        f"ulp:  measured {report.measured_loss.ulp:.3f}  "
        f"model {report.model_loss.ulp:.3f}\n"
        f"clp:  measured {report.measured_loss.clp:.3f}  "
        f"model {report.model_loss.clp:.3f}\n"
        f"compressed pairs:  measured {report.measured_compression:.1%}  "
        f"model {report.model_compression:.1%}")

    result.add("model brings out probe compression",
               "paper: 'they bring out the probe compression phenomenon'",
               f"measured {report.measured_compression:.1%}, "
               f"model {report.model_compression:.1%}",
               report.measured_compression > 0.02
               and report.model_compression > 0.02)
    result.add("loss statistics correlate",
               "'good correlation with our experimental data'",
               f"model/measured ulp ratio {report.loss_ratio():.2f}",
               0.2 <= report.loss_ratio() <= 5.0)
    result.add("inferred load physically sensible",
               "calibrated mix offers ~70-80% + probes",
               f"{report.mean_load:.1%} of mu",
               0.3 <= report.mean_load <= 1.1)
    return result


def test_model_closure(benchmark):
    result = run_once(benchmark, closure)
    record_result(benchmark, result)
