"""Measure kernel event throughput; ``benchmarks/BENCH_obs.json``.

Run directly (CI's obs-smoke job does) or via ``repro-bench run obs``::

    python benchmarks/obs_throughput.py [OUTPUT.json]

Times the bare-kernel 100k-event chain three ways — no observer, kernel
tracing attached, and the full observed experiment — and records
events/sec for each in the shared ``repro-bench`` report schema
(:mod:`repro.obs.bench`), so tracing-off regressions show up as a drop in
``untraced_events_per_second`` between commits.
"""

from __future__ import annotations

import sys
from time import perf_counter

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_observed_experiment
from repro.obs import KernelTracer
from repro.obs.bench import build_report, metric, write_report
from repro.sim import Simulator

SUITE = "obs"

EVENT_COUNT = 100_000
ROUNDS = 3


def run_chain(tracer=None) -> int:
    sim = Simulator(seed=0)
    if tracer is not None:
        sim.attach_observer(tracer)

    def chain(remaining):
        if remaining:
            sim.schedule(0.001, lambda: chain(remaining - 1))

    sim.call_at(0.0, lambda: chain(EVENT_COUNT))
    sim.run()
    return sim.events_executed


def best_rate(make_tracer) -> float:
    """Best-of-ROUNDS events/sec for the 100k chain."""
    best = 0.0
    for _ in range(ROUNDS):
        started = perf_counter()
        events = run_chain(tracer=make_tracer())
        rate = events / (perf_counter() - started)
        best = max(best, rate)
    return best


def collect(quick: bool = False) -> dict:
    """Chain with/without tracing plus one fully observed experiment."""
    untraced = best_rate(lambda: None)
    traced = best_rate(lambda: KernelTracer())

    started = perf_counter()
    trace, _scenario, obs = run_observed_experiment(
        ExperimentConfig(delta=0.05, duration=10.0 if quick else 30.0,
                         seed=0),
        kernel_trace=True, lifecycle=True)
    elapsed = perf_counter() - started

    return {
        "workload_events": EVENT_COUNT + 1,
        "rounds": ROUNDS,
        "events_per_second_untraced": round(untraced),
        "events_per_second_traced": round(traced),
        "tracing_overhead_fraction": round(1.0 - traced / untraced, 4),
        "observed_experiment": {
            "probes": len(trace),
            "kernel_events": obs.kernel.events_seen,
            "hop_records": len(obs.lifecycle.records),
            "events_per_second": round(obs.kernel.events_seen / elapsed),
        },
    }


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    metrics = {
        "untraced_events_per_second":
            metric(details["events_per_second_untraced"], "events/s"),
        "traced_events_per_second":
            metric(details["events_per_second_traced"], "events/s"),
        "tracing_overhead_fraction":
            metric(details["tracing_overhead_fraction"], "fraction",
                   direction="lower"),
    }
    return build_report(SUITE, metrics, mode="quick" if quick else "full",
                        details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "benchmarks/BENCH_obs.json"
    report = run_suite()
    document = report["details"]
    write_report(report, output)
    sys.stderr.write(f"wrote {output}: "
                     f"{document['events_per_second_untraced']} ev/s "
                     f"untraced, {document['events_per_second_traced']} "
                     f"ev/s traced\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
