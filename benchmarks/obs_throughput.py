"""Measure kernel event throughput and write ``BENCH_obs.json``.

Run directly (CI's obs-smoke job does)::

    python benchmarks/obs_throughput.py [OUTPUT.json]

Times the bare-kernel 100k-event chain three ways — no observer, kernel
tracing attached, and the full observed experiment — and records
events/sec for each, so tracing-off regressions show up as a drop in
``events_per_second_untraced`` between commits.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_observed_experiment
from repro.obs import KernelTracer
from repro.sim import Simulator

EVENT_COUNT = 100_000
ROUNDS = 3


def run_chain(tracer=None) -> int:
    sim = Simulator(seed=0)
    if tracer is not None:
        sim.attach_observer(tracer)

    def chain(remaining):
        if remaining:
            sim.schedule(0.001, lambda: chain(remaining - 1))

    sim.call_at(0.0, lambda: chain(EVENT_COUNT))
    sim.run()
    return sim.events_executed


def best_rate(make_tracer) -> float:
    """Best-of-ROUNDS events/sec for the 100k chain."""
    best = 0.0
    for _ in range(ROUNDS):
        started = perf_counter()
        events = run_chain(tracer=make_tracer())
        rate = events / (perf_counter() - started)
        best = max(best, rate)
    return best


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "BENCH_obs.json"

    untraced = best_rate(lambda: None)
    traced = best_rate(lambda: KernelTracer())

    started = perf_counter()
    trace, _scenario, obs = run_observed_experiment(
        ExperimentConfig(delta=0.05, duration=30.0, seed=0),
        kernel_trace=True, lifecycle=True)
    elapsed = perf_counter() - started

    document = {
        "workload_events": EVENT_COUNT + 1,
        "rounds": ROUNDS,
        "events_per_second_untraced": round(untraced),
        "events_per_second_traced": round(traced),
        "tracing_overhead_fraction": round(1.0 - traced / untraced, 4),
        "observed_experiment": {
            "probes": len(trace),
            "kernel_events": obs.kernel.events_seen,
            "hop_records": len(obs.lifecycle.records),
            "events_per_second": round(obs.kernel.events_seen / elapsed),
        },
    }
    with open(output, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.stderr.write(f"wrote {output}: "
                     f"{document['events_per_second_untraced']} ev/s "
                     f"untraced, {document['events_per_second_traced']} "
                     f"ev/s traced\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
