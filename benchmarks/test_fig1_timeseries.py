"""Figure 1: time series of rtt_n at δ = 50 ms (0 <= n <= 800, ~9% loss)."""

from conftest import record_result, run_once

from repro.experiments.figures import figure1


def test_fig1_timeseries(benchmark):
    result = run_once(benchmark, figure1, seed=1, count=800)
    record_result(benchmark, result)
