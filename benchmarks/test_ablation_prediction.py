"""Ablation: are AR(MA) models adequate to predict queueing delays?

Section 3 of the paper describes a parallel investigation: "we examine
whether ARMA models are adequate to model queueing delays in communication
networks.  This has consequences for the performance of predictive control
mechanisms" [16].  This benchmark answers the question quantitatively on
our traces: fit AR models (Yule–Walker, AIC order selection) at several
probe intervals and measure one-step prediction skill over the naive
last-value predictor.

Expected shape: at small δ consecutive delays are strongly correlated
(compressed probes, slowly draining queues) so prediction has skill; at
δ = 500 ms the queue decorrelates between probes and AR prediction degrades
toward the naive predictor — the time-scale limit of predictive control.
"""

from conftest import record_result, run_once

from repro.analysis.arma import evaluate_prediction
from repro.analysis.timeseries import autocorrelation
from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_experiment


def prediction_sweep() -> FigureResult:
    result = FigureResult(
        "Ablation: delay prediction",
        "AR one-step prediction skill vs probe interval (Section 3)")
    lines = [f"{'delta':>8} {'order':>6} {'acf(1)':>7} {'rmse ms':>8} "
             f"{'naive ms':>9} {'skill':>7}"]
    skills = {}
    acf1 = {}
    for delta in (0.02, 0.1, 0.5):
        config = ExperimentConfig(
            delta=delta, seed=8,
            duration=default_duration(120.0 if delta < 0.2 else 480.0))
        trace = run_experiment(config)
        report = evaluate_prediction(trace)
        acf = autocorrelation(trace, max_lag=1)
        skills[delta] = report.skill
        acf1[delta] = float(acf[1])
        lines.append(f"{delta * 1e3:6.0f}ms {report.order:6d} "
                     f"{acf1[delta]:7.2f} {report.rmse * 1e3:8.2f} "
                     f"{report.naive_rmse * 1e3:9.2f} "
                     f"{skills[delta]:7.2%}")
    result.rendering = "\n".join(lines)

    result.add("delays strongly correlated at small δ",
               "compressed probes, slowly draining queues",
               f"acf(1) {acf1[0.02]:.2f}", acf1[0.02] > 0.5)
    result.add("correlation fades at δ = 500 ms",
               "queue decorrelates between probes",
               f"acf(1) {acf1[0.5]:.2f} vs {acf1[0.02]:.2f} at 20 ms",
               acf1[0.5] < acf1[0.02])
    result.add("AR helps most at intermediate δ",
               "at tiny δ the last-value predictor is already near-optimal",
               ", ".join(f"{d * 1e3:.0f}ms: {skills[d]:+.0%}"
                         for d in (0.02, 0.1, 0.5)),
               skills[0.1] > skills[0.02])
    result.add("AR never loses to naive by much",
               "skill >= ~0 at every δ",
               ", ".join(f"{skills[d]:+.0%}" for d in (0.02, 0.1, 0.5)),
               all(s > -0.1 for s in skills.values()))
    return result


def test_ablation_prediction(benchmark):
    result = run_once(benchmark, prediction_sweep)
    record_result(benchmark, result)
