"""Figure 9: distribution of w_{n+1} − w_n + δ at δ = 100 ms.

Same peak structure as Figure 8, but the compression peak shrinks relative
to the idle peak: probe compression becomes less frequent as δ grows.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure9


def test_fig9_workload100(benchmark):
    result = run_once(benchmark, figure9, seed=1)
    record_result(benchmark, result)
