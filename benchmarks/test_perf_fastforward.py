"""Analytic fast-forward benchmarks.

The governing requirement of the analytic mode (DESIGN.md): event mode is
golden — the fast-forward must reproduce its traces bit for bit — and a
calibrated cell must run at least an order of magnitude faster
analytically.  This module records the numbers in
``BENCH_fastforward.json`` and asserts both halves.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from kernel_fastforward import SPEEDUP_FLOOR, run_suite

from repro.obs.bench import write_report

#: Noise-tolerant floor for the grid-batched section (the committed
#: benchmark records >= 3x; shared CI runners get headroom).
BATCHED_TEST_FLOOR = 2.0


@pytest.fixture(scope="module")
def fastforward_document():
    """Run both kernels once and persist BENCH_fastforward.json."""
    report = run_suite()
    out = Path(__file__).resolve().parent / "BENCH_fastforward.json"
    write_report(report, out)
    return report["details"]


def test_document_complete(fastforward_document):
    assert fastforward_document["event_seconds"] > 0
    assert fastforward_document["analytic_seconds"] > 0
    assert fastforward_document["equivalence"]["probes"] > 0


def test_analytic_speedup_floor(fastforward_document):
    """The analytic mode must beat the event kernel >= 10x on the cell."""
    assert fastforward_document["speedup"] >= SPEEDUP_FLOOR, \
        (f"analytic {fastforward_document['analytic_seconds']:.2f}s vs "
         f"event {fastforward_document['event_seconds']:.2f}s = "
         f"{fastforward_document['speedup']:.1f}x")


def test_traces_stay_equivalent(fastforward_document):
    """Speed means nothing if the answers drift (event mode is golden)."""
    equivalence = fastforward_document["equivalence"]
    assert equivalence["losses_identical"] is True
    assert equivalence["max_rtt_gap_seconds"] == 0.0


def test_batched_grid_speedup_floor(fastforward_document):
    """Grid-batched execution must beat per-cell >= 2x on the grid."""
    batched = fastforward_document["batched_vs_percell"]
    assert batched["batched_speedup"] >= BATCHED_TEST_FLOOR, \
        (f"batched {batched['batched_seconds']:.2f}s vs percell "
         f"{batched['percell_seconds']:.2f}s = "
         f"{batched['batched_speedup']:.1f}x")


def test_batched_grid_byte_identical(fastforward_document):
    """Replay reuse is pure execution: identical traces + queue stats."""
    batched = fastforward_document["batched_vs_percell"]
    assert batched["byte_identical"] is True
    assert batched["grid"]["cells"] >= 12
