"""Measure hot-path throughput and write ``benchmarks/BENCH_kernel.json``.

Run directly (CI's kernel-bench-smoke job does) or via ``repro-bench run
kernel``::

    python benchmarks/kernel_throughput.py [OUTPUT.json] [--quick]
        [--baseline BASELINE.json]

Times the three hot-path workloads the perf tests guard:

* ``event_loop`` — the bare-kernel 100k-event chain (pure scheduling cost);
* ``forwarding`` — a 5-hop store-and-forward chain at 2000 pps (packet
  objects, queues, interfaces, allocation-free tx/deliver scheduling);
* ``calibrated`` — one simulated minute of the full INRIA-UMd scenario
  (cross-traffic RNG draws, faults, probes: the real workload).

Each workload reports events/sec (best of ``ROUNDS``), written in the
shared ``repro-bench`` report schema (:mod:`repro.obs.bench`) so
``repro-bench compare`` can flag regressions between two runs.  When
``--baseline`` points at a previous run's JSON (legacy flat or
schema-versioned), its numbers are embedded under ``details.baseline`` and
per-workload speedups are computed, which is how the before/after record
in the committed ``benchmarks/BENCH_kernel.json`` is produced.

``--quick`` shrinks every workload (CI smoke); quick numbers are only
comparable to other quick runs, and the report says which mode ran.
"""

from __future__ import annotations

import json
import sys
from time import perf_counter

from repro.net.routing import Network
from repro.netdyn.session import run_probe_experiment
from repro.obs.bench import build_report, flat_metrics, write_report
from repro.sim import Simulator
from repro.topology.inria_umd import build_inria_umd
from repro.traffic.base import TrafficSink
from repro.traffic.poisson import PoissonSource
from repro.units import mbps, ms

SUITE = "kernel"

ROUNDS = 3

FULL = {"chain_events": 100_000, "forwarding_seconds": 5.0,
        "calibrated_seconds": 60.0}
QUICK = {"chain_events": 20_000, "forwarding_seconds": 1.0,
         "calibrated_seconds": 10.0}


def run_event_loop(chain_events: int) -> tuple[int, float]:
    """Events executed and wall seconds for the bare-kernel chain."""
    sim = Simulator(seed=0)

    def chain(remaining):
        if remaining:
            sim.schedule(0.001, lambda: chain(remaining - 1))

    sim.call_at(0.0, lambda: chain(chain_events))
    started = perf_counter()
    sim.run()
    return sim.events_executed, perf_counter() - started


def run_forwarding(duration: float) -> tuple[int, float]:
    """Events executed and wall seconds for the 5-hop forwarding chain."""
    sim = Simulator(seed=0)
    network = Network(sim)
    names = [f"n{i}" for i in range(6)]
    network.add_host(names[0])
    for name in names[1:-1]:
        network.add_router(name)
    network.add_host(names[-1])
    for a, b in zip(names, names[1:]):
        network.link(a, b, rate_bps=mbps(100), prop_delay=ms(0.1))
    network.compute_routes()
    TrafficSink(network.host(names[-1]))
    source = PoissonSource(network.host(names[0]), names[-1],
                           rate_pps=2000.0)
    source.start()
    started = perf_counter()
    sim.run(until=duration)
    source.stop()
    sim.run()
    return sim.events_executed, perf_counter() - started


def run_calibrated(duration: float) -> tuple[int, float]:
    """Events executed and wall seconds for the INRIA-UMd scenario."""
    scenario = build_inria_umd(seed=0)
    scenario.start_traffic()
    started = perf_counter()
    run_probe_experiment(scenario.network, scenario.source, scenario.echo,
                         delta=0.05, duration=duration, start_at=5.0)
    return scenario.sim.events_executed, perf_counter() - started


def best_rate(workload, arg) -> dict:
    """Best-of-ROUNDS events/sec for one workload."""
    best_rate_seen, events = 0.0, 0
    for _ in range(ROUNDS):
        events, elapsed = workload(arg)
        best_rate_seen = max(best_rate_seen, events / elapsed)
    return {"events": events, "events_per_second": round(best_rate_seen)}


def collect(quick: bool = False) -> dict:
    """Run all three workloads; flat per-workload results."""
    params = QUICK if quick else FULL
    workloads = {
        "event_loop": best_rate(run_event_loop, params["chain_events"]),
        "forwarding": best_rate(run_forwarding,
                                params["forwarding_seconds"]),
        "calibrated": best_rate(run_calibrated,
                                params["calibrated_seconds"]),
    }
    return {"rounds": ROUNDS, "params": params, "workloads": workloads}


def run_suite(quick: bool = False, baseline: dict = None) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite.

    ``baseline`` accepts either a legacy flat document (``workloads`` at
    the top level) or a schema report (``details.workloads``); its numbers
    are preserved under ``details.baseline`` with per-workload speedups.
    """
    details = collect(quick=quick)
    workloads = details["workloads"]
    if baseline is not None:
        base = baseline.get("details", baseline)
        base_workloads = base.get("workloads", base)
        details["baseline"] = base_workloads
        details["speedup"] = {
            name: round(workloads[name]["events_per_second"]
                        / base_workloads[name]["events_per_second"], 2)
            for name in workloads if name in base_workloads}
    return build_report(
        SUITE, flat_metrics(workloads, unit="events/s"),
        mode="quick" if quick else "full", details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    baseline = None
    if "--baseline" in argv:
        where = argv.index("--baseline")
        with open(argv[where + 1]) as handle:
            baseline = json.load(handle)
        del argv[where:where + 2]
    output = argv[0] if argv else "benchmarks/BENCH_kernel.json"

    report = run_suite(quick=quick, baseline=baseline)
    write_report(report, output)
    for name, result in report["details"]["workloads"].items():
        sys.stderr.write(f"{name}: {result['events_per_second']} ev/s\n")
    sys.stderr.write(f"wrote {output}\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
