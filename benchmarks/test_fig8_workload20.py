"""Figure 8: distribution of w_{n+1} − w_n + δ at δ = 20 ms.

Expected peaks: P/μ ≈ 4.5 ms (compressed probes), δ = 20 ms (idle queue),
and ≈ 39 ms — one ~500-byte bulk packet between probes, the paper's
b_n ≈ 488 bytes example.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure8


def test_fig8_workload20(benchmark):
    result = run_once(benchmark, figure8, seed=1)
    record_result(benchmark, result)
