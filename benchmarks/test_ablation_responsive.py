"""Ablation: open-loop vs congestion-controlled (TCP-like) cross traffic.

Our Table 3 reproduction overshoots the paper's δ = 8 ms loss (0.36 vs
0.23) because the open-loop FTP sources keep transmitting while the probe
flood (56% of the bottleneck) congests the link.  Real 1992 bulk traffic
was TCP and *backed off*.  This ablation replaces the open-loop bulk mix
with mini-TCP transfers and shows the probe loss at δ = 8 ms moves toward
the paper's value, while δ = 100 ms (probes only ~4.5% of the link) is
barely affected.
"""

from conftest import record_result, run_once

from repro.analysis.loss import loss_stats
from repro.experiments.figures import FigureResult
from repro.netdyn.session import run_probe_experiment
from repro.topology.inria_umd import build_inria_umd
from repro.traffic.tcpflows import ResponsiveBulkSource


def probe_with_responsive_traffic(delta: float, count: int, seed: int):
    # Open-loop interactive share only; bulk replaced by mini-TCP flows.
    scenario = build_inria_umd(seed=seed, utilization_fwd=0.10,
                               utilization_rev=0.09, bulk_fraction=0.0)
    scenario.start_traffic()
    tcp_fwd = ResponsiveBulkSource(
        scenario.network.host("cross-fr.icp.net"),
        scenario.network.host("cross-us.nsf.net"),
        session_rate=0.4, mean_file_segments=20.0, stream="tcp.fwd",
        base_port=20_000, max_window=6.0)
    tcp_rev = ResponsiveBulkSource(
        scenario.network.host("cross-us.nsf.net"),
        scenario.network.host("cross-fr.icp.net"),
        session_rate=0.36, mean_file_segments=20.0, stream="tcp.rev",
        base_port=40_000, max_window=6.0)
    tcp_fwd.start()
    tcp_rev.start()
    return run_probe_experiment(scenario.network, scenario.source,
                                scenario.echo, delta=delta, count=count,
                                start_at=30.0)


def probe_with_open_loop_traffic(delta: float, count: int, seed: int):
    scenario = build_inria_umd(seed=seed)
    scenario.start_traffic()
    return run_probe_experiment(scenario.network, scenario.source,
                                scenario.echo, delta=delta, count=count,
                                start_at=30.0)


def responsive_sweep() -> FigureResult:
    result = FigureResult(
        "Ablation: responsive traffic",
        "Probe loss with open-loop vs TCP-like cross traffic")
    rows = {}
    lines = [f"{'delta':>8} {'open-loop ulp':>14} {'tcp ulp':>9}"]
    for delta, count in ((0.008, 12000), (0.1, 1800)):
        open_loop = loss_stats(
            probe_with_open_loop_traffic(delta, count, seed=6))
        responsive = loss_stats(
            probe_with_responsive_traffic(delta, count, seed=6))
        rows[delta] = (open_loop, responsive)
        lines.append(f"{delta * 1e3:6.0f}ms {open_loop.ulp:14.3f} "
                     f"{responsive.ulp:9.3f}")
    result.rendering = "\n".join(lines)

    open_8, tcp_8 = rows[0.008]
    result.add("TCP cross traffic yields to the probe flood",
               "paper measured ulp 0.23 at delta=8ms; open-loop "
               "over-shoots",
               f"open-loop {open_8.ulp:.2f} vs tcp {tcp_8.ulp:.2f}",
               tcp_8.ulp < open_8.ulp)
    result.add("delta=8ms loss moves toward the paper's 0.23",
               "0.23", f"{tcp_8.ulp:.2f}", 0.10 <= tcp_8.ulp <= 0.34)
    open_100, tcp_100 = rows[0.1]
    result.add("low probe rates barely affected",
               "both near the ~0.10 floor",
               f"open-loop {open_100.ulp:.2f} vs tcp {tcp_100.ulp:.2f}",
               abs(open_100.ulp - tcp_100.ulp) < 0.1)
    return result


def test_ablation_responsive(benchmark):
    result = run_once(benchmark, responsive_sweep)
    record_result(benchmark, result)
