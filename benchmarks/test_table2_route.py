"""Table 2: the traceroute route between UMd and Pittsburgh (May 1993)."""

from conftest import record_result, run_once

from repro.experiments.figures import table2


def test_table2_route(benchmark):
    result = run_once(benchmark, table2, seed=1)
    record_result(benchmark, result)
