"""Figure 2: phase plot at δ = 50 ms.

Paper readings: the point cloud hugs the diagonal near (D, D) with
D ≈ 140 ms; the probe-compression line's x-intercept sits at ~48 ms,
giving a bottleneck estimate μ ≈ 130 kb/s for the actual 128 kb/s
transatlantic link.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure2


def test_fig2_phase50(benchmark):
    result = run_once(benchmark, figure2, seed=1, count=2400)
    record_result(benchmark, result)
