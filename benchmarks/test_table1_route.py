"""Table 1: the traceroute route between INRIA and UMd (July 1992)."""

from conftest import record_result, run_once

from repro.experiments.figures import table1


def test_table1_route(benchmark):
    result = run_once(benchmark, table1, seed=1)
    record_result(benchmark, result)
