"""Figure 5: UMd-Pitt phase plot at δ = 8 ms.

On the fast (T3-backbone) path P/μ is negligible, so the compression line
sits at rtt_{n+1} = rtt_n − 8 ms, and the UMd host's 3 ms clock resolution
produces the regular banding the paper points out.
"""

from conftest import record_result, run_once

from repro.experiments.figures import figure5


def test_fig5_pitt8(benchmark):
    result = run_once(benchmark, figure5, seed=1, count=2400)
    record_result(benchmark, result)
