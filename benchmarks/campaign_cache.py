"""Measure cold-vs-warm campaign latency; ``benchmarks/BENCH_cache.json``.

Run directly (CI's cache-smoke job does) or via ``repro-bench run cache``::

    python benchmarks/campaign_cache.py [OUTPUT.json]

Runs the fixed benchmark grid twice against the same cell cache: a cold
pass (empty cache, every cell simulated and stored) and a warm pass (every
cell loaded from disk).  Records both wall times, the speedup, the warm
pass's hit accounting, and whether the two passes' artifacts — summary
tables, per-cell trace CSVs, ``manifest.json`` — came out byte-identical
(the cold==warm invariant), in the shared ``repro-bench`` report schema
(:mod:`repro.obs.bench`).  ``benchmarks/test_perf_cache.py`` asserts the
>= 10x warm speedup and the byte-identity.
"""

from __future__ import annotations

import filecmp
import shutil
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.experiments.cache import CampaignCache
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.obs.bench import build_report, metric, write_report

SUITE = "cache"

#: The fixed benchmark grid: 2 deltas x 3 seeds = 6 cells, sized so the
#: cold pass costs seconds of simulation while the warm pass is pure I/O.
BENCH_GRID = dict(
    deltas=(0.02, 0.05),
    seeds=(1, 2, 3),
    duration=30.0,
    scenario="inria-umd",
    scenario_kwargs={"utilization_fwd": 0.5, "utilization_rev": 0.5},
)

#: Required warm-over-cold speedup (asserted by test_perf_cache.py).
SPEEDUP_FLOOR = 10.0


def _run_pass(cache: CampaignCache, output_dir: Path,
              grid: dict = BENCH_GRID) -> "tuple[float, dict]":
    """One full campaign into ``output_dir``; (wall seconds, cache stats)."""
    spec = CampaignSpec(output_dir=output_dir, **grid)
    started = perf_counter()
    result = run_campaign(spec, cache=cache)
    assert result.cache_stats is not None
    return perf_counter() - started, result.cache_stats


def _artifacts_identical(cold_dir: Path, warm_dir: Path) -> bool:
    """True when every deterministic artifact matches byte-for-byte.

    ``timing.json`` is excluded by design: it records execution mechanics
    (wall clocks, hit/miss accounting) and legitimately differs.
    """
    names = sorted(p.name for p in cold_dir.iterdir()
                   if p.name != "timing.json")
    if names != sorted(p.name for p in warm_dir.iterdir()
                       if p.name != "timing.json"):
        return False
    match, mismatch, errors = filecmp.cmpfiles(cold_dir, warm_dir, names,
                                               shallow=False)
    return not mismatch and not errors


def collect(quick: bool = False) -> dict:
    """Run the grid cold then warm against one cache; derive the speedup."""
    grid = dict(BENCH_GRID, duration=5.0) if quick else BENCH_GRID
    workdir = Path(tempfile.mkdtemp(prefix="bench-cache-"))
    try:
        cache = CampaignCache(workdir / "cache")
        cold_seconds, cold_stats = _run_pass(cache, workdir / "cold",
                                             grid=grid)
        warm_seconds, warm_stats = _run_pass(cache, workdir / "warm",
                                             grid=grid)
        identical = _artifacts_identical(workdir / "cold", workdir / "warm")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    cells = len(grid["deltas"]) * len(grid["seeds"])
    return {
        "grid_cells": cells,
        "cell_duration_seconds": grid["duration"],
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds,
        "cold_misses": cold_stats["misses"],
        "warm_hits": warm_stats["hits"],
        "warm_misses": warm_stats["misses"],
        "cache_bytes_written": cold_stats["bytes_written"],
        "cache_bytes_read": warm_stats["bytes_read"],
        "artifacts_identical": identical,
    }


def run_suite(quick: bool = False) -> dict:
    """One schema-versioned ``repro-bench`` report for this suite."""
    details = collect(quick=quick)
    metrics = {
        "warm_speedup": metric(details["speedup"], "x"),
        "warm_seconds": metric(details["warm_seconds"], "s",
                               direction="lower"),
    }
    return build_report(SUITE, metrics, mode="quick" if quick else "full",
                        details=details)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    output = argv[0] if argv else "benchmarks/BENCH_cache.json"
    report = run_suite()
    document = report["details"]
    write_report(report, output)
    print(f"campaign cell cache, {document['grid_cells']} cells:")
    print(f"  cold: {document['cold_seconds']:7.2f}s "
          f"({document['cold_misses']} misses)")
    print(f"  warm: {document['warm_seconds']:7.2f}s "
          f"({document['warm_hits']} hits)  "
          f"-> {document['speedup']:.1f}x")
    print(f"  artifacts byte-identical: {document['artifacts_identical']}")
    print(f"written to {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
