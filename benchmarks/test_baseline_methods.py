"""Baselines: what prior measurement methodologies see on the same path.

The paper positions dense UDP probing against Merit's 15-minute statistics
[6] and Mukherjee's per-minute ICMP groups [19].  This benchmark runs all
three on one simulated path carrying a periodic gateway stall and reports
which methodology detects it — the paper's argument for short time scales.
"""

from conftest import record_result, run_once

from repro.analysis.timeseries import periodic_spike_period
from repro.baselines.merit import merit_sampling
from repro.baselines.pingstats import grouped_ping
from repro.errors import InsufficientDataError
from repro.experiments.figures import FigureResult
from repro.net.faults import PeriodicStallFault
from repro.netdyn.session import run_probe_experiment
from repro.topology.inria_umd import build_inria_umd

import numpy as np

STALL_PERIOD = 90.0


def build_faulty_scenario(seed):
    scenario = build_inria_umd(seed=seed, utilization_fwd=0.3,
                               utilization_rev=0.3, fault_drop_prob=0.0)
    # Phase 30 s keeps the deterministic Merit sample times (multiples of
    # 103 s) clear of the stall windows, as almost any real sampling
    # schedule would be.
    scenario.bottleneck_fwd.add_egress_fault(
        PeriodicStallFault(period=STALL_PERIOD, stall=1.0, phase=30.0))
    scenario.start_traffic()
    return scenario


def methodology_comparison() -> FigureResult:
    result = FigureResult(
        "Baselines",
        "Dense probing vs grouped ICMP [19] vs interval sampling [6] on a "
        "path with a 90 s gateway stall")

    # NetDyn-style dense probing: 9 simulated minutes at delta = 100 ms.
    scenario = build_faulty_scenario(seed=31)
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.1, count=5400,
                                 start_at=10.0)
    try:
        period = periodic_spike_period(trace, threshold=0.8)
        dense_found = abs(period - STALL_PERIOD) < 10.0
        dense_report = f"period {period:.0f} s"
    except InsufficientDataError:
        dense_found, dense_report = False, "no spikes seen"
    result.add("dense probing finds the stall", "period ~90 s",
               dense_report, dense_found)

    # Mukherjee-style groups: 10 echoes per minute for 9 minutes.
    scenario = build_faulty_scenario(seed=32)
    grouped = grouped_ping(scenario.network, scenario.source, scenario.echo,
                           groups=9, group_size=10, packet_interval=1.0,
                           group_interval=60.0)
    means = grouped.group_means[~np.isnan(grouped.group_means)]
    touched = np.any(grouped.all_rtts[~np.isnan(grouped.all_rtts)] > 0.8)
    result.add("grouped ICMP sees elevated delays at best",
               "group averages smear the 1 s stall",
               f"{len(means)} group means, extreme echo seen: {touched}",
               True)

    # Merit-style interval sampling: one echo per 90+13 s.
    scenario = build_faulty_scenario(seed=33)
    merit = merit_sampling(scenario.network, scenario.source, scenario.echo,
                           intervals=9, interval=103.0)
    merit_extremes = np.nanmax(merit.samples) > 0.8 \
        if merit.availability() > 0 else False
    result.add("interval sampling blind to the stall",
               "samples almost surely miss 1 s windows",
               f"max sample {np.nanmax(merit.samples) * 1e3:.0f} ms",
               not merit_extremes)
    return result


def test_baseline_methods(benchmark):
    result = run_once(benchmark, methodology_comparison)
    record_result(benchmark, result)
