"""Ablation: probe traffic's share of the bottleneck vs loss correlation.

Section 5's summary claim: "the losses of probe packets are essentially
random as long as the probe traffic uses less than 10% of the available
capacity of the connection."  We sweep δ so the probe share of the 128 kb/s
bottleneck ranges from ~1% to ~56% and measure how far clp exceeds ulp.
"""

from conftest import record_result, run_once

from repro.analysis.loss import loss_stats
from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.figures import FigureResult
from repro.experiments.runner import run_experiment

PROBE_WIRE_BITS = 576.0
MU = 128e3


def probe_rate_sweep() -> FigureResult:
    result = FigureResult(
        "Ablation: probe rate",
        "Loss correlation vs probe share of bottleneck bandwidth")
    lines = [f"{'delta':>8} {'share':>7} {'ulp':>6} {'clp':>6} {'excess':>7}"]
    excess = {}
    for delta in (0.008, 0.02, 0.1, 0.5):
        share = PROBE_WIRE_BITS / delta / MU
        config = ExperimentConfig(
            delta=delta, seed=3,
            duration=default_duration(90.0 if delta < 0.1 else 240.0))
        stats = loss_stats(run_experiment(config))
        excess[delta] = stats.clp - stats.ulp
        lines.append(f"{delta * 1e3:6.0f}ms {share:7.1%} {stats.ulp:6.2f} "
                     f"{stats.clp:6.2f} {excess[delta]:+7.2f}")
    result.rendering = "\n".join(lines)

    result.add("high probe share -> correlated losses",
               "clp >> ulp at delta = 8 ms (56% share)",
               f"excess {excess[0.008]:+.2f}", excess[0.008] > 0.15)
    result.add("low probe share -> random losses",
               "clp ~ ulp below 10% share",
               f"excess at 100/500 ms: {excess[0.1]:+.2f}/{excess[0.5]:+.2f}",
               abs(excess[0.1]) < 0.15 and abs(excess[0.5]) < 0.15)
    result.add("monotone trend", "correlation decays with probe share",
               " > ".join(f"{excess[d]:+.2f}" for d in (0.008, 0.02, 0.5)),
               excess[0.008] > excess[0.02] > excess[0.5] - 0.05)
    return result


def test_ablation_probe_rate(benchmark):
    result = run_once(benchmark, probe_rate_sweep)
    record_result(benchmark, result)
