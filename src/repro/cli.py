"""Command-line entry points.

Installed as console scripts (see pyproject) and usable via ``python -m``:

* ``repro-experiment`` — run one probe experiment and print its analysis.
* ``repro-figures`` — regenerate any/all paper figures and tables.
* ``repro-traceroute`` — traceroute over a calibrated simulated topology.
* ``repro-echo`` — run a live UDP echo server (real sockets).
* ``repro-audit`` — static-analysis lint of the determinism/unit invariants.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.analysis.loss import loss_stats
from repro.analysis.phase import estimate_bottleneck_mu
from repro.analysis.timeseries import summarize
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import as_text, run_all
from repro.experiments.runner import build_scenario, run_experiment
from repro.tools.traceroute import format_route_table, traceroute
from repro.units import bps_to_kbps, ms, seconds_to_ms


def main_experiment(argv: Optional[Sequence[str]] = None) -> int:
    """Run one probe experiment and print delay/loss analysis."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Probe a simulated paper topology with NetDyn.")
    parser.add_argument("--delta-ms", type=float, default=50.0,
                        help="probe interval in milliseconds (default 50)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="probe-train length in seconds (default 120)")
    parser.add_argument("--scenario", choices=("inria-umd", "umd-pitt"),
                        default="inria-umd")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--save-trace", metavar="PATH",
                        help="write the trace as CSV")
    args = parser.parse_args(argv)

    config = ExperimentConfig(delta=ms(args.delta_ms),
                              duration=args.duration, seed=args.seed,
                              scenario=args.scenario)
    trace = run_experiment(config)
    stats = loss_stats(trace)
    delay = summarize(trace)
    print(f"probes sent: {len(trace)}  (delta = {args.delta_ms:g} ms)")
    print(f"delay ms: min {seconds_to_ms(delay.minimum):.1f}  "
          f"mean {seconds_to_ms(delay.mean):.1f}  "
          f"p99 {seconds_to_ms(delay.p99):.1f}  "
          f"max {seconds_to_ms(delay.maximum):.1f}")
    print(f"loss: ulp {stats.ulp:.3f}  clp {stats.clp:.3f}  "
          f"plg {stats.plg:.2f}")
    mu = estimate_bottleneck_mu(trace, mu_hint=float(
        trace.meta.get("mu_bps", 128e3)))
    if mu:
        print(f"bottleneck estimate: {bps_to_kbps(mu):.0f} kb/s")
    if args.save_trace:
        trace.save_csv(args.save_trace)
        print(f"trace written to {args.save_trace}")
    return 0


def main_figures(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate paper figures/tables and print the comparison report."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("names", nargs="*",
                        help=f"subset to run (default all): "
                             f"{', '.join(ALL_FIGURES)}")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--render", action="store_true",
                        help="print ASCII figures, not just comparisons")
    parser.add_argument("--export-dir", metavar="DIR",
                        help="write each figure's data as CSV into DIR")
    args = parser.parse_args(argv)

    unknown = [n for n in args.names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure names: {unknown}")
    results = run_all(only=args.names or None, seed=args.seed)
    print(as_text(results, renderings=args.render))
    if args.export_dir:
        from repro.experiments.report import export_results
        written = export_results(results, args.export_dir)
        print(f"\n{len(written)} data files written to {args.export_dir}")
    return 0 if all(r.all_ok for r in results) else 1


def main_traceroute(argv: Optional[Sequence[str]] = None) -> int:
    """traceroute across a calibrated simulated topology."""
    parser = argparse.ArgumentParser(
        prog="repro-traceroute",
        description="Run traceroute over a simulated paper topology.")
    parser.add_argument("--scenario", choices=("inria-umd", "umd-pitt"),
                        default="inria-umd")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    config = ExperimentConfig(delta=0.05, seed=args.seed,
                              scenario=args.scenario)
    scenario = build_scenario(config)
    hops = traceroute(scenario.network, scenario.source, scenario.echo)
    print(format_route_table(
        hops, title=f"traceroute {scenario.source} -> {scenario.echo}"))
    return 0


def main_echo(argv: Optional[Sequence[str]] = None) -> int:
    """Run a live NetDyn echo server on real UDP sockets."""
    parser = argparse.ArgumentParser(
        prog="repro-echo",
        description="Run a NetDyn-compatible UDP echo server.")
    parser.add_argument("--host", default="0.0.0.0")
    parser.add_argument("--port", type=int, default=5201)
    args = parser.parse_args(argv)

    async def serve() -> None:
        from repro.netdyn.live import serve_echo
        transport, _protocol = await serve_echo(args.host, args.port)
        print(f"echo server on {args.host}:{args.port} (ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            transport.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def main_audit(argv: Optional[Sequence[str]] = None) -> int:
    """Run the devtools static analyzer (see repro.devtools.audit)."""
    from repro.devtools.audit import main
    return main(argv)


if __name__ == "__main__":  # pragma: no cover - manual dispatch
    sys.exit(main_figures())
