"""Command-line entry points.

Installed as console scripts (see pyproject) and usable via ``python -m``:

* ``repro-experiment`` — run one probe experiment and print its analysis.
* ``repro-campaign`` — run a (δ × seed) campaign grid, optionally parallel.
* ``repro-figures`` — regenerate any/all paper figures and tables.
* ``repro-traceroute`` — traceroute over a calibrated simulated topology.
* ``repro-echo`` — run a live UDP echo server (real sockets).
* ``repro-audit`` — static-analysis lint of the determinism/unit invariants.
* ``repro-bench`` — run benchmark suites / compare two BENCH reports.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import TYPE_CHECKING, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs import Observability

from repro.analysis.loss import loss_stats
from repro.analysis.phase import estimate_bottleneck_mu
from repro.analysis.timeseries import summarize
from repro.experiments.cache import CampaignCache
from repro.experiments.campaign import CampaignSpec, run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import ALL_FIGURES
from repro.experiments.report import as_text, run_all
from repro.experiments.runner import (
    build_scenario,
    run_experiment,
    run_observed_experiment,
)
from repro.tools.traceroute import format_route_table, traceroute
from repro.units import bps_to_kbps, ms, seconds_to_ms


def main_experiment(argv: Optional[Sequence[str]] = None) -> int:
    """Run one probe experiment and print delay/loss analysis."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Probe a simulated paper topology with NetDyn.")
    parser.add_argument("--delta-ms", type=float, default=50.0,
                        help="probe interval in milliseconds (default 50)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="probe-train length in seconds (default 120)")
    parser.add_argument("--scenario", choices=("inria-umd", "umd-pitt"),
                        default="inria-umd")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--mode", choices=("event", "analytic"),
                        default="event",
                        help="execution mode: exact event simulation "
                             "(default) or the analytic bottleneck "
                             "fast-forward (falls back to event when the "
                             "scenario is not aggregatable)")
    parser.add_argument("--save-trace", metavar="PATH",
                        help="write the trace as CSV")
    parser.add_argument("--trace", metavar="FILE",
                        help="record kernel + packet-lifecycle tracing and "
                             "write it to FILE (.json = Chrome trace_event, "
                             "anything else = JSONL)")
    parser.add_argument("--trace-format", choices=("jsonl", "chrome"),
                        help="override the trace format inferred from the "
                             "--trace extension")
    parser.add_argument("--metrics", action="store_true",
                        help="print the metrics-registry snapshot after "
                             "the run")
    parser.add_argument("--manifest", metavar="PATH",
                        help="write a run manifest (config, seed, versions, "
                             "metrics) as JSON")
    args = parser.parse_args(argv)

    config = ExperimentConfig(delta=ms(args.delta_ms),
                              duration=args.duration, seed=args.seed,
                              scenario=args.scenario, mode=args.mode)
    observed = bool(args.trace or args.metrics or args.manifest)
    if observed and args.mode == "analytic":
        parser.error("--trace/--metrics/--manifest record event-kernel "
                     "activity; they cannot combine with --mode analytic")
    obs = None
    if observed:
        trace, _scenario, obs = run_observed_experiment(
            config, kernel_trace=bool(args.trace),
            lifecycle=bool(args.trace))
    else:
        trace = run_experiment(config)
    stats = loss_stats(trace)
    delay = summarize(trace)
    print(f"probes sent: {len(trace)}  (delta = {args.delta_ms:g} ms)")
    print(f"delay ms: min {seconds_to_ms(delay.minimum):.1f}  "
          f"mean {seconds_to_ms(delay.mean):.1f}  "
          f"p99 {seconds_to_ms(delay.p99):.1f}  "
          f"max {seconds_to_ms(delay.maximum):.1f}")
    print(f"loss: ulp {stats.ulp:.3f}  clp {stats.clp:.3f}  "
          f"plg {stats.plg:.2f}")
    mu = estimate_bottleneck_mu(trace, mu_hint=float(
        trace.meta.get("mu_bps", 128e3)))
    if mu:
        print(f"bottleneck estimate: {bps_to_kbps(mu):.0f} kb/s")
    if args.save_trace:
        trace.save_csv(args.save_trace)
        print(f"trace written to {args.save_trace}")
    if obs is not None:
        _emit_observability(args, config, obs)
    return 0


def _emit_observability(args: argparse.Namespace, config: ExperimentConfig,
                        obs: "Observability") -> None:
    """Write/print whatever --trace / --metrics / --manifest asked for."""
    from pathlib import Path

    from repro.obs import (
        write_chrome_trace,
        write_events_jsonl,
        write_hops_jsonl,
        write_manifest,
    )

    if args.trace:
        path = Path(args.trace)
        fmt = args.trace_format or (
            "chrome" if path.suffix == ".json" else "jsonl")
        assert obs.kernel is not None and obs.lifecycle is not None
        if fmt == "chrome":
            write_chrome_trace(path, events=obs.kernel.records,
                               hops=obs.lifecycle.records)
            print(f"chrome trace written to {path} "
                  f"({len(obs.kernel)} events, "
                  f"{len(obs.lifecycle.records)} hops)")
        else:
            write_events_jsonl(obs.kernel.records, path)
            hops_path = path.with_name(
                path.stem + "_hops" + (path.suffix or ".jsonl"))
            write_hops_jsonl(obs.lifecycle.records, hops_path)
            print(f"kernel trace written to {path} "
                  f"({len(obs.kernel)} events)")
            print(f"packet hops written to {hops_path} "
                  f"({len(obs.lifecycle.records)} hops)")
    if args.metrics:
        flat = obs.registry.flat_snapshot()
        shown = {name: value for name, value in flat.items() if value}
        print(f"\nmetrics ({len(shown)} non-zero of {len(flat)}):")
        for name in sorted(shown):
            value = shown[name]
            rendered = f"{value:.6g}" if isinstance(value, float) \
                else str(value)
            print(f"  {name} = {rendered}")
    if args.manifest:
        write_manifest(args.manifest, config=config, metrics=obs.snapshot())
        print(f"manifest written to {args.manifest}")


def main_campaign(argv: Optional[Sequence[str]] = None) -> int:
    """Run a (δ × seed) campaign grid and print its summary tables."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run a grid of probe experiments (δ × seed), "
                    "optionally fanned out over worker processes.  "
                    "Parallel and serial execution produce identical "
                    "results; only timing.json differs.")
    parser.add_argument("--deltas-ms", type=float, nargs="+",
                        default=[50.0], metavar="MS",
                        help="probe intervals in milliseconds "
                             "(default: 50)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1],
                        metavar="SEED",
                        help="seeds replicating each delta (default: 1)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="probe-train length per cell in seconds "
                             "(default 120)")
    parser.add_argument("--scenario", choices=("inria-umd", "umd-pitt"),
                        default="inria-umd")
    parser.add_argument("--mode", choices=("event", "analytic"),
                        default="event",
                        help="execution mode for every cell: exact event "
                             "simulation (default) or the analytic "
                             "bottleneck fast-forward.  The mode is part "
                             "of each cell's cache fingerprint")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the grid (default 1 = "
                             "serial)")
    parser.add_argument("--pool", choices=("warm", "spawn"), default="warm",
                        help="parallel executor when --workers > 1: 'warm' "
                             "(default) keeps salt-verified workers alive "
                             "and leases them batches of cells with "
                             "shared-memory trace hand-off; 'spawn' uses "
                             "cold per-cell spawn workers (maximal "
                             "isolation, highest dispatch overhead).  "
                             "Artifacts are byte-identical either way")
    parser.add_argument("--batch-size", type=int, default=None,
                        metavar="CELLS",
                        help="cells per lease for the warm pool (default: "
                             "auto-tuned from grid size, worker count, and "
                             "estimated cell cost)")
    parser.add_argument("--output-dir", metavar="DIR",
                        help="write per-cell trace CSVs, manifest.json, "
                             "and timing.json into DIR")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="content-addressed cell cache: cells already "
                             "cached here are loaded, not re-simulated; "
                             "fresh results are stored back (default: "
                             "$REPRO_CACHE_DIR when set, else no cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the cell cache even when --cache-dir "
                             "or $REPRO_CACHE_DIR is set")
    parser.add_argument("--refresh", action="store_true",
                        help="re-simulate every cell and overwrite its "
                             "cache entry (requires a cache directory)")
    parser.add_argument("--spans", nargs="?", const=True, default=None,
                        metavar="DIR",
                        help="record per-phase spans; merged spans.jsonl "
                             "and Chrome trace.json land in DIR (default: "
                             "OUTPUT_DIR/spans; requires --output-dir when "
                             "DIR is omitted).  Span timing goes to "
                             "timing.json only — deterministic artifacts "
                             "stay byte-identical")
    progress_group = parser.add_mutually_exclusive_group()
    progress_group.add_argument("--progress", action="store_true",
                                default=None,
                                help="force the live progress line on "
                                     "(default: on when stderr is a TTY)")
    progress_group.add_argument("--no-progress", dest="progress",
                                action="store_false",
                                help="disable the live progress line")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if args.batch_size is not None and args.batch_size < 1:
        parser.error(f"--batch-size must be >= 1, got {args.batch_size}")
    if args.spans is True and not args.output_dir:
        parser.error("--spans without a directory requires --output-dir")
    cache_dir = None if args.no_cache else (
        args.cache_dir or os.environ.get("REPRO_CACHE_DIR") or None)
    if args.refresh and cache_dir is None:
        parser.error("--refresh needs a cache directory "
                     "(--cache-dir or $REPRO_CACHE_DIR), and conflicts "
                     "with --no-cache")
    cache = CampaignCache(cache_dir, refresh=args.refresh) \
        if cache_dir else None

    spec = CampaignSpec(deltas=tuple(ms(d) for d in args.deltas_ms),
                        seeds=tuple(args.seeds), duration=args.duration,
                        scenario=args.scenario, output_dir=args.output_dir,
                        mode=args.mode)
    progress = {None: "auto", True: "on", False: "off"}[args.progress]
    result = run_campaign(spec, workers=args.workers, cache=cache,
                          spans=args.spans, progress=progress,
                          pool=args.pool, batch_size=args.batch_size)
    cells = len(spec.deltas) * len(spec.seeds)
    print(f"campaign: {len(spec.deltas)} deltas x {len(spec.seeds)} seeds "
          f"= {cells} cells ({args.workers} worker"
          f"{'s' if args.workers != 1 else ''}, "
          f"{sum(result.cell_wall_seconds.values()):.1f}s of cell work)")
    if result.cache_stats is not None:
        stats = result.cache_stats
        print(f"cache: {stats['hits']} hit"
              f"{'s' if stats['hits'] != 1 else ''}, "
              f"{stats['misses']} miss"
              f"{'es' if stats['misses'] != 1 else ''} "
              f"({stats['saved_cell_seconds']:.1f}s of cell work saved, "
              f"{stats['directory']})")
        if cache is not None:
            print(f"cache salt: {cache.salt} (derived from reachable "
                  f"code; see repro-audit fingerprint)")
    print()
    print(result.table())
    print()
    print(result.queue_table())
    if args.output_dir:
        print(f"\n{cells} trace CSVs + manifest.json + timing.json "
              f"written to {args.output_dir}")
    if args.spans is not None:
        from pathlib import Path

        from repro.obs.spans import CHROME_SPAN_FILE, MERGED_SPAN_FILE
        span_dir = Path(args.spans) if isinstance(args.spans, str) \
            else Path(args.output_dir) / "spans"
        print(f"spans written to {span_dir} "
              f"({MERGED_SPAN_FILE} + {CHROME_SPAN_FILE})")
    return 0


def main_figures(argv: Optional[Sequence[str]] = None) -> int:
    """Regenerate paper figures/tables and print the comparison report."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Reproduce the paper's tables and figures.")
    parser.add_argument("names", nargs="*",
                        help=f"subset to run (default all): "
                             f"{', '.join(ALL_FIGURES)}")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--render", action="store_true",
                        help="print ASCII figures, not just comparisons")
    parser.add_argument("--export-dir", metavar="DIR",
                        help="write each figure's data as CSV into DIR")
    args = parser.parse_args(argv)

    unknown = [n for n in args.names if n not in ALL_FIGURES]
    if unknown:
        parser.error(f"unknown figure names: {unknown}")
    results = run_all(only=args.names or None, seed=args.seed)
    print(as_text(results, renderings=args.render))
    if args.export_dir:
        from repro.experiments.report import export_results
        written = export_results(results, args.export_dir)
        print(f"\n{len(written)} data files written to {args.export_dir}")
    return 0 if all(r.all_ok for r in results) else 1


def main_traceroute(argv: Optional[Sequence[str]] = None) -> int:
    """traceroute across a calibrated simulated topology."""
    parser = argparse.ArgumentParser(
        prog="repro-traceroute",
        description="Run traceroute over a simulated paper topology.")
    parser.add_argument("--scenario", choices=("inria-umd", "umd-pitt"),
                        default="inria-umd")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    config = ExperimentConfig(delta=0.05, seed=args.seed,
                              scenario=args.scenario)
    scenario = build_scenario(config)
    hops = traceroute(scenario.network, scenario.source, scenario.echo)
    print(format_route_table(
        hops, title=f"traceroute {scenario.source} -> {scenario.echo}"))
    return 0


def main_echo(argv: Optional[Sequence[str]] = None) -> int:
    """Run a live NetDyn echo server on real UDP sockets."""
    parser = argparse.ArgumentParser(
        prog="repro-echo",
        description="Run a NetDyn-compatible UDP echo server.")
    parser.add_argument("--host", default="0.0.0.0")
    parser.add_argument("--port", type=int, default=5201)
    args = parser.parse_args(argv)

    async def serve() -> None:
        from repro.netdyn.live import serve_echo
        transport, _protocol = await serve_echo(args.host, args.port)
        print(f"echo server on {args.host}:{args.port} (ctrl-C to stop)")
        try:
            await asyncio.Event().wait()
        finally:
            transport.close()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass
    return 0


def main_audit(argv: Optional[Sequence[str]] = None) -> int:
    """Run the devtools static analyzer (see repro.devtools.audit)."""
    from repro.devtools.audit import main
    return main(argv)


def _discover_suites(benchmarks_dir: "Path") -> "dict":
    """Map suite name -> loaded module for every benchmark script.

    A benchmark script participates by defining module-level ``SUITE``
    (its name) and ``run_suite(quick=False)`` returning a report in the
    shared :mod:`repro.obs.bench` schema.  Scripts are loaded by path so
    ``benchmarks/`` needs no package machinery.
    """
    import importlib.util

    suites = {}
    for path in sorted(benchmarks_dir.glob("*.py")):
        if path.name.startswith("test_"):
            continue
        spec = importlib.util.spec_from_file_location(
            f"repro_bench_{path.stem}", path)
        if spec is None or spec.loader is None:  # pragma: no cover
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        suite = getattr(module, "SUITE", None)
        if suite and callable(getattr(module, "run_suite", None)):
            suites[suite] = module
    return suites


def main_bench(argv: Optional[Sequence[str]] = None) -> int:
    """Run benchmark suites or compare two BENCH reports."""
    from pathlib import Path

    from repro.errors import AnalysisError
    from repro.obs.bench import (
        DEFAULT_THRESHOLD,
        compare_reports,
        format_comparison,
        read_report,
        write_report,
    )

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run benchmark suites (writing schema-versioned "
                    "BENCH_<suite>.json reports) or compare two reports "
                    "for regressions.")
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run", help="run one or more benchmark suites")
    run_parser.add_argument("suites", nargs="*", metavar="SUITE",
                            help="suites to run (default: all discovered "
                                 "in the benchmarks directory)")
    run_parser.add_argument("--benchmarks-dir", default="benchmarks",
                            metavar="DIR",
                            help="directory holding the benchmark scripts "
                                 "(default: benchmarks)")
    run_parser.add_argument("--output-dir", metavar="DIR",
                            help="write BENCH_<suite>.json here "
                                 "(default: the benchmarks directory)")
    run_parser.add_argument("--quick", action="store_true",
                            help="shrink workloads for smoke testing; "
                                 "reports are marked mode=quick")

    compare_parser = sub.add_parser(
        "compare", help="compare two BENCH reports for regressions")
    compare_parser.add_argument("old", help="baseline BENCH_*.json")
    compare_parser.add_argument("new", help="candidate BENCH_*.json")
    compare_parser.add_argument("--threshold", type=float,
                                default=DEFAULT_THRESHOLD, metavar="FRAC",
                                help="relative worsening that counts as a "
                                     "regression (default: "
                                     f"{DEFAULT_THRESHOLD:g})")
    args = parser.parse_args(argv)

    if args.command == "run":
        benchmarks_dir = Path(args.benchmarks_dir)
        if not benchmarks_dir.is_dir():
            parser.error(f"not a directory: {benchmarks_dir}")
        suites = _discover_suites(benchmarks_dir)
        if not suites:
            parser.error(f"no benchmark suites found in {benchmarks_dir}")
        selected = args.suites or sorted(suites)
        unknown = [name for name in selected if name not in suites]
        if unknown:
            parser.error(f"unknown suites {unknown}; available: "
                         f"{', '.join(sorted(suites))}")
        output_dir = Path(args.output_dir) if args.output_dir \
            else benchmarks_dir
        output_dir.mkdir(parents=True, exist_ok=True)
        for name in selected:
            report = suites[name].run_suite(quick=args.quick)
            out = output_dir / f"BENCH_{name}.json"
            write_report(report, out)
            rendered = ", ".join(
                f"{metric_name}={entry['value']:g} {entry['unit']}"
                for metric_name, entry in sorted(
                    report["metrics"].items()))
            print(f"{name}: {rendered}")
            print(f"  written to {out}")
        return 0

    try:
        old = read_report(args.old)
        new = read_report(args.new)
        comparison = compare_reports(old, new, threshold=args.threshold)
    except (AnalysisError, OSError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return 2
    print(format_comparison(comparison))
    return 1 if comparison["regressions"] else 0


if __name__ == "__main__":  # pragma: no cover - manual dispatch
    sys.exit(main_figures())
