"""The INRIA -> University of Maryland path of Table 1 (July 1992).

The scenario reconstructs the paper's measurement path: a DECstation 5000
source at INRIA (3.906 ms clock), nine gateways, the 128 kb/s transatlantic
bottleneck between ``icm-sophia.icp.net`` and ``Ithaca.NY.NSS.NSF.NET``, and
an echo host at UMd.  Link propagation delays are set so the fixed round
trip D lands near the paper's 140 ms, and the bottleneck buffer holds K = 15
packets so the maximum queueing delay approaches the 620 ms maximum the
paper reports for the δ = 500 ms experiment.

Cross traffic (the "Internet stream") is attached at the two ends of the
transatlantic link in both directions, and the SURA segment carries the
random-drop interface fault reported in [17].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.faults import RandomDropFault
from repro.net.link import Interface
from repro.net.queue import MODE_PACKETS
from repro.net.routing import Network
from repro.net.clocks import DECSTATION_RESOLUTION, QuantizedClock
from repro.sim.kernel import Simulator
from repro.topology.builder import LinkSpec, build_path
from repro.traffic.mix import InternetMix, attach_internet_mix
from repro.units import kbps, mbps, ms

#: The ten route entries of Table 1 (the first is the source host).
TABLE1_ROUTE = (
    "tom.inria.fr",
    "t8-gw.inria.fr",
    "sophia-gw.atlantic.fr",
    "icm-sophia.icp.net",
    "Ithaca.NY.NSS.NSF.NET",
    "Ithaca1.NY.NSS.NSF.NET",
    "nss-SURA-eth.sura.net",
    "sura8-umd-c1.sura.net",
    "csc2hub-gw.umd.edu",
    "avwhub-gw.umd.edu",
)

#: Echo host beyond the last gateway (the paper does not name it).
ECHO_HOST = "mimsy.umd.edu"

#: Source host (first entry of Table 1).
SOURCE_HOST = TABLE1_ROUTE[0]

#: Bottleneck rate: the transatlantic link, 128 kb/s in July 1992.
BOTTLENECK_RATE_BPS = kbps(128)

#: Endpoints of the bottleneck link.
BOTTLENECK_A = "icm-sophia.icp.net"
BOTTLENECK_B = "Ithaca.NY.NSS.NSF.NET"

#: Bottleneck output buffer: K packets, as in the paper's Figure 3 model.
#: 15 full bulk packets (552 B wire) hold ~8.3 kB -> ~517 ms of queueing per
#: direction; with both directions loaded the observed maximum queueing
#: delay lands near the paper's 620 ms.
DEFAULT_BUFFER_PACKETS = 15

#: Random per-direction drop probability on the SURA segment [17].
DEFAULT_FAULT_DROP = 0.015


@dataclass
class InriaUmdScenario:
    """A built INRIA-UMd network with its traffic attached."""

    sim: Simulator
    network: Network
    source: str
    echo: str
    bottleneck_fwd: Interface
    bottleneck_rev: Interface
    mix_fwd: Optional[InternetMix]
    mix_rev: Optional[InternetMix]
    faults: list[RandomDropFault] = field(default_factory=list)

    def start_traffic(self, at: float = 0.0) -> None:
        """Start all cross-traffic sources."""
        if self.mix_fwd is not None:
            self.mix_fwd.start(at=at)
        if self.mix_rev is not None:
            self.mix_rev.start(at=at)

    @property
    def bottleneck_rate_bps(self) -> float:
        """Service rate μ of the bottleneck, bits per second."""
        return self.bottleneck_fwd.rate_bps


def build_inria_umd(seed: int = 0,
                    utilization_fwd: float = 0.72,
                    utilization_rev: float = 0.64,
                    bulk_fraction: float = 0.85,
                    buffer_packets: int = DEFAULT_BUFFER_PACKETS,
                    fault_drop_prob: float = DEFAULT_FAULT_DROP,
                    window: int = 3,
                    window_interval: float = 0.30,
                    mean_file_packets: float = 20.0,
                    quantized_clock: bool = True,
                    sim: Optional[Simulator] = None) -> InriaUmdScenario:
    """Build the calibrated INRIA-UMd scenario.

    Parameters
    ----------
    seed:
        Master random seed (ignored when an existing ``sim`` is passed).
    utilization_fwd, utilization_rev:
        Cross-traffic wire load on the transatlantic link, west-bound
        (France -> US, shared with outbound probes) and east-bound.
    bulk_fraction:
        Share of cross-traffic bits carried by 512-byte bulk packets.
    buffer_packets:
        Bottleneck output buffer size (both directions), in packets —
        the K of the paper's queueing model.
    fault_drop_prob:
        Per-direction random drop probability on the SURA segment; 0
        disables the fault.
    quantized_clock:
        Give the source host the DECstation's 3.906 ms clock.
    """
    sim = sim if sim is not None else Simulator(seed=seed)

    names = list(TABLE1_ROUTE) + [ECHO_HOST]
    ethernet = dict(rate_bps=mbps(10), queue_capacity=128)
    regional = dict(rate_bps=mbps(2), queue_capacity=128)
    t1 = dict(rate_bps=mbps(1.544), queue_capacity=128)
    links = [
        LinkSpec(prop_delay=ms(0.1), **ethernet),        # tom - t8-gw
        LinkSpec(prop_delay=ms(2.0), **regional),        # t8-gw - sophia-gw
        LinkSpec(prop_delay=ms(1.0), **regional),        # sophia-gw - icm
        LinkSpec(rate_bps=BOTTLENECK_RATE_BPS,           # transatlantic
                 prop_delay=ms(50.0),
                 queue_capacity=buffer_packets, queue_mode=MODE_PACKETS),
        LinkSpec(prop_delay=ms(0.5), **t1),              # Ithaca - Ithaca1
        LinkSpec(prop_delay=ms(5.0), **t1),              # Ithaca1 - SURA
        LinkSpec(prop_delay=ms(3.0), **t1),              # SURA - sura8-umd
        LinkSpec(prop_delay=ms(1.0), **t1),              # sura8 - csc2hub
        LinkSpec(prop_delay=ms(0.2), **ethernet),        # csc2hub - avwhub
        LinkSpec(prop_delay=ms(0.1), **ethernet),        # avwhub - mimsy
    ]
    network = build_path(sim, names, links,
                         host_names=[SOURCE_HOST, ECHO_HOST])
    if quantized_clock:
        network.host(SOURCE_HOST).clock = QuantizedClock(
            sim, DECSTATION_RESOLUTION)

    # Cross-traffic hosts hang off the bottleneck endpoints on fast links.
    for name, attach in (("cross-fr.icp.net", BOTTLENECK_A),
                         ("cross-us.nsf.net", BOTTLENECK_B)):
        network.add_host(name)
        network.link(name, attach, rate_bps=mbps(10), prop_delay=ms(0.1),
                     queue_capacity=256)
    network.compute_routes()

    mix_fwd = attach_internet_mix(
        network.host("cross-fr.icp.net"), network.host("cross-us.nsf.net"),
        link_rate_bps=BOTTLENECK_RATE_BPS, utilization=utilization_fwd,
        bulk_fraction=bulk_fraction, window=window,
        window_interval=window_interval,
        mean_file_packets=mean_file_packets,
        stream_prefix="mix.fwd") if utilization_fwd > 0 else None
    mix_rev = attach_internet_mix(
        network.host("cross-us.nsf.net"), network.host("cross-fr.icp.net"),
        link_rate_bps=BOTTLENECK_RATE_BPS, utilization=utilization_rev,
        bulk_fraction=bulk_fraction, window=window,
        window_interval=window_interval,
        mean_file_packets=mean_file_packets, base_port=9100,
        stream_prefix="mix.rev") if utilization_rev > 0 else None

    faults: list[RandomDropFault] = []
    if fault_drop_prob > 0:
        for a, b in (("nss-SURA-eth.sura.net", "sura8-umd-c1.sura.net"),
                     ("sura8-umd-c1.sura.net", "nss-SURA-eth.sura.net")):
            fault = RandomDropFault(fault_drop_prob,
                                    sim.streams.get(f"fault.{a}"))
            network.interface(a, b).add_egress_fault(fault)
            faults.append(fault)

    return InriaUmdScenario(
        sim=sim, network=network, source=SOURCE_HOST, echo=ECHO_HOST,
        bottleneck_fwd=network.interface(BOTTLENECK_A, BOTTLENECK_B),
        bottleneck_rev=network.interface(BOTTLENECK_B, BOTTLENECK_A),
        mix_fwd=mix_fwd, mix_rev=mix_rev, faults=faults)
