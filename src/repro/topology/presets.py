"""Small generic topologies for tests, examples, and model validation.

:func:`build_single_bottleneck` is the minimal physical realization of the
paper's Figure 3 model: source — router — (bottleneck) — router — echo, with
optional cross-traffic hosts at the bottleneck ends.  The queueing-model
benchmarks compare this network against the analytic recursion directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import Interface
from repro.net.queue import MODE_BYTES
from repro.net.routing import Network
from repro.sim.kernel import Simulator
from repro.topology.builder import LinkSpec, build_path
from repro.units import kbps, mbps, ms

#: Node names of the single-bottleneck path.
SB_SOURCE = "src"
SB_LEFT = "r-left"
SB_RIGHT = "r-right"
SB_ECHO = "echo"


@dataclass
class SingleBottleneck:
    """A built single-bottleneck network and its key handles."""

    sim: Simulator
    network: Network
    source: str
    echo: str
    bottleneck_fwd: Interface
    bottleneck_rev: Interface
    cross_sender: Optional[str]
    cross_receiver: Optional[str]


def build_single_bottleneck(seed: int = 0,
                            rate_bps: float = kbps(128),
                            prop_delay: float = ms(50),
                            buffer_capacity: int = 10_000,
                            buffer_mode: str = MODE_BYTES,
                            access_rate_bps: float = mbps(10),
                            access_delay: float = ms(0.1),
                            with_cross_hosts: bool = True,
                            sim: Optional[Simulator] = None,
                            ) -> SingleBottleneck:
    """Build ``src — r-left ==bottleneck== r-right — echo``.

    The bottleneck link carries ``prop_delay`` propagation each way and the
    finite buffer under test; access links are fast and lightly buffered.
    When ``with_cross_hosts`` is set, hosts ``cross-l`` / ``cross-r`` hang
    off the two routers for attaching cross traffic in either direction.
    """
    sim = sim if sim is not None else Simulator(seed=seed)
    names = [SB_SOURCE, SB_LEFT, SB_RIGHT, SB_ECHO]
    links = [
        LinkSpec(rate_bps=access_rate_bps, prop_delay=access_delay,
                 queue_capacity=256),
        LinkSpec(rate_bps=rate_bps, prop_delay=prop_delay,
                 queue_capacity=buffer_capacity, queue_mode=buffer_mode),
        LinkSpec(rate_bps=access_rate_bps, prop_delay=access_delay,
                 queue_capacity=256),
    ]
    network = build_path(sim, names, links, host_names=[SB_SOURCE, SB_ECHO])

    cross_sender = cross_receiver = None
    if with_cross_hosts:
        cross_sender, cross_receiver = "cross-l", "cross-r"
        for name, attach in ((cross_sender, SB_LEFT),
                             (cross_receiver, SB_RIGHT)):
            network.add_host(name)
            network.link(name, attach, rate_bps=access_rate_bps,
                         prop_delay=access_delay, queue_capacity=256)
        network.compute_routes()

    return SingleBottleneck(
        sim=sim, network=network, source=SB_SOURCE, echo=SB_ECHO,
        bottleneck_fwd=network.interface(SB_LEFT, SB_RIGHT),
        bottleneck_rev=network.interface(SB_RIGHT, SB_LEFT),
        cross_sender=cross_sender, cross_receiver=cross_receiver)
