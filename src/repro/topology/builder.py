"""Declarative construction of linear (path) topologies.

The paper's connections are single stable routes (Tables 1 and 2), i.e.
linear chains of routers between two end hosts.  :func:`build_path` turns a
list of :class:`LinkSpec` into such a chain on a fresh
:class:`~repro.net.routing.Network`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.net.queue import MODE_PACKETS
from repro.net.routing import Network
from repro.net.clocks import Clock
from repro.sim.kernel import Simulator


@dataclass
class LinkSpec:
    """Parameters of one bidirectional link in a path.

    ``rate_bps``/``prop_delay`` apply to both directions unless the ``_ba``
    overrides are given (direction ``ba`` is right-to-left in the path).
    """

    rate_bps: float
    prop_delay: float
    queue_capacity: int = 64
    queue_mode: str = MODE_PACKETS
    rate_bps_ba: Optional[float] = None
    prop_delay_ba: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError(
                f"link rate must be positive, got {self.rate_bps}")
        if self.prop_delay < 0:
            raise ConfigurationError(
                f"propagation delay must be >= 0, got {self.prop_delay}")


def build_path(sim: Simulator, names: Sequence[str],
               links: Sequence[LinkSpec],
               host_names: Sequence[str] = (),
               clocks: Optional[dict[str, Clock]] = None,
               processing_delay: float = 0.0) -> Network:
    """Build a chain ``names[0] — names[1] — ... — names[-1]``.

    Parameters
    ----------
    names:
        Node names in path order.
    links:
        One :class:`LinkSpec` per adjacent pair (``len(names) - 1``).
    host_names:
        Which of ``names`` are end hosts (get a UDP stack); all others are
        routers.  Extra hosts can be attached afterwards via
        ``network.add_host`` + ``network.link``.
    clocks:
        Optional per-host clock models, keyed by host name.
    processing_delay:
        Per-packet forwarding latency applied at every router.
    """
    if len(links) != len(names) - 1:
        raise ConfigurationError(
            f"need {len(names) - 1} link specs for {len(names)} nodes, "
            f"got {len(links)}")
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate node names in {names!r}")
    clocks = clocks or {}
    hosts = set(host_names)
    unknown = hosts - set(names)
    if unknown:
        raise ConfigurationError(f"host names not in path: {sorted(unknown)}")

    network = Network(sim)
    for name in names:
        if name in hosts:
            network.add_host(name, clock=clocks.get(name))
        else:
            network.add_router(name, processing_delay=processing_delay)

    for (a, b), spec in zip(zip(names, names[1:]), links):
        network.link(a, b, rate_bps=spec.rate_bps,
                     prop_delay=spec.prop_delay,
                     queue_capacity=spec.queue_capacity,
                     queue_mode=spec.queue_mode,
                     rate_bps_ba=spec.rate_bps_ba,
                     prop_delay_ba=spec.prop_delay_ba)
    network.compute_routes()
    return network
