"""Calibrated topologies: the paper's Table 1 / Table 2 paths and presets."""

from repro.topology.builder import LinkSpec, build_path
from repro.topology.inria_umd import (
    BOTTLENECK_RATE_BPS as INRIA_UMD_BOTTLENECK_BPS,
    InriaUmdScenario,
    TABLE1_ROUTE,
    build_inria_umd,
)
from repro.topology.nsfnet import (
    NSFNET_LINKS,
    NSFNET_SITES,
    NsfnetScenario,
    build_nsfnet,
)
from repro.topology.presets import SingleBottleneck, build_single_bottleneck
from repro.topology.umd_pitt import (
    TABLE2_ROUTE,
    UmdPittScenario,
    build_umd_pitt,
)

__all__ = [
    "LinkSpec",
    "build_path",
    "InriaUmdScenario",
    "build_inria_umd",
    "TABLE1_ROUTE",
    "INRIA_UMD_BOTTLENECK_BPS",
    "UmdPittScenario",
    "build_umd_pitt",
    "TABLE2_ROUTE",
    "SingleBottleneck",
    "build_single_bottleneck",
    "NsfnetScenario",
    "build_nsfnet",
    "NSFNET_SITES",
    "NSFNET_LINKS",
]
