"""A mesh topology: the T1 NSFNET backbone (circa 1991).

The paper's paths cross the NSFNET backbone (Table 1 transits the Ithaca
NSS).  The linear paths of :mod:`repro.topology.inria_umd` are enough for
the paper's experiments, but a mesh exercises the routing substrate
properly (shortest-path selection, alternate routes for flap experiments)
and gives the examples a realistic wide-area playground.

The node set and links follow the standard 13-node T1 NSFNET backbone map
used throughout the literature (e.g. the MaRS routing studies [25] the
paper cites).  Link propagation delays approximate great-circle distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.routing import Network
from repro.sim import Simulator
from repro.units import mbps, ms

#: The 13 NSS sites of the T1 backbone.
NSFNET_SITES = (
    "Seattle", "PaloAlto", "SanDiego", "SaltLakeCity", "Boulder",
    "Lincoln", "Houston", "Urbana", "AnnArbor", "Pittsburgh",
    "Ithaca", "CollegePark", "Princeton",
)

#: Backbone links with approximate one-way propagation delays (ms).
NSFNET_LINKS = (
    ("Seattle", "PaloAlto", 5.4),
    ("Seattle", "SaltLakeCity", 5.6),
    ("PaloAlto", "SanDiego", 3.7),
    ("PaloAlto", "SaltLakeCity", 4.7),
    ("SanDiego", "Houston", 9.5),
    ("SaltLakeCity", "Boulder", 3.2),
    ("Boulder", "Lincoln", 3.9),
    ("Boulder", "Houston", 6.5),
    ("Lincoln", "Urbana", 4.0),
    ("Houston", "CollegePark", 9.8),
    ("Urbana", "AnnArbor", 2.6),
    ("Urbana", "Pittsburgh", 3.8),
    ("AnnArbor", "Ithaca", 3.3),
    ("Pittsburgh", "Princeton", 2.8),
    ("Pittsburgh", "Ithaca", 2.3),
    ("Ithaca", "CollegePark", 2.7),
    ("CollegePark", "Princeton", 1.7),
)

#: T1 trunk rate.
T1_RATE_BPS = mbps(1.544)


@dataclass
class NsfnetScenario:
    """The built backbone plus one access host per site."""

    sim: Simulator
    network: Network

    def host_at(self, site: str) -> str:
        """Name of the access host attached to ``site``."""
        return f"host.{site}"


def build_nsfnet(seed: int = 0, queue_capacity: int = 64,
                 access_rate_bps: float = mbps(10),
                 sim: Optional[Simulator] = None) -> NsfnetScenario:
    """Build the 13-node T1 backbone with one end host per site.

    Every site gets an access host ``host.<Site>`` on a 10 Mb/s LAN, so
    probes and traffic can run between any pair of cities.
    """
    sim = sim if sim is not None else Simulator(seed=seed)
    network = Network(sim)
    for site in NSFNET_SITES:
        network.add_router(site)
    for a, b, delay_ms in NSFNET_LINKS:
        network.link(a, b, rate_bps=T1_RATE_BPS, prop_delay=ms(delay_ms),
                     queue_capacity=queue_capacity)
    for site in NSFNET_SITES:
        host = f"host.{site}"
        network.add_host(host)
        network.link(host, site, rate_bps=access_rate_bps,
                     prop_delay=ms(0.1), queue_capacity=128)
    network.compute_routes()
    return NsfnetScenario(sim=sim, network=network)
