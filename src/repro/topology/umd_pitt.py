"""The University of Maryland -> University of Pittsburgh path of Table 2.

In May 1993 this path ran over the T3 (45 Mb/s) ANSnet backbone; the paper
notes the bottleneck is unclear but "very likely ... much higher than the
128 kb/s" of the INRIA-UMd path.  We model the campus Ethernets (10 Mb/s) as
the narrowest links, so ``P/μ`` is tens of microseconds: the compression
line of the phase plot sits at ``rtt_{n+1} ≈ rtt_n − δ``, as Figure 5 shows.
The UMd source host clock is quantized to 3 ms, which produces the regular
banding the paper points out in Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.link import Interface
from repro.net.queue import MODE_BYTES
from repro.net.routing import Network
from repro.net.clocks import QuantizedClock, UMD_RESOLUTION
from repro.sim.kernel import Simulator
from repro.topology.builder import LinkSpec, build_path
from repro.traffic.mix import InternetMix, attach_internet_mix
from repro.units import mbps, ms

#: The fourteen route entries of Table 2 (the first is the source host).
TABLE2_ROUTE = (
    "lena.cs.umd.edu",
    "avw1hub-gw.umd.edu",
    "csc2hub-gw.umd.edu",
    "192.221.38.5",
    "en-0.enss136.t3.nsf.net",
    "t3-1.Washington-DC-cnss58.t3.ans.net",
    "t3-3.Washington-DC-cnss56.t3.ans.net",
    "t3-0.New-York-cnss32.t3.ans.net",
    "t3-1.Cleveland-cnss40.t3.ans.net",
    "t3-0.Cleveland-cnss41.t3.ans.net",
    "t3-0.enss132.t3.ans.net",
    "externals.gw.pitt.edu",
    "136.142.2.54",
    "hub-eh.gw.pitt.edu",
)

#: Echo host beyond the last gateway.
ECHO_HOST = "unix.cis.pitt.edu"

#: Source host (first entry of Table 2).
SOURCE_HOST = TABLE2_ROUTE[0]

#: The narrowest link we model: the Pitt campus Ethernet.
BOTTLENECK_RATE_BPS = mbps(10)
BOTTLENECK_A = "externals.gw.pitt.edu"
BOTTLENECK_B = "136.142.2.54"


@dataclass
class UmdPittScenario:
    """A built UMd-Pitt network with its traffic attached."""

    sim: Simulator
    network: Network
    source: str
    echo: str
    bottleneck_fwd: Interface
    bottleneck_rev: Interface
    mix_fwd: Optional[InternetMix]
    mix_rev: Optional[InternetMix]

    def start_traffic(self, at: float = 0.0) -> None:
        """Start all cross-traffic sources."""
        if self.mix_fwd is not None:
            self.mix_fwd.start(at=at)
        if self.mix_rev is not None:
            self.mix_rev.start(at=at)

    @property
    def bottleneck_rate_bps(self) -> float:
        """Rate of the narrowest modeled link."""
        return self.bottleneck_fwd.rate_bps


def build_umd_pitt(seed: int = 0,
                   utilization_fwd: float = 0.55,
                   utilization_rev: float = 0.45,
                   bulk_fraction: float = 0.85,
                   buffer_bytes: int = 30_000,
                   quantized_clock: bool = True,
                   sim: Optional[Simulator] = None) -> UmdPittScenario:
    """Build the calibrated UMd-Pitt scenario (May 1993, T3 backbone)."""
    sim = sim if sim is not None else Simulator(seed=seed)

    names = list(TABLE2_ROUTE) + [ECHO_HOST]
    ethernet = dict(rate_bps=mbps(10), queue_capacity=128)
    t3 = dict(rate_bps=mbps(45), queue_capacity=512)
    links = [
        LinkSpec(prop_delay=ms(0.1), **ethernet),   # lena - avw1hub
        LinkSpec(prop_delay=ms(0.1), **ethernet),   # avw1hub - csc2hub
        LinkSpec(prop_delay=ms(0.2), **ethernet),   # csc2hub - 192.221.38.5
        LinkSpec(prop_delay=ms(0.5), **t3),         # - enss136
        LinkSpec(prop_delay=ms(1.0), **t3),         # - DC cnss58
        LinkSpec(prop_delay=ms(0.2), **t3),         # - DC cnss56
        LinkSpec(prop_delay=ms(2.0), **t3),         # - NY cnss32
        LinkSpec(prop_delay=ms(3.5), **t3),         # - Cleveland cnss40
        LinkSpec(prop_delay=ms(0.2), **t3),         # - Cleveland cnss41
        LinkSpec(prop_delay=ms(1.0), **t3),         # - enss132
        LinkSpec(prop_delay=ms(0.8), **ethernet),   # - externals.gw.pitt
        LinkSpec(rate_bps=mbps(10), prop_delay=ms(0.2),  # campus bottleneck
                 queue_capacity=buffer_bytes, queue_mode=MODE_BYTES),
        LinkSpec(prop_delay=ms(0.1), **ethernet),   # - hub-eh.gw.pitt
        LinkSpec(prop_delay=ms(0.1), **ethernet),   # - echo host
    ]
    network = build_path(sim, names, links,
                         host_names=[SOURCE_HOST, ECHO_HOST])
    if quantized_clock:
        network.host(SOURCE_HOST).clock = QuantizedClock(sim, UMD_RESOLUTION)

    for name, attach in (("cross-a.pitt.edu", BOTTLENECK_A),
                         ("cross-b.pitt.edu", BOTTLENECK_B)):
        network.add_host(name)
        network.link(name, attach, rate_bps=mbps(100), prop_delay=ms(0.05),
                     queue_capacity=512)
    network.compute_routes()

    mix_fwd = attach_internet_mix(
        network.host("cross-a.pitt.edu"), network.host("cross-b.pitt.edu"),
        link_rate_bps=BOTTLENECK_RATE_BPS, utilization=utilization_fwd,
        bulk_fraction=bulk_fraction, window=6, window_interval=0.05,
        mean_file_packets=40.0,
        stream_prefix="mix.fwd") if utilization_fwd > 0 else None
    mix_rev = attach_internet_mix(
        network.host("cross-b.pitt.edu"), network.host("cross-a.pitt.edu"),
        link_rate_bps=BOTTLENECK_RATE_BPS, utilization=utilization_rev,
        bulk_fraction=bulk_fraction, window=6, window_interval=0.05,
        mean_file_packets=40.0, base_port=9100,
        stream_prefix="mix.rev") if utilization_rev > 0 else None

    return UmdPittScenario(
        sim=sim, network=network, source=SOURCE_HOST, echo=ECHO_HOST,
        bottleneck_fwd=network.interface(BOTTLENECK_A, BOTTLENECK_B),
        bottleneck_rev=network.interface(BOTTLENECK_B, BOTTLENECK_A),
        mix_fwd=mix_fwd, mix_rev=mix_rev)
