"""Unit helpers and physical constants used throughout the library.

Internally the library uses SI base units everywhere: **seconds** for time,
**bits** for data volume, and **bits per second** for rates.  These helpers
exist so call sites can state their intent (``ms(50)`` rather than ``0.050``)
and so magic conversion factors appear exactly once.
"""

from __future__ import annotations

#: Bits per byte (octet).
BITS_PER_BYTE = 8

#: Speed of light in fiber, m/s (refraction index ~1.468).
FIBER_LIGHT_SPEED_M_PER_S = 2.0e8


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def seconds_to_ms(value: float) -> float:
    """Convert seconds to milliseconds."""
    return value * 1e3


def seconds_to_us(value: float) -> float:
    """Convert seconds to microseconds."""
    return value * 1e6


def kbps(value: float) -> float:
    """Convert kilobits per second to bits per second."""
    return value * 1e3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * 1e6


def bps_to_kbps(value: float) -> float:
    """Convert bits per second to kilobits per second."""
    return value / 1e3


def bps_to_mbps(value: float) -> float:
    """Convert bits per second to megabits per second."""
    return value / 1e6


def bytes_to_bits(value: float) -> float:
    """Convert bytes to bits."""
    return value * BITS_PER_BYTE

def bits_to_bytes(value: float) -> float:
    """Convert bits to bytes."""
    return value / BITS_PER_BYTE


def transmission_delay(size_bytes: float, rate_bps: float) -> float:
    """Time in seconds to serialize ``size_bytes`` onto a ``rate_bps`` link.

    >>> transmission_delay(72, 128_000)  # one Bolot probe on the bottleneck
    0.0045
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps}")
    return bytes_to_bits(size_bytes) / rate_bps


def propagation_delay(distance_m: float,
                      speed_m_per_s: float = FIBER_LIGHT_SPEED_M_PER_S) -> float:
    """Propagation delay in seconds over ``distance_m`` meters of fiber."""
    if speed_m_per_s <= 0:
        raise ValueError(f"signal speed must be positive, got {speed_m_per_s}")
    return distance_m / speed_m_per_s
