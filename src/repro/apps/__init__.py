"""Application-level consumers of the measurements (Section 5).

:mod:`~repro.apps.fec` implements the open-loop loss-repair schemes the
paper recommends for audio/video; :mod:`~repro.apps.playout` sizes and
simulates playback buffers against measured delay distributions.
"""

from repro.apps.fec import (
    RepairReport,
    evaluate_repair,
    interleaved_xor_fec,
    repeat_last,
    xor_fec,
)
from repro.apps.playout import (
    AdaptivePlayout,
    PlayoutReport,
    fixed_playout,
    playout_delay_for_loss,
)

__all__ = [
    "RepairReport",
    "evaluate_repair",
    "repeat_last",
    "xor_fec",
    "interleaved_xor_fec",
    "AdaptivePlayout",
    "PlayoutReport",
    "fixed_playout",
    "playout_delay_for_loss",
]
