"""Playback (playout) buffer simulation for packet audio.

Section 5 and the cited NeVoT work [24] motivate the delay analysis with
playback buffering: an audio receiver schedules each packet's playout at
``send_time + playout_delay``; packets arriving later than their deadline
are as good as lost.  The "shape of the delay distribution is crucial for
the proper sizing of playback buffers".

Two policies are provided:

* :func:`fixed_playout` — one playout delay for the whole session;
* :class:`AdaptivePlayout` — the classic exponentially-smoothed
  mean + k·deviation estimator adjusting between talkspurts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace


@dataclass
class PlayoutReport:
    """Outcome of playing one trace through a playout policy."""

    #: Fraction of packets that never arrived (network loss).
    network_loss: float
    #: Fraction of packets that arrived after their deadline.
    late_loss: float
    #: Mean buffering delay of on-time packets, seconds.
    mean_buffering: float
    #: The playout delay(s) used, seconds (mean for adaptive).
    playout_delay: float

    @property
    def total_loss(self) -> float:
        """Network loss plus late loss: what the codec must conceal."""
        return self.network_loss + self.late_loss


def _arrival_delays(trace: ProbeTrace) -> np.ndarray:
    """One-way-ish delays: rtts stand in for delivery delays (NaN = lost)."""
    return np.where(trace.received, trace.rtts, np.nan)


def fixed_playout(trace: ProbeTrace, playout_delay: float) -> PlayoutReport:
    """Play the trace with a constant playout delay."""
    if playout_delay <= 0:
        raise ConfigurationError(
            f"playout delay must be positive, got {playout_delay}")
    delays = _arrival_delays(trace)
    received = ~np.isnan(delays)
    if not received.any():
        raise InsufficientDataError("no received packets")
    on_time = received & (delays <= playout_delay)
    late = received & ~on_time
    buffering = playout_delay - delays[on_time]
    return PlayoutReport(
        network_loss=float(np.mean(~received)),
        late_loss=float(np.mean(late)),
        mean_buffering=float(buffering.mean()) if buffering.size else 0.0,
        playout_delay=playout_delay)


class AdaptivePlayout:
    """Exponentially-smoothed playout estimation (Ramjee et al. style).

    Tracks ``d_hat`` (smoothed delay) and ``v_hat`` (smoothed deviation)
    over arrivals; the playout delay applied to each packet is
    ``d_hat + safety * v_hat`` as of the previous packet (adaptation
    between packets stands in for between-talkspurt adaptation).
    """

    def __init__(self, alpha: float = 0.998, safety: float = 4.0) -> None:
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if safety < 0:
            raise ConfigurationError(f"safety must be >= 0, got {safety}")
        self.alpha = alpha
        self.safety = safety

    def play(self, trace: ProbeTrace) -> PlayoutReport:
        """Run the adaptive policy over a trace."""
        delays = _arrival_delays(trace)
        received = ~np.isnan(delays)
        if not received.any():
            raise InsufficientDataError("no received packets")
        first = float(delays[received][0])
        d_hat, v_hat = first, first / 2.0
        on_time = 0
        late = 0
        buffering_total = 0.0
        playout_total = 0.0
        playouts = 0
        for delay in delays:
            deadline = d_hat + self.safety * v_hat
            playout_total += deadline
            playouts += 1
            if np.isnan(delay):
                continue
            if delay <= deadline:
                on_time += 1
                buffering_total += deadline - delay
            else:
                late += 1
            v_hat = (self.alpha * v_hat
                     + (1.0 - self.alpha) * abs(delay - d_hat))
            d_hat = self.alpha * d_hat + (1.0 - self.alpha) * delay
        total = len(delays)
        return PlayoutReport(
            network_loss=float(np.mean(~received)),
            late_loss=late / total,
            mean_buffering=buffering_total / on_time if on_time else 0.0,
            playout_delay=playout_total / playouts)


def playout_delay_for_loss(trace: ProbeTrace,
                           target_late_loss: float) -> float:
    """Smallest fixed playout delay keeping late loss <= target.

    This is the paper's "proper sizing of playback buffers" question,
    answered empirically from the measured delay distribution.
    """
    if not 0.0 < target_late_loss < 1.0:
        raise ConfigurationError(
            f"target must be in (0, 1), got {target_late_loss}")
    delays = _arrival_delays(trace)
    received = delays[~np.isnan(delays)]
    if received.size == 0:
        raise InsufficientDataError("no received packets")
    # Late loss is measured over all packets, so the quantile must be
    # taken among received packets adjusted for the loss fraction.
    allowed_late = target_late_loss * delays.size
    if allowed_late >= received.size:
        return float(received.min())
    quantile = 1.0 - allowed_late / received.size
    return float(np.quantile(received, quantile))
