"""Open-loop loss repair for real-time media (Section 5's application).

The paper's punchline for audio/video designers: because the probe loss gap
stays near 1 (isolated losses), *open-loop* error control — forward error
correction, or simply repeating the previous packet — can reconstruct most
lost packets without retransmission delays.  This module implements the
schemes the paper discusses so traces can be evaluated directly:

* :func:`repeat_last` — conceal a loss with the previous packet's audio
  (the "if FEC is deemed too expensive" fallback);
* :func:`xor_fec` — one XOR parity packet per group of k data packets,
  recovering any single loss per group (the [23]-style scheme);
* :func:`interleaved_xor_fec` — the same parity, but over interleaved
  groups, trading latency for burst resistance (the natural extension once
  losses are *not* isolated).

All evaluators consume a loss indicator sequence (``trace.lost``) and
return the residual loss fraction after repair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.netdyn.trace import ProbeTrace


def _as_loss_array(lost) -> np.ndarray:
    arr = np.asarray(lost, dtype=bool)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError("need a 1-D, non-empty loss sequence")
    return arr


def repeat_last(lost) -> float:
    """Residual loss when a lost packet is replaced by its predecessor.

    A packet is unrecoverable when it *and* its predecessor were lost
    (and the very first packet, if lost, has no predecessor).
    """
    arr = _as_loss_array(lost)
    unrecoverable = int((arr[1:] & arr[:-1]).sum())
    if arr[0]:
        unrecoverable += 1
    return unrecoverable / arr.size


def xor_fec(lost, group: int, parity_lost=None) -> float:
    """Residual loss with one XOR parity per ``group`` data packets.

    A group survives any single data loss provided its parity packet
    arrived.  ``parity_lost`` gives the parity packets' own loss
    indicators (one per group); by default parities are assumed to share
    the data packets' fate distribution by reusing the group's first
    indicator shifted by one group (an unbiased stand-in when evaluating
    a trace that did not actually carry parities).
    """
    if group < 2:
        raise ConfigurationError(f"group must be >= 2, got {group}")
    arr = _as_loss_array(lost)
    groups = arr.size // group
    if groups == 0:
        raise ConfigurationError(
            f"sequence of {arr.size} shorter than one group of {group}")
    data = arr[:groups * group].reshape(groups, group)
    if parity_lost is None:
        shifted = np.roll(arr, -group)
        parity = shifted[:groups * group:group]
    else:
        parity = np.asarray(parity_lost, dtype=bool)
        if parity.size < groups:
            raise ConfigurationError(
                f"need {groups} parity indicators, got {parity.size}")
        parity = parity[:groups]
    losses_per_group = data.sum(axis=1)
    repaired = (losses_per_group == 1) & ~parity
    residual = np.where(repaired, 0, losses_per_group).sum()
    return float(residual) / (groups * group)


def interleaved_xor_fec(lost, group: int, depth: int) -> float:
    """XOR FEC over ``depth``-way interleaved groups.

    Packet ``i`` belongs to interleave lane ``i % depth``; each lane runs
    :func:`xor_fec` independently.  A burst of up to ``depth`` consecutive
    losses lands one loss in each lane, so it remains repairable — at the
    cost of ``group * depth`` packets of buffering latency.
    """
    if depth < 1:
        raise ConfigurationError(f"depth must be >= 1, got {depth}")
    arr = _as_loss_array(lost)
    residual_losses = 0.0
    counted = 0
    for lane in range(depth):
        lane_losses = arr[lane::depth]
        groups = lane_losses.size // group
        if groups == 0:
            continue
        usable = groups * group
        residual_losses += xor_fec(lane_losses[:usable], group) * usable
        counted += usable
    if counted == 0:
        raise ConfigurationError("sequence too short for this interleaving")
    return residual_losses / counted


@dataclass
class RepairReport:
    """Residual loss of each scheme on one trace."""

    raw_loss: float
    repeat_last: float
    xor_fec: float
    interleaved: float
    group: int
    depth: int

    def best_scheme(self) -> str:
        """Name of the scheme with the lowest residual loss."""
        candidates = {
            "repeat-last": self.repeat_last,
            f"xor-fec({self.group})": self.xor_fec,
            f"interleaved({self.group}x{self.depth})": self.interleaved,
        }
        return min(candidates, key=candidates.get)


def evaluate_repair(trace: ProbeTrace, group: int = 4,
                    depth: int = 4) -> RepairReport:
    """Run every repair scheme against a trace's loss pattern."""
    lost = trace.lost
    return RepairReport(
        raw_loss=trace.loss_fraction,
        repeat_last=repeat_last(lost),
        xor_fec=xor_fec(lost, group=group),
        interleaved=interleaved_xor_fec(lost, group=group, depth=depth),
        group=group, depth=depth)
