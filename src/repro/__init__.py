"""repro: reproduction of Bolot, *End-to-End Packet Delay and Loss Behavior
in the Internet* (SIGCOMM 1993).

The library has three layers:

1. **Substrate** — a deterministic discrete-event network simulator
   (:mod:`repro.sim`, :mod:`repro.net`), calibrated topologies of the
   paper's two measurement paths (:mod:`repro.topology`), and the traffic
   generators standing in for 1992 Internet cross traffic
   (:mod:`repro.traffic`).
2. **Measurement** — the NetDyn UDP probe tool (:mod:`repro.netdyn`),
   usable against the simulator or (via asyncio) against real networks,
   plus in-simulator ping/traceroute (:mod:`repro.tools`) and the
   prior-art baselines (:mod:`repro.baselines`).
3. **Analysis** — phase plots, Lindley/workload estimation, loss
   statistics, delay-model fitting (:mod:`repro.analysis`), the analytic
   queueing models (:mod:`repro.queueing`), and the per-figure experiment
   drivers (:mod:`repro.experiments`).

Quick start::

    from repro import build_inria_umd, run_probe_experiment, loss_stats
    scenario = build_inria_umd(seed=1)
    scenario.start_traffic()
    trace = run_probe_experiment(scenario.network, scenario.source,
                                 scenario.echo, delta=0.05, count=2000,
                                 start_at=30.0)
    print(loss_stats(trace))
"""

from repro.analysis import (
    detect_compression,
    estimate_bottleneck_mu,
    fit_constant_plus_gamma,
    loss_stats,
    phase_points,
    summarize,
    workload_distribution,
)
from repro.net import Network
from repro.netdyn import ProbeTrace, run_probe_experiment
from repro.sim import Simulator
from repro.tools import ping, traceroute
from repro.topology import (
    build_inria_umd,
    build_single_bottleneck,
    build_umd_pitt,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Simulator",
    "Network",
    "ProbeTrace",
    "run_probe_experiment",
    "build_inria_umd",
    "build_umd_pitt",
    "build_single_bottleneck",
    "ping",
    "traceroute",
    "loss_stats",
    "phase_points",
    "estimate_bottleneck_mu",
    "workload_distribution",
    "detect_compression",
    "fit_constant_plus_gamma",
    "summarize",
]
