"""Baseline measurement methodologies the paper compares against."""

from repro.baselines.merit import MERIT_INTERVAL, MeritStats, merit_sampling
from repro.baselines.pingstats import GroupedPingResult, grouped_ping

__all__ = [
    "MERIT_INTERVAL",
    "MeritStats",
    "merit_sampling",
    "GroupedPingResult",
    "grouped_ping",
]
