"""Merit-style coarse statistics: one delay sample per 15-minute interval.

Merit Network Inc. published monthly NSFNET delay statistics computed from
measurements at 15-minute intervals [6].  The paper criticizes them on two
grounds: the sampling is far too coarse to capture dynamics, and the
measurements run between backbone interfaces rather than end to end.  This
baseline reproduces the methodology (configurable interval for tractable
simulations) so the comparison benchmarks can quantify exactly how much
structure the coarse sampling misses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InsufficientDataError
from repro.net.routing import Network
from repro.tools.ping import ping

#: Merit's real sampling interval, seconds.
MERIT_INTERVAL = 15 * 60.0


@dataclass
class MeritStats:
    """Coarse-grained delay statistics in the style of the Merit reports."""

    #: One rtt sample per interval, seconds (NaN if unanswered).
    samples: np.ndarray
    interval: float

    def median_delay(self) -> float:
        """Median of the answered samples (the statistic studied in [6])."""
        valid = self.samples[~np.isnan(self.samples)]
        if valid.size == 0:
            raise InsufficientDataError("no answered samples")
        return float(np.median(valid))

    def availability(self) -> float:
        """Fraction of intervals with an answered sample."""
        if self.samples.size == 0:
            return 0.0
        return float(np.mean(~np.isnan(self.samples)))


def merit_sampling(network: Network, source: str, destination: str,
                   intervals: int = 8,
                   interval: float = MERIT_INTERVAL) -> MeritStats:
    """Take one echo sample per ``interval`` seconds, ``intervals`` times."""
    if intervals < 1:
        raise ConfigurationError(f"intervals must be >= 1, got {intervals}")
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    samples = np.full(intervals, np.nan)
    for i in range(intervals):
        result = ping(network, source, destination, count=1, interval=1.0,
                      ident=200 + i)
        if result.rtts:
            samples[i] = result.rtts[0]
        consumed = 1.0 + 3.0  # one echo + ping timeout
        network.sim.run(until=network.sim.now
                        + max(0.0, interval - consumed))
    return MeritStats(samples=samples, interval=interval)
