"""The grouped-ICMP baseline methodology of Mukherjee [19].

The paper positions its UDP probing against this prior approach: groups of
10 ICMP echo packets sent at 1-second spacing, one group per minute, rtts
averaged per group, and the per-packet delay distribution modeled as a
constant plus a gamma.  Implementing the baseline lets the benchmarks show
what each methodology can and cannot see (group averages wash out the
millisecond-scale structure that NetDyn's dense probing resolves).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.analysis.distributions import (
    ConstantPlusGammaFit,
    fit_constant_plus_gamma,
)
from repro.errors import ConfigurationError, InsufficientDataError
from repro.net.routing import Network
from repro.netdyn.trace import ProbeTrace
from repro.tools.ping import ping


@dataclass
class GroupedPingResult:
    """Measurements of one grouped-ICMP experiment."""

    #: Per-group mean rtt, seconds (NaN for fully lost groups).
    group_means: np.ndarray
    #: All individual rtts, flattened.
    all_rtts: np.ndarray
    #: Per-group loss fraction.
    group_loss: np.ndarray
    #: Interval between groups, seconds.
    group_interval: float

    @property
    def groups(self) -> int:
        """Number of groups sent."""
        return len(self.group_means)

    def overall_loss(self) -> float:
        """Loss fraction over all individual echoes."""
        return float(np.mean(self.group_loss))

    def fit_delay_model(self) -> ConstantPlusGammaFit:
        """Fit the constant+gamma model of [19] to the individual rtts."""
        valid = self.all_rtts[~np.isnan(self.all_rtts)]
        if valid.size < 20:
            raise InsufficientDataError("too few echoes for a fit")
        trace = ProbeTrace.from_samples(delta=1.0, rtts=valid.tolist())
        return fit_constant_plus_gamma(trace)


def grouped_ping(network: Network, source: str, destination: str,
                 groups: int = 10, group_size: int = 10,
                 packet_interval: float = 1.0,
                 group_interval: float = 60.0) -> GroupedPingResult:
    """Run the [19] methodology on a simulated network.

    Each group is ``group_size`` echoes at ``packet_interval`` spacing;
    groups start every ``group_interval`` seconds.  The simulator clock
    advances accordingly (10 groups = 10 simulated minutes by default).
    """
    if groups < 1 or group_size < 1:
        raise ConfigurationError("groups and group_size must be >= 1")
    if group_interval < group_size * packet_interval:
        raise ConfigurationError(
            "groups would overlap: group_interval too small")
    group_means = np.full(groups, np.nan)
    group_loss = np.empty(groups)
    all_rtts: list[float] = []

    for g in range(groups):
        result = ping(network, source, destination, count=group_size,
                      interval=packet_interval, ident=100 + g)
        rtts = [result.rtts.get(seq, np.nan) for seq in range(group_size)]
        all_rtts.extend(rtts)
        valid = [r for r in rtts if not np.isnan(r)]
        if valid:
            group_means[g] = float(np.mean(valid))
        group_loss[g] = result.loss_fraction
        # Idle until the next group starts.
        elapsed_in_group = group_size * packet_interval
        network.sim.run(until=network.sim.now
                        + max(0.0, group_interval - elapsed_in_group))

    return GroupedPingResult(group_means=group_means,
                             all_rtts=np.asarray(all_rtts),
                             group_loss=group_loss,
                             group_interval=group_interval)
