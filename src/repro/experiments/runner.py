"""Run a configured probe experiment and return its trace.

:func:`run_experiment` is the bare driver; :func:`run_observed_experiment`
runs the same measurement with the :mod:`repro.obs` collectors attached —
kernel event tracing, packet-lifecycle tracing, and a metrics registry
covering the whole network plus the probe session — without changing any
simulated timestamp (same seed ⇒ identical trace either way).
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.netdyn.session import run_probe_experiment
from repro.netdyn.trace import ProbeTrace
from repro.obs import (
    KernelTracer,
    MetricsRegistry,
    Observability,
    PacketLifecycleTracer,
    instrument_network,
)
from repro.topology.inria_umd import InriaUmdScenario, build_inria_umd
from repro.topology.umd_pitt import UmdPittScenario, build_umd_pitt

Scenario = Union[InriaUmdScenario, UmdPittScenario]


def build_scenario(config: ExperimentConfig) -> Scenario:
    """Instantiate the topology named by the configuration."""
    if config.scenario == "inria-umd":
        return build_inria_umd(seed=config.seed, **config.scenario_kwargs)
    if config.scenario == "umd-pitt":
        return build_umd_pitt(seed=config.seed, **config.scenario_kwargs)
    # ExperimentConfig validates on construction, but a mutated config must
    # not silently fall through to the wrong topology.
    raise ConfigurationError(f"unknown scenario {config.scenario!r}")


def probe_scenario(scenario: Scenario, config: ExperimentConfig,
                   registry: Optional[MetricsRegistry] = None) -> ProbeTrace:
    """Run the configured probe train against an already-built scenario.

    The single probing call every driver goes through — same probe
    parameters and trace metadata whether the cell runs bare
    (:func:`run_experiment`), observed (:func:`run_observed_experiment`),
    or phase-by-phase inside a campaign worker — so the drivers cannot
    drift apart.  The caller is responsible for having started the
    background traffic.
    """
    return run_probe_experiment(
        scenario.network, scenario.source, scenario.echo,
        delta=config.delta, count=config.count, start_at=config.warmup,
        meta={
            "scenario": config.scenario,
            "seed": config.seed,
            "mu_bps": scenario.bottleneck_rate_bps,
        },
        registry=registry)


#: Coarse per-cell cost model for lease planning (host seconds per
#: simulated second, measured once on the reference host).  Only the
#: *relative* scale matters — it sizes lease batches, never results.
_EVENT_SECONDS_PER_SIM_SECOND = 0.07
_ANALYTIC_BASE_SECONDS = 0.010
#: Analytic cost is dominated by replaying each cross-traffic source's
#: emission draws, so the slope is per *source* simulated second
#: (calibrated on BENCH_fastforward's reference host: the default
#: 4-source inria-umd mix costs ~0.35 ms per simulated second).
_ANALYTIC_SECONDS_PER_SOURCE_SIM_SECOND = 9e-5

#: Mix parameters the topology builders default when the spec omits them
#: (:func:`repro.topology.inria_umd.build_inria_umd` /
#: :func:`repro.topology.umd_pitt.build_umd_pitt` signatures).
_SCENARIO_MIX_DEFAULTS = {
    "inria-umd": {"utilization_fwd": 0.72, "utilization_rev": 0.64,
                  "bulk_fraction": 0.85},
    "umd-pitt": {"utilization_fwd": 0.55, "utilization_rev": 0.45,
                 "bulk_fraction": 0.85},
}


def _cross_source_count(config: ExperimentConfig) -> int:
    """Cross-traffic sources the configured scenario will build.

    Mirrors the builders' wiring: each direction with positive
    utilization gets an FTP source when ``bulk_fraction > 0`` and a
    Telnet source when ``bulk_fraction < 1``
    (:func:`repro.traffic.mix.attach_internet_mix`).
    """
    defaults = _SCENARIO_MIX_DEFAULTS.get(
        config.scenario, _SCENARIO_MIX_DEFAULTS["inria-umd"])
    kwargs = config.scenario_kwargs
    bulk = kwargs.get("bulk_fraction", defaults["bulk_fraction"])
    per_direction = (1 if bulk > 0 else 0) + (1 if bulk < 1 else 0)
    count = 0
    for key in ("utilization_fwd", "utilization_rev"):
        if kwargs.get(key, defaults[key]) > 0:
            count += per_direction
    return count


def estimate_cell_seconds(config: ExperimentConfig) -> float:
    """A-priori wall-cost estimate of one campaign cell, host seconds.

    Pure arithmetic on the configuration (no clocks, no trial runs):
    event-mode cost scales with the simulated horizon (warm-up plus probe
    train); analytic cells pay a small fixed setup plus a much shallower
    slope that scales with how many cross-traffic sources the scenario
    replays — a lightly loaded one-direction scenario costs half the
    default mix.  The campaign dispatcher uses this to auto-tune lease
    batch sizes — a wrong estimate costs balance, never correctness.
    """
    horizon = config.warmup + config.duration
    if config.mode == "analytic":
        return (_ANALYTIC_BASE_SECONDS
                + _ANALYTIC_SECONDS_PER_SOURCE_SIM_SECOND
                * _cross_source_count(config) * horizon)
    return max(1e-3, _EVENT_SECONDS_PER_SIM_SECOND * horizon)


def run_experiment(config: ExperimentConfig) -> ProbeTrace:
    """Build the scenario, warm up the traffic, probe, return the trace.

    ``config.mode == "analytic"`` dispatches to the fast-forward engine
    (:mod:`repro.experiments.fastforward`), which itself falls back to
    event execution when the scenario is not aggregatable.
    """
    if config.mode == "analytic":
        from repro.experiments.fastforward import run_fastforward_experiment
        return run_fastforward_experiment(config).trace
    scenario = build_scenario(config)
    scenario.start_traffic(at=0.0)
    return probe_scenario(scenario, config)


def run_experiment_with_scenario(config: ExperimentConfig,
                                 ) -> tuple[ProbeTrace, Scenario]:
    """Like :func:`run_experiment` but also return the live scenario.

    Useful when the caller needs queue statistics or fault counters after
    the measurement (the ablation benchmarks do).  In analytic mode the
    returned scenario was never event-driven: its queues carry no
    counters (the analytic result's own queue statistics replace them).
    """
    if config.mode == "analytic":
        from repro.experiments.fastforward import run_fastforward_experiment
        result = run_fastforward_experiment(config)
        return result.trace, result.scenario
    scenario = build_scenario(config)
    scenario.start_traffic(at=0.0)
    return probe_scenario(scenario, config), scenario


def run_experiment_timed(config: ExperimentConfig,
                         ) -> tuple[ProbeTrace, Scenario, float]:
    """:func:`run_experiment_with_scenario` plus host wall-clock cost.

    The wall time covers scenario construction, warm-up, and the probe
    train — the full cost of one campaign cell.  It is host-side
    bookkeeping only and never feeds back into simulated time, so it does
    not affect determinism (same seed ⇒ identical trace).
    """
    # Host bookkeeping only (see docstring): the wall time is reported in
    # timing.json and never feeds back into simulated time or the trace.
    started = perf_counter()  # repro: noqa[FLOW001]
    trace, scenario = run_experiment_with_scenario(config)
    return trace, scenario, perf_counter() - started  # repro: noqa[FLOW001]


def run_observed_experiment(config: ExperimentConfig,
                            kernel_trace: bool = False,
                            trace_capacity: Optional[int] = None,
                            lifecycle: bool = False,
                            ) -> Tuple[ProbeTrace, Scenario, Observability]:
    """Run one experiment with the observability collectors attached.

    The metrics registry (network-wide counters/gauges plus the probe
    session's counters) is always on — it is pull-based and free.  Kernel
    event tracing and packet-lifecycle tracing are opt-in because they
    record per-event/per-hop history.

    Parameters
    ----------
    kernel_trace:
        Attach a :class:`~repro.obs.KernelTracer` to the simulator.
    trace_capacity:
        Ring-buffer size for the kernel tracer (None = tracer default).
    lifecycle:
        Attach a :class:`~repro.obs.PacketLifecycleTracer` to the network.
    """
    if config.mode == "analytic":
        raise ConfigurationError(
            "observability collectors record event-kernel activity; "
            "analytic mode runs no events (use mode='event')")
    scenario = build_scenario(config)
    registry = MetricsRegistry()
    kernel = None
    if kernel_trace:
        kernel = KernelTracer() if trace_capacity is None \
            else KernelTracer(capacity=trace_capacity)
        scenario.sim.attach_observer(kernel)
    hops = PacketLifecycleTracer(scenario.network) if lifecycle else None
    instrument_network(registry, scenario.network)
    obs = Observability(registry=registry, kernel=kernel, lifecycle=hops)

    scenario.start_traffic(at=0.0)
    trace = probe_scenario(scenario, config, registry=registry)
    obs.close(sim=scenario.sim)
    return trace, scenario, obs
