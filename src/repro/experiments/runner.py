"""Run a configured probe experiment and return its trace."""

from __future__ import annotations

from typing import Union

from repro.experiments.config import ExperimentConfig
from repro.netdyn.session import run_probe_experiment
from repro.netdyn.trace import ProbeTrace
from repro.topology.inria_umd import InriaUmdScenario, build_inria_umd
from repro.topology.umd_pitt import UmdPittScenario, build_umd_pitt

Scenario = Union[InriaUmdScenario, UmdPittScenario]


def build_scenario(config: ExperimentConfig) -> Scenario:
    """Instantiate the topology named by the configuration."""
    if config.scenario == "inria-umd":
        return build_inria_umd(seed=config.seed, **config.scenario_kwargs)
    return build_umd_pitt(seed=config.seed, **config.scenario_kwargs)


def run_experiment(config: ExperimentConfig) -> ProbeTrace:
    """Build the scenario, warm up the traffic, probe, return the trace."""
    scenario = build_scenario(config)
    scenario.start_traffic(at=0.0)
    trace = run_probe_experiment(
        scenario.network, scenario.source, scenario.echo,
        delta=config.delta, count=config.count, start_at=config.warmup,
        meta={
            "scenario": config.scenario,
            "seed": config.seed,
            "mu_bps": scenario.bottleneck_rate_bps,
        })
    return trace


def run_experiment_with_scenario(config: ExperimentConfig,
                                 ) -> tuple[ProbeTrace, Scenario]:
    """Like :func:`run_experiment` but also return the live scenario.

    Useful when the caller needs queue statistics or fault counters after
    the measurement (the ablation benchmarks do).
    """
    scenario = build_scenario(config)
    scenario.start_traffic(at=0.0)
    trace = run_probe_experiment(
        scenario.network, scenario.source, scenario.echo,
        delta=config.delta, count=config.count, start_at=config.warmup,
        meta={
            "scenario": config.scenario,
            "seed": config.seed,
            "mu_bps": scenario.bottleneck_rate_bps,
        })
    return trace, scenario
