"""Analytic fast-forward execution of a calibrated probe experiment.

The calibrated scenarios are, structurally, exactly the paper's Figure 3
model: probes cross a fixed delay, one FIFO bottleneck per direction, and
an open-loop Internet stream.  This module exploits that: instead of
driving every cross packet through the event kernel, it

1. **replays the cross-traffic RNG streams** scalar-for-scalar in event
   order (the :class:`~repro.sim.random.BatchedDraws` layer guarantees the
   value sequence is identical either way), producing the *exact* emission
   times and packet sizes event mode would generate;
2. pushes those emissions through their access link with one vectorized
   :func:`~repro.queueing.fastforward.fifo_waits` call (the reuse of the
   Lindley recurrence of :mod:`repro.analysis.lindley`), yielding exact
   bottleneck arrival times;
3. advances each bottleneck either in one vectorized certificate pass —
   when the buffer provably cannot overflow, the merged cross+probe
   stream is a single Lindley recursion — or, when drops are possible,
   through a per-packet :class:`~repro.queueing.fastforward.FluidQueue`
   walk whose admission rules replicate the event queue exactly;
4. replays fault decisions by drawing from the *same*
   :class:`~repro.net.faults.RandomDropFault` generators in probe order.

Because every step is draw-for-draw and packet-for-packet identical to
event mode, the analytic trace matches the event trace *bit for bit* on
eligible scenarios — the equivalence tests pin it to the goldens with
``np.array_equal``, not a tolerance.  Event mode remains the golden
reference: any future divergence is a bug in this module, never a
re-baseline.

The mode only handles what it can do exactly: open-loop
:class:`~repro.traffic.ftp.FtpSource` / :class:`~repro.traffic.telnet.TelnetSource`
cross traffic, :class:`~repro.net.faults.RandomDropFault` on probe-only
interfaces, and floor-quantized or perfect source clocks.  Anything else —
a reactive mini-TCP flow, a stall fault, a lifecycle hook, a fault shared
with cross traffic — produces an ineligibility reason and the runner falls
back to exact event execution (:func:`fastforward_ineligibilities` reports
why).

The remaining approximation, stated once here: probes and cross packets
are assumed to queue *only* at the bottleneck interfaces and the mix
access links.  Eligibility guarantees cross traffic shares nothing else
with the probes, and on every calibrated path the probe spacing out of a
FIFO stage is never shorter than any downstream transmission time, so the
assumption is exact there; the equivalence tests verify it empirically.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Dict, Iterable, List, Optional, \
    Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import Scenario, build_scenario, probe_scenario
from repro.net.clocks import PerfectClock, QuantizedClock
from repro.net.faults import RandomDropFault
from repro.net.link import Interface
from repro.net.packet import UDP_WIRE_OVERHEAD_BYTES, make_udp
from repro.net.queue import MODE_PACKETS
from repro.net.routing import Network
from repro.netdyn import packetfmt
from repro.netdyn.session import DEFAULT_DRAIN
from repro.netdyn.trace import LOST, ProbeTrace
from repro.analysis.lindley import lindley_waits
from repro.queueing.fastforward import FluidQueue, fifo_waits
from repro.traffic.ftp import FtpSource
from repro.traffic.sizes import EmpiricalSize
from repro.traffic.telnet import TelnetSource
from repro.units import (
    bits_to_bytes,
    bytes_to_bits,
    seconds_to_ms,
    transmission_delay,
)

#: Safety margin on the access-link no-drop certificate: estimated peak
#: backlog must stay below this fraction of the access queue capacity.
ACCESS_BACKLOG_MARGIN = 0.9


@dataclass
class DirectionModel:
    """One direction's bottleneck plus everything fixed around it."""

    #: Bottleneck interface label ("a->b"), for queue statistics.
    label: str
    rate_bps: float
    capacity: int
    queue_mode: str
    #: Probe service time at this bottleneck, seconds.
    service: float
    #: Fixed seconds from probe origination to bottleneck-queue arrival.
    before: float
    #: Fixed seconds from bottleneck service completion to delivery.
    after: float
    #: Bernoulli drop stages crossed before the queue, in path order.
    pre_faults: List[RandomDropFault] = field(default_factory=list)
    #: Bernoulli drop stages crossed after the queue, in path order.
    post_faults: List[RandomDropFault] = field(default_factory=list)
    #: Exact cross arrival times at the bottleneck queue, sorted.
    cross_times: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Wire bits of each cross arrival.
    cross_bits: np.ndarray = field(default_factory=lambda: np.empty(0))


@dataclass
class FastForwardResult:
    """Outcome of :func:`run_fastforward_experiment`."""

    trace: ProbeTrace
    #: Per-bottleneck statistics dicts keyed by interface label (analytic
    #: runs report the two bottlenecks; event fallbacks report every
    #: active queue, like a normal campaign cell).
    queue_stats: dict
    #: ``"analytic"`` or ``"event"`` (the mode actually executed).
    mode_used: str
    #: Why the analytic engine declined, when it did (sorted, stable).
    fallback_reasons: List[str]
    scenario: Scenario


# ---------------------------------------------------------------------------
# Model extraction
# ---------------------------------------------------------------------------
def _hop_interfaces(network: Network, path: Sequence[str],
                    ) -> List[Interface]:
    """The interfaces a packet crosses along ``path``, in order."""
    return [network.node(a).interface_to(b)
            for a, b in zip(path[:-1], path[1:])]


def _fixed_segments(network: Network, path: Sequence[str],
                    bottleneck: Interface, wire_bytes: int,
                    ) -> Tuple[float, float]:
    """Fixed latency before and after the bottleneck along ``path``.

    ``before`` runs from origination at ``path[0]`` to arrival at the
    bottleneck *queue* (including the bottleneck node's processing delay);
    ``after`` runs from the end of the bottleneck's transmission to
    delivery at ``path[-1]`` (starting with the bottleneck's propagation
    delay).  Assumes no queueing at the non-bottleneck hops — the
    module-level invariant.
    """
    before = 0.0
    after = bottleneck.prop_delay
    seen = False
    for a, b in zip(path[:-1], path[1:]):
        node = network.node(a)
        interface = node.interface_to(b)
        if interface is bottleneck:
            before += node.processing_delay
            seen = True
            continue
        segment = (node.processing_delay
                   + transmission_delay(wire_bytes, interface.rate_bps)
                   + interface.prop_delay)
        if seen:
            after += segment
        else:
            before += segment
    if not seen:
        raise ConfigurationError(
            f"path {path[0]!r}->{path[-1]!r} does not cross the "
            f"bottleneck {bottleneck.name!r}")
    return before, after


def _fault_stages(network: Network, path: Sequence[str],
                  bottleneck: Interface,
                  ) -> Tuple[List[RandomDropFault], List[RandomDropFault]]:
    """Drop stages before/after the bottleneck, in crossing order.

    Assumes eligibility already verified: no faults on the bottleneck
    itself, every fault is a :class:`RandomDropFault` on a probe-only
    interface.
    """
    pre: List[RandomDropFault] = []
    post: List[RandomDropFault] = []
    seen = False
    for interface in _hop_interfaces(network, path):
        if interface is bottleneck:
            seen = True
            continue
        bucket = post if seen else pre
        for fault in interface.egress_faults:
            bucket.append(fault)
        for fault in interface.ingress_faults:
            bucket.append(fault)
    return pre, post


def fastforward_ineligibilities(scenario: Scenario) -> List[str]:
    """Why ``scenario`` cannot run analytically (empty = eligible).

    Checks are structural only and consume no randomness, so an eligible
    scenario can proceed straight to extraction and an ineligible one can
    be rebuilt fresh for the event fallback.
    """
    reasons: List[str] = []
    network = scenario.network
    for attr in ("bottleneck_fwd", "bottleneck_rev", "mix_fwd", "mix_rev"):
        if not hasattr(scenario, attr):
            return [f"scenario exposes no {attr}"]

    clock = network.host(scenario.source).clock
    if type(clock) not in (PerfectClock, QuantizedClock):
        reasons.append(
            f"source clock {type(clock).__name__} is not replayable")

    fwd_path = network.path(scenario.source, scenario.echo)
    rev_path = network.path(scenario.echo, scenario.source)
    probe_interfaces: List[Interface] = []
    for path, bottleneck, label in (
            (fwd_path, scenario.bottleneck_fwd, "forward"),
            (rev_path, scenario.bottleneck_rev, "reverse")):
        interfaces = _hop_interfaces(network, path)
        crossings = sum(1 for i in interfaces if i is bottleneck)
        if crossings != 1:
            reasons.append(
                f"{label} probe path crosses its bottleneck "
                f"{crossings} times (need exactly 1)")
        probe_interfaces.extend(interfaces)

    faults: List[RandomDropFault] = []
    for interface in probe_interfaces:
        if interface.lifecycle is not None:
            reasons.append(f"lifecycle hook on interface {interface.name}")
        if interface.queue.lifecycle is not None:
            reasons.append(f"lifecycle hook on queue of {interface.name}")
        on_bottleneck = (interface is scenario.bottleneck_fwd
                         or interface is scenario.bottleneck_rev)
        for fault in (list(interface.egress_faults)
                      + list(interface.ingress_faults)):
            if on_bottleneck:
                reasons.append(
                    f"fault on bottleneck interface {interface.name}")
            elif type(fault) is not RandomDropFault:
                reasons.append(
                    f"{type(fault).__name__} on {interface.name} is not "
                    "a replayable random drop")
            else:
                faults.append(fault)
    for path in (fwd_path, rev_path):
        for name in path:
            node = network.node(name)
            if node.lifecycle is not None:
                reasons.append(f"lifecycle hook on node {name}")
                break

    generator_ids = [id(fault._rng) for fault in faults]
    if len(set(generator_ids)) != len(generator_ids):
        reasons.append("faults share a random generator "
                       "(crossing order not replayable)")

    probe_ids = {id(i) for i in probe_interfaces}
    for mix, bottleneck, label in (
            (scenario.mix_fwd, scenario.bottleneck_fwd, "forward"),
            (scenario.mix_rev, scenario.bottleneck_rev, "reverse")):
        if mix is None:
            continue
        access_ids: List[int] = []
        for source in mix.sources:
            if type(source) not in (FtpSource, TelnetSource):
                reasons.append(
                    f"{label} mix has a non-open-loop source "
                    f"{type(source).__name__}")
                continue
            path = network.path(source.host.name, source.destination)
            interfaces = _hop_interfaces(network, path)
            if len(interfaces) < 2 or interfaces[1] is not bottleneck:
                reasons.append(
                    f"{label} mix source {source.host.name} does not "
                    "attach directly to the bottleneck ingress")
                continue
            access_ids.append(id(interfaces[0]))
            shared = [i for i in interfaces if id(i) in probe_ids]
            if any(i is not bottleneck for i in shared):
                reasons.append(
                    f"{label} mix shares a non-bottleneck interface "
                    "with the probes")
            for interface in interfaces:
                if interface.egress_faults or interface.ingress_faults:
                    if interface is not bottleneck:
                        reasons.append(
                            f"fault on mix interface {interface.name}")
                if interface.lifecycle is not None \
                        or interface.queue.lifecycle is not None:
                    reasons.append(
                        f"lifecycle hook on mix interface {interface.name}")
        if len(set(access_ids)) > 1:
            reasons.append(
                f"{label} mix sources use different access links")
    return sorted(set(reasons))


# ---------------------------------------------------------------------------
# Cross-traffic replay
# ---------------------------------------------------------------------------
def _ftp_emissions(source: FtpSource, horizon: float,
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Replay an FTP source's draws: (emission times, wire bits).

    Draws come from the source's *raw* generator: the batched layer
    guarantees its value sequence equals scalar draws (see
    ``tests/sim/test_random_batched.py``), and the source has drawn
    nothing yet, so replaying scalar-for-scalar in event order yields the
    exact emission sequence without the batch layer's kind-switch cost.
    The burst inner loop is vectorized — window ticks draw nothing, so
    one ``np.repeat`` over the per-window burst counts emits the same
    packet sequence the per-packet loop would.
    """
    rng = source.rng
    exponential = rng.exponential
    mean_interval = source._mean_session_interval
    wire_bits = float(bytes_to_bits(source.payload_bytes
                                    + UDP_WIRE_OVERHEAD_BYTES))
    window = source.window
    window_interval = source.window_interval
    ticks: List[float] = []
    bursts: List[int] = []
    # Event order on this stream: one exponential at start(), then per
    # session tick a geometric (file size) followed by an exponential
    # (next session); window ticks draw nothing.
    t = exponential(mean_interval)
    while t <= horizon:
        remaining = int(rng.geometric(source._file_size_p))
        tick = t
        while remaining > 0 and tick <= horizon:
            burst = min(window, remaining)
            ticks.append(tick)
            bursts.append(burst)
            remaining -= burst
            if remaining > 0:
                tick = tick + window_interval
        t = t + exponential(mean_interval)
    times = np.repeat(np.asarray(ticks, dtype=float),
                      np.asarray(bursts, dtype=np.intp))
    return times, np.full(times.size, wire_bits)


def _telnet_emissions(source: TelnetSource, horizon: float,
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Replay a Telnet source's draws: (emission times, wire bits).

    Same raw-generator replay as :func:`_ftp_emissions`.  The empirical
    size distribution is inlined to one uniform + ``searchsorted`` per
    packet — exactly the single draw :meth:`EmpiricalSize.sample`
    consumes — with wire bits precomputed per size choice.
    """
    rng = source.rng
    exponential = rng.exponential
    mean_interval = source._mean_interval
    sizes = source.sizes
    times: List[float] = []
    bits: List[float] = []
    # Event order: one exponential at start(), then per emission a size
    # draw followed by the next exponential.
    t = exponential(mean_interval)
    if isinstance(sizes, EmpiricalSize):
        cdf = sizes._cdf
        wire_by_choice = [
            float(bytes_to_bits(int(payload) + UDP_WIRE_OVERHEAD_BYTES))
            for payload in sizes.sizes]
        random = rng.random
        searchsorted = np.searchsorted
        while t <= horizon:
            choice = searchsorted(cdf, random(), side="right")
            times.append(t)
            bits.append(wire_by_choice[choice])
            t = t + exponential(mean_interval)
    else:
        while t <= horizon:
            payload = sizes.sample(rng)
            times.append(t)
            bits.append(bytes_to_bits(payload + UDP_WIRE_OVERHEAD_BYTES))
            t = t + exponential(mean_interval)
    return np.asarray(times, dtype=float), np.asarray(bits, dtype=float)


@dataclass
class CrossStream:
    """One direction's replayed cross traffic, sliceable to any horizon.

    Emission generation truncates only the tail (``t <= horizon``), and
    the access-link Lindley pass is causal, so everything up to a shorter
    horizon is a bit-identical *prefix* of this stream — the arrays here
    are therefore built once per (scenario, kwargs, seed) and cut with
    ``np.searchsorted`` per cell (:func:`slice_stream`).  The running
    peak-backlog estimate makes the per-prefix no-drop certificate a
    single indexed lookup instead of a fresh max/min scan.
    """

    #: Merged emission times, sorted (the prefix cut key).
    emit_times: np.ndarray
    #: Exact bottleneck-queue arrival times, same order (nondecreasing —
    #: FIFO departures plus fixed latencies).
    arrivals: np.ndarray
    #: Wire bits of each packet.
    bits: np.ndarray
    #: Prefix peak-backlog estimate (packets) on the access link:
    #: ``cummax(waits) * rate / cummin(bits)``, so element ``i-1`` equals
    #: the certificate value a fresh build over the first ``i`` emissions
    #: would compute.
    peak_backlogs: np.ndarray
    #: Access-link identity for the overflow diagnostic.
    access_name: str
    access_capacity: int


@dataclass
class CrossReplay:
    """Both directions' cross streams, keyed and memoized per seed.

    A replay is a pure function of (scenario, kwargs, seed) up to its
    build ``horizon``; :func:`replay_key` derives the memo key from the
    same causal-fingerprint machinery as the cell cache (salt included),
    and :class:`CrossReplayMemo` treats any entry whose horizon covers a
    request as a hit (prefix slicing is exact, see :class:`CrossStream`).
    """

    horizon: float
    #: (forward, reverse); None where the direction has no mix.
    streams: Tuple[Optional[CrossStream], Optional[CrossStream]]


def _direction_stream(network: Network, mix, bottleneck: Interface,
                      horizon: float) -> Optional[CrossStream]:
    """Replay one direction's mix into a :class:`CrossStream`.

    Emissions from all of the mix's sources are merged, serialized through
    their shared access link with one vectorized Lindley pass, and shifted
    by the fixed latencies around it.
    """
    if mix is None:
        return None
    time_parts: List[np.ndarray] = []
    bit_parts: List[np.ndarray] = []
    host = None
    access: Optional[Interface] = None
    for source in mix.sources:
        if isinstance(source, FtpSource):
            t, b = _ftp_emissions(source, horizon)
        else:
            t, b = _telnet_emissions(source, horizon)
        time_parts.append(t)
        bit_parts.append(b)
        host = source.host
        path = network.path(source.host.name, source.destination)
        access = _hop_interfaces(network, path)[0]
    times = np.concatenate(time_parts)
    bits = np.concatenate(bit_parts)
    if times.size == 0:
        return CrossStream(emit_times=times, arrivals=times, bits=bits,
                           peak_backlogs=times, access_name="",
                           access_capacity=0)
    order = np.argsort(times, kind="stable")
    times = times[order]
    bits = bits[order]
    assert access is not None and host is not None
    send_times = times + host.processing_delay
    waits = fifo_waits(send_times, bits, access.rate_bps)
    peak_backlogs = (np.maximum.accumulate(waits) * access.rate_bps
                     / np.minimum.accumulate(bits))
    arrivals = (send_times + waits + bits / access.rate_bps
                + access.prop_delay
                + network.node(bottleneck.node.name).processing_delay)
    return CrossStream(emit_times=times, arrivals=arrivals, bits=bits,
                       peak_backlogs=peak_backlogs,
                       access_name=access.name,
                       access_capacity=access.queue.capacity)


def build_cross_replay(scenario: Scenario, horizon: float) -> CrossReplay:
    """Replay both directions' cross traffic up to ``horizon``."""
    network = scenario.network
    return CrossReplay(horizon=float(horizon), streams=(
        _direction_stream(network, scenario.mix_fwd,
                          scenario.bottleneck_fwd, horizon),
        _direction_stream(network, scenario.mix_rev,
                          scenario.bottleneck_rev, horizon)))


def slice_stream(stream: Optional[CrossStream], horizon: float,
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """The (arrivals, bits) prefix a fresh build at ``horizon`` would give.

    Applies the per-prefix no-drop certificate on the access link — the
    same check (and diagnostic) a direct replay at ``horizon`` performs,
    read off the precomputed running peak instead of recomputed.
    """
    if stream is None:
        return np.empty(0), np.empty(0)
    cut = int(np.searchsorted(stream.emit_times, horizon, side="right"))
    if cut == 0:
        return stream.emit_times[:0], stream.bits[:0]
    peak_backlog = float(stream.peak_backlogs[cut - 1])
    if peak_backlog > ACCESS_BACKLOG_MARGIN * stream.access_capacity:
        raise ConfigurationError(
            f"access link {stream.access_name} may overflow "
            f"(~{peak_backlog:.0f} packets backlogged of "
            f"{stream.access_capacity}); scenario too loaded for the "
            "no-drop access model")
    return stream.arrivals[:cut], stream.bits[:cut]


#: Replay entries a :class:`CrossReplayMemo` keeps by default.  Sized for
#: a seed-affine lease (one hot seed, a little slack for interleaving);
#: an entry holds ~4 float64 arrays per direction, so the bound also caps
#: resident memory in long-lived warm workers.
DEFAULT_REPLAY_ENTRIES = 4


class CrossReplayMemo:
    """Bounded LRU of :class:`CrossReplay` artifacts, keyed by fingerprint.

    An entry hits when its key matches *and* its build horizon covers the
    requested one (a shorter request is an exact prefix slice); a stored
    replay with a longer horizon simply replaces the old entry.  Hit and
    miss counters are execution mechanics: the campaign quarantines them
    in timing.json's ``dispatch`` block, never in any deterministic
    artifact — which is also why the memo lives beside the engine, not on
    :class:`~repro.experiments.campaign.CampaignSpec`.
    """

    def __init__(self, entries: int = DEFAULT_REPLAY_ENTRIES) -> None:
        if entries < 1:
            raise ConfigurationError(
                f"memo needs at least one entry, got {entries}")
        self.entries = int(entries)
        self._replays: "OrderedDict[str, CrossReplay]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._replays)

    def get(self, key: str, horizon: float) -> Optional[CrossReplay]:
        """The covering replay for ``key``, or None (counted as a miss)."""
        replay = self._replays.get(key)
        if replay is not None and replay.horizon >= horizon:
            self._replays.move_to_end(key)
            self.hits += 1
            return replay
        self.misses += 1
        return None

    def put(self, key: str, replay: CrossReplay) -> None:
        self._replays[key] = replay
        self._replays.move_to_end(key)
        while len(self._replays) > self.entries:
            self._replays.popitem(last=False)

    def counters(self) -> Tuple[int, int]:
        """(hits, misses) snapshot, for delta accounting around a lease."""
        return self.hits, self.misses


_process_memo: Optional[CrossReplayMemo] = None


def process_replay_memo() -> CrossReplayMemo:
    """The process-global memo serial cells and warm workers share."""
    global _process_memo
    if _process_memo is None:
        _process_memo = CrossReplayMemo()
    return _process_memo


def replay_key(config: ExperimentConfig) -> str:
    """The config's replay-memo key (cell-cache fingerprint machinery)."""
    from repro.experiments.cache import replay_fingerprint
    return replay_fingerprint(config.scenario, config.scenario_kwargs,
                              config.seed)


def cell_horizon(config: ExperimentConfig) -> float:
    """Simulated end time of one cell (warm-up + probe train + drain)."""
    return config.warmup + config.count * config.delta + DEFAULT_DRAIN


# ---------------------------------------------------------------------------
# Probe pipeline
# ---------------------------------------------------------------------------
def _apply_stages(stages: Sequence[RandomDropFault], alive: np.ndarray,
                  packet, sim) -> None:
    """Draw each stage's drop decisions for surviving probes, in order.

    Event mode draws one uniform per packet *reaching* a fault, in
    sequence order (probes cannot reorder); a probe dropped earlier never
    draws at later stages.  One batched
    :meth:`~repro.net.faults.RandomDropFault.drops_many` call per stage
    replays exactly those draws (``Generator.random(size=n)`` consumes
    the same doubles as ``n`` scalar draws).  Mutates ``alive`` in place
    and advances the faults' own generators/counters, keeping them
    draw-for-draw in step.
    """
    for stage in stages:
        indices = np.flatnonzero(alive)
        if indices.size == 0:
            continue
        dropped = stage.drops_many(indices.size)
        alive[indices[dropped]] = False


def _exact_pass(direction: DirectionModel, cross_times: np.ndarray,
                cross_bits: np.ndarray, live_probe_times: np.ndarray,
                probe_bits: float, end_time: float,
                ) -> Optional[Tuple[np.ndarray, dict]]:
    """One vectorized Lindley pass when the buffer provably never drops.

    Merges cross packets and probes per-packet (no aggregation at all),
    computes every wait with one :func:`lindley_waits` call, and checks a
    conservative no-overflow certificate: the in-system population at
    each arrival — which upper-bounds the *waiting* occupancy the event
    queue's drop test actually uses — never exceeds the capacity.  When
    the certificate holds, no arrival can drop, so the vectorized waits
    are the exact event-mode waits and the whole per-arrival loop is
    skipped.  Returns ``None`` when the certificate fails (the caller
    falls back to the sequential :class:`FluidQueue` pass, which handles
    drops exactly).
    """
    n_cross = cross_times.size
    n_probe = live_probe_times.size
    total = n_cross + n_probe
    if total == 0:
        return np.empty(0), {
            "arrivals": 0.0, "drops": 0.0, "departures": 0.0,
            "loss_fraction": 0.0, "occupancy_mean_pkts": 0.0,
            "occupancy_max_pkts": 0.0, "occupancy_mean_bytes": 0.0,
        }
    # Both inputs are already sorted (cross arrivals are FIFO departures
    # plus constants; probe arrivals inherit the send order through FIFO
    # stages), so one searchsorted merge replaces the per-cell argsort:
    # ``side="right"`` keeps cross packets ahead of a same-instant probe,
    # matching the sequential pass's "batches at <= t go first" rule, and
    # the +arange offset keeps equal-time probes in send order — exactly
    # the stable-argsort ordering.
    slots = (np.searchsorted(cross_times, live_probe_times, side="right")
             + np.arange(n_probe))
    probe_mask = np.zeros(total, dtype=bool)
    probe_mask[slots] = True
    times = np.empty(total)
    bits = np.empty(total)
    times[probe_mask] = live_probe_times
    bits[probe_mask] = probe_bits
    times[~probe_mask] = cross_times
    bits[~probe_mask] = cross_bits
    rate = direction.rate_bps
    service = bits / rate
    gaps = np.empty_like(times)
    gaps[:-1] = np.diff(times)
    gaps[-1] = 0.0
    waits = lindley_waits(service, gaps)
    starts = times + waits
    departs = starts + service
    population = np.arange(1, total + 1)
    # Strict "departed before" undercounts departures on ties, so the
    # in-system count (self included) is an upper bound on what the
    # event queue's waiting+1 test sees.
    in_system = population - np.searchsorted(departs, times, side="left")
    if direction.queue_mode == MODE_PACKETS:
        if int(in_system.max()) > direction.capacity:
            return None
    else:
        cumulative = np.concatenate([[0.0], np.cumsum(bits)])
        in_system_bits = (cumulative[population]
                          - cumulative[population - in_system])
        if bits_to_bytes(float(in_system_bits.max())) > direction.capacity:
            return None
    waiting_span = np.minimum(starts, end_time) - times
    started = np.searchsorted(starts, times, side="right")
    stats = {
        "arrivals": float(total),
        "drops": 0.0,
        "departures": float(np.searchsorted(departs, end_time,
                                            side="right")),
        "loss_fraction": 0.0,
        "occupancy_mean_pkts": float(waiting_span.sum()) / end_time,
        "occupancy_max_pkts": float((population - started).max()),
        "occupancy_mean_bytes": bits_to_bytes(
            float((bits * waiting_span).sum())) / end_time,
    }
    return waits[probe_mask], stats


def _queue_pass(direction: DirectionModel, probe_times: np.ndarray,
                alive: np.ndarray, probe_bits: float,
                end_time: float) -> Tuple[np.ndarray, dict]:
    """Run one bottleneck: merged cross arrivals + probes, in time order.

    Returns the per-probe waits (zero for probes that never arrive) and
    the queue's statistics dict.  ``alive`` is updated in place with
    queue drops.  Tries the vectorized no-drop pass first; only when the
    buffer could overflow does the sequential :class:`FluidQueue` walk
    run — per packet, never aggregated, because near a full buffer the
    admission decision of every single arrival matters and coarse
    batches would change which packets drop.
    """
    keep = direction.cross_times <= end_time
    cross_times = direction.cross_times[keep]
    cross_bits = direction.cross_bits[keep]
    live_probe_times = probe_times[alive]
    waits = np.zeros(probe_times.shape)
    exact = _exact_pass(direction, cross_times, cross_bits,
                        live_probe_times, probe_bits, end_time)
    if exact is not None:
        waits[alive] = exact[0]
        return waits, exact[1]

    queue = FluidQueue(direction.rate_bps, direction.capacity,
                       mode=direction.queue_mode)
    # Cross arrivals at times <= the probe's arrival go first (matching
    # event order, where the probe joins the queue behind them);
    # precomputing the per-probe cursor targets and walking plain lists
    # keeps the hot loop free of per-element numpy scalar boxing.
    targets = np.searchsorted(cross_times, live_probe_times,
                              side="right").tolist()
    cross_times = cross_times.tolist()
    cross_bits = cross_bits.tolist()
    offer = queue.offer
    cursor = 0
    for index, at, target in zip(np.flatnonzero(alive).tolist(),
                                 live_probe_times.tolist(), targets):
        while cursor < target:
            offer(cross_times[cursor], cross_bits[cursor])
            cursor += 1
        queue.advance(at)
        waits[index] = queue.workload_seconds
        if offer(at, probe_bits) == 0:
            alive[index] = False
    total = len(cross_times)
    while cursor < total:
        offer(cross_times[cursor], cross_bits[cursor])
        cursor += 1
    queue.advance(end_time)
    return waits, queue.stats(end_time)


def _clock_reading(sim_time: float, resolution: float) -> float:
    """Replicate a (possibly quantized) host clock read at ``sim_time``."""
    if resolution > 0:
        return int(sim_time / resolution) * resolution
    return sim_time


def _clock_readings(sim_times: np.ndarray,
                    resolution: float) -> np.ndarray:
    """Vectorized :func:`_clock_reading` (bit-identical per element).

    ``int()`` truncates toward zero and the readings are nonnegative, so
    ``np.trunc`` computes the same tick count; every count in range is
    exactly representable in float64, so the final product matches the
    scalar ``int * float``.
    """
    if resolution > 0:
        return np.trunc(sim_times / resolution) * resolution
    return sim_times


def _span(tracer: Optional[Any], name: str,
          phase: str) -> ContextManager[None]:
    """A tracer span, or a no-op context when telemetry is disabled."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, phase=phase)


def run_fastforward_experiment(config: ExperimentConfig,
                               memo: Optional[CrossReplayMemo] = None,
                               tracer: Optional[Any] = None,
                               replay_horizon: Optional[float] = None,
                               ) -> FastForwardResult:
    """Run one experiment analytically, or fall back to event mode.

    The returned trace carries the same metadata keys as an event-mode
    trace plus ``mode`` (and, on fallback, ``fallback`` with the sorted
    ineligibility reasons), so campaign artifacts always record how a cell
    was actually produced.

    Parameters
    ----------
    memo:
        Optional :class:`CrossReplayMemo`.  When given, the cross-traffic
        replay is fetched from (or built into) it under the cell's
        :func:`replay_key`; every cell still slices its own exact prefix,
        so the trace is byte-identical with or without a memo.
    tracer:
        Optional :class:`~repro.obs.spans.SpanTracer`; replay builds
        (memo misses and memo-less runs) are timed under the ``replay``
        phase.  Telemetry only — never touches the result.
    replay_horizon:
        Build the replay out to at least this horizon (default: the
        cell's own end time).  :func:`run_fastforward_grid` passes the
        group-wide maximum so one build covers a whole δ-stack.
    """
    scenario = build_scenario(config)
    reasons = fastforward_ineligibilities(scenario)
    if reasons:
        scenario.start_traffic(at=0.0)
        trace = probe_scenario(scenario, config)
        trace.meta["mode"] = "event"
        trace.meta["fallback"] = reasons
        from repro.experiments.campaign import collect_queue_stats
        return FastForwardResult(
            trace=trace, queue_stats=collect_queue_stats(scenario.network),
            mode_used="event", fallback_reasons=reasons, scenario=scenario)

    network = scenario.network
    count = config.count
    wire_bytes = packetfmt.PROBE_PAYLOAD_BYTES + UDP_WIRE_OVERHEAD_BYTES
    probe_bits = float(bytes_to_bits(wire_bytes))
    end_time = cell_horizon(config)

    build_horizon = max(end_time, replay_horizon or 0.0)
    replay: Optional[CrossReplay] = None
    key: Optional[str] = None
    if memo is not None:
        key = replay_key(config)
        replay = memo.get(key, end_time)
    if replay is None:
        from repro.obs.spans import PHASE_REPLAY
        with _span(tracer, "replay", PHASE_REPLAY):
            replay = build_cross_replay(scenario, build_horizon)
        if memo is not None and key is not None:
            memo.put(key, replay)

    fwd_path = network.path(scenario.source, scenario.echo)
    rev_path = network.path(scenario.echo, scenario.source)
    directions = []
    for path, bottleneck, stream in (
            (fwd_path, scenario.bottleneck_fwd, replay.streams[0]),
            (rev_path, scenario.bottleneck_rev, replay.streams[1])):
        before, after = _fixed_segments(network, path, bottleneck,
                                        wire_bytes)
        pre, post = _fault_stages(network, path, bottleneck)
        cross_times, cross_bits = slice_stream(stream, end_time)
        directions.append(DirectionModel(
            label=bottleneck.name, rate_bps=bottleneck.rate_bps,
            capacity=bottleneck.queue.capacity,
            queue_mode=bottleneck.queue.mode,
            service=transmission_delay(wire_bytes, bottleneck.rate_bps),
            before=before, after=after, pre_faults=pre, post_faults=post,
            cross_times=cross_times, cross_bits=cross_bits))
    fwd, rev = directions

    # Probe send times accumulate exactly like the source agent's
    # self-rescheduling timer (t += delta in floating point): cumsum is
    # the same left-to-right chain of float64 additions.
    increments = np.full(count, float(config.delta))
    increments[0] = float(config.warmup)
    send_times = np.cumsum(increments)
    resolution = network.host(scenario.source).clock.resolution
    source_stamps = packetfmt.quantize_stamps(
        _clock_readings(send_times, resolution))

    # One representative probe packet feeds the fault models' drops()
    # hooks, so their draw sequences and counters match event mode.
    probe_packet = make_udp(src=scenario.source, dst=scenario.echo,
                            src_port=0, dst_port=0,
                            payload_bytes=packetfmt.PROBE_PAYLOAD_BYTES,
                            created_at=0.0)
    sim = scenario.sim
    alive = np.ones(count, dtype=bool)

    _apply_stages(fwd.pre_faults, alive, probe_packet, sim)
    arrivals_fwd = send_times + fwd.before
    waits_fwd, stats_fwd = _queue_pass(fwd, arrivals_fwd, alive, probe_bits,
                                       end_time)
    exits_fwd = arrivals_fwd + waits_fwd + fwd.service
    _apply_stages(fwd.post_faults, alive, probe_packet, sim)

    arrivals_rev = exits_fwd + fwd.after + rev.before
    _apply_stages(rev.pre_faults, alive, probe_packet, sim)
    waits_rev, stats_rev = _queue_pass(rev, arrivals_rev, alive, probe_bits,
                                       end_time)
    exits_rev = arrivals_rev + waits_rev + rev.service
    _apply_stages(rev.post_faults, alive, probe_packet, sim)

    receive_times = exits_rev + rev.after
    alive &= receive_times <= end_time

    rtts = np.full(count, LOST)
    destinations = packetfmt.quantize_stamps(
        _clock_readings(receive_times[alive], resolution))
    rtts[alive] = destinations - source_stamps[alive]

    trace = ProbeTrace(
        delta=config.delta, send_times=send_times, rtts=rtts,
        payload_bytes=packetfmt.PROBE_PAYLOAD_BYTES, wire_bytes=wire_bytes,
        meta={
            "source": scenario.source,
            "echo": scenario.echo,
            "clock_resolution": resolution,
            "reordered": 0,
            "duplicates": 0,
            "delta_ms": seconds_to_ms(config.delta),
            "count": count,
            "scenario": config.scenario,
            "seed": config.seed,
            "mu_bps": scenario.bottleneck_rate_bps,
            "mode": "analytic",
        })
    queue_stats = {
        fwd.label: stats_fwd,
        rev.label: stats_rev,
    }
    return FastForwardResult(trace=trace, queue_stats=queue_stats,
                             mode_used="analytic", fallback_reasons=[],
                             scenario=scenario)


def run_fastforward_grid(configs: Iterable[ExperimentConfig],
                         memo: Optional[CrossReplayMemo] = None,
                         tracer: Optional[Any] = None,
                         ) -> List[FastForwardResult]:
    """Run a stack of cells, computing each seed's cross replay once.

    The batched analytic entry point: cells sharing a :func:`replay_key`
    (scenario + kwargs + seed) share one :class:`CrossReplay` — built at
    the group's largest horizon on the first encounter, then sliced per
    cell — so a 6-δ sweep replays its cross traffic once instead of six
    times.  Each cell's probe stack still runs its own vectorized
    Lindley/no-drop-certificate pass against the shared
    ``cross_times``/``cross_bits`` pair per direction, and every result
    is byte-identical to :func:`run_fastforward_experiment` run cell by
    cell (the memo is an optimization, never an input).  Results come
    back in input order; ineligible cells fall back to event mode
    individually, exactly as in the single-cell path.
    """
    configs = list(configs)
    if memo is None:
        memo = CrossReplayMemo(
            entries=max(DEFAULT_REPLAY_ENTRIES, len(configs)))
    # One pre-pass finds each replay group's largest horizon, so the
    # group's first cell builds a replay that covers every later member
    # (the memo's covers-rule then serves them all as hits, whatever the
    # input order).
    horizons: Dict[str, float] = {}
    for config in configs:
        key = replay_key(config)
        horizon = cell_horizon(config)
        horizons[key] = max(horizon, horizons.get(key, 0.0))
    return [run_fastforward_experiment(
                config, memo=memo, tracer=tracer,
                replay_horizon=horizons[replay_key(config)])
            for config in configs]
