"""Paper-vs-measured report generation (feeds EXPERIMENTS.md)."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from repro.experiments.figures import ALL_FIGURES, FigureResult


def run_all(only: Optional[Iterable[str]] = None,
            seed: int = 1) -> list[FigureResult]:
    """Run every figure/table reproduction (or the named subset)."""
    names = list(ALL_FIGURES) if only is None else list(only)
    results = []
    for name in names:
        function = ALL_FIGURES[name]
        results.append(function(seed=seed))
    return results


def as_text(results: list[FigureResult], renderings: bool = False) -> str:
    """Plain-text report of all comparison rows."""
    blocks = []
    for result in results:
        blocks.append(result.summary())
        if renderings and result.rendering:
            blocks.append(result.rendering)
    passed = sum(1 for r in results for row in r.rows if row.ok)
    total = sum(len(r.rows) for r in results)
    blocks.append(f"\n{passed}/{total} comparison rows passed")
    return "\n\n".join(blocks)


def export_results(results: list[FigureResult],
                   directory: Union[str, Path]) -> list[Path]:
    """Write each figure's underlying data as CSV for offline plotting.

    For every result that carries a trace: the raw ``n, send_time, rtt``
    series, the phase-plane points, and (when enough probes were received)
    the workload histogram of Figures 8/9.  Returns the written paths.
    """
    from repro.analysis.phase import phase_points
    from repro.analysis.workload import workload_distribution
    from repro.errors import AnalysisError
    from repro.plotting.export import export_columns, export_histogram

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for result in results:
        if result.trace is None:
            continue
        stem = result.figure_id.lower().replace(" ", "")
        trace_path = directory / f"{stem}_trace.csv"
        result.trace.save_csv(trace_path)
        written.append(trace_path)
        try:
            plot = phase_points(result.trace)
            phase_path = directory / f"{stem}_phase.csv"
            export_columns(phase_path, ["rtt_n", "rtt_n_plus_1"],
                           plot.x, plot.y)
            written.append(phase_path)
            mu = float(result.trace.meta.get("mu_bps", 0) or 0)
            if mu > 0:
                dist = workload_distribution(result.trace, mu=mu)
                hist_path = directory / f"{stem}_workload_hist.csv"
                export_histogram(hist_path, dist.counts, dist.edges)
                written.append(hist_path)
        except AnalysisError:
            pass  # too few received probes for the derived exports
    return written


def as_markdown(results: list[FigureResult]) -> str:
    """Markdown report suitable for EXPERIMENTS.md."""
    lines = ["| Experiment | Quantity | Paper | Measured | Match |",
             "|---|---|---|---|---|"]
    for result in results:
        for row in result.rows:
            status = "yes" if row.ok else "no"
            lines.append(f"| {result.figure_id} | {row.name} | {row.paper} "
                         f"| {row.measured} | {status} |")
    return "\n".join(lines)
