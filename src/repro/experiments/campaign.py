"""Measurement campaigns: grids of probe experiments with saved traces.

The paper's Table 3 is a campaign — one experiment per δ.  This module
generalizes that: run a grid of (δ × seed), persist every trace as CSV,
and aggregate the loss/delay metrics with cross-seed confidence intervals
(:mod:`repro.analysis.stats`).  The ``repro-experiment`` CLI covers single
runs; campaigns are the API for systematic studies (``repro-campaign``
drives this module from the command line).

Cells are independent by construction — each owns its own
:class:`~repro.sim.kernel.Simulator` seeded from the cell's seed — so the
grid is embarrassingly parallel.  :func:`run_campaign` fans cells out over
a ``ProcessPoolExecutor`` when ``workers > 1``; every cell runs through the
same pure worker (:func:`_run_cell`) either way, and results are merged in
(δ, seed) grid order regardless of completion order, so serial and
parallel execution produce byte-identical tables, trace CSVs, and
``manifest.json``.  Only the ``timing.json`` sidecar (worker count,
per-cell wall seconds) reflects how the run was executed.

Cell purity also makes cells memoizable: pass ``cache=`` (a directory or
:class:`~repro.experiments.cache.CampaignCache`) and :func:`run_campaign`
consults the content-addressed cell cache before submitting work — only
misses are simulated, hits are loaded from disk, and both are merged in
grid order, so a warm re-run produces byte-identical artifacts to a cold
one (the serial==parallel invariant extended to cold==warm).  Cache
behaviour (hits, misses, byte volumes) is execution mechanics and lands in
``timing.json``, never the manifest.
"""

from __future__ import annotations

import dataclasses
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, ContextManager, Dict, Optional, Sequence, Union

from repro.analysis.loss import loss_stats
from repro.analysis.stats import ReplicationSummary, replicate
from repro.analysis.timeseries import summarize
from repro.errors import ConfigurationError
from repro.experiments.cache import CampaignCache, resolve_cache
from repro.experiments.config import EXECUTION_MODES, ExperimentConfig
from repro.experiments.runner import (
    build_scenario,
    probe_scenario,
    run_experiment_timed,
)
from repro.net.routing import Network
from repro.netdyn.trace import ProbeTrace
from repro.obs.export import write_chrome_trace, write_spans_jsonl
from repro.obs.manifest import write_manifest, write_timing
from repro.obs.progress import ProgressLike, resolve_progress
from repro.obs.spans import (
    CHROME_SPAN_FILE,
    MERGED_SPAN_FILE,
    PHASE_ANALYSIS,
    PHASE_CACHE,
    PHASE_CAMPAIGN,
    PHASE_CELL,
    PHASE_MERGE,
    PHASE_SETUP,
    PHASE_SIM,
    SpanTracer,
    append_spans,
    clear_worker_files,
    merge_spans,
    read_span_dir,
    resolve_span_dir,
    summarize_spans,
)
from repro.units import seconds_to_ms


@dataclass
class CampaignSpec:
    """Definition of a measurement campaign.

    Attributes
    ----------
    deltas:
        Probe intervals to sweep, seconds.
    seeds:
        Seeds to replicate each cell with.
    duration:
        Probe-train length per experiment, seconds.
    scenario:
        Topology name (see :class:`~repro.experiments.config.ExperimentConfig`).
    scenario_kwargs:
        Extra topology parameters, applied to every cell.
    output_dir:
        When given, every trace is saved as
        ``<output_dir>/trace_d<delta_ms>_s<seed>.csv``.
    mode:
        Execution mode applied to every cell: ``"event"`` (exact, the
        golden reference) or ``"analytic"`` (fast-forwarded bottleneck;
        see :mod:`repro.experiments.fastforward`).  Hashed into every
        cell fingerprint, so the two modes never share cache entries.
    """

    deltas: Sequence[float]
    seeds: Sequence[int]
    duration: float = 120.0
    scenario: str = "inria-umd"
    scenario_kwargs: dict = field(default_factory=dict)
    output_dir: Optional[Union[str, Path]] = None
    mode: str = "event"

    def __post_init__(self) -> None:
        if not self.deltas:
            raise ConfigurationError("campaign needs at least one delta")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}")
        if self.mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {self.mode!r}; "
                f"expected one of {EXECUTION_MODES}")

    def cells(self) -> list[tuple[float, int]]:
        """Every (delta, seed) pair, in grid order (δ-major, seed-minor)."""
        return [(delta, seed) for delta in self.deltas for seed in self.seeds]


def cell_key(delta: float, seed: int) -> str:
    """Stable string id of one cell, e.g. ``"d100_s1"`` (δ in ms)."""
    return f"d{seconds_to_ms(delta):g}_s{seed}"


@dataclass
class CellResult:
    """Everything one (delta, seed) cell produces.

    Returned by :func:`_run_cell`; plain data (numpy arrays, dicts,
    floats) so it pickles cleanly across the process pool.
    """

    delta: float
    seed: int
    trace: ProbeTrace
    #: queue label -> drop/occupancy stats (see :func:`collect_queue_stats`).
    queue_stats: dict[str, dict[str, float]]
    #: flat metric name -> value (see :func:`_cell_metrics`).
    metrics: dict[str, float]
    #: host wall-clock cost of the cell (build + warm-up + probe train).
    wall_seconds: float


@dataclass
class CampaignResult:
    """All traces and per-δ cross-seed summaries of one campaign."""

    spec: CampaignSpec
    #: (delta, seed) -> trace.
    traces: dict[tuple[float, int], ProbeTrace]
    #: delta -> cross-seed metric summary.
    summaries: dict[float, ReplicationSummary]
    #: (delta, seed) -> {queue label -> drop/occupancy stats}.
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = \
        field(default_factory=dict)
    #: cell key ("d<ms>_s<seed>") -> host wall seconds for that cell.
    cell_wall_seconds: dict[str, float] = field(default_factory=dict)
    #: worker processes the campaign was executed with.
    workers: int = 1
    #: cell-cache accounting for this run (None when no cache was used):
    #: hits/misses/bytes plus a per-cell hit-or-miss map.  Execution
    #: mechanics only — lands in timing.json, never the manifest.
    cache_stats: Optional[Dict[str, Any]] = None

    def table(self) -> str:
        """Per-δ metric table with cross-seed means."""
        lines = [f"{'delta':>8} {'ulp':>14} {'clp':>14} "
                 f"{'mean rtt ms':>16} {'runs':>5}"]
        for delta in self.spec.deltas:
            summary = self.summaries[delta]
            ulp = summary.interval("ulp") if len(self.spec.seeds) > 1 \
                else None
            mean_of = {k: sum(v) / len(v) for k, v in summary.values.items()}
            ulp_text = (f"{mean_of['ulp']:.3f}±{ulp.width / 2:.3f}"
                        if ulp else f"{mean_of['ulp']:.3f}")
            lines.append(
                f"{seconds_to_ms(delta):6.0f}ms {ulp_text:>14} "
                f"{mean_of['clp']:14.3f} "
                f"{seconds_to_ms(mean_of['mean_rtt']):16.1f} "
                f"{len(self.spec.seeds):5d}")
        return "\n".join(lines)

    def queue_table(self) -> str:
        """Per-cell queue report: drops and time-weighted occupancy."""
        lines = [f"{'delta':>8} {'seed':>5} {'queue':<44} {'drops':>7} "
                 f"{'loss':>7} {'occ pkts':>9} {'max':>5}"]
        for (delta, seed), queues in sorted(self.queue_stats.items()):
            for label, stats in queues.items():
                lines.append(
                    f"{seconds_to_ms(delta):6.0f}ms {seed:5d} {label:<44} "
                    f"{int(stats['drops']):7d} "
                    f"{stats['loss_fraction']:7.3f} "
                    f"{stats['occupancy_mean_pkts']:9.2f} "
                    f"{int(stats['occupancy_max_pkts']):5d}")
        return "\n".join(lines)


def collect_queue_stats(network: Network) -> dict[str, dict[str, float]]:
    """Drop counts and time-weighted occupancy for every active queue.

    Queues that never saw an arrival are skipped.  Keys are
    ``"<node>-><peer>"`` interface labels; values are plain floats so the
    result drops straight into a JSON manifest.
    """
    stats: dict[str, dict[str, float]] = {}
    for node_name in sorted(network.nodes):
        node = network.nodes[node_name]
        for peer_name in sorted(node.interfaces):
            queue = node.interfaces[peer_name].queue
            if queue.arrivals == 0:
                continue
            stats[f"{node_name}->{peer_name}"] = {
                "arrivals": float(queue.arrivals),
                "drops": float(queue.drops),
                "departures": float(queue.departures),
                "loss_fraction": queue.loss_fraction,
                "occupancy_mean_pkts": queue.occupancy_packets.mean(),
                "occupancy_max_pkts": queue.occupancy_packets.maximum(),
                "occupancy_mean_bytes": queue.occupancy_bytes.mean(),
            }
    return stats


#: Ceiling applied to plg so cross-seed aggregation stays finite (plg is
#: 1/(1-clp), which diverges as clp -> 1).
PLG_CEILING = 1e6


def _cell_metrics(trace: ProbeTrace) -> dict[str, float]:
    losses = loss_stats(trace)
    delay = summarize(trace)
    return {
        "ulp": losses.ulp,
        "clp": losses.clp,
        "plg": min(losses.plg, PLG_CEILING),  # keep aggregation finite
        # Surfaced so downstream aggregation can tell a true 1e6 from a
        # clamped divergence (it used to be silent).
        "plg_clamped": losses.plg > PLG_CEILING,
        "mean_rtt": delay.mean,
        "p99_rtt": delay.p99,
        "min_rtt": delay.minimum,
    }


def _run_cell(spec: CampaignSpec, delta: float, seed: int,
              span_dir: Optional[Path] = None) -> CellResult:
    """Execute one (delta, seed) cell and return its full result.

    Pure with respect to the campaign result: the simulated outcome reads
    only the arguments and touches no shared state, so the cell can run in
    this process or in a pool worker interchangeably.  Trace CSVs and
    manifests are written by the parent after the deterministic merge.
    With ``span_dir`` set the worker additionally times its
    setup/sim/analysis phases and appends the span records to its
    per-process JSONL file there — telemetry only, written beside (never
    into) the deterministic artifacts, and the simulated work goes through
    the exact same calls (:func:`~repro.experiments.runner.build_scenario`
    + :func:`~repro.experiments.runner.probe_scenario`, the decomposition
    of :func:`~repro.experiments.runner.run_experiment_timed`), so the
    returned trace is byte-identical with spans on or off.
    """
    config = ExperimentConfig(delta=delta, duration=spec.duration,
                              seed=seed, scenario=spec.scenario,
                              scenario_kwargs=dict(spec.scenario_kwargs),
                              mode=getattr(spec, "mode", "event"))
    if config.mode == "analytic":
        return _run_cell_analytic(config, span_dir)
    if span_dir is None:
        trace, scenario, wall = run_experiment_timed(config)
        return CellResult(delta=delta, seed=seed, trace=trace,
                          queue_stats=collect_queue_stats(scenario.network),
                          metrics=_cell_metrics(trace), wall_seconds=wall)
    key = cell_key(delta, seed)
    tracer = SpanTracer()
    with tracer.span(f"cell {key}", phase=PHASE_CELL, cell=key):
        # Same host-bookkeeping window as run_experiment_timed: build +
        # warm-up + probe train (timing.json semantics are unchanged).
        started = perf_counter()  # repro: noqa[FLOW001]
        with tracer.span("setup", phase=PHASE_SETUP):
            scenario = build_scenario(config)
            scenario.start_traffic(at=0.0)
        with tracer.span("sim", phase=PHASE_SIM):
            trace = probe_scenario(scenario, config)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        with tracer.span("analysis", phase=PHASE_ANALYSIS):
            queue_stats = collect_queue_stats(scenario.network)
            metrics = _cell_metrics(trace)
    append_spans(span_dir, tracer.records)
    return CellResult(delta=delta, seed=seed, trace=trace,
                      queue_stats=queue_stats, metrics=metrics,
                      wall_seconds=wall)


def _run_cell_analytic(config: ExperimentConfig,
                       span_dir: Optional[Path]) -> CellResult:
    """The analytic-mode cell body: fast-forward instead of simulate.

    Queue statistics come from the fast-forward engine itself (the event
    network's queues never ran; on an event fallback the engine reports
    the network queues as usual).  The ``sim`` span covers the engine
    run, mirroring the event path's phase split.
    """
    # Imported here, like the runner does, so event-only campaigns never
    # pay for (or depend on) the analytic engine.
    from repro.experiments.fastforward import run_fastforward_experiment
    if span_dir is None:
        started = perf_counter()  # repro: noqa[FLOW001]
        result = run_fastforward_experiment(config)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        return CellResult(delta=config.delta, seed=config.seed,
                          trace=result.trace, queue_stats=result.queue_stats,
                          metrics=_cell_metrics(result.trace),
                          wall_seconds=wall)
    key = cell_key(config.delta, config.seed)
    tracer = SpanTracer()
    with tracer.span(f"cell {key}", phase=PHASE_CELL, cell=key):
        started = perf_counter()  # repro: noqa[FLOW001]
        with tracer.span("sim", phase=PHASE_SIM):
            result = run_fastforward_experiment(config)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        with tracer.span("analysis", phase=PHASE_ANALYSIS):
            metrics = _cell_metrics(result.trace)
    append_spans(span_dir, tracer.records)
    return CellResult(delta=config.delta, seed=config.seed,
                      trace=result.trace, queue_stats=result.queue_stats,
                      metrics=metrics, wall_seconds=wall)


def _span(tracer: Optional[SpanTracer], name: str, phase: str,
          cell: str = "") -> ContextManager[None]:
    """A tracer span, or a no-op context when telemetry is disabled."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, phase=phase, cell=cell)


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 cache: Union[CampaignCache, str, Path, None] = None,
                 spans: Union[bool, str, Path, None] = None,
                 progress: ProgressLike = None) -> CampaignResult:
    """Execute every (delta, seed) cell of the campaign.

    Parameters
    ----------
    spec:
        The campaign grid.
    workers:
        Worker processes to fan cells out over.  ``1`` (the default) runs
        every cell serially in this process; ``N > 1`` uses a
        ``ProcessPoolExecutor``.  Both paths run the same per-cell worker
        and merge results in grid order, so the resulting tables, CSVs,
        and ``manifest.json`` are byte-identical either way.
    cache:
        Optional cell cache — a directory path or a
        :class:`~repro.experiments.cache.CampaignCache`.  Cells whose
        full causal input
        is already cached are loaded instead of simulated; fresh results
        are stored back.  A warm re-run writes byte-identical artifacts to
        a cold one; only ``timing.json`` (and the result's
        ``cache_stats``) records what was hit.
    spans:
        Span telemetry: ``True`` writes span files under
        ``<output_dir>/spans``; a path uses that directory; ``None``/
        ``False`` (the default) records nothing.  Workers append their
        setup/sim/analysis spans to per-process JSONL files; the parent
        merges everything in grid order into ``spans.jsonl`` plus a Chrome
        ``trace_event`` flame graph (``trace.json``) and summarizes phase
        totals into ``timing.json``.  Telemetry only: every deterministic
        artifact is byte-identical with spans on or off.
    progress:
        Live progress reporting: ``True``/``"auto"`` draws a status line
        when stderr is a TTY, ``"on"`` forces it, ``None``/``False``/
        ``"off"`` (the default) is silent, and an existing
        :class:`~repro.obs.progress.ProgressReporter` is used as-is.
        Pure presentation on its stream — artifacts are unaffected.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    cache = resolve_cache(cache)
    output_dir = Path(spec.output_dir) if spec.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)
    span_dir = resolve_span_dir(spans, spec.output_dir)
    tracer: Optional[SpanTracer] = None
    if span_dir is not None:
        span_dir.mkdir(parents=True, exist_ok=True)
        # Leftover per-worker files from an earlier run must not leak
        # into this run's merge.
        clear_worker_files(span_dir)
        tracer = SpanTracer(worker="main")

    grid = spec.cells()
    grid_keys = [cell_key(delta, seed) for delta, seed in grid]
    reporter = resolve_progress(progress, total=len(grid), workers=workers)
    if reporter is not None:
        reporter.start()

    with _span(tracer, "campaign", PHASE_CAMPAIGN):
        hits: dict[tuple[float, int], CellResult] = {}
        pending = grid
        bytes_read_before = bytes_written_before = 0
        if cache is not None:
            bytes_read_before = cache.bytes_read
            bytes_written_before = cache.bytes_written
            pending = []
            for delta, seed in grid:
                key = cell_key(delta, seed)
                with _span(tracer, f"cache {key}", PHASE_CACHE, cell=key):
                    cell = cache.load(spec, delta, seed)
                if cell is not None:
                    hits[(delta, seed)] = cell
                    if reporter is not None:
                        reporter.cell_cached(key)
                else:
                    pending.append((delta, seed))

        if not pending:
            fresh = []
        elif workers == 1:
            fresh = []
            for delta, seed in pending:
                cell = _run_cell(spec, delta, seed, span_dir=span_dir)
                fresh.append(cell)
                if reporter is not None:
                    reporter.cell_done(cell_key(delta, seed),
                                       cell.wall_seconds)
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = []
                key_of = {}
                for delta, seed in pending:
                    future = pool.submit(_run_cell, spec, delta, seed,
                                         span_dir=span_dir)
                    futures.append(future)
                    key_of[future] = cell_key(delta, seed)
                if reporter is not None:
                    # Report cells as they finish; the result merge below
                    # still walks futures in submission (= grid) order.
                    for future in as_completed(futures):
                        reporter.cell_done(key_of[future],
                                           future.result().wall_seconds)
                # Collect in submission (= grid) order; completion order
                # is irrelevant to the merged result.
                fresh = [future.result() for future in futures]

        if cache is not None:
            for cell in fresh:
                cache.store(spec, cell.delta, cell.seed, cell)

        # Merge hits and fresh results back into grid order: downstream
        # artifacts must not depend on which cells came from where.
        by_cell = dict(hits)
        by_cell.update({(cell.delta, cell.seed): cell for cell in fresh})
        results = [by_cell[(delta, seed)] for delta, seed in grid]

        cache_stats: Optional[Dict[str, Any]] = None
        if cache is not None:
            cache_stats = {
                "directory": str(cache.directory),
                "refresh": cache.refresh,
                "hits": len(hits),
                "misses": len(grid) - len(hits),
                "bytes_read": cache.bytes_read - bytes_read_before,
                "bytes_written": cache.bytes_written - bytes_written_before,
                "saved_cell_seconds": sum(
                    cell.wall_seconds for cell in hits.values()),
                "cells": {cell_key(delta, seed):
                          "hit" if (delta, seed) in hits else "miss"
                          for delta, seed in grid},
            }

        with _span(tracer, "merge", PHASE_MERGE):
            traces: dict[tuple[float, int], ProbeTrace] = {}
            queue_stats: dict[tuple[float, int],
                              dict[str, dict[str, float]]] = {}
            cell_metrics: dict[str, dict[str, float]] = {}
            cell_wall: dict[str, float] = {}
            written: list[str] = []
            for cell in results:
                key = cell_key(cell.delta, cell.seed)
                traces[(cell.delta, cell.seed)] = cell.trace
                queue_stats[(cell.delta, cell.seed)] = cell.queue_stats
                cell_metrics[key] = cell.metrics
                cell_wall[key] = cell.wall_seconds
                if output_dir:
                    name = f"trace_{key}.csv"
                    cell.trace.save_csv(output_dir / name)
                    written.append(name)

            metrics_by_cell = {(cell.delta, cell.seed): cell.metrics
                               for cell in results}
            summaries = {
                delta: replicate({seed: metrics_by_cell[(delta, seed)]
                                  for seed in spec.seeds}, spec.seeds)
                for delta in spec.deltas
            }

            result = CampaignResult(spec=spec, traces=traces,
                                    summaries=summaries,
                                    queue_stats=queue_stats,
                                    cell_wall_seconds=cell_wall,
                                    workers=workers,
                                    cache_stats=cache_stats)
            if output_dir:
                # The manifest records exactly the files this campaign
                # wrote — never a directory listing, which would pick up
                # leftovers from earlier runs — and strips output_dir from
                # the config so two runs of the same spec into different
                # directories stay byte-identical.
                write_manifest(
                    output_dir / "manifest.json",
                    config=dataclasses.replace(spec, output_dir=None),
                    metrics={"cells": cell_metrics},
                    extra={"queues": {cell_key(d, s): stats
                                      for (d, s), stats
                                      in queue_stats.items()},
                           "traces": sorted(written)})

    if reporter is not None:
        reporter.finish()

    # Span post-processing happens after the campaign span closes so the
    # root span itself lands in the merged log.  All of it is telemetry:
    # span files and the timing.json summary, never the manifest.
    span_summary: Optional[Dict[str, Any]] = None
    if span_dir is not None and tracer is not None:
        worker_records = read_span_dir(span_dir)
        clear_worker_files(span_dir)
        merged = merge_spans(list(tracer.records) + worker_records,
                             grid_keys)
        write_spans_jsonl(merged, span_dir / MERGED_SPAN_FILE)
        write_chrome_trace(span_dir / CHROME_SPAN_FILE, spans=merged)
        span_summary = summarize_spans(merged)

    if output_dir:
        write_timing(output_dir / "timing.json", workers=workers,
                     cell_wall_seconds=cell_wall, cache=cache_stats,
                     spans=span_summary)
    return result


#: Campaign trace filename: trace_d<delta_ms>_s<seed>.csv (δ via %g).
_TRACE_NAME = re.compile(
    r"trace_d(?P<ms>[0-9.eE+-]+)_s(?P<seed>\d+)\.csv\Z")


def _trace_order(path: Path) -> tuple:
    """Deterministic (δ, seed) sort key parsed from a trace filename.

    Filesystem glob order is locale/filesystem-dependent and lexicographic
    ("d100" before "d8"); campaigns are (δ, seed) grids, so traces load in
    numeric grid order.  Names that don't match the campaign pattern sort
    after all grid traces, by name.
    """
    match = _TRACE_NAME.match(path.name)
    if match is None:
        return (1, 0.0, 0, path.name)
    try:
        delta_ms = float(match.group("ms"))
    except ValueError:
        return (1, 0.0, 0, path.name)
    return (0, delta_ms, int(match.group("seed")), path.name)


def load_campaign_traces(directory: Union[str, Path]) -> list[ProbeTrace]:
    """Load every ``trace_*.csv`` previously saved by a campaign.

    Traces are returned in (δ, seed) grid order parsed from the
    filenames — never in filesystem-glob order, which sorts "d100"
    before "d8".
    """
    directory = Path(directory)
    paths = sorted(directory.glob("trace_*.csv"), key=_trace_order)
    return [ProbeTrace.load_csv(path) for path in paths]
