"""Measurement campaigns: grids of probe experiments with saved traces.

The paper's Table 3 is a campaign — one experiment per δ.  This module
generalizes that: run a grid of (δ × seed), persist every trace as CSV,
and aggregate the loss/delay metrics with cross-seed confidence intervals
(:mod:`repro.analysis.stats`).  The ``repro-experiment`` CLI covers single
runs; campaigns are the API for systematic studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.loss import loss_stats
from repro.analysis.stats import ReplicationSummary, replicate
from repro.analysis.timeseries import summarize
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment_with_scenario
from repro.net.routing import Network
from repro.netdyn.trace import ProbeTrace
from repro.obs.manifest import write_manifest
from repro.units import seconds_to_ms


@dataclass
class CampaignSpec:
    """Definition of a measurement campaign.

    Attributes
    ----------
    deltas:
        Probe intervals to sweep, seconds.
    seeds:
        Seeds to replicate each cell with.
    duration:
        Probe-train length per experiment, seconds.
    scenario:
        Topology name (see :class:`~repro.experiments.config.ExperimentConfig`).
    scenario_kwargs:
        Extra topology parameters, applied to every cell.
    output_dir:
        When given, every trace is saved as
        ``<output_dir>/trace_d<delta_ms>_s<seed>.csv``.
    """

    deltas: Sequence[float]
    seeds: Sequence[int]
    duration: float = 120.0
    scenario: str = "inria-umd"
    scenario_kwargs: dict = field(default_factory=dict)
    output_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if not self.deltas:
            raise ConfigurationError("campaign needs at least one delta")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}")


@dataclass
class CampaignResult:
    """All traces and per-δ cross-seed summaries of one campaign."""

    spec: CampaignSpec
    #: (delta, seed) -> trace.
    traces: dict[tuple[float, int], ProbeTrace]
    #: delta -> cross-seed metric summary.
    summaries: dict[float, ReplicationSummary]
    #: (delta, seed) -> {queue label -> drop/occupancy stats}.
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = \
        field(default_factory=dict)

    def table(self) -> str:
        """Per-δ metric table with cross-seed means."""
        lines = [f"{'delta':>8} {'ulp':>14} {'clp':>14} "
                 f"{'mean rtt ms':>16} {'runs':>5}"]
        for delta in self.spec.deltas:
            summary = self.summaries[delta]
            ulp = summary.interval("ulp") if len(self.spec.seeds) > 1 \
                else None
            mean_of = {k: sum(v) / len(v) for k, v in summary.values.items()}
            ulp_text = (f"{mean_of['ulp']:.3f}±{ulp.width / 2:.3f}"
                        if ulp else f"{mean_of['ulp']:.3f}")
            lines.append(
                f"{seconds_to_ms(delta):6.0f}ms {ulp_text:>14} "
                f"{mean_of['clp']:14.3f} "
                f"{seconds_to_ms(mean_of['mean_rtt']):16.1f} "
                f"{len(self.spec.seeds):5d}")
        return "\n".join(lines)

    def queue_table(self) -> str:
        """Per-cell queue report: drops and time-weighted occupancy."""
        lines = [f"{'delta':>8} {'seed':>5} {'queue':<44} {'drops':>7} "
                 f"{'loss':>7} {'occ pkts':>9} {'max':>5}"]
        for (delta, seed), queues in sorted(self.queue_stats.items()):
            for label, stats in queues.items():
                lines.append(
                    f"{seconds_to_ms(delta):6.0f}ms {seed:5d} {label:<44} "
                    f"{int(stats['drops']):7d} "
                    f"{stats['loss_fraction']:7.3f} "
                    f"{stats['occupancy_mean_pkts']:9.2f} "
                    f"{int(stats['occupancy_max_pkts']):5d}")
        return "\n".join(lines)


def collect_queue_stats(network: Network) -> dict[str, dict[str, float]]:
    """Drop counts and time-weighted occupancy for every active queue.

    Queues that never saw an arrival are skipped.  Keys are
    ``"<node>-><peer>"`` interface labels; values are plain floats so the
    result drops straight into a JSON manifest.
    """
    stats: dict[str, dict[str, float]] = {}
    for node_name in sorted(network.nodes):
        node = network.nodes[node_name]
        for peer_name in sorted(node.interfaces):
            queue = node.interfaces[peer_name].queue
            if queue.arrivals == 0:
                continue
            stats[f"{node_name}->{peer_name}"] = {
                "arrivals": float(queue.arrivals),
                "drops": float(queue.drops),
                "departures": float(queue.departures),
                "loss_fraction": queue.loss_fraction,
                "occupancy_mean_pkts": queue.occupancy_packets.mean(),
                "occupancy_max_pkts": queue.occupancy_packets.maximum(),
                "occupancy_mean_bytes": queue.occupancy_bytes.mean(),
            }
    return stats


def _cell_metrics(trace: ProbeTrace) -> dict[str, float]:
    losses = loss_stats(trace)
    delay = summarize(trace)
    return {
        "ulp": losses.ulp,
        "clp": losses.clp,
        "plg": min(losses.plg, 1e6),  # keep aggregation finite
        "mean_rtt": delay.mean,
        "p99_rtt": delay.p99,
        "min_rtt": delay.minimum,
    }


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Execute every (delta, seed) cell of the campaign."""
    output_dir = Path(spec.output_dir) if spec.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    traces: dict[tuple[float, int], ProbeTrace] = {}
    summaries: dict[float, ReplicationSummary] = {}
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = {}
    cell_metrics: dict[str, dict[str, float]] = {}
    for delta in spec.deltas:

        def one_seed(seed: int, _delta=delta) -> dict[str, float]:
            config = ExperimentConfig(delta=_delta, duration=spec.duration,
                                      seed=seed, scenario=spec.scenario,
                                      scenario_kwargs=dict(
                                          spec.scenario_kwargs))
            trace, scenario = run_experiment_with_scenario(config)
            traces[(_delta, seed)] = trace
            queue_stats[(_delta, seed)] = collect_queue_stats(
                scenario.network)
            if output_dir:
                name = f"trace_d{seconds_to_ms(_delta):g}_s{seed}.csv"
                trace.save_csv(output_dir / name)
            metrics = _cell_metrics(trace)
            cell_metrics[f"d{seconds_to_ms(_delta):g}_s{seed}"] = metrics
            return metrics

        summaries[delta] = replicate(one_seed, spec.seeds)

    result = CampaignResult(spec=spec, traces=traces, summaries=summaries,
                            queue_stats=queue_stats)
    if output_dir:
        write_manifest(
            output_dir / "manifest.json",
            config=spec,
            metrics={"cells": cell_metrics},
            extra={"queues": {f"d{seconds_to_ms(d):g}_s{s}": stats
                              for (d, s), stats in queue_stats.items()},
                   "traces": sorted(p.name
                                    for p in output_dir.glob("trace_*.csv"))})
    return result


def load_campaign_traces(directory: Union[str, Path]) -> list[ProbeTrace]:
    """Load every ``trace_*.csv`` previously saved by a campaign."""
    directory = Path(directory)
    traces = []
    for path in sorted(directory.glob("trace_*.csv")):
        traces.append(ProbeTrace.load_csv(path))
    return traces
