"""Measurement campaigns: grids of probe experiments with saved traces.

The paper's Table 3 is a campaign — one experiment per δ.  This module
generalizes that: run a grid of (δ × seed), persist every trace as CSV,
and aggregate the loss/delay metrics with cross-seed confidence intervals
(:mod:`repro.analysis.stats`).  The ``repro-experiment`` CLI covers single
runs; campaigns are the API for systematic studies (``repro-campaign``
drives this module from the command line).

Cells are independent by construction — each owns its own
:class:`~repro.sim.kernel.Simulator` seeded from the cell's seed — so the
grid is embarrassingly parallel.  :func:`run_campaign` executes it one of
three ways, all running the same pure worker (:func:`_run_cell`) and all
producing byte-identical tables, trace CSVs, and ``manifest.json``:

* ``workers=1`` — serial, in this process (the default).
* ``pool="warm"`` — a persistent :class:`~repro.experiments.pool.
  WarmWorkerPool`: workers import the repro closure once (verified by a
  cache-salt handshake), serve deterministic *lease batches* of cells
  (:func:`~repro.experiments.pool.plan_leases`), and hand trace columns
  back through shared memory; the parent folds results into artifacts
  incrementally with a streaming grid-order merge (heap keyed on grid
  index) while later leases are still simulating.
* ``pool="spawn"`` — the legacy per-cell ``ProcessPoolExecutor`` over
  cold ``spawn``-start workers: maximal isolation, one submit/pickle
  round trip per cell, a full barrier before the merge.  Kept as the
  portability/isolation mode and as the dispatch-overhead baseline the
  warm pool is benchmarked against.

Execution mechanics — worker counts, lease/batch shapes, shared-memory
byte volumes, per-cell wall seconds — land exclusively in the
``timing.json`` sidecar (its ``dispatch`` block), never in the manifest.

Cell purity also makes cells memoizable: pass ``cache=`` (a directory or
:class:`~repro.experiments.cache.CampaignCache`) and :func:`run_campaign`
consults the content-addressed cell cache before submitting work — only
misses are simulated, hits are loaded from disk, and both are merged in
grid order, so a warm re-run produces byte-identical artifacts to a cold
one (the serial==parallel invariant extended to cold==warm).  Cache
behaviour (hits, misses, byte volumes) is execution mechanics and lands in
``timing.json``, never the manifest.
"""

from __future__ import annotations

import dataclasses
import heapq
import multiprocessing
import re
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, ContextManager, Dict, List, Optional, Sequence, \
    Tuple, Union

from repro.analysis.loss import loss_stats
from repro.analysis.stats import ReplicationSummary, replicate
from repro.analysis.timeseries import summarize
from repro.errors import ConfigurationError
from repro.experiments.cache import CampaignCache, resolve_cache
from repro.experiments.config import EXECUTION_MODES, ExperimentConfig
from repro.experiments.pool import WarmWorkerPool, plan_leases
from repro.experiments.runner import (
    build_scenario,
    estimate_cell_seconds,
    probe_scenario,
    run_experiment_timed,
)
from repro.net.routing import Network
from repro.netdyn.trace import ProbeTrace
from repro.obs.export import write_chrome_trace, write_spans_jsonl
from repro.obs.manifest import write_manifest, write_timing
from repro.obs.progress import ProgressLike, resolve_progress
from repro.obs.spans import (
    CHROME_SPAN_FILE,
    MERGED_SPAN_FILE,
    PHASE_ANALYSIS,
    PHASE_CACHE,
    PHASE_CAMPAIGN,
    PHASE_CELL,
    PHASE_LEASE,
    PHASE_MERGE,
    PHASE_SETUP,
    PHASE_SIM,
    SpanTracer,
    append_spans,
    clear_worker_files,
    merge_spans,
    read_span_dir,
    resolve_span_dir,
    summarize_spans,
)
from repro.units import seconds_to_ms


@dataclass
class CampaignSpec:
    """Definition of a measurement campaign.

    Attributes
    ----------
    deltas:
        Probe intervals to sweep, seconds.
    seeds:
        Seeds to replicate each cell with.
    duration:
        Probe-train length per experiment, seconds.
    scenario:
        Topology name (see :class:`~repro.experiments.config.ExperimentConfig`).
    scenario_kwargs:
        Extra topology parameters, applied to every cell.
    output_dir:
        When given, every trace is saved as
        ``<output_dir>/trace_d<delta_ms>_s<seed>.csv``.
    mode:
        Execution mode applied to every cell: ``"event"`` (exact, the
        golden reference) or ``"analytic"`` (fast-forwarded bottleneck;
        see :mod:`repro.experiments.fastforward`).  Hashed into every
        cell fingerprint, so the two modes never share cache entries.
    """

    deltas: Sequence[float]
    seeds: Sequence[int]
    duration: float = 120.0
    scenario: str = "inria-umd"
    scenario_kwargs: dict = field(default_factory=dict)
    output_dir: Optional[Union[str, Path]] = None
    mode: str = "event"

    def __post_init__(self) -> None:
        if not self.deltas:
            raise ConfigurationError("campaign needs at least one delta")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}")
        if self.mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {self.mode!r}; "
                f"expected one of {EXECUTION_MODES}")

    def cells(self) -> list[tuple[float, int]]:
        """Every (delta, seed) pair, in grid order (δ-major, seed-minor)."""
        return [(delta, seed) for delta in self.deltas for seed in self.seeds]


def cell_key(delta: float, seed: int) -> str:
    """Stable string id of one cell, e.g. ``"d100_s1"`` (δ in ms)."""
    return f"d{seconds_to_ms(delta):g}_s{seed}"


@dataclass
class CellResult:
    """Everything one (delta, seed) cell produces.

    Returned by :func:`_run_cell`; plain data (numpy arrays, dicts,
    floats) so it pickles cleanly across the process pool.
    """

    delta: float
    seed: int
    trace: ProbeTrace
    #: queue label -> drop/occupancy stats (see :func:`collect_queue_stats`).
    queue_stats: dict[str, dict[str, float]]
    #: flat metric name -> value (see :func:`_cell_metrics`).
    metrics: dict[str, float]
    #: host wall-clock cost of the cell (build + warm-up + probe train).
    wall_seconds: float


@dataclass
class CampaignResult:
    """All traces and per-δ cross-seed summaries of one campaign."""

    spec: CampaignSpec
    #: (delta, seed) -> trace.
    traces: dict[tuple[float, int], ProbeTrace]
    #: delta -> cross-seed metric summary.
    summaries: dict[float, ReplicationSummary]
    #: (delta, seed) -> {queue label -> drop/occupancy stats}.
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = \
        field(default_factory=dict)
    #: cell key ("d<ms>_s<seed>") -> host wall seconds for that cell.
    cell_wall_seconds: dict[str, float] = field(default_factory=dict)
    #: worker processes the campaign was executed with.
    workers: int = 1
    #: cell-cache accounting for this run (None when no cache was used):
    #: hits/misses/bytes plus a per-cell hit-or-miss map.  Execution
    #: mechanics only — lands in timing.json, never the manifest.
    cache_stats: Optional[Dict[str, Any]] = None
    #: dispatch accounting: which executor ran the grid (serial / warm
    #: pool / spawn pool), lease count and batch size, shared-memory
    #: transport volumes.  Execution mechanics only — lands in
    #: timing.json's ``dispatch`` block, never the manifest.
    dispatch_stats: Optional[Dict[str, Any]] = None

    def table(self) -> str:
        """Per-δ metric table with cross-seed means."""
        lines = [f"{'delta':>8} {'ulp':>14} {'clp':>14} "
                 f"{'mean rtt ms':>16} {'runs':>5}"]
        for delta in self.spec.deltas:
            summary = self.summaries[delta]
            ulp = summary.interval("ulp") if len(self.spec.seeds) > 1 \
                else None
            mean_of = {k: sum(v) / len(v) for k, v in summary.values.items()}
            ulp_text = (f"{mean_of['ulp']:.3f}±{ulp.width / 2:.3f}"
                        if ulp else f"{mean_of['ulp']:.3f}")
            lines.append(
                f"{seconds_to_ms(delta):6.0f}ms {ulp_text:>14} "
                f"{mean_of['clp']:14.3f} "
                f"{seconds_to_ms(mean_of['mean_rtt']):16.1f} "
                f"{len(self.spec.seeds):5d}")
        return "\n".join(lines)

    def queue_table(self) -> str:
        """Per-cell queue report: drops and time-weighted occupancy."""
        lines = [f"{'delta':>8} {'seed':>5} {'queue':<44} {'drops':>7} "
                 f"{'loss':>7} {'occ pkts':>9} {'max':>5}"]
        for (delta, seed), queues in sorted(self.queue_stats.items()):
            for label, stats in queues.items():
                lines.append(
                    f"{seconds_to_ms(delta):6.0f}ms {seed:5d} {label:<44} "
                    f"{int(stats['drops']):7d} "
                    f"{stats['loss_fraction']:7.3f} "
                    f"{stats['occupancy_mean_pkts']:9.2f} "
                    f"{int(stats['occupancy_max_pkts']):5d}")
        return "\n".join(lines)


def collect_queue_stats(network: Network) -> dict[str, dict[str, float]]:
    """Drop counts and time-weighted occupancy for every active queue.

    Queues that never saw an arrival are skipped.  Keys are
    ``"<node>-><peer>"`` interface labels; values are plain floats so the
    result drops straight into a JSON manifest.
    """
    stats: dict[str, dict[str, float]] = {}
    for node_name in sorted(network.nodes):
        node = network.nodes[node_name]
        for peer_name in sorted(node.interfaces):
            queue = node.interfaces[peer_name].queue
            if queue.arrivals == 0:
                continue
            stats[f"{node_name}->{peer_name}"] = {
                "arrivals": float(queue.arrivals),
                "drops": float(queue.drops),
                "departures": float(queue.departures),
                "loss_fraction": queue.loss_fraction,
                "occupancy_mean_pkts": queue.occupancy_packets.mean(),
                "occupancy_max_pkts": queue.occupancy_packets.maximum(),
                "occupancy_mean_bytes": queue.occupancy_bytes.mean(),
            }
    return stats


#: Ceiling applied to plg so cross-seed aggregation stays finite (plg is
#: 1/(1-clp), which diverges as clp -> 1).
PLG_CEILING = 1e6


def _cell_metrics(trace: ProbeTrace) -> dict[str, float]:
    losses = loss_stats(trace)
    delay = summarize(trace)
    return {
        "ulp": losses.ulp,
        "clp": losses.clp,
        "plg": min(losses.plg, PLG_CEILING),  # keep aggregation finite
        # Surfaced so downstream aggregation can tell a true 1e6 from a
        # clamped divergence (it used to be silent).
        "plg_clamped": losses.plg > PLG_CEILING,
        "mean_rtt": delay.mean,
        "p99_rtt": delay.p99,
        "min_rtt": delay.minimum,
    }


def _run_cell(spec: CampaignSpec, delta: float, seed: int,
              span_dir: Optional[Path] = None,
              replay_memo: bool = True) -> CellResult:
    """Execute one (delta, seed) cell and return its full result.

    Pure with respect to the campaign result: the simulated outcome reads
    only the arguments and touches no shared state, so the cell can run in
    this process or in a pool worker interchangeably.  Trace CSVs and
    manifests are written by the parent after the deterministic merge.
    With ``span_dir`` set the worker additionally times its
    setup/sim/analysis phases and appends the span records to its
    per-process JSONL file there — telemetry only, written beside (never
    into) the deterministic artifacts, and the simulated work goes through
    the exact same calls (:func:`~repro.experiments.runner.build_scenario`
    + :func:`~repro.experiments.runner.probe_scenario`, the decomposition
    of :func:`~repro.experiments.runner.run_experiment_timed`), so the
    returned trace is byte-identical with spans on or off.
    """
    config = ExperimentConfig(delta=delta, duration=spec.duration,
                              seed=seed, scenario=spec.scenario,
                              scenario_kwargs=dict(spec.scenario_kwargs),
                              mode=getattr(spec, "mode", "event"))
    if config.mode == "analytic":
        return _run_cell_analytic(config, span_dir, replay_memo)
    if span_dir is None:
        trace, scenario, wall = run_experiment_timed(config)
        return CellResult(delta=delta, seed=seed, trace=trace,
                          queue_stats=collect_queue_stats(scenario.network),
                          metrics=_cell_metrics(trace), wall_seconds=wall)
    key = cell_key(delta, seed)
    tracer = SpanTracer()
    with tracer.span(f"cell {key}", phase=PHASE_CELL, cell=key):
        # Same host-bookkeeping window as run_experiment_timed: build +
        # warm-up + probe train (timing.json semantics are unchanged).
        started = perf_counter()  # repro: noqa[FLOW001]
        with tracer.span("setup", phase=PHASE_SETUP):
            scenario = build_scenario(config)
            scenario.start_traffic(at=0.0)
        with tracer.span("sim", phase=PHASE_SIM):
            trace = probe_scenario(scenario, config)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        with tracer.span("analysis", phase=PHASE_ANALYSIS):
            queue_stats = collect_queue_stats(scenario.network)
            metrics = _cell_metrics(trace)
    append_spans(span_dir, tracer.records)
    return CellResult(delta=delta, seed=seed, trace=trace,
                      queue_stats=queue_stats, metrics=metrics,
                      wall_seconds=wall)


def _run_cell_analytic(config: ExperimentConfig,
                       span_dir: Optional[Path],
                       replay_memo: bool = True) -> CellResult:
    """The analytic-mode cell body: fast-forward instead of simulate.

    Queue statistics come from the fast-forward engine itself (the event
    network's queues never ran; on an event fallback the engine reports
    the network queues as usual).  The ``sim`` span covers the engine
    run, mirroring the event path's phase split (memo misses add a nested
    ``replay`` span).  With ``replay_memo`` the engine reuses this
    process's :class:`~repro.experiments.fastforward.CrossReplayMemo`
    across cells of the same seed; the memo is pure reuse of
    deterministic streams, so results are byte-identical with it on or
    off.
    """
    # Imported here, like the runner does, so event-only campaigns never
    # pay for (or depend on) the analytic engine.
    from repro.experiments.fastforward import (
        process_replay_memo,
        run_fastforward_experiment,
    )
    memo = process_replay_memo() if replay_memo else None
    if span_dir is None:
        started = perf_counter()  # repro: noqa[FLOW001]
        result = run_fastforward_experiment(config, memo=memo)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        return CellResult(delta=config.delta, seed=config.seed,
                          trace=result.trace, queue_stats=result.queue_stats,
                          metrics=_cell_metrics(result.trace),
                          wall_seconds=wall)
    key = cell_key(config.delta, config.seed)
    tracer = SpanTracer()
    with tracer.span(f"cell {key}", phase=PHASE_CELL, cell=key):
        started = perf_counter()  # repro: noqa[FLOW001]
        with tracer.span("sim", phase=PHASE_SIM):
            result = run_fastforward_experiment(config, memo=memo,
                                                tracer=tracer)
        wall = perf_counter() - started  # repro: noqa[FLOW001]
        with tracer.span("analysis", phase=PHASE_ANALYSIS):
            metrics = _cell_metrics(result.trace)
    append_spans(span_dir, tracer.records)
    return CellResult(delta=config.delta, seed=config.seed,
                      trace=result.trace, queue_stats=result.queue_stats,
                      metrics=metrics, wall_seconds=wall)


def _run_cell_counted(spec: CampaignSpec, delta: float, seed: int,
                      span_dir: Optional[Path] = None,
                      replay_memo: bool = True,
                      ) -> Tuple[CellResult, int, int]:
    """:func:`_run_cell` plus this process's replay-memo hit/miss deltas.

    The spawn pool submits this wrapper so the parent can fold worker-side
    :class:`~repro.experiments.fastforward.CrossReplayMemo` accounting
    into ``timing.json`` — counters travel beside the cell, never inside
    it, keeping the cell result identical to the serial path's.
    """
    counting = replay_memo and getattr(spec, "mode", "event") == "analytic"
    if not counting:
        return (_run_cell(spec, delta, seed, span_dir=span_dir,
                          replay_memo=replay_memo), 0, 0)
    from repro.experiments.fastforward import process_replay_memo
    memo = process_replay_memo()
    hits_before, misses_before = memo.counters()
    cell = _run_cell(spec, delta, seed, span_dir=span_dir,
                     replay_memo=replay_memo)
    hits, misses = memo.counters()
    return cell, hits - hits_before, misses - misses_before


def _span(tracer: Optional[SpanTracer], name: str, phase: str,
          cell: str = "") -> ContextManager[None]:
    """A tracer span, or a no-op context when telemetry is disabled."""
    if tracer is None:
        return nullcontext()
    return tracer.span(name, phase=phase, cell=cell)


class _GridMerge:
    """Streaming grid-order fold of CellResults into campaign artifacts.

    Cells arrive in completion order (hits first, then whatever the
    executor yields); a heap keyed on grid index holds the out-of-order
    tail while every cell at the front of the grid is folded immediately —
    trace CSV written, fresh result stored to the cache, accumulators
    updated.  Folding is therefore strictly in (δ, seed) grid order no
    matter which executor ran the grid or how its completions interleaved,
    which is what keeps serial, warm-pool, and spawn-pool artifacts
    byte-identical — and it overlaps parent-side aggregation and cache
    writes with worker simulation instead of barriering on the full grid.
    """

    def __init__(self, spec: CampaignSpec,
                 grid: Sequence[Tuple[float, int]],
                 output_dir: Optional[Path],
                 cache: Optional[CampaignCache]) -> None:
        self._spec = spec
        self._order = {cell: index for index, cell in enumerate(grid)}
        self._output_dir = output_dir
        self._cache = cache
        self._heap: List[Tuple[int, bool, CellResult]] = []
        self._next = 0
        #: Grid-ordered accumulators (complete once every cell folded).
        self.results: List[CellResult] = []
        self.traces: Dict[Tuple[float, int], ProbeTrace] = {}
        self.queue_stats: Dict[Tuple[float, int],
                               Dict[str, Dict[str, float]]] = {}
        self.cell_metrics: Dict[str, Dict[str, float]] = {}
        self.cell_wall: Dict[str, float] = {}
        self.written: List[str] = []

    def add(self, cell: CellResult, cached: bool = False) -> None:
        """Accept one completed cell; fold every in-order prefix cell."""
        index = self._order[(cell.delta, cell.seed)]
        heapq.heappush(self._heap, (index, cached, cell))
        while self._heap and self._heap[0][0] == self._next:
            _, was_cached, ready = heapq.heappop(self._heap)
            self._fold(ready, was_cached)
            self._next += 1

    def _fold(self, cell: CellResult, cached: bool) -> None:
        key = cell_key(cell.delta, cell.seed)
        self.results.append(cell)
        self.traces[(cell.delta, cell.seed)] = cell.trace
        self.queue_stats[(cell.delta, cell.seed)] = cell.queue_stats
        self.cell_metrics[key] = cell.metrics
        self.cell_wall[key] = cell.wall_seconds
        if not cached and self._cache is not None:
            self._cache.store(self._spec, cell.delta, cell.seed, cell)
        if self._output_dir:
            name = f"trace_{key}.csv"
            cell.trace.save_csv(self._output_dir / name)
            self.written.append(name)

    def require_complete(self) -> None:
        if self._next != len(self._order):
            raise ConfigurationError(
                f"campaign merge incomplete: folded {self._next} of "
                f"{len(self._order)} cells")


def _spawn_context():
    """The ``spawn`` multiprocessing context (cold, stateless workers)."""
    if "spawn" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("spawn")
    return multiprocessing.get_context()  # pragma: no cover - exotic


def run_campaign(spec: CampaignSpec, workers: int = 1,
                 cache: Union[CampaignCache, str, Path, None] = None,
                 spans: Union[bool, str, Path, None] = None,
                 progress: ProgressLike = None,
                 pool: Union[str, WarmWorkerPool] = "warm",
                 batch_size: Optional[int] = None,
                 replay_memo: bool = True) -> CampaignResult:
    """Execute every (delta, seed) cell of the campaign.

    Parameters
    ----------
    spec:
        The campaign grid.
    workers:
        Worker processes to fan cells out over.  ``1`` (the default) runs
        every cell serially in this process; ``N > 1`` dispatches through
        the executor selected by ``pool``.  Every path runs the same
        per-cell worker and folds results in grid order, so the resulting
        tables, CSVs, and ``manifest.json`` are byte-identical whichever
        executor ran them.
    pool:
        Parallel executor (ignored when the grid runs serially):
        ``"warm"`` (the default) uses a persistent
        :class:`~repro.experiments.pool.WarmWorkerPool` — salt-verified
        warm workers serving batched cell leases with shared-memory trace
        hand-off; ``"spawn"`` uses the legacy per-cell
        ``ProcessPoolExecutor`` over cold ``spawn``-start workers (maximal
        isolation, highest dispatch overhead).  An existing
        :class:`~repro.experiments.pool.WarmWorkerPool` instance is used
        as-is and left running, so one pool can serve many campaigns —
        its worker count overrides ``workers``.
    batch_size:
        Cells per lease for the warm pool (default: auto-tuned from the
        grid size, worker count, and the per-cell duration estimate; see
        :func:`~repro.experiments.pool.plan_leases`).
    cache:
        Optional cell cache — a directory path or a
        :class:`~repro.experiments.cache.CampaignCache`.  The cache is
        consulted in one batched pass before dispatch; only the misses
        are planned into leases and simulated, and fresh results are
        stored back as they fold.  A warm re-run writes byte-identical
        artifacts to a cold one; only ``timing.json`` (and the result's
        ``cache_stats``) records what was hit.
    spans:
        Span telemetry: ``True`` writes span files under
        ``<output_dir>/spans``; a path uses that directory; ``None``/
        ``False`` (the default) records nothing.  Workers append their
        setup/sim/analysis spans to per-process JSONL files; the parent
        merges everything in grid order into ``spans.jsonl`` plus a Chrome
        ``trace_event`` flame graph (``trace.json``) and summarizes phase
        totals into ``timing.json``.  Telemetry only: every deterministic
        artifact is byte-identical with spans on or off.
    progress:
        Live progress reporting: ``True``/``"auto"`` draws a status line
        when stderr is a TTY, ``"on"`` forces it, ``None``/``False``/
        ``"off"`` (the default) is silent, and an existing
        :class:`~repro.obs.progress.ProgressReporter` is used as-is.
        Pure presentation on its stream — artifacts are unaffected.
    replay_memo:
        Reuse each seed's analytic cross-traffic replay across the cells
        that share it (default on; event-mode campaigns ignore it).  The
        memo is per-process — the serial path and each pool worker keep
        their own — and analytic grids are leased seed-affine so a warm
        worker's memo stays hot across its lease.  Hit/miss counts land
        in ``timing.json``'s ``dispatch`` block (``replay_hits``/
        ``replay_misses``); every deterministic artifact is byte-identical
        with the memo on or off, so this flag is a pure execution knob.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    shared_pool: Optional[WarmWorkerPool] = None
    if isinstance(pool, WarmWorkerPool):
        shared_pool = pool
        workers = pool.workers
        pool = "warm"
    elif pool not in ("warm", "spawn"):
        raise ConfigurationError(
            f"pool must be 'warm', 'spawn', or a WarmWorkerPool, "
            f"got {pool!r}")
    cache = resolve_cache(cache)
    output_dir = Path(spec.output_dir) if spec.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)
    span_dir = resolve_span_dir(spans, spec.output_dir)
    tracer: Optional[SpanTracer] = None
    if span_dir is not None:
        span_dir.mkdir(parents=True, exist_ok=True)
        # Leftover per-worker files from an earlier run must not leak
        # into this run's merge.
        clear_worker_files(span_dir)
        tracer = SpanTracer(worker="main")

    grid = spec.cells()
    grid_keys = [cell_key(delta, seed) for delta, seed in grid]
    reporter = resolve_progress(progress, total=len(grid), workers=workers)
    if reporter is not None:
        reporter.start()

    with _span(tracer, "campaign", PHASE_CAMPAIGN):
        hits: dict[tuple[float, int], CellResult] = {}
        pending = list(grid)
        bytes_read_before = bytes_written_before = 0
        if cache is not None:
            bytes_read_before = cache.bytes_read
            bytes_written_before = cache.bytes_written
            # One batched pass over the whole grid before any dispatch:
            # only the misses are planned into leases / submitted.
            with _span(tracer, "cache lookup", PHASE_CACHE):
                hits = cache.load_many(spec, grid)
            pending = [cell for cell in grid if cell not in hits]

        merge = _GridMerge(spec, grid, output_dir=output_dir, cache=cache)
        for delta, seed in grid:
            hit = hits.get((delta, seed))
            if hit is not None:
                if reporter is not None:
                    reporter.cell_cached(cell_key(delta, seed),
                                         saved_seconds=hit.wall_seconds)
                merge.add(hit, cached=True)

        dispatch_stats: Dict[str, Any] = {
            "pool": "serial", "workers": workers, "leases": 0,
            "batch_size": 0, "shm_leases": 0, "inline_leases": 0,
            "shm_bytes": 0, "replay_memo": bool(replay_memo),
            "replay_hits": 0, "replay_misses": 0,
        }
        if not pending:
            pass
        elif workers == 1 and shared_pool is None:
            for delta, seed in pending:
                cell, replay_hits, replay_misses = _run_cell_counted(
                    spec, delta, seed, span_dir=span_dir,
                    replay_memo=replay_memo)
                dispatch_stats["replay_hits"] += replay_hits
                dispatch_stats["replay_misses"] += replay_misses
                if reporter is not None:
                    reporter.cell_done(cell_key(delta, seed),
                                       cell.wall_seconds)
                merge.add(cell)
        elif pool == "spawn":
            # Legacy path: cold stateless workers, one submit per cell,
            # barrier before folding.
            dispatch_stats.update(pool="spawn", leases=len(pending),
                                  batch_size=1)
            with ProcessPoolExecutor(max_workers=workers,
                                     mp_context=_spawn_context()) as exe:
                futures = []
                key_of = {}
                for delta, seed in pending:
                    future = exe.submit(_run_cell_counted, spec, delta,
                                        seed, span_dir=span_dir,
                                        replay_memo=replay_memo)
                    futures.append(future)
                    key_of[future] = cell_key(delta, seed)
                if reporter is not None:
                    # Report cells as they finish; the fold below still
                    # walks futures in submission (= grid) order.
                    for future in as_completed(futures):
                        reporter.cell_done(key_of[future],
                                           future.result()[0].wall_seconds)
                for future in futures:
                    cell, replay_hits, replay_misses = future.result()
                    dispatch_stats["replay_hits"] += replay_hits
                    dispatch_stats["replay_misses"] += replay_misses
                    merge.add(cell)
        else:
            warm_pool = shared_pool if shared_pool is not None \
                else WarmWorkerPool(workers)
            probe_config = ExperimentConfig(
                delta=spec.deltas[0], duration=spec.duration,
                seed=spec.seeds[0], scenario=spec.scenario,
                scenario_kwargs=dict(spec.scenario_kwargs),
                mode=spec.mode)
            leases = plan_leases(
                pending, warm_pool.workers, batch_size=batch_size,
                cell_seconds=estimate_cell_seconds(probe_config),
                affinity="seed" if spec.mode == "analytic" else None)
            shm_bytes_before = warm_pool.shm_bytes
            shm_leases_before = warm_pool.shm_leases
            inline_before = warm_pool.inline_leases
            try:
                for index, cells, info in warm_pool.run_leases(
                        spec, leases, span_dir=span_dir,
                        replay_memo=replay_memo):
                    dispatch_stats["replay_hits"] += info["replay_hits"]
                    dispatch_stats["replay_misses"] += \
                        info["replay_misses"]
                    with _span(tracer, f"lease {index} collect",
                               PHASE_LEASE):
                        for cell in cells:
                            if reporter is not None:
                                reporter.cell_done(
                                    cell_key(cell.delta, cell.seed),
                                    cell.wall_seconds)
                            merge.add(cell)
            except BaseException:
                # Worker state is unknown after an error; never leave a
                # half-broken pool behind (shared or not).
                warm_pool.close()
                raise
            finally:
                if shared_pool is None:
                    warm_pool.close()
            dispatch_stats.update(
                pool="warm", workers=warm_pool.workers,
                leases=len(leases),
                batch_size=len(leases[0]) if leases else 0,
                shm_leases=warm_pool.shm_leases - shm_leases_before,
                inline_leases=warm_pool.inline_leases - inline_before,
                shm_bytes=warm_pool.shm_bytes - shm_bytes_before,
                salt=warm_pool.salt)

        merge.require_complete()
        results = merge.results

        cache_stats: Optional[Dict[str, Any]] = None
        if cache is not None:
            cache_stats = {
                "directory": str(cache.directory),
                "refresh": cache.refresh,
                "hits": len(hits),
                "misses": len(grid) - len(hits),
                "bytes_read": cache.bytes_read - bytes_read_before,
                "bytes_written": cache.bytes_written - bytes_written_before,
                "saved_cell_seconds": sum(
                    cell.wall_seconds for cell in hits.values()),
                "cells": {cell_key(delta, seed):
                          "hit" if (delta, seed) in hits else "miss"
                          for delta, seed in grid},
            }

        with _span(tracer, "merge", PHASE_MERGE):
            # Per-cell folding (CSV writes, cache stores) already
            # streamed in grid order as leases completed; what is left is
            # the cross-seed aggregation and the manifest.
            cell_wall = merge.cell_wall
            metrics_by_cell = {(cell.delta, cell.seed): cell.metrics
                               for cell in results}
            summaries = {
                delta: replicate({seed: metrics_by_cell[(delta, seed)]
                                  for seed in spec.seeds}, spec.seeds)
                for delta in spec.deltas
            }

            result = CampaignResult(spec=spec, traces=merge.traces,
                                    summaries=summaries,
                                    queue_stats=merge.queue_stats,
                                    cell_wall_seconds=cell_wall,
                                    workers=workers,
                                    cache_stats=cache_stats,
                                    dispatch_stats=dispatch_stats)
            if output_dir:
                # The manifest records exactly the files this campaign
                # wrote — never a directory listing, which would pick up
                # leftovers from earlier runs — and strips output_dir from
                # the config so two runs of the same spec into different
                # directories stay byte-identical.
                write_manifest(
                    output_dir / "manifest.json",
                    config=dataclasses.replace(spec, output_dir=None),
                    metrics={"cells": merge.cell_metrics},
                    extra={"queues": {cell_key(d, s): stats
                                      for (d, s), stats
                                      in merge.queue_stats.items()},
                           "traces": sorted(merge.written)})

    if reporter is not None:
        reporter.finish()

    # Span post-processing happens after the campaign span closes so the
    # root span itself lands in the merged log.  All of it is telemetry:
    # span files and the timing.json summary, never the manifest.
    span_summary: Optional[Dict[str, Any]] = None
    if span_dir is not None and tracer is not None:
        worker_records = read_span_dir(span_dir)
        clear_worker_files(span_dir)
        merged = merge_spans(list(tracer.records) + worker_records,
                             grid_keys)
        write_spans_jsonl(merged, span_dir / MERGED_SPAN_FILE)
        write_chrome_trace(span_dir / CHROME_SPAN_FILE, spans=merged)
        span_summary = summarize_spans(merged)

    if output_dir:
        write_timing(output_dir / "timing.json", workers=workers,
                     cell_wall_seconds=cell_wall, cache=cache_stats,
                     spans=span_summary, dispatch=dispatch_stats)
    return result


#: Campaign trace filename: trace_d<delta_ms>_s<seed>.csv (δ via %g).
_TRACE_NAME = re.compile(
    r"trace_d(?P<ms>[0-9.eE+-]+)_s(?P<seed>\d+)\.csv\Z")


def _trace_order(path: Path) -> tuple:
    """Deterministic (δ, seed) sort key parsed from a trace filename.

    Filesystem glob order is locale/filesystem-dependent and lexicographic
    ("d100" before "d8"); campaigns are (δ, seed) grids, so traces load in
    numeric grid order.  Names that don't match the campaign pattern sort
    after all grid traces, by name.
    """
    match = _TRACE_NAME.match(path.name)
    if match is None:
        return (1, 0.0, 0, path.name)
    try:
        delta_ms = float(match.group("ms"))
    except ValueError:
        return (1, 0.0, 0, path.name)
    return (0, delta_ms, int(match.group("seed")), path.name)


def load_campaign_traces(directory: Union[str, Path]) -> list[ProbeTrace]:
    """Load every ``trace_*.csv`` previously saved by a campaign.

    Traces are returned in (δ, seed) grid order parsed from the
    filenames — never in filesystem-glob order, which sorts "d100"
    before "d8".
    """
    directory = Path(directory)
    paths = sorted(directory.glob("trace_*.csv"), key=_trace_order)
    return [ProbeTrace.load_csv(path) for path in paths]
