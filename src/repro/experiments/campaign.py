"""Measurement campaigns: grids of probe experiments with saved traces.

The paper's Table 3 is a campaign — one experiment per δ.  This module
generalizes that: run a grid of (δ × seed), persist every trace as CSV,
and aggregate the loss/delay metrics with cross-seed confidence intervals
(:mod:`repro.analysis.stats`).  The ``repro-experiment`` CLI covers single
runs; campaigns are the API for systematic studies (``repro-campaign``
drives this module from the command line).

Cells are independent by construction — each owns its own
:class:`~repro.sim.kernel.Simulator` seeded from the cell's seed — so the
grid is embarrassingly parallel.  :func:`run_campaign` fans cells out over
a ``ProcessPoolExecutor`` when ``workers > 1``; every cell runs through the
same pure worker (:func:`_run_cell`) either way, and results are merged in
(δ, seed) grid order regardless of completion order, so serial and
parallel execution produce byte-identical tables, trace CSVs, and
``manifest.json``.  Only the ``timing.json`` sidecar (worker count,
per-cell wall seconds) reflects how the run was executed.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.loss import loss_stats
from repro.analysis.stats import ReplicationSummary, replicate
from repro.analysis.timeseries import summarize
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment_timed
from repro.net.routing import Network
from repro.netdyn.trace import ProbeTrace
from repro.obs.manifest import write_manifest, write_timing
from repro.units import seconds_to_ms


@dataclass
class CampaignSpec:
    """Definition of a measurement campaign.

    Attributes
    ----------
    deltas:
        Probe intervals to sweep, seconds.
    seeds:
        Seeds to replicate each cell with.
    duration:
        Probe-train length per experiment, seconds.
    scenario:
        Topology name (see :class:`~repro.experiments.config.ExperimentConfig`).
    scenario_kwargs:
        Extra topology parameters, applied to every cell.
    output_dir:
        When given, every trace is saved as
        ``<output_dir>/trace_d<delta_ms>_s<seed>.csv``.
    """

    deltas: Sequence[float]
    seeds: Sequence[int]
    duration: float = 120.0
    scenario: str = "inria-umd"
    scenario_kwargs: dict = field(default_factory=dict)
    output_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if not self.deltas:
            raise ConfigurationError("campaign needs at least one delta")
        if not self.seeds:
            raise ConfigurationError("campaign needs at least one seed")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}")

    def cells(self) -> list[tuple[float, int]]:
        """Every (delta, seed) pair, in grid order (δ-major, seed-minor)."""
        return [(delta, seed) for delta in self.deltas for seed in self.seeds]


def cell_key(delta: float, seed: int) -> str:
    """Stable string id of one cell, e.g. ``"d100_s1"`` (δ in ms)."""
    return f"d{seconds_to_ms(delta):g}_s{seed}"


@dataclass
class CellResult:
    """Everything one (delta, seed) cell produces.

    Returned by :func:`_run_cell`; plain data (numpy arrays, dicts,
    floats) so it pickles cleanly across the process pool.
    """

    delta: float
    seed: int
    trace: ProbeTrace
    #: queue label -> drop/occupancy stats (see :func:`collect_queue_stats`).
    queue_stats: dict[str, dict[str, float]]
    #: flat metric name -> value (see :func:`_cell_metrics`).
    metrics: dict[str, float]
    #: host wall-clock cost of the cell (build + warm-up + probe train).
    wall_seconds: float


@dataclass
class CampaignResult:
    """All traces and per-δ cross-seed summaries of one campaign."""

    spec: CampaignSpec
    #: (delta, seed) -> trace.
    traces: dict[tuple[float, int], ProbeTrace]
    #: delta -> cross-seed metric summary.
    summaries: dict[float, ReplicationSummary]
    #: (delta, seed) -> {queue label -> drop/occupancy stats}.
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = \
        field(default_factory=dict)
    #: cell key ("d<ms>_s<seed>") -> host wall seconds for that cell.
    cell_wall_seconds: dict[str, float] = field(default_factory=dict)
    #: worker processes the campaign was executed with.
    workers: int = 1

    def table(self) -> str:
        """Per-δ metric table with cross-seed means."""
        lines = [f"{'delta':>8} {'ulp':>14} {'clp':>14} "
                 f"{'mean rtt ms':>16} {'runs':>5}"]
        for delta in self.spec.deltas:
            summary = self.summaries[delta]
            ulp = summary.interval("ulp") if len(self.spec.seeds) > 1 \
                else None
            mean_of = {k: sum(v) / len(v) for k, v in summary.values.items()}
            ulp_text = (f"{mean_of['ulp']:.3f}±{ulp.width / 2:.3f}"
                        if ulp else f"{mean_of['ulp']:.3f}")
            lines.append(
                f"{seconds_to_ms(delta):6.0f}ms {ulp_text:>14} "
                f"{mean_of['clp']:14.3f} "
                f"{seconds_to_ms(mean_of['mean_rtt']):16.1f} "
                f"{len(self.spec.seeds):5d}")
        return "\n".join(lines)

    def queue_table(self) -> str:
        """Per-cell queue report: drops and time-weighted occupancy."""
        lines = [f"{'delta':>8} {'seed':>5} {'queue':<44} {'drops':>7} "
                 f"{'loss':>7} {'occ pkts':>9} {'max':>5}"]
        for (delta, seed), queues in sorted(self.queue_stats.items()):
            for label, stats in queues.items():
                lines.append(
                    f"{seconds_to_ms(delta):6.0f}ms {seed:5d} {label:<44} "
                    f"{int(stats['drops']):7d} "
                    f"{stats['loss_fraction']:7.3f} "
                    f"{stats['occupancy_mean_pkts']:9.2f} "
                    f"{int(stats['occupancy_max_pkts']):5d}")
        return "\n".join(lines)


def collect_queue_stats(network: Network) -> dict[str, dict[str, float]]:
    """Drop counts and time-weighted occupancy for every active queue.

    Queues that never saw an arrival are skipped.  Keys are
    ``"<node>-><peer>"`` interface labels; values are plain floats so the
    result drops straight into a JSON manifest.
    """
    stats: dict[str, dict[str, float]] = {}
    for node_name in sorted(network.nodes):
        node = network.nodes[node_name]
        for peer_name in sorted(node.interfaces):
            queue = node.interfaces[peer_name].queue
            if queue.arrivals == 0:
                continue
            stats[f"{node_name}->{peer_name}"] = {
                "arrivals": float(queue.arrivals),
                "drops": float(queue.drops),
                "departures": float(queue.departures),
                "loss_fraction": queue.loss_fraction,
                "occupancy_mean_pkts": queue.occupancy_packets.mean(),
                "occupancy_max_pkts": queue.occupancy_packets.maximum(),
                "occupancy_mean_bytes": queue.occupancy_bytes.mean(),
            }
    return stats


def _cell_metrics(trace: ProbeTrace) -> dict[str, float]:
    losses = loss_stats(trace)
    delay = summarize(trace)
    return {
        "ulp": losses.ulp,
        "clp": losses.clp,
        "plg": min(losses.plg, 1e6),  # keep aggregation finite
        "mean_rtt": delay.mean,
        "p99_rtt": delay.p99,
        "min_rtt": delay.minimum,
    }


def _run_cell(spec: CampaignSpec, delta: float, seed: int) -> CellResult:
    """Execute one (delta, seed) cell and return its full result.

    Pure with respect to the campaign: reads only its arguments, touches
    no shared state and no filesystem, so it can run in this process or in
    a pool worker interchangeably.  Trace CSVs and manifests are written
    by the parent after the deterministic merge.
    """
    config = ExperimentConfig(delta=delta, duration=spec.duration,
                              seed=seed, scenario=spec.scenario,
                              scenario_kwargs=dict(spec.scenario_kwargs))
    trace, scenario, wall = run_experiment_timed(config)
    return CellResult(delta=delta, seed=seed, trace=trace,
                      queue_stats=collect_queue_stats(scenario.network),
                      metrics=_cell_metrics(trace), wall_seconds=wall)


def run_campaign(spec: CampaignSpec, workers: int = 1) -> CampaignResult:
    """Execute every (delta, seed) cell of the campaign.

    Parameters
    ----------
    spec:
        The campaign grid.
    workers:
        Worker processes to fan cells out over.  ``1`` (the default) runs
        every cell serially in this process; ``N > 1`` uses a
        ``ProcessPoolExecutor``.  Both paths run the same per-cell worker
        and merge results in grid order, so the resulting tables, CSVs,
        and ``manifest.json`` are byte-identical either way.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    output_dir = Path(spec.output_dir) if spec.output_dir else None
    if output_dir:
        output_dir.mkdir(parents=True, exist_ok=True)

    grid = spec.cells()
    if workers == 1:
        results = [_run_cell(spec, delta, seed) for delta, seed in grid]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_run_cell, spec, delta, seed)
                       for delta, seed in grid]
            # Collect in submission (= grid) order; completion order is
            # irrelevant to the merged result.
            results = [future.result() for future in futures]

    traces: dict[tuple[float, int], ProbeTrace] = {}
    queue_stats: dict[tuple[float, int], dict[str, dict[str, float]]] = {}
    cell_metrics: dict[str, dict[str, float]] = {}
    cell_wall: dict[str, float] = {}
    written: list[str] = []
    for cell in results:
        key = cell_key(cell.delta, cell.seed)
        traces[(cell.delta, cell.seed)] = cell.trace
        queue_stats[(cell.delta, cell.seed)] = cell.queue_stats
        cell_metrics[key] = cell.metrics
        cell_wall[key] = cell.wall_seconds
        if output_dir:
            name = f"trace_{key}.csv"
            cell.trace.save_csv(output_dir / name)
            written.append(name)

    metrics_by_cell = {(cell.delta, cell.seed): cell.metrics
                       for cell in results}
    summaries = {
        delta: replicate({seed: metrics_by_cell[(delta, seed)]
                          for seed in spec.seeds}, spec.seeds)
        for delta in spec.deltas
    }

    result = CampaignResult(spec=spec, traces=traces, summaries=summaries,
                            queue_stats=queue_stats,
                            cell_wall_seconds=cell_wall, workers=workers)
    if output_dir:
        # The manifest records exactly the files this campaign wrote —
        # never a directory listing, which would pick up leftovers from
        # earlier runs — and strips output_dir from the config so two runs
        # of the same spec into different directories stay byte-identical.
        write_manifest(
            output_dir / "manifest.json",
            config=dataclasses.replace(spec, output_dir=None),
            metrics={"cells": cell_metrics},
            extra={"queues": {cell_key(d, s): stats
                              for (d, s), stats in queue_stats.items()},
                   "traces": sorted(written)})
        write_timing(output_dir / "timing.json", workers=workers,
                     cell_wall_seconds=cell_wall)
    return result


def load_campaign_traces(directory: Union[str, Path]) -> list[ProbeTrace]:
    """Load every ``trace_*.csv`` previously saved by a campaign."""
    directory = Path(directory)
    traces = []
    for path in sorted(directory.glob("trace_*.csv")):
        traces.append(ProbeTrace.load_csv(path))
    return traces
