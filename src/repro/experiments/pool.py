"""Warm worker pool, batched cell leasing, shared-memory trace hand-off.

The campaign dispatcher's transport layer.  A :class:`WarmWorkerPool` keeps
``workers`` long-lived processes around: each worker imports the repro
closure once (under the preferred ``fork`` start method it inherits the
parent's already-imported modules outright), reports its import-closure
cache salt in a handshake, and then serves *leases* — contiguous batches
of (δ, seed) grid cells planned by :func:`plan_leases` — until the pool is
closed.  Compared to the legacy per-cell spawn pool this removes the three
fixed costs that dominate once cells get cheap (the analytic fast-forward
mode): per-campaign process start-up and cold interpreter imports,
per-cell submit/pickle round trips, and pickling every ProbeTrace column
through the result pipe.

Result arrays cross the process boundary through
``multiprocessing.shared_memory`` when available: the worker concatenates
every trace column of a lease into one shared block and sends only
``(offset, count)`` descriptors (:func:`pack_lease`); the parent copies the
columns back out and unlinks the block (:func:`unpack_lease`).  Any
failure — no ``/dev/shm``, import error, allocation failure — falls back
to inline pickling of the same arrays, so the hand-off is an optimization,
never a correctness input.  Everything in this module is execution
mechanics: it moves bytes between processes but computes nothing, which is
why it is excluded from the derived cache-salt closure and banned from the
kernel call graph alongside the telemetry modules (OBS002).

Staleness: a long-lived pool may outlive a code edit.  Workers therefore
report :func:`repro.experiments.cache.cache_salt` (their view of the
import-closure code version) when they start; the parent refuses the pool
with :class:`StaleWorkerError` when any worker's salt differs from its
own.  Under ``fork`` the check is cheap (the memoized salt is inherited);
under ``spawn`` each worker derives it from the sources on disk, making
the handshake a real cross-process code-version check.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import os
import traceback
from collections import deque
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.netdyn.trace import ProbeTrace
from repro.obs.spans import (
    PHASE_LEASE,
    PHASE_SHM,
    SpanTracer,
    append_spans,
)

try:  # pragma: no cover - import succeeds on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - exotic builds without _posixshmem
    _shared_memory = None  # type: ignore[assignment]


class StaleWorkerError(RuntimeError):
    """A pool worker reported an import-closure salt the parent rejects."""


class LeaseError(RuntimeError):
    """A lease failed inside a worker (carries the worker traceback)."""


#: Leases each worker should serve per campaign when auto-tuning the batch
#: size: enough batches that a slow cell cannot straggle the whole grid,
#: few enough that per-lease IPC stays amortized.
LEASES_PER_WORKER = 4

#: Target wall-clock length of one lease, seconds, used with the per-cell
#: duration estimate to keep leases short on expensive (event-mode) grids.
TARGET_LEASE_SECONDS = 2.0


def plan_leases(cells: Sequence[Tuple[float, int]], workers: int,
                batch_size: Optional[int] = None,
                cell_seconds: Optional[float] = None,
                affinity: Optional[str] = None,
                ) -> List[List[Tuple[float, int]]]:
    """Partition grid cells into deterministic, contiguous lease batches.

    The partition depends only on the arguments — never on timing or
    worker count *behaviour* — so the same spec always produces the same
    leases (the serial==parallel byte-identity invariant needs nothing
    from this, since the merge re-orders by grid index, but deterministic
    leases keep span/timing telemetry comparable across runs).

    ``batch_size=None`` auto-tunes: start from a fair share that gives
    every worker about :data:`LEASES_PER_WORKER` leases, then shrink the
    batch when the per-cell duration estimate says one lease would exceed
    :data:`TARGET_LEASE_SECONDS` (expensive event-mode cells), so the tail
    of the grid stays balanced.

    ``affinity="seed"`` regroups the cells seed-major before batching —
    stably, so the δ order within one seed is the grid's — and never lets
    a lease straddle a seed boundary.  Analytic campaigns use this so a
    warm worker serving one lease replays each seed's cross traffic once
    and hits its in-process :class:`~repro.experiments.fastforward.\
CrossReplayMemo` for every further δ of that seed.  The merge re-orders
    by grid index, so affinity changes only which worker computes a cell,
    never any artifact byte.
    """
    if batch_size is not None and batch_size < 1:
        raise ConfigurationError(
            f"batch_size must be >= 1, got {batch_size}")
    if affinity not in (None, "seed"):
        raise ConfigurationError(
            f"affinity must be None or 'seed', got {affinity!r}")
    cells = list(cells)
    if not cells:
        return []
    if batch_size is None:
        fair = math.ceil(len(cells) / (max(1, workers) * LEASES_PER_WORKER))
        batch_size = max(1, fair)
        if cell_seconds is not None and cell_seconds > 0:
            by_cost = max(1, int(TARGET_LEASE_SECONDS / cell_seconds))
            batch_size = max(1, min(batch_size, by_cost))
    if affinity == "seed":
        groups: Dict[int, List[Tuple[float, int]]] = {}
        for cell in cells:
            groups.setdefault(cell[1], []).append(cell)
        return [group[i:i + batch_size]
                for group in groups.values()
                for i in range(0, len(group), batch_size)]
    return [cells[i:i + batch_size]
            for i in range(0, len(cells), batch_size)]


# ----------------------------------------------------------------------
# Lease payloads: shared-memory packing with an inline-pickle fallback
# ----------------------------------------------------------------------
def _create_block(size: int):
    """A shared-memory block that this process's tracker does not own.

    The block's lifecycle deliberately crosses processes (worker creates,
    parent unlinks), which the per-process ``resource_tracker`` cannot
    model — it would warn about a "leaked" segment the parent already
    removed.  Python 3.13 has ``track=False`` for exactly this; older
    versions need the explicit unregister.
    """
    try:
        return _shared_memory.SharedMemory(create=True, size=size,
                                           track=False)
    except TypeError:
        block = _shared_memory.SharedMemory(create=True, size=size)
        try:
            from multiprocessing import resource_tracker
            resource_tracker.unregister(block._name, "shared_memory")
        except (ImportError, AttributeError, KeyError, ValueError, OSError):
            pass  # best effort: worst case is a spurious tracker warning
        return block


def _attach_block(name: str):
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        return _shared_memory.SharedMemory(name=name)


def pack_lease(results: Sequence[Any], use_shm: bool = True,
               tracer: Optional[SpanTracer] = None) -> Dict[str, Any]:
    """Serialize a lease's CellResults for the pipe back to the parent.

    Scalar fields (metrics, queue stats, trace metadata) always travel by
    pickle — dict iteration order survives pickling, which the
    byte-identical artifact invariant relies on.  The float64 trace
    columns go through one shared-memory block per lease when ``use_shm``
    and the platform cooperates; otherwise they ride inline in the same
    message (the npz-pickle fallback).  The returned payload tags which
    transport was used so the parent can account for it in timing.json.
    """
    records = []
    arrays: List[np.ndarray] = []
    for cell in results:
        trace = cell.trace
        records.append({
            "delta": cell.delta,
            "seed": cell.seed,
            "queue_stats": cell.queue_stats,
            "metrics": cell.metrics,
            "wall_seconds": cell.wall_seconds,
            "trace": {"delta": trace.delta,
                      "payload_bytes": trace.payload_bytes,
                      "wire_bytes": trace.wire_bytes,
                      "meta": trace.meta},
        })
        arrays.append(np.ascontiguousarray(trace.send_times,
                                           dtype=np.float64))
        arrays.append(np.ascontiguousarray(trace.rtts, dtype=np.float64))
    if use_shm and _shared_memory is not None:
        try:
            return _pack_shm(records, arrays, tracer)
        except (OSError, ValueError, MemoryError):
            # Segment creation can fail (no /dev/shm, exhausted space,
            # zero-size edge): fall back to inline pickling — slower,
            # never wrong.
            pass
    for record, send_times, rtts in zip(records, arrays[0::2],
                                        arrays[1::2]):
        record["send_times"] = send_times
        record["rtts"] = rtts
    return {"transport": "inline", "cells": records, "shm_bytes": 0}


def _pack_shm(records: List[dict], arrays: List[np.ndarray],
              tracer: Optional[SpanTracer]) -> Dict[str, Any]:
    total = sum(int(array.nbytes) for array in arrays)
    if tracer is not None:
        with tracer.span("shm publish", phase=PHASE_SHM):
            return _copy_into_block(records, arrays, total)
    return _copy_into_block(records, arrays, total)


def _copy_into_block(records: List[dict], arrays: List[np.ndarray],
                     total: int) -> Dict[str, Any]:
    block = _create_block(max(1, total))
    try:
        offset = 0
        descriptors: List[Tuple[int, int]] = []
        for array in arrays:
            view = np.ndarray((array.size,), dtype=np.float64,
                              buffer=block.buf, offset=offset)
            view[:] = array
            del view  # release the buffer export before block.close()
            descriptors.append((offset, int(array.size)))
            offset += int(array.nbytes)
        for record, send_times, rtts in zip(records, descriptors[0::2],
                                            descriptors[1::2]):
            record["send_times"] = send_times
            record["rtts"] = rtts
        name = block.name
    except BaseException:
        block.close()
        try:
            block.unlink()
        except OSError:
            pass  # already gone; nothing left to clean up
        raise
    block.close()
    return {"transport": "shm", "cells": records, "shm_name": name,
            "shm_bytes": total}


def unpack_lease(payload: Dict[str, Any]) -> Tuple[List[Any], Dict[str, Any]]:
    """Rebuild a lease's CellResults from :func:`pack_lease`'s payload.

    Returns ``(cells, info)`` where ``info`` records the transport used
    and the shared-memory byte volume.  Shared blocks are copied out,
    closed, and unlinked here — the parent owns teardown, so a completed
    lease never leaves a segment behind.
    """
    if payload["transport"] == "shm":
        block = _attach_block(payload["shm_name"])
        try:
            cells = [_cell_from_record(record,
                                       _read_block(block,
                                                   *record["send_times"]),
                                       _read_block(block, *record["rtts"]))
                     for record in payload["cells"]]
        finally:
            block.close()
            try:
                block.unlink()
            except OSError:
                pass  # already gone; nothing left to clean up
        return cells, {"transport": "shm",
                       "shm_bytes": payload["shm_bytes"]}
    cells = [_cell_from_record(record, record["send_times"],
                               record["rtts"])
             for record in payload["cells"]]
    return cells, {"transport": "inline", "shm_bytes": 0}


def _read_block(block, offset: int, count: int) -> np.ndarray:
    view = np.ndarray((count,), dtype=np.float64, buffer=block.buf,
                      offset=offset)
    data = view.copy()
    del view
    return data


def _cell_from_record(record: dict, send_times: np.ndarray,
                      rtts: np.ndarray):
    from repro.experiments.campaign import CellResult
    header = record["trace"]
    trace = ProbeTrace(delta=header["delta"], send_times=send_times,
                       rtts=rtts, payload_bytes=header["payload_bytes"],
                       wire_bytes=header["wire_bytes"],
                       meta=header["meta"])
    return CellResult(delta=record["delta"], seed=record["seed"],
                      trace=trace, queue_stats=record["queue_stats"],
                      metrics=record["metrics"],
                      wall_seconds=record["wall_seconds"])


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
def _worker_main(conn, salt_override: Optional[str] = None) -> None:
    """Serve leases until told to stop (runs in the worker process).

    The first message out is the handshake: this worker's import-closure
    cache salt (or the injected override — tests use it to exercise the
    stale-worker refusal without editing sources).  Under ``fork`` the
    memoized salt is inherited from the parent; under ``spawn`` it is
    derived fresh from the sources on disk.
    """
    if salt_override is None:
        from repro.experiments.cache import cache_salt
        salt = cache_salt()
    else:
        salt = salt_override
    conn.send(("hello", -1, {"salt": salt, "pid": os.getpid()}))
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return  # parent went away; nothing left to serve
        if message[0] == "stop":
            return
        request = message[1]
        try:
            payload = _serve_lease(request)
        except BaseException:
            conn.send(("error", request["index"], traceback.format_exc()))
            continue
        conn.send(("result", request["index"], payload))


def _serve_lease(request: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.campaign import _run_cell
    spec = request["spec"]
    span_dir = request["span_dir"]
    replay_memo = request.get("replay_memo", True)
    # Replay-memo accounting rides in the lease payload (pipe message),
    # never inside the packed cells: the parent folds the deltas into its
    # timing.json dispatch block, keeping cell artifacts transport-blind.
    memo = None
    hits_before = misses_before = 0
    if replay_memo and getattr(spec, "mode", "event") == "analytic":
        from repro.experiments.fastforward import process_replay_memo
        memo = process_replay_memo()
        hits_before, misses_before = memo.counters()
    if span_dir is None:
        results = [_run_cell(spec, delta, seed, replay_memo=replay_memo)
                   for delta, seed in request["cells"]]
        payload = pack_lease(results, use_shm=request["use_shm"])
    else:
        tracer = SpanTracer()
        with tracer.span(f"lease {request['index']}", phase=PHASE_LEASE):
            results = [_run_cell(spec, delta, seed, span_dir=span_dir,
                                 replay_memo=replay_memo)
                       for delta, seed in request["cells"]]
            payload = pack_lease(results, use_shm=request["use_shm"],
                                 tracer=tracer)
        append_spans(span_dir, tracer.records)
    if memo is not None:
        hits, misses = memo.counters()
        payload["replay_hits"] = hits - hits_before
        payload["replay_misses"] = misses - misses_before
    else:
        payload["replay_hits"] = 0
        payload["replay_misses"] = 0
    return payload


# ----------------------------------------------------------------------
# The pool
# ----------------------------------------------------------------------
def _default_start_method() -> str:
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else mp.get_start_method()


class WarmWorkerPool:
    """Persistent campaign workers serving batched cell leases.

    Parameters
    ----------
    workers:
        Long-lived worker processes to keep.
    start_method:
        Multiprocessing start method (default: ``fork`` where available,
        else the platform default).  ``fork`` makes warm-up free — the
        repro closure is inherited already imported.
    expected_salt:
        Import-closure salt the parent demands in the handshake (default:
        its own :func:`~repro.experiments.cache.cache_salt`).  Tests
        inject a value to avoid the source analysis.
    worker_salt:
        Salt the workers *report* instead of deriving their own — test
        injection for the stale-worker refusal path.
    use_shm:
        Publish lease trace columns through shared memory (default); the
        inline-pickle fallback still engages per lease on any failure.

    A pool is reusable across campaigns: pass the instance as
    ``run_campaign(..., pool=pool)`` repeatedly and close it once at the
    end (or use it as a context manager).  Lifetime transport accounting
    (leases served, shared-memory bytes) accumulates on the instance and
    is snapshotted into each campaign's ``timing.json``.
    """

    def __init__(self, workers: int, start_method: Optional[str] = None,
                 expected_salt: Optional[str] = None,
                 worker_salt: Optional[str] = None,
                 use_shm: bool = True) -> None:
        if workers < 1:
            raise ConfigurationError(
                f"pool workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.use_shm = bool(use_shm)
        self._start_method = start_method
        self._expected_salt = expected_salt
        self._worker_salt = worker_salt
        self._procs: List[mp.process.BaseProcess] = []
        self._conns: List[Any] = []
        #: Verified handshake salt once started.
        self.salt: Optional[str] = None
        self.worker_pids: List[int] = []
        #: Lifetime transport accounting.
        self.leases_served = 0
        self.shm_leases = 0
        self.inline_leases = 0
        self.shm_bytes = 0
        #: Lifetime replay-memo accounting (worker-side CrossReplayMemo
        #: hits/misses summed over every served lease).
        self.replay_hits = 0
        self.replay_misses = 0

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> "WarmWorkerPool":
        """Launch the workers and verify the salt handshake (idempotent)."""
        if self._procs:
            return self
        expected = self._expected_salt
        if expected is None:
            # Computed (and memoized) before forking, so fork workers
            # inherit it and the handshake costs nothing.
            from repro.experiments.cache import cache_salt
            expected = cache_salt()
        context = mp.get_context(self._start_method
                                 or _default_start_method())
        conns: List[Any] = []
        procs: List[mp.process.BaseProcess] = []
        try:
            for _ in range(self.workers):
                parent_end, child_end = context.Pipe()
                proc = context.Process(target=_worker_main,
                                       args=(child_end,
                                             self._worker_salt),
                                       daemon=True)
                proc.start()
                child_end.close()
                conns.append(parent_end)
                procs.append(proc)
            pids = []
            for conn in conns:
                kind, _, hello = conn.recv()
                if kind != "hello":
                    raise LeaseError(
                        f"expected worker handshake, got {kind!r}")
                if hello["salt"] != expected:
                    raise StaleWorkerError(
                        f"worker pid {hello['pid']} reports import-closure "
                        f"salt {hello['salt']!r} but the parent expects "
                        f"{expected!r}; the worker is running stale code — "
                        "restart the pool on the current sources")
                pids.append(hello["pid"])
        except BaseException:
            _teardown(conns, procs)
            raise
        self._conns = conns
        self._procs = procs
        self.worker_pids = pids
        self.salt = expected
        return self

    def run_leases(self, spec: Any,
                   leases: Sequence[Sequence[Tuple[float, int]]],
                   span_dir: Optional[Any] = None,
                   replay_memo: bool = True,
                   ) -> Iterator[Tuple[int, List[Any], Dict[str, Any]]]:
        """Dispatch leases and yield ``(index, cells, info)`` as they land.

        Completion order, not lease order: the caller's streaming merge
        re-orders by grid index.  Every worker holds at most one lease;
        finishing one immediately earns the next, so the pool stays busy
        without any global barrier.  A worker error or crash closes the
        pool (its pipes are in an unknown state) and raises
        :class:`LeaseError`.  ``info`` carries the transport used plus the
        lease's worker-side ``replay_hits``/``replay_misses`` deltas
        (zero for event-mode or memo-disabled leases).
        """
        self.start()
        pending = deque(enumerate(leases))
        active: Dict[Any, int] = {}
        for conn in self._conns:
            if not pending:
                break
            self._dispatch(conn, pending.popleft(), spec, span_dir,
                           replay_memo)
            active[conn] = True  # type: ignore[assignment]
        while active:
            for conn in _wait_connections(list(active)):
                try:
                    kind, index, payload = conn.recv()
                except EOFError:
                    self.close()
                    raise LeaseError(
                        "a pool worker exited mid-lease (killed or "
                        "crashed); the pool has been closed")
                if kind == "error":
                    self.close()
                    raise LeaseError(
                        f"lease {index} failed in worker:\n{payload}")
                cells, info = unpack_lease(payload)
                info["replay_hits"] = payload.get("replay_hits", 0)
                info["replay_misses"] = payload.get("replay_misses", 0)
                self.leases_served += 1
                self.replay_hits += info["replay_hits"]
                self.replay_misses += info["replay_misses"]
                if info["transport"] == "shm":
                    self.shm_leases += 1
                    self.shm_bytes += info["shm_bytes"]
                else:
                    self.inline_leases += 1
                if pending:
                    self._dispatch(conn, pending.popleft(), spec, span_dir,
                                   replay_memo)
                else:
                    del active[conn]
                yield index, cells, info

    def _dispatch(self, conn, numbered_lease, spec, span_dir,
                  replay_memo: bool = True) -> None:
        index, cells = numbered_lease
        conn.send(("lease", {"index": index, "spec": spec,
                             "cells": list(cells), "span_dir": span_dir,
                             "use_shm": self.use_shm,
                             "replay_memo": replay_memo}))

    def close(self) -> None:
        """Stop the workers; safe to call twice (and from error paths)."""
        conns, procs = self._conns, self._procs
        self._conns, self._procs = [], []
        self.worker_pids = []
        _teardown(conns, procs)

    def __enter__(self) -> "WarmWorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "started" if self.started else "cold"
        return (f"<WarmWorkerPool workers={self.workers} {state} "
                f"leases={self.leases_served} shm_bytes={self.shm_bytes}>")


def _teardown(conns: List[Any], procs: List[mp.process.BaseProcess]) -> None:
    for conn in conns:
        try:
            conn.send(("stop",))
        except (OSError, ValueError):
            pass
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - stuck-worker backstop
            proc.terminate()
            proc.join(timeout=5.0)
