"""Content-addressed on-disk cache for campaign cells.

A campaign cell is a pure function of its causal inputs: the scenario name
and kwargs, the probe interval δ, the seed, the duration, the probe
payload/wire sizes, and the code that simulates it.  :class:`CampaignCache`
exploits that purity — each cell's full
:class:`~repro.experiments.campaign.CellResult` (trace, queue stats,
metrics, wall cost) is stored under a SHA-256 fingerprint of those inputs,
so re-running a grid whose inputs did not change loads results from disk
instead of re-simulating them.

The governing invariant (DESIGN.md): **a cache hit is byte-identical to a
cold run; the cache is an optimization, never an input.**  Concretely:

* The fingerprint covers *every* input that can influence a cell's output,
  including the code itself: :func:`cache_salt` derives a salt from the
  normalized-AST fingerprints of every module reachable from the campaign
  worker (see :mod:`repro.devtools.fingerprint`), so a semantic edit to
  kernel/traffic/topology code invalidates old entries automatically while
  comment/docstring-only edits leave them valid.  The legacy hand-bumped
  ``CACHE_SALT`` constant survives as a lazy module attribute for
  compatibility; existing ``repro-cell-v1`` cache dirs invalidate exactly
  once when the derived ``repro-cell-v2-*`` salt takes over.
* Entries are written atomically (temp file + ``os.replace``), so a killed
  run never leaves a partial entry behind.
* A corrupted entry — truncated zip, garbled JSON, fingerprint mismatch —
  is treated as a miss, logged, and recomputed; it is never an error.
* Traces are stored in the binary columnar npz form
  (:meth:`~repro.netdyn.trace.ProbeTrace.save_npz`), so float64 samples
  round-trip bit-exactly, and the cell payload JSON preserves dict order,
  so re-serialized artifacts (tables, CSVs, ``manifest.json``) come out
  byte-identical to a cold run.

Nothing non-deterministic about cache behaviour (hit/miss counts, byte
volumes) ever enters ``manifest.json``; it is reported through the
``timing.json`` sidecar and the pull-based metrics registered by
:func:`instrument_cache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional, Sequence, Union

import numpy as np

from repro.errors import AnalysisError, ConfigurationError
from repro.experiments.config import DEFAULT_WARMUP
from repro.net.packet import UDP_WIRE_OVERHEAD_BYTES
from repro.netdyn.packetfmt import PROBE_PAYLOAD_BYTES
from repro.netdyn.trace import ProbeTrace, npz_mapping
from repro.obs.structlog import obs_logger

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.experiments.campaign import CampaignSpec, CellResult
    from repro.obs.registry import MetricsRegistry

logger = obs_logger("cache")

#: Layout version of one cache entry; bump on incompatible changes (old
#: entries are then rejected as corrupt and recomputed).
ENTRY_FORMAT_VERSION = 1

#: Salt used when the derived salt cannot be computed (sources missing,
#: e.g. a zipapp deployment).  Deliberately not a valid derived salt, so
#: such environments never share entries with source checkouts.
_FALLBACK_SALT = "repro-cell-v2-unknown"

_salt_cache: Optional[str] = None


def cache_salt() -> str:
    """The code-version salt folded into every cell fingerprint.

    Derived from the normalized-AST fingerprints of every ``repro`` module
    transitively imported by the campaign worker's module
    (:func:`repro.devtools.fingerprint.derived_cache_salt`), so it changes
    exactly when the semantics of reachable simulation code can change —
    no manual bump to forget.  Computed once per process (parsing the
    package takes ~0.5 s) and falls back to :data:`_FALLBACK_SALT` with a
    logged warning when the sources cannot be analyzed.
    """
    global _salt_cache
    if _salt_cache is None:
        try:
            from repro.devtools.fingerprint import derived_cache_salt
            _salt_cache = derived_cache_salt()
        except Exception as exc:
            # Caching stays correct on the fallback salt, but entries are
            # never shared with source checkouts.
            logger.warning("cache-salt-underivable", error=str(exc),
                           fallback=_FALLBACK_SALT)
            _salt_cache = _FALLBACK_SALT
    return _salt_cache


def __getattr__(name: str) -> str:
    # Compatibility shim: the salt used to be the hand-bumped constant
    # ``CACHE_SALT``.  Old entries (repro-cell-v1) invalidate exactly once
    # when the derived repro-cell-v2-* salt takes over.
    if name == "CACHE_SALT":
        return cache_salt()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def default_probe_bytes() -> "tuple[int, int]":
    """(payload, wire) sizes of the probes every campaign cell sends."""
    return (PROBE_PAYLOAD_BYTES,
            PROBE_PAYLOAD_BYTES + UDP_WIRE_OVERHEAD_BYTES)


def cell_fingerprint(spec: "CampaignSpec", delta: float, seed: int,
                     salt: Optional[str] = None) -> str:
    """Stable SHA-256 hex digest of one cell's full causal input.

    Two cells share a fingerprint exactly when nothing that can influence
    the simulated result differs: scenario name + kwargs, δ, seed,
    duration, warm-up, execution mode (event vs analytic — the analytic
    fast-forward is equivalent only to a stated tolerance, so its cells
    must never shadow event-mode entries), probe payload/wire bytes, and
    the code-version ``salt`` (default: the derived :func:`cache_salt`).
    ``output_dir``, worker counts, and every other bit of execution
    mechanics are deliberately excluded — they change where results go,
    never what they are.
    """
    if salt is None:
        salt = cache_salt()
    payload_bytes, wire_bytes = default_probe_bytes()
    document = {
        "scenario": spec.scenario,
        "scenario_kwargs": spec.scenario_kwargs,
        "delta": float(delta),
        "seed": int(seed),
        "duration": float(spec.duration),
        "warmup": float(DEFAULT_WARMUP),
        "mode": getattr(spec, "mode", "event"),
        "payload_bytes": payload_bytes,
        "wire_bytes": wire_bytes,
        "salt": salt,
    }
    encoded = json.dumps(document, sort_keys=True, default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def replay_fingerprint(scenario: str, scenario_kwargs: Dict[str, Any],
                       seed: int, salt: Optional[str] = None) -> str:
    """Stable SHA-256 digest of one seed's cross-traffic replay input.

    The analytic engine's :class:`~repro.experiments.fastforward.
    CrossReplayMemo` keys its in-process entries with this — the same
    causal-fingerprint machinery as :func:`cell_fingerprint`, restricted
    to what determines the cross-traffic streams: scenario name + kwargs,
    seed, and the code-version salt.  δ, duration, and probe sizes are
    deliberately excluded (cross traffic is open-loop and independent of
    the probes — the whole point of sharing the replay across a δ-stack);
    the horizon is handled by the memo's covers-semantics, not the key.
    """
    if salt is None:
        salt = cache_salt()
    document = {
        "scenario": scenario,
        "scenario_kwargs": scenario_kwargs,
        "seed": int(seed),
        "salt": salt,
    }
    encoded = json.dumps(document, sort_keys=True, default=repr)
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class CampaignCache:
    """On-disk, content-addressed store of campaign cell results.

    Parameters
    ----------
    directory:
        Where entries live; created on first use.  A cache directory can
        be shared freely across campaigns, specs, and code versions —
        addressing is by content fingerprint, so unrelated entries never
        collide and stale ones are simply never hit.
    refresh:
        When True every lookup misses, so every cell recomputes and
        overwrites its entry (the ``--refresh`` CLI flag).
    salt:
        Override of the derived :func:`cache_salt`, for tests.
    """

    def __init__(self, directory: Union[str, Path], refresh: bool = False,
                 salt: Optional[str] = None) -> None:
        self.directory = Path(directory)
        self.refresh = bool(refresh)
        self.salt = salt if salt is not None else cache_salt()
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Lifetime counters (pull-based metrics read these).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.corrupt_entries = 0

    # ------------------------------------------------------------------
    def entry_path(self, spec: "CampaignSpec", delta: float,
                   seed: int) -> Path:
        """Filename of the cell's entry: human-readable key + fingerprint."""
        from repro.experiments.campaign import cell_key
        fingerprint = cell_fingerprint(spec, delta, seed, salt=self.salt)
        return self.directory / f"{cell_key(delta, seed)}-{fingerprint}.npz"

    def load(self, spec: "CampaignSpec", delta: float,
             seed: int) -> Optional["CellResult"]:
        """The cached result of one cell, or None (a miss).

        Every failure mode — absent entry, truncated file, garbled JSON,
        fingerprint/version mismatch — is a miss; corruption is logged and
        counted, never raised, so a damaged cache only costs recomputation.
        """
        if self.refresh:
            self.misses += 1
            return None
        path = self.entry_path(spec, delta, seed)
        try:
            size = path.stat().st_size
        except OSError:
            self.misses += 1
            return None
        fingerprint = cell_fingerprint(spec, delta, seed, salt=self.salt)
        try:
            result = self._read_entry(path, fingerprint)
        except Exception as exc:
            # A miss, not an error: the cell recomputes and overwrites.
            logger.warning("cache-entry-unreadable", entry=path.name,
                           delta=float(delta), seed=int(seed),
                           fingerprint=fingerprint, error=str(exc))
            self.corrupt_entries += 1
            self.misses += 1
            return None
        self.hits += 1
        self.bytes_read += size
        return result

    def load_many(self, spec: "CampaignSpec",
                  cells: "Sequence[tuple[float, int]]",
                  ) -> "Dict[tuple[float, int], CellResult]":
        """One batched lookup pass over a campaign grid before dispatch.

        Returns the hits only, keyed by ``(delta, seed)``; every absent
        key is a miss to simulate.  Semantically identical to calling
        :meth:`load` per cell, but batched for the pre-dispatch span: one
        directory scan answers existence and size for the whole grid
        (instead of a ``stat`` per cell), and entries are read with
        memory-mapped npz members (:func:`repro.netdyn.trace.npz_mapping`)
        so a hit costs header parsing only — the float64 sample pages
        fault in later, when the merge actually writes the trace CSV.
        """
        hits: Dict[tuple, "CellResult"] = {}
        if self.refresh:
            self.misses += len(cells)
            return hits
        sizes: Dict[str, int] = {}
        try:
            with os.scandir(self.directory) as listing:
                for entry in listing:
                    if not entry.name.startswith(".tmp-"):
                        sizes[entry.name] = entry.stat().st_size
        except OSError:
            pass  # unreadable directory: every cell is a plain miss
        for delta, seed in cells:
            path = self.entry_path(spec, delta, seed)
            size = sizes.get(path.name)
            if size is None:
                self.misses += 1
                continue
            fingerprint = cell_fingerprint(spec, delta, seed,
                                           salt=self.salt)
            try:
                result = self._read_entry(path, fingerprint, mmap_mode="r")
            except Exception as exc:
                logger.warning("cache-entry-unreadable", entry=path.name,
                               delta=float(delta), seed=int(seed),
                               fingerprint=fingerprint, error=str(exc))
                self.corrupt_entries += 1
                self.misses += 1
                continue
            self.hits += 1
            self.bytes_read += size
            hits[(delta, seed)] = result
        return hits

    def store(self, spec: "CampaignSpec", delta: float, seed: int,
              result: "CellResult") -> Path:
        """Persist one cell result atomically (temp file + rename).

        The entry only ever appears under its final name complete: a
        killed run leaves at worst an orphaned ``.tmp-*`` file, never a
        partial entry that a later run could mistake for a result.
        """
        path = self.entry_path(spec, delta, seed)
        payload = json.dumps({
            "entry_version": ENTRY_FORMAT_VERSION,
            "fingerprint": cell_fingerprint(spec, delta, seed,
                                            salt=self.salt),
            "delta": float(result.delta),
            "seed": int(result.seed),
            # Order-preserving dumps (no sort_keys): queue_stats/metrics
            # iteration order survives the round trip, keeping re-rendered
            # tables byte-identical to the cold run.
            "queue_stats": result.queue_stats,
            "metrics": result.metrics,
            "wall_seconds": float(result.wall_seconds),
        })
        fd, tmp_name = tempfile.mkstemp(dir=self.directory,
                                        prefix=".tmp-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as handle:
                result.trace.save_npz(handle, extra={"cell": payload})
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1
        self.bytes_written += path.stat().st_size
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _read_entry(path: Path, fingerprint: str,
                    mmap_mode: Optional[str] = None) -> "CellResult":
        from repro.experiments.campaign import CellResult
        if mmap_mode is not None:
            data = npz_mapping(path, mmap_mode=mmap_mode)
            trace = ProbeTrace.from_npz_mapping(data)
            payload = json.loads(str(data["cell"][()]))
        else:
            with np.load(path, allow_pickle=False) as data:
                trace = ProbeTrace.from_npz_mapping(data)
                payload = json.loads(str(data["cell"][()]))
        if payload.get("entry_version") != ENTRY_FORMAT_VERSION:
            raise AnalysisError(
                f"entry version {payload.get('entry_version')!r}, "
                f"expected {ENTRY_FORMAT_VERSION}")
        if payload.get("fingerprint") != fingerprint:
            raise AnalysisError("fingerprint mismatch (renamed or stale "
                                "entry)")
        return CellResult(delta=payload["delta"], seed=payload["seed"],
                          trace=trace, queue_stats=payload["queue_stats"],
                          metrics=payload["metrics"],
                          wall_seconds=payload["wall_seconds"])

    def __repr__(self) -> str:
        return (f"<CampaignCache {self.directory} hits={self.hits} "
                f"misses={self.misses} stores={self.stores}>")


def resolve_cache(cache: Union["CampaignCache", str, Path, None],
                  refresh: bool = False) -> Optional["CampaignCache"]:
    """Coerce :func:`run_campaign`'s ``cache`` argument to a cache object.

    Accepts an existing :class:`CampaignCache` (``refresh`` must then not
    contradict it), a directory path, or None.
    """
    if cache is None:
        if refresh:
            raise ConfigurationError(
                "refresh=True needs a cache to refresh")
        return None
    if isinstance(cache, (str, Path)):
        return CampaignCache(cache, refresh=refresh)
    if refresh and not cache.refresh:
        raise ConfigurationError(
            "refresh=True conflicts with a non-refresh CampaignCache; "
            "construct it with CampaignCache(dir, refresh=True)")
    return cache


def instrument_cache(registry: "MetricsRegistry",
                     cache: CampaignCache) -> None:
    """Register the cache's lifetime counters as pull-based metrics.

    Adds ``campaign/cache/{hits,misses,stores,bytes_read,bytes_written,
    corrupt_entries}`` to ``registry``, each bound to the live counter on
    ``cache`` — zero overhead until snapshot time, like every other
    registry instrument.
    """
    names: Dict[str, Any] = {
        "hits": ("lookups answered from disk", lambda: cache.hits),
        "misses": ("lookups that fell through to simulation",
                   lambda: cache.misses),
        "stores": ("entries written", lambda: cache.stores),
        "bytes_read": ("entry bytes loaded on hits",
                       lambda: cache.bytes_read),
        "bytes_written": ("entry bytes persisted on stores",
                          lambda: cache.bytes_written),
        "corrupt_entries": ("entries rejected as unreadable",
                            lambda: cache.corrupt_entries),
    }
    for name, (description, source) in names.items():
        registry.counter(f"campaign/cache/{name}", source=source,
                         description=description)
