"""Reproduction of every table and figure in the paper's evaluation.

Each ``figure*`` / ``table*`` function runs the corresponding experiment on
the calibrated scenario, computes the quantities the paper reads off the
figure, and returns a :class:`FigureResult` holding paper-vs-measured
comparison rows plus an ASCII rendering.  The benchmark suite calls these
one-to-one; EXPERIMENTS.md is generated from their output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.analysis.loss import loss_stats
from repro.analysis.phase import (
    diagonal_fraction,
    fit_compression_line,
    phase_points,
)
from repro.analysis.workload import (
    classify_peaks,
    find_peaks,
    workload_distribution,
)
from repro.experiments.config import ExperimentConfig, default_duration
from repro.experiments.runner import build_scenario, run_experiment
from repro.netdyn.trace import ProbeTrace
from repro.plotting import ascii as ascii_plots
from repro.tools.traceroute import route_names, traceroute
from repro.topology.inria_umd import (
    BOTTLENECK_RATE_BPS as INRIA_MU,
    TABLE1_ROUTE,
)
from repro.topology.umd_pitt import TABLE2_ROUTE
from repro.units import bps_to_kbps, bytes_to_bits, seconds_to_ms, transmission_delay


@dataclass
class ComparisonRow:
    """One paper-vs-measured quantity."""

    name: str
    paper: str
    measured: str
    ok: bool


@dataclass
class FigureResult:
    """Everything a reproduced figure/table produces."""

    figure_id: str
    description: str
    rows: list[ComparisonRow] = field(default_factory=list)
    rendering: str = ""
    trace: Optional[ProbeTrace] = None

    @property
    def all_ok(self) -> bool:
        """True when every comparison row passed."""
        return all(row.ok for row in self.rows)

    def add(self, name: str, paper: str, measured: str, ok: bool) -> None:
        """Append a comparison row."""
        self.rows.append(ComparisonRow(name, paper, measured, ok))

    def summary(self) -> str:
        """Plain-text comparison table."""
        lines = [f"== {self.figure_id}: {self.description}"]
        width = max((len(r.name) for r in self.rows), default=10)
        for row in self.rows:
            status = "OK " if row.ok else "MISS"
            lines.append(f"  [{status}] {row.name:<{width}}  "
                         f"paper: {row.paper:<22} measured: {row.measured}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Tables 1 and 2: routes
# ----------------------------------------------------------------------
def table1(seed: int = 1) -> FigureResult:
    """Table 1: the traceroute route INRIA -> UMd."""
    config = ExperimentConfig(delta=0.05, seed=seed,
                              scenario_kwargs={"utilization_fwd": 0.0,
                                               "utilization_rev": 0.0,
                                               "fault_drop_prob": 0.0})
    scenario = build_scenario(config)
    hops = traceroute(scenario.network, scenario.source, scenario.echo)
    observed = [scenario.source] + route_names(hops)
    expected = list(TABLE1_ROUTE)
    result = FigureResult(
        "Table 1", "Route between INRIA and UMd (July 1992)")
    result.add("route (10 entries)", " / ".join(expected[:3]) + " ...",
               " / ".join(observed[:3]) + " ...",
               observed[:len(expected)] == expected)
    result.rendering = "\n".join(
        f"{i + 1:3d}  {name}" for i, name in enumerate(observed))
    return result


def table2(seed: int = 1) -> FigureResult:
    """Table 2: the traceroute route UMd -> Pittsburgh."""
    config = ExperimentConfig(delta=0.05, seed=seed, scenario="umd-pitt",
                              scenario_kwargs={"utilization_fwd": 0.0,
                                               "utilization_rev": 0.0})
    scenario = build_scenario(config)
    hops = traceroute(scenario.network, scenario.source, scenario.echo)
    observed = [scenario.source] + route_names(hops)
    expected = list(TABLE2_ROUTE)
    result = FigureResult(
        "Table 2", "Route between UMd and Pittsburgh (May 1993)")
    result.add("route (14 entries)", " / ".join(expected[:2]) + " ...",
               " / ".join(observed[:2]) + " ...",
               observed[:len(expected)] == expected)
    result.rendering = "\n".join(
        f"{i + 1:3d}  {name}" for i, name in enumerate(observed))
    return result


# ----------------------------------------------------------------------
# Figure 1: time series, δ = 50 ms
# ----------------------------------------------------------------------
def figure1(seed: int = 1, count: int = 800) -> FigureResult:
    """Figure 1: rtt_n vs n for δ = 50 ms; the paper's run lost 9%."""
    config = ExperimentConfig(delta=0.05, duration=count * 0.05, seed=seed)
    trace = run_experiment(config)
    result = FigureResult(
        "Figure 1", "Time series of rtt_n, delta = 50 ms, n in [0, 800]")
    result.trace = trace
    loss = trace.loss_fraction
    result.add("loss probability", "0.09", f"{loss:.2f}",
               0.04 <= loss <= 0.18)
    minimum = seconds_to_ms(trace.min_rtt())
    result.add("min rtt (D)", "~140 ms", f"{minimum:.0f} ms",
               120 <= minimum <= 160)
    result.rendering = ascii_plots.line(
        seconds_to_ms(trace.rtts), missing=trace.lost,
        title="rtt_n (ms) vs n, delta=50ms", y_label="rtt ms")
    return result


# ----------------------------------------------------------------------
# Figures 2 and 4: INRIA-UMd phase plots
# ----------------------------------------------------------------------
def _phase_figure(figure_id: str, delta: float, seed: int, count: int,
                  scenario: str = "inria-umd") -> tuple[FigureResult,
                                                        ProbeTrace]:
    config = ExperimentConfig(delta=delta, duration=count * delta, seed=seed,
                              scenario=scenario)
    trace = run_experiment(config)
    result = FigureResult(
        figure_id,
        f"Phase plot of rtt_n, delta = {seconds_to_ms(delta):g} ms "
        f"({scenario})")
    result.trace = trace
    plot = phase_points(trace)
    result.rendering = ascii_plots.scatter(
        seconds_to_ms(plot.x), seconds_to_ms(plot.y), diagonal=True,
        title=f"rtt_n+1 vs rtt_n (ms), delta={seconds_to_ms(delta):g}ms",
        x_label="rtt_n ms")
    return result, trace


def figure2(seed: int = 1, count: int = 2400) -> FigureResult:
    """Figure 2: phase plot at δ = 50 ms; D ≈ 140 ms, μ ≈ 130 kb/s."""
    result, trace = _phase_figure("Figure 2", 0.05, seed, count)
    plot = phase_points(trace)
    fit = fit_compression_line(plot, mu_hint=INRIA_MU)

    minimum = seconds_to_ms(trace.min_rtt())
    result.add("min delay point D", "~140 ms", f"{minimum:.0f} ms",
               120 <= minimum <= 160)
    result.add("compression-line points", "> 0 (visible line)",
               str(fit.point_count), fit.point_count > 10)
    if fit.x_intercept is not None:
        intercept = seconds_to_ms(fit.x_intercept)
        result.add("line x-intercept (δ − P/μ)", "~48 ms (paper reads 48)",
                   f"{intercept:.1f} ms", 43 <= intercept <= 48)
    else:
        result.add("line x-intercept (δ − P/μ)", "~48 ms", "not found", False)
    if fit.mu_estimate is not None:
        # The band-mean estimator carries the same ~±20% uncertainty as
        # the paper's visual x-intercept read (3.906 ms clock quantization
        # plus small cross packets contaminating the band).
        mu_kbps = bps_to_kbps(fit.mu_estimate)
        result.add("bottleneck estimate μ", "~130 kb/s (actual 128)",
                   f"{mu_kbps:.0f} kb/s", 100 <= mu_kbps <= 160)
    else:
        result.add("bottleneck estimate μ", "~130 kb/s", "not found", False)
    return result


def figure4(seed: int = 1, count: int = 800) -> FigureResult:
    """Figure 4: phase plot at δ = 500 ms; diagonal scatter, line empty."""
    result, trace = _phase_figure("Figure 4", 0.5, seed, count)
    plot = phase_points(trace)
    fit = fit_compression_line(plot, mu_hint=INRIA_MU)
    diag = diagonal_fraction(plot, tolerance=0.15)
    mean_offset = float(np.mean(plot.y - plot.x))
    result.add("scatter around diagonal", "most points",
               f"{diag:.0%} within 150 ms, mean offset "
               f"{seconds_to_ms(mean_offset):+.1f} ms",
               diag > 0.7 and abs(mean_offset) < 0.02)
    line_fraction = fit.point_count / max(1, len(plot))
    result.add("compression-line points", "2 of ~800 (almost none)",
               f"{fit.point_count} ({line_fraction:.2%})",
               line_fraction < 0.02)
    return result


# ----------------------------------------------------------------------
# Figures 5 and 6: UMd-Pitt phase plots
# ----------------------------------------------------------------------
def figure5(seed: int = 1, count: int = 2400) -> FigureResult:
    """Figure 5: UMd-Pitt phase plot at δ = 8 ms with 3 ms clock banding."""
    result, trace = _phase_figure("Figure 5", 0.008, seed, count,
                                  scenario="umd-pitt")
    plot = phase_points(trace)
    # With a fast bottleneck P/mu ~ 0.06 ms, so the compression line is
    # rtt_{n+1} = rtt_n - delta: look for offsets near -8 ms.
    offsets = plot.y - plot.x
    near_line = np.abs(offsets + trace.delta) <= 2e-3
    result.add("points near rtt_n+1 = rtt_n − 8ms", "visible line",
               str(int(near_line.sum())), int(near_line.sum()) > 5)
    # Clock quantization: rtts fall on a 3 ms lattice.
    remainders = np.mod(trace.valid_rtts, 3e-3)
    on_grid = np.mean((remainders < 1e-6) | (remainders > 3e-3 - 1e-6))
    result.add("3 ms clock banding", "regular spacing",
               f"{on_grid:.0%} on 3 ms grid", on_grid > 0.95)
    return result


def figure6(seed: int = 1, count: int = 2400) -> FigureResult:
    """Figure 6: UMd-Pitt phase plot at δ = 50 ms; diagonal scatter."""
    result, trace = _phase_figure("Figure 6", 0.05, seed, count,
                                  scenario="umd-pitt")
    plot = phase_points(trace)
    diag = diagonal_fraction(plot, tolerance=5e-3)
    result.add("scatter around diagonal", "most points",
               f"{diag:.0%} within 5 ms", diag > 0.7)
    return result


# ----------------------------------------------------------------------
# Figures 8 and 9: workload distributions
# ----------------------------------------------------------------------
def _workload_bin_width(trace: ProbeTrace) -> float:
    """Histogram bin width: at least the source clock's resolution.

    Quantized timestamps put samples on a lattice; binning at the lattice
    pitch keeps each physical peak in one bin instead of spreading it over
    quantization side lobes.
    """
    resolution = float(trace.meta.get("clock_resolution", 0.0) or 0.0)
    return max(2e-3, resolution)


def _workload_figure(figure_id: str, delta: float, seed: int,
                     duration: float) -> tuple[FigureResult, ProbeTrace]:
    config = ExperimentConfig(delta=delta, duration=duration, seed=seed)
    trace = run_experiment(config)
    result = FigureResult(
        figure_id,
        f"Distribution of w_n+1 - w_n + delta, "
        f"delta = {seconds_to_ms(delta):g} ms")
    result.trace = trace
    dist = workload_distribution(trace, mu=INRIA_MU,
                                 bin_width=_workload_bin_width(trace))
    result.rendering = ascii_plots.histogram(
        dist.counts, seconds_to_ms(dist.edges), unit="ms",
        title=f"w_n+1 - w_n + delta (ms), delta={seconds_to_ms(delta):g}ms",
        min_count=max(1, int(0.002 * dist.counts.sum())))
    return result, trace


def _peak_rows(result: FigureResult, trace: ProbeTrace,
               delta: float) -> dict:
    bin_width = _workload_bin_width(trace)
    dist = workload_distribution(trace, mu=INRIA_MU, bin_width=bin_width)
    peaks = find_peaks(dist, min_height_fraction=0.004)
    classified = classify_peaks(peaks, delta=delta, mu=INRIA_MU,
                                probe_bits=bytes_to_bits(trace.wire_bytes),
                                tolerance=max(4e-3, bin_width))
    service_ms = seconds_to_ms(
        transmission_delay(trace.wire_bytes, INRIA_MU))
    comp = classified["compression"]
    result.add(f"peak at P/μ = {service_ms:.1f} ms",
               "present (compressed probes)",
               f"at {seconds_to_ms(comp.location):.1f} ms" if comp
               else "absent",
               comp is not None)
    idle = classified["idle"]
    result.add(f"peak at δ = {seconds_to_ms(delta):g} ms",
               "present (idle queue)",
               f"at {seconds_to_ms(idle.location):.1f} ms" if idle
               else "absent",
               idle is not None)
    one = classified["one_packet"]
    if one is not None:
        implied = one.implied_bytes
        result.add("first cross-packet peak",
                   "~488 B + headers (one FTP packet)",
                   f"implies {implied:.0f} B on the wire",
                   380 <= implied <= 700)
    else:
        result.add("first cross-packet peak", "~488 B + headers", "absent",
                   False)
    return classified


def figure8(seed: int = 1, duration: Optional[float] = None) -> FigureResult:
    """Figure 8: workload distribution at δ = 20 ms."""
    duration = default_duration(240.0) if duration is None else duration
    result, trace = _workload_figure("Figure 8", 0.020, seed, duration)
    _peak_rows(result, trace, 0.020)
    return result


def figure9(seed: int = 1, duration: Optional[float] = None) -> FigureResult:
    """Figure 9: workload distribution at δ = 100 ms; compression peak
    much smaller relative to the idle peak than at δ = 20 ms."""
    duration = default_duration(360.0) if duration is None else duration
    result, trace = _workload_figure("Figure 9", 0.100, seed, duration)
    classified = _peak_rows(result, trace, 0.100)

    # The paper's key observation comparing Figures 8 and 9.
    config8 = ExperimentConfig(delta=0.020, duration=duration / 2, seed=seed)
    trace8 = run_experiment(config8)
    ratio = {}
    for name, tr, delta in (("fig8", trace8, 0.020), ("fig9", trace, 0.100)):
        bin_width = _workload_bin_width(tr)
        dist = workload_distribution(tr, mu=INRIA_MU, bin_width=bin_width)
        peaks = find_peaks(dist, min_height_fraction=0.005)
        cls = classify_peaks(peaks, delta=delta, mu=INRIA_MU,
                             probe_bits=bytes_to_bits(tr.wire_bytes),
                             tolerance=max(4e-3, bin_width))
        if cls["compression"] and cls["idle"]:
            ratio[name] = cls["compression"].height / cls["idle"].height
        else:
            ratio[name] = 0.0
    result.add("compression/idle height ratio vs Figure 8",
               "much smaller at δ=100 (less compression)",
               f"fig8: {ratio['fig8']:.2f}, fig9: {ratio['fig9']:.2f}",
               ratio["fig9"] < ratio["fig8"])
    return result


# ----------------------------------------------------------------------
# Table 3: loss statistics vs δ
# ----------------------------------------------------------------------
#: The paper's Table 3 (ulp at δ=500 printed as 0.97; see DESIGN.md note).
PAPER_TABLE3 = {
    0.008: {"ulp": 0.23, "clp": 0.60, "plg": 2.5},
    0.020: {"ulp": 0.16, "clp": 0.42, "plg": 1.7},
    0.050: {"ulp": 0.12, "clp": 0.27, "plg": 1.3},
    0.100: {"ulp": 0.10, "clp": 0.18, "plg": 1.2},
    0.200: {"ulp": 0.11, "clp": 0.18, "plg": 1.2},
    0.500: {"ulp": 0.10, "clp": 0.09, "plg": 1.1},
}


def table3(seed: int = 2, duration: Optional[float] = None,
           deltas: tuple = tuple(PAPER_TABLE3)) -> FigureResult:
    """Table 3: ulp, clp, plg for each probe interval δ."""
    result = FigureResult(
        "Table 3", "Loss statistics ulp/clp/plg vs probe interval")
    lines = [f"{'delta':>8} {'ulp':>6} {'clp':>6} {'plg':>6}   "
             f"(paper: ulp/clp/plg)"]
    measured = {}
    for delta in deltas:
        duration_d = duration
        if duration_d is None:
            # Longer runs for sparse probing so loss counts stay
            # meaningful; at delta >= 100 ms use the paper's full 10 min.
            duration_d = default_duration(120.0 if delta < 0.1 else 600.0)
        config = ExperimentConfig(delta=delta, duration=duration_d, seed=seed)
        stats = loss_stats(run_experiment(config))
        measured[delta] = stats
        paper = PAPER_TABLE3[delta]
        lines.append(
            f"{seconds_to_ms(delta):6.0f}ms {stats.ulp:6.2f} "
            f"{stats.clp:6.2f} "
            f"{stats.plg:6.1f}   ({paper['ulp']:.2f}/{paper['clp']:.2f}/"
            f"{paper['plg']:.1f})")
    result.rendering = "\n".join(lines)

    # Shape checks, not absolute-value checks.
    ulps = [measured[d].ulp for d in deltas]
    clps = [measured[d].clp for d in deltas]
    plgs = [measured[d].plg for d in deltas]
    result.add("ulp decreases then stabilizes",
               "0.23 -> ~0.10", f"{ulps[0]:.2f} -> {ulps[-1]:.2f}",
               ulps[0] > ulps[-1] and ulps[0] >= 0.15)
    result.add("ulp floor ~10%", "~0.10",
               f"{np.mean(ulps[-3:]):.2f}",
               0.04 <= float(np.mean(ulps[-3:])) <= 0.16)
    result.add("clp > ulp at small δ (bursty)", "0.60 vs 0.23",
               f"{clps[0]:.2f} vs {ulps[0]:.2f}", clps[0] > ulps[0] + 0.1)
    result.add("clp ≈ ulp at large δ (random)", "0.09 vs ~0.10",
               f"{clps[-1]:.2f} vs {ulps[-1]:.2f}",
               abs(clps[-1] - ulps[-1]) < 0.12)
    result.add("plg decays toward 1", "2.5 -> 1.1",
               f"{plgs[0]:.1f} -> {plgs[-1]:.1f}",
               plgs[0] > plgs[-1] and plgs[-1] < 1.5)
    return result


#: All reproduction entry points, in paper order.
ALL_FIGURES: dict[str, Callable[..., FigureResult]] = {
    "table1": table1,
    "table2": table2,
    "figure1": figure1,
    "figure2": figure2,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure8": figure8,
    "figure9": figure9,
    "table3": table3,
}
