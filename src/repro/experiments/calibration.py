"""Executable calibration checks for the INRIA-UMd scenario.

DESIGN.md states the calibration targets (fixed delay D ≈ 140 ms, 128 kb/s
bottleneck, K = 15 packets ≈ 620 ms max queueing, ~3% random-fault loss
floor, bulk-dominated cross traffic at ~70% utilization).  This module
turns those prose claims into a checkable report, so any change to the
topology or traffic defaults that silently drifts away from the paper's
physics fails a test instead of quietly skewing every figure.
"""

from __future__ import annotations

from repro.analysis.loss import loss_stats
from repro.experiments.figures import FigureResult
from repro.netdyn.session import run_probe_experiment
from repro.topology.inria_umd import build_inria_umd
from repro.units import bps_to_kbps, seconds_to_ms


def validate_calibration(seed: int = 1,
                         duration: float = 120.0) -> FigureResult:
    """Measure the calibrated scenario and compare against the targets."""
    result = FigureResult(
        "Calibration", "INRIA-UMd scenario vs its stated physical targets")

    # --- Fixed path physics: idle network. -----------------------------
    idle = build_inria_umd(seed=seed, utilization_fwd=0.0,
                           utilization_rev=0.0, fault_drop_prob=0.0)
    idle_trace = run_probe_experiment(idle.network, idle.source, idle.echo,
                                      delta=0.05, count=100)
    d_ms = seconds_to_ms(idle_trace.min_rtt())
    result.add("fixed round trip D", "~140 ms", f"{d_ms:.1f} ms",
               125.0 <= d_ms <= 155.0)
    result.add("idle path lossless", "0", f"{idle_trace.loss_count}",
               idle_trace.loss_count == 0)
    result.add("bottleneck rate", "128 kb/s",
               f"{bps_to_kbps(idle.bottleneck_rate_bps):.0f} kb/s",
               idle.bottleneck_rate_bps == 128_000)

    # --- Fault floor: faults only, no congestion. -----------------------
    faulty = build_inria_umd(seed=seed, utilization_fwd=0.0,
                             utilization_rev=0.0)
    fault_trace = run_probe_experiment(faulty.network, faulty.source,
                                       faulty.echo, delta=0.05,
                                       duration=duration)
    fault_loss = loss_stats(fault_trace)
    result.add("random-fault loss floor", "~3% (2 x 1.5%, [17])",
               f"{fault_loss.ulp:.1%}", 0.015 <= fault_loss.ulp <= 0.05)
    result.add("fault losses random", "clp ~ ulp",
               f"clp {fault_loss.clp:.2f} vs ulp {fault_loss.ulp:.2f}",
               abs(fault_loss.clp - fault_loss.ulp) < 0.05)

    # --- Loaded behavior: the calibrated defaults. -----------------------
    loaded = build_inria_umd(seed=seed)
    loaded.start_traffic()
    loaded_trace = run_probe_experiment(loaded.network, loaded.source,
                                        loaded.echo, delta=0.05,
                                        duration=duration, start_at=30.0)
    utilization = loaded.bottleneck_fwd.utilization_estimate()
    result.add("bottleneck utilization (fwd, incl. probes)", "~0.75-0.9",
               f"{utilization:.2f}", 0.6 <= utilization <= 0.95)
    max_queueing_ms = seconds_to_ms(
        float(loaded_trace.valid_rtts.max()) - idle_trace.min_rtt())
    result.add("max round-trip queueing", "~620 ms (paper's maximum)",
               f"{max_queueing_ms:.0f} ms", 350.0 <= max_queueing_ms <= 900.0)
    loaded_loss = loss_stats(loaded_trace)
    result.add("loss at δ = 50 ms", "0.12 (Table 3)",
               f"{loaded_loss.ulp:.2f}", 0.05 <= loaded_loss.ulp <= 0.20)
    result.add("buffer capacity", "K = 15 packets",
               f"{loaded.bottleneck_fwd.queue.capacity} "
               f"{loaded.bottleneck_fwd.queue.mode}",
               loaded.bottleneck_fwd.queue.capacity == 15
               and loaded.bottleneck_fwd.queue.mode == "packets")
    return result
