"""Calibrated experiments: one function per table/figure of the paper."""

from repro.experiments.cache import (
    CampaignCache,
    cache_salt,
    cell_fingerprint,
    instrument_cache,
)
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    load_campaign_traces,
    run_campaign,
)
from repro.experiments.calibration import validate_calibration
from repro.experiments.config import (
    DEFAULT_WARMUP,
    ExperimentConfig,
    PAPER_DELTAS,
    PAPER_DURATION,
    default_duration,
    full_experiments,
)
from repro.experiments.figures import (
    ALL_FIGURES,
    ComparisonRow,
    FigureResult,
    PAPER_TABLE3,
    figure1,
    figure2,
    figure4,
    figure5,
    figure6,
    figure8,
    figure9,
    table1,
    table2,
    table3,
)
from repro.experiments.report import as_markdown, as_text, run_all
from repro.experiments.campaign import collect_queue_stats
from repro.experiments.runner import (
    build_scenario,
    run_experiment,
    run_experiment_with_scenario,
    run_observed_experiment,
)

def __getattr__(name: str) -> str:
    # CACHE_SALT is derived from the package sources on first use (see
    # repro.experiments.cache.cache_salt); keep it lazy so importing this
    # package does not parse the whole tree.
    if name == "CACHE_SALT":
        return cache_salt()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CACHE_SALT",
    "CampaignCache",
    "cache_salt",
    "CampaignSpec",
    "CampaignResult",
    "cell_fingerprint",
    "instrument_cache",
    "run_campaign",
    "load_campaign_traces",
    "validate_calibration",
    "ExperimentConfig",
    "PAPER_DELTAS",
    "PAPER_DURATION",
    "DEFAULT_WARMUP",
    "default_duration",
    "full_experiments",
    "ALL_FIGURES",
    "ComparisonRow",
    "FigureResult",
    "PAPER_TABLE3",
    "figure1",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure8",
    "figure9",
    "table1",
    "table2",
    "table3",
    "as_markdown",
    "as_text",
    "run_all",
    "build_scenario",
    "collect_queue_stats",
    "run_experiment",
    "run_experiment_with_scenario",
    "run_observed_experiment",
]
