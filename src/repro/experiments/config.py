"""Experiment configuration shared by the figure/table reproductions.

The paper's experiments are 10-minute probe trains; full-length runs are
supported but the default durations are scaled down so the whole benchmark
suite completes in minutes.  Set the environment variable
``REPRO_FULL_EXPERIMENTS=1`` to run paper-length experiments everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: The probe intervals of the paper's experiments, seconds.
PAPER_DELTAS = (0.008, 0.020, 0.050, 0.100, 0.200, 0.500)

#: Length of each experiment in the paper, seconds.
PAPER_DURATION = 600.0

#: Warm-up before probing starts, letting cross traffic reach steady state.
DEFAULT_WARMUP = 30.0

#: Execution modes: exact event simulation (the golden reference) and the
#: analytic fluid/aggregate fast-forward of the bottleneck queue.
EXECUTION_MODES = ("event", "analytic")


def full_experiments() -> bool:
    """True when paper-length runs were requested via the environment."""
    # Read upstream of the cell cache: the env only shapes ExperimentConfig
    # durations, and duration is hashed into every cell key — the
    # environment cannot silently poison a cached cell.
    return os.environ.get(
        "REPRO_FULL_EXPERIMENTS", "") not in ("", "0")  # repro: noqa[FLOW002]


def default_duration(requested: float = 120.0) -> float:
    """The experiment duration to use: paper length if requested via env."""
    return PAPER_DURATION if full_experiments() else requested


@dataclass
class ExperimentConfig:
    """Parameters of one probe experiment on a calibrated scenario.

    Attributes
    ----------
    delta:
        Probe interval, seconds.
    duration:
        Probe-train length, seconds (count = duration / delta).
    seed:
        Master random seed.
    warmup:
        Cross-traffic warm-up before the first probe, seconds.
    scenario:
        ``"inria-umd"`` or ``"umd-pitt"``.
    scenario_kwargs:
        Extra arguments forwarded to the topology builder.
    mode:
        ``"event"`` runs the exact event-driven simulation (the golden
        reference); ``"analytic"`` fast-forwards the bottleneck queue
        analytically (see :mod:`repro.experiments.fastforward`), falling
        back to event execution when the scenario is not aggregatable.
    """

    delta: float
    duration: float = 120.0
    seed: int = 1
    warmup: float = DEFAULT_WARMUP
    scenario: str = "inria-umd"
    scenario_kwargs: dict = field(default_factory=dict)
    mode: str = "event"

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ConfigurationError(f"delta must be positive: {self.delta}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {self.duration}")
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be >= 0: {self.warmup}")
        if self.scenario not in ("inria-umd", "umd-pitt"):
            raise ConfigurationError(f"unknown scenario {self.scenario!r}")
        if self.mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"unknown execution mode {self.mode!r}; "
                f"expected one of {EXECUTION_MODES}")

    @property
    def count(self) -> int:
        """Number of probes implied by duration and delta."""
        return max(1, int(round(self.duration / self.delta)))
