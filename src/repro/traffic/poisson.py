"""Poisson and modulated-Poisson traffic sources."""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.traffic.base import SINK_PORT, TrafficSource
from repro.traffic.sizes import FixedSize, SizeDistribution

#: Signature of a time-varying rate function (packets/s at time t).
RateFunction = Callable[[float], float]


class PoissonSource(TrafficSource):
    """Packets arrive as a Poisson process of fixed rate.

    Parameters
    ----------
    rate_pps:
        Mean packet arrival rate, packets per second.
    sizes:
        Payload size distribution (defaults to fixed 512 B).
    """

    def __init__(self, host: Host, destination: str, rate_pps: float,
                 sizes: Optional[SizeDistribution] = None,
                 port: int = SINK_PORT,
                 stream: str = "traffic.poisson") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        if rate_pps <= 0:
            raise ConfigurationError(
                f"rate must be positive, got {rate_pps}")
        self.rate_pps = rate_pps
        self.sizes = sizes if sizes is not None else FixedSize(512)
        self._mean_interval = 1.0 / rate_pps

    def _next_interval(self) -> float:
        return self._draws.exponential(self._mean_interval)

    def _emit(self) -> None:
        self._send(self.sizes.sample_batched(self._draws))


class ModulatedPoissonSource(TrafficSource):
    """A Poisson source whose rate varies with time (thinning method).

    Candidate events are generated at ``peak_rate_pps`` and accepted with
    probability ``rate(t) / peak_rate_pps``, producing an inhomogeneous
    Poisson process — used to model the slowly varying base congestion level
    (diurnal cycle) reported by Mukherjee [19].
    """

    def __init__(self, host: Host, destination: str, rate: RateFunction,
                 peak_rate_pps: float,
                 sizes: Optional[SizeDistribution] = None,
                 port: int = SINK_PORT,
                 stream: str = "traffic.mmpp") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        if peak_rate_pps <= 0:
            raise ConfigurationError(
                f"peak rate must be positive, got {peak_rate_pps}")
        self.rate = rate
        self.peak_rate_pps = peak_rate_pps
        self.sizes = sizes if sizes is not None else FixedSize(512)
        self.thinned = 0
        self._mean_interval = 1.0 / peak_rate_pps

    def _next_interval(self) -> float:
        return self._draws.exponential(self._mean_interval)

    def _emit(self) -> None:
        current = self.rate(self._sim.now)
        acceptance = min(1.0, max(0.0, current / self.peak_rate_pps))
        if self._draws.random() < acceptance:
            self._send(self.sizes.sample_batched(self._draws))
        else:
            self.thinned += 1


class DiurnalProfile:
    """A sinusoidal day/night load profile.

    ``rate(t) = base * (1 + amplitude * sin(2π (t - phase) / period))``,
    clipped at zero.  With the default 24 h period this reproduces the
    diurnal congestion cycle visible in the spectral analysis of [19]; the
    tests use short periods so the cycle fits in a simulated minute.
    """

    def __init__(self, base_pps: float, amplitude: float = 0.5,
                 period: float = 86400.0, phase: float = 0.0) -> None:
        if base_pps <= 0:
            raise ConfigurationError(
                f"base rate must be positive, got {base_pps}")
        if not 0.0 <= amplitude <= 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1], got {amplitude}")
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.base_pps = base_pps
        self.amplitude = amplitude
        self.period = period
        self.phase = phase

    def __call__(self, t: float) -> float:
        import math
        cycle = math.sin(2 * math.pi * (t - self.phase) / self.period)
        return max(0.0, self.base_pps * (1.0 + self.amplitude * cycle))

    @property
    def peak_pps(self) -> float:
        """Upper bound of the rate, for thinning."""
        return self.base_pps * (1.0 + self.amplitude)
