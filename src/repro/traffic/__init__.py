"""Traffic generators: the "Internet stream" of the paper's model.

Primitives (:class:`CBRSource`, :class:`PoissonSource`, :class:`BatchSource`,
:class:`OnOffSource`) plus application-flavored sources (:class:`FtpSource`,
:class:`TelnetSource`) and the calibrated composite
(:func:`attach_internet_mix`).
"""

from repro.traffic.base import SINK_PORT, TrafficSink, TrafficSource
from repro.traffic.batch import (
    BatchSource,
    fixed_batches,
    geometric_batches,
)
from repro.traffic.deterministic import CBRSource
from repro.traffic.ftp import FtpSource
from repro.traffic.mix import InternetMix, attach_internet_mix
from repro.traffic.onoff import OnOffSource
from repro.traffic.poisson import (
    DiurnalProfile,
    ModulatedPoissonSource,
    PoissonSource,
)
from repro.traffic.sizes import (
    EmpiricalSize,
    FixedSize,
    FTP_PAYLOAD_BYTES,
    SizeDistribution,
    ftp_sizes,
    telnet_sizes,
)
from repro.traffic.tcpflows import ResponsiveBulkSource
from repro.traffic.telnet import TelnetSource

__all__ = [
    "SINK_PORT",
    "TrafficSink",
    "TrafficSource",
    "BatchSource",
    "fixed_batches",
    "geometric_batches",
    "CBRSource",
    "FtpSource",
    "InternetMix",
    "attach_internet_mix",
    "OnOffSource",
    "DiurnalProfile",
    "ModulatedPoissonSource",
    "PoissonSource",
    "EmpiricalSize",
    "FixedSize",
    "FTP_PAYLOAD_BYTES",
    "SizeDistribution",
    "ftp_sizes",
    "telnet_sizes",
    "TelnetSource",
    "ResponsiveBulkSource",
]
