"""Responsive (congestion-controlled) bulk cross traffic.

Wraps :mod:`repro.net.transport`'s mini-TCP into a traffic source: file
transfer sessions arrive as a Poisson process, and each one runs a full
windowed transfer with slow start and loss recovery.  Unlike
:class:`repro.traffic.ftp.FtpSource`, this traffic *backs off* when probes
congest the bottleneck — the behavior real 1992 bulk traffic had, and the
knob behind the responsive-vs-open-loop ablation benchmark.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.transport import MiniTcpReceiver, MiniTcpSender

#: First port used for transfer connections.
BASE_PORT = 20_000


class ResponsiveBulkSource:
    """Poisson session arrivals, each a mini-TCP bulk transfer.

    Parameters
    ----------
    sender, receiver:
        The two end hosts of the transfers.
    session_rate:
        New transfers per second (exponential inter-arrivals).
    mean_file_segments:
        Mean file size in segments (geometric).
    segment_bytes:
        Data segment payload size.
    stream:
        Random stream name.
    max_concurrent:
        Upper bound on simultaneously active transfers (ports in use).
    base_port:
        First connection port; give each source on a shared pair of
        hosts (e.g. one per direction) a disjoint port range.
    """

    def __init__(self, sender: Host, receiver: Host, session_rate: float,
                 mean_file_segments: float = 20.0, segment_bytes: int = 512,
                 stream: str = "traffic.tcp", max_concurrent: int = 64,
                 base_port: int = BASE_PORT,
                 max_window: float = 16.0) -> None:
        if session_rate <= 0:
            raise ConfigurationError(
                f"session rate must be positive, got {session_rate}")
        if mean_file_segments < 1:
            raise ConfigurationError(
                f"mean file size must be >= 1, got {mean_file_segments}")
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1, got {max_concurrent}")
        self.sender = sender
        self.receiver = receiver
        self.session_rate = session_rate
        self.mean_file_segments = mean_file_segments
        self.segment_bytes = segment_bytes
        self.max_concurrent = max_concurrent
        self.max_window = max_window
        self.rng = sender.sim.streams.get(stream)
        self._ports = itertools.count(base_port)
        self._active: list[tuple[MiniTcpSender, MiniTcpReceiver]] = []
        self._running = False
        self.sessions_started = 0
        self.sessions_skipped = 0

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin launching transfer sessions."""
        if self._running:
            raise ConfigurationError("source already started")
        self._running = True
        start_time = self.sender.sim.now if at is None else at
        self.sender.sim.call_at(start_time + self._next_interval(),
                                self._launch, label="tcp-session")

    def stop(self) -> None:
        """Stop launching new sessions; active transfers run to completion."""
        self._running = False

    def _next_interval(self) -> float:
        return float(self.rng.exponential(1.0 / self.session_rate))

    def _launch(self) -> None:
        if not self._running:
            return
        self._reap_finished()
        if len(self._active) < self.max_concurrent:
            segments = int(self.rng.geometric(1.0 / self.mean_file_segments))
            port = next(self._ports)
            receiver = MiniTcpReceiver(self.receiver, port=port)
            sender = MiniTcpSender(self.sender, self.receiver.name,
                                   port=port, total_segments=segments,
                                   segment_bytes=self.segment_bytes,
                                   max_window=self.max_window)
            sender.start()
            self._active.append((sender, receiver))
            self.sessions_started += 1
        else:
            self.sessions_skipped += 1
        self.sender.sim.schedule(self._next_interval(), self._launch,
                                 label="tcp-session")

    def _reap_finished(self) -> None:
        still_active = []
        for sender, receiver in self._active:
            if sender.finished:
                sender.close()
                receiver.close()
            else:
                still_active.append((sender, receiver))
        self._active = still_active

    # ------------------------------------------------------------------
    @property
    def active_transfers(self) -> int:
        """Number of transfers currently in progress."""
        self._reap_finished()
        return len(self._active)

    def total_retransmissions(self) -> int:
        """Retransmissions across active (unreaped) transfers."""
        return sum(sender.stats.retransmissions
                   for sender, _ in self._active)
