"""Constant-bit-rate (periodic) traffic source."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.traffic.base import SINK_PORT, TrafficSource


class CBRSource(TrafficSource):
    """Sends one fixed-size packet every ``interval`` seconds.

    This is the probe stream's own arrival process; it is also the model of
    packet audio sources (22.5–125 ms intervals) discussed in Section 5 of
    the paper.
    """

    def __init__(self, host: Host, destination: str, interval: float,
                 payload_bytes: int, port: int = SINK_PORT,
                 stream: str = "traffic.cbr") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        if interval <= 0:
            raise ConfigurationError(
                f"interval must be positive, got {interval}")
        if payload_bytes <= 0:
            raise ConfigurationError(
                f"payload size must be positive, got {payload_bytes}")
        self.interval = interval
        self.payload_bytes = payload_bytes

    def _next_interval(self) -> float:
        return self.interval

    def _emit(self) -> None:
        self._send(self.payload_bytes)
