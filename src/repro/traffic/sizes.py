"""Packet-size distributions for traffic sources.

The paper's measurements resolve the Internet stream into bulk transfers
with large packets (one peak per 512-byte FTP packet in Figures 8/9) and
interactive traffic with small packets.  These distributions generate that
mix.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Classic FTP/NFS bulk data payload of the early-90s Internet.
FTP_PAYLOAD_BYTES = 512

#: Typical interactive (Telnet) payloads: a keystroke to a line of output.
TELNET_PAYLOAD_CHOICES = (1, 2, 4, 8, 16, 32, 64)


class SizeDistribution:
    """Interface: draw one payload size in bytes."""

    def sample(self, rng: np.random.Generator) -> int:
        """Return one payload size."""
        raise NotImplementedError

    def sample_batched(self, draws) -> int:
        """Return one payload size via a :class:`~repro.sim.random.BatchedDraws`.

        Must consume the *same number of underlying uniforms* as
        :meth:`sample` would, producing the same value — the traffic hot
        path uses this entry point and the determinism tests compare the
        two (see ``tests/sim/test_random_batched.py``).
        """
        raise NotImplementedError

    def mean(self) -> float:
        """Expected payload size in bytes."""
        raise NotImplementedError


class FixedSize(SizeDistribution):
    """Every packet has the same payload size."""

    def __init__(self, payload_bytes: int) -> None:
        if payload_bytes <= 0:
            raise ConfigurationError(
                f"payload size must be positive, got {payload_bytes}")
        self.payload_bytes = payload_bytes

    def sample(self, rng: np.random.Generator) -> int:
        return self.payload_bytes

    def sample_batched(self, draws) -> int:
        return self.payload_bytes

    def mean(self) -> float:
        return float(self.payload_bytes)


class EmpiricalSize(SizeDistribution):
    """Draws from a finite set of sizes with given probabilities."""

    def __init__(self, sizes: Sequence[int],
                 weights: Sequence[float]) -> None:
        if len(sizes) != len(weights) or not sizes:
            raise ConfigurationError("sizes and weights must match, nonempty")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigurationError("weights must sum to a positive value")
        self.sizes = np.asarray(sizes, dtype=int)
        self.probabilities = np.asarray(weights, dtype=float) / total
        # Normalized cumulative distribution for sample_batched: numpy's
        # Generator.choice(a, p=p) draws one uniform u and returns
        # a[searchsorted(cumsum(p)/cumsum(p)[-1], u, side="right")], so
        # replaying that arithmetic against a batched uniform reproduces
        # choice() exactly while consuming the same single draw.
        self._cdf = self.probabilities.cumsum()
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.sizes, p=self.probabilities))

    def sample_batched(self, draws) -> int:
        index = int(np.searchsorted(self._cdf, draws.random(), side="right"))
        return int(self.sizes[index])

    def mean(self) -> float:
        return float(np.dot(self.sizes, self.probabilities))


def telnet_sizes() -> EmpiricalSize:
    """Interactive packet sizes, skewed toward single keystrokes."""
    weights = [0.35, 0.15, 0.12, 0.12, 0.1, 0.08, 0.08]
    return EmpiricalSize(TELNET_PAYLOAD_CHOICES, weights)


def ftp_sizes() -> FixedSize:
    """Bulk data packets: full 512-byte segments."""
    return FixedSize(FTP_PAYLOAD_BYTES)
