"""Common machinery for traffic sources and sinks.

A :class:`TrafficSource` lives on a host and emits UDP packets toward a
sink; subclasses implement the arrival process by overriding
:meth:`TrafficSource._next_interval` / :meth:`TrafficSource._emit`.  The
sources model the *Internet stream* of the paper's Figure 3: everything that
shares the path with the probes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.packet import Packet
from repro.units import bytes_to_bits

#: UDP port conventionally used by traffic sinks.
SINK_PORT = 9000


class TrafficSink:
    """Counts packets and bytes arriving on a UDP port."""

    def __init__(self, host: Host, port: int = SINK_PORT) -> None:
        self.host = host
        self.port = port
        self.packets = 0
        self.bytes = 0
        self._first_arrival: Optional[float] = None
        self._last_arrival: Optional[float] = None
        host.bind_udp(port, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        self.packets += 1
        self.bytes += packet.size_bytes
        now = self.host.sim.now
        if self._first_arrival is None:
            self._first_arrival = now
        self._last_arrival = now

    def throughput_bps(self) -> float:
        """Average received rate in bits/s over the active period."""
        if self._first_arrival is None or self._last_arrival is None:
            return 0.0
        elapsed = self._last_arrival - self._first_arrival
        if elapsed <= 0:
            return 0.0
        return bytes_to_bits(self.bytes) / elapsed

    def close(self) -> None:
        """Release the UDP port."""
        self.host.unbind_udp(self.port)


class TrafficSource:
    """Base class: schedules its own emissions on the host's simulator.

    Parameters
    ----------
    host:
        Sending host.
    destination:
        Sink host name.
    port:
        Sink UDP port.
    stream:
        Name of the random stream this source draws from; distinct names
        give independent sources.
    """

    def __init__(self, host: Host, destination: str,
                 port: int = SINK_PORT, stream: str = "traffic") -> None:
        self.host = host
        self.destination = destination
        self.port = port
        # Hot-path handles, bound once per source: the batched-draw layer
        # for interval/size sampling, the simulator, and a persistent bound
        # reference to _tick so self-rescheduling allocates no closure per
        # emission (see DESIGN.md, "Hot path").  self.rng stays available
        # for subclasses/tests that need the raw generator; streams.get()
        # flushes the batched layer, so both views stay consistent.
        self._draws = host.sim.streams.draws(stream)
        self.rng: np.random.Generator = host.sim.streams.get(stream)
        self._sim = host.sim
        self._tick_ref = self._tick
        self.packets_sent = 0
        self.bytes_sent = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Begin emitting; first arrival after one inter-arrival interval."""
        if self._running:
            raise ConfigurationError("source already started")
        self._running = True
        start_time = self._sim.now if at is None else at
        self._sim.call_at(start_time + self._next_interval(),
                          self._tick_ref, label="traffic-start")

    def stop(self) -> None:
        """Stop after the current event; pending packets still drain."""
        self._running = False

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    def _tick(self) -> None:
        if not self._running:
            return
        self._emit()
        self._sim.schedule(self._next_interval(), self._tick_ref,
                           label="traffic")

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _next_interval(self) -> float:
        """Seconds until the next emission event."""
        raise NotImplementedError

    def _emit(self) -> None:
        """Send whatever this source sends at an emission event."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _send(self, payload_bytes: int) -> None:
        """Send one UDP packet of ``payload_bytes`` payload to the sink."""
        self.host.send_udp(self.destination, src_port=self.port,
                           dst_port=self.port, payload_bytes=payload_bytes)
        self.packets_sent += 1
        self.bytes_sent += payload_bytes

    def offered_load_bps(self, elapsed: float) -> float:
        """Average offered payload rate in bits/s over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return bytes_to_bits(self.bytes_sent) / elapsed
