"""Batch-arrival traffic: several packets delivered back to back.

This is the arrival process of the model Bolot analyzes in his conclusion
("the Internet arrival process is batch deterministic and the batch size
distribution is general"): batches of ``b_n`` bits arrive between probe
arrivals.  Back-to-back batches are what cause probe compression.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.traffic.base import SINK_PORT, TrafficSource
from repro.traffic.sizes import FixedSize, SizeDistribution

#: Signature of a batch-size sampler: rng -> number of packets.
BatchSampler = Callable[[np.random.Generator], int]


def geometric_batches(mean_packets: float) -> BatchSampler:
    """Batch sizes ~ Geometric with the given mean (support >= 1)."""
    if mean_packets < 1:
        raise ConfigurationError(
            f"mean batch size must be >= 1, got {mean_packets}")
    success = 1.0 / mean_packets
    return lambda rng: int(rng.geometric(success))


def fixed_batches(packets: int) -> BatchSampler:
    """Every batch has exactly ``packets`` packets."""
    if packets < 1:
        raise ConfigurationError(f"batch size must be >= 1, got {packets}")
    return lambda rng: packets


class BatchSource(TrafficSource):
    """Batches of packets arriving as a Poisson or deterministic process.

    Parameters
    ----------
    batch_rate:
        Mean batches per second.
    batch_sizes:
        Sampler for the number of packets per batch.
    sizes:
        Payload size distribution for packets inside a batch.
    deterministic:
        If True, batches arrive exactly every ``1/batch_rate`` seconds;
        otherwise inter-batch times are exponential.
    """

    def __init__(self, host: Host, destination: str, batch_rate: float,
                 batch_sizes: BatchSampler,
                 sizes: Optional[SizeDistribution] = None,
                 deterministic: bool = False, port: int = SINK_PORT,
                 stream: str = "traffic.batch") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        if batch_rate <= 0:
            raise ConfigurationError(
                f"batch rate must be positive, got {batch_rate}")
        self.batch_rate = batch_rate
        self.batch_sizes = batch_sizes
        self.sizes = sizes if sizes is not None else FixedSize(512)
        self.deterministic = deterministic
        self.batches_sent = 0

    def _next_interval(self) -> float:
        if self.deterministic:
            return 1.0 / self.batch_rate
        return float(self.rng.exponential(1.0 / self.batch_rate))

    def _emit(self) -> None:
        count = self.batch_sizes(self.rng)
        self.batches_sent += 1
        for _ in range(count):
            self._send(self.sizes.sample(self.rng))
