"""On-off (burst/silence) traffic source."""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.traffic.base import SINK_PORT, TrafficSource
from repro.traffic.sizes import FixedSize, SizeDistribution
from typing import Optional


class OnOffSource(TrafficSource):
    """Alternates exponential ON periods (CBR emission) and OFF silences.

    The standard parsimonious model of bursty sources; used in the ablation
    benches to contrast smooth and bursty cross traffic.
    """

    def __init__(self, host: Host, destination: str, on_mean: float,
                 off_mean: float, interval: float,
                 sizes: Optional[SizeDistribution] = None,
                 port: int = SINK_PORT,
                 stream: str = "traffic.onoff") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        for name, value in (("on_mean", on_mean), ("off_mean", off_mean),
                            ("interval", interval)):
            if value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive, got {value}")
        self.on_mean = on_mean
        self.off_mean = off_mean
        self.interval = interval
        self.sizes = sizes if sizes is not None else FixedSize(512)
        self._on_until = 0.0

    def _next_interval(self) -> float:
        now = self._sim.now
        if now < self._on_until:
            return self.interval
        # Burst over: draw a silence, then a new burst length.
        silence = self._draws.exponential(self.off_mean)
        burst = self._draws.exponential(self.on_mean)
        self._on_until = now + silence + burst
        return silence

    def _emit(self) -> None:
        if self._sim.now <= self._on_until:
            self._send(self.sizes.sample_batched(self._draws))

    @property
    def duty_cycle(self) -> float:
        """Long-run fraction of time the source is ON."""
        return self.on_mean / (self.on_mean + self.off_mean)
