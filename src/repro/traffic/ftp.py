"""Bulk-transfer ("FTP") traffic: window bursts of large packets.

The paper's workload estimates show cross-traffic arriving in multiples of
~512-byte packets (Figures 8 and 9): bulk transfers whose windows arrive
back-to-back at the bottleneck.  This source models that directly: file
transfer sessions arrive as a Poisson process; each session emits its file
as windows of ``window`` packets sent back-to-back, one window per
``window_interval`` (standing in for the transfer's round-trip clock).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.traffic.base import SINK_PORT, TrafficSource
from repro.traffic.sizes import FTP_PAYLOAD_BYTES
from repro.units import bytes_to_bits


class FtpSource(TrafficSource):
    """Poisson session arrivals, each a windowed bulk transfer.

    Parameters
    ----------
    session_rate:
        New transfers per second.
    mean_file_packets:
        Mean file size in packets (geometric).
    window:
        Packets sent back-to-back per window.
    window_interval:
        Seconds between successive windows of one transfer.
    payload_bytes:
        Data packet payload size (512 B default).
    """

    def __init__(self, host: Host, destination: str, session_rate: float,
                 mean_file_packets: float = 20.0, window: int = 4,
                 window_interval: float = 0.25,
                 payload_bytes: int = FTP_PAYLOAD_BYTES,
                 port: int = SINK_PORT, stream: str = "traffic.ftp") -> None:
        super().__init__(host, destination, port=port, stream=stream)
        if session_rate <= 0:
            raise ConfigurationError(
                f"session rate must be positive, got {session_rate}")
        if mean_file_packets < 1:
            raise ConfigurationError(
                f"mean file size must be >= 1 packet, got {mean_file_packets}")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        if window_interval <= 0:
            raise ConfigurationError(
                f"window interval must be positive, got {window_interval}")
        self.session_rate = session_rate
        self.mean_file_packets = mean_file_packets
        self.window = window
        self.window_interval = window_interval
        self.payload_bytes = payload_bytes
        self.sessions_started = 0
        self.sessions_finished = 0
        self._mean_session_interval = 1.0 / session_rate
        self._file_size_p = 1.0 / mean_file_packets

    # The base-class timer drives *session arrivals*; each session then
    # schedules its own window emissions.
    def _next_interval(self) -> float:
        return self._draws.exponential(self._mean_session_interval)

    def _emit(self) -> None:
        remaining = self._draws.geometric(self._file_size_p)
        self.sessions_started += 1
        _FtpTransfer(self, remaining)

    def mean_rate_bps(self) -> float:
        """Long-run offered payload rate implied by the parameters."""
        return (self.session_rate * self.mean_file_packets
                * bytes_to_bits(self.payload_bytes))


class _FtpTransfer:
    """One in-flight file transfer: its remaining-packet counter plus one
    persistent bound tick callback, so a transfer of N windows costs one
    object instead of N closures."""

    __slots__ = ("source", "remaining", "_tick_ref")

    def __init__(self, source: FtpSource, remaining: int) -> None:
        self.source = source
        self.remaining = remaining
        self._tick_ref = self._tick
        self._tick()

    def _tick(self) -> None:
        source = self.source
        if not source.running:
            return  # stop() halts in-flight transfers too
        burst = min(source.window, self.remaining)
        for _ in range(burst):
            source._send(source.payload_bytes)
        self.remaining -= burst
        if self.remaining > 0:
            source._sim.schedule(source.window_interval, self._tick_ref,
                                 label="ftp-window")
        else:
            source.sessions_finished += 1
