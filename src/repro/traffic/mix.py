"""Composite Internet workload: bulk + interactive mix sized to a target load.

:func:`attach_internet_mix` instantiates FTP-like and Telnet-like sources on
a pair of hosts so that the *wire* load offered to a link of known rate hits
a target utilization with a chosen bulk/interactive split.  This is the
"Internet stream" of the paper's model, and the knob the calibrated
scenarios use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.net.host import Host
from repro.net.packet import UDP_WIRE_OVERHEAD_BYTES
from repro.traffic.base import SINK_PORT, TrafficSink, TrafficSource
from repro.traffic.ftp import FtpSource
from repro.traffic.sizes import FTP_PAYLOAD_BYTES, telnet_sizes
from repro.traffic.telnet import TelnetSource
from repro.units import bytes_to_bits


@dataclass
class InternetMix:
    """A bundle of started sources plus their sinks."""

    sources: list[TrafficSource]
    sinks: list[TrafficSink]

    def start(self, at: float = 0.0) -> None:
        """Start every source at simulation time ``at``."""
        for source in self.sources:
            source.start(at=at)

    def stop(self) -> None:
        """Stop every source."""
        for source in self.sources:
            source.stop()

    def packets_sent(self) -> int:
        """Total packets emitted by all sources."""
        return sum(source.packets_sent for source in self.sources)


def attach_internet_mix(sender: Host, receiver: Host, link_rate_bps: float,
                        utilization: float, bulk_fraction: float = 0.8,
                        window: int = 4, window_interval: float = 0.25,
                        mean_file_packets: float = 20.0,
                        base_port: int = SINK_PORT,
                        stream_prefix: str = "mix") -> InternetMix:
    """Create a bulk+interactive mix offering ``utilization`` of a link.

    Parameters
    ----------
    sender, receiver:
        Hosts at the two ends of the traffic's path (typically colocated
        with the bottleneck link's endpoints).
    link_rate_bps:
        Rate of the link to be loaded.
    utilization:
        Target fraction of ``link_rate_bps`` occupied by this mix,
        counting wire bytes (payload + headers).
    bulk_fraction:
        Fraction of the offered bits carried by the FTP-like source; the
        remainder goes to the Telnet-like source.
    """
    if not 0.0 < utilization < 1.0:
        raise ConfigurationError(
            f"utilization must be in (0, 1), got {utilization}")
    if not 0.0 <= bulk_fraction <= 1.0:
        raise ConfigurationError(
            f"bulk fraction must be in [0, 1], got {bulk_fraction}")

    target_bps = utilization * link_rate_bps
    sources: list[TrafficSource] = []
    sinks: list[TrafficSink] = []

    if bulk_fraction > 0:
        ftp_wire_bytes = FTP_PAYLOAD_BYTES + UDP_WIRE_OVERHEAD_BYTES
        ftp_bps = bulk_fraction * target_bps
        session_rate = ftp_bps / (mean_file_packets
                                  * bytes_to_bits(ftp_wire_bytes))
        ftp_port = base_port
        sinks.append(TrafficSink(receiver, port=ftp_port))
        sources.append(FtpSource(
            sender, receiver.name, session_rate=session_rate,
            mean_file_packets=mean_file_packets, window=window,
            window_interval=window_interval, port=ftp_port,
            stream=f"{stream_prefix}.ftp"))

    if bulk_fraction < 1:
        sizes = telnet_sizes()
        telnet_wire_bytes = sizes.mean() + UDP_WIRE_OVERHEAD_BYTES
        telnet_bps = (1.0 - bulk_fraction) * target_bps
        rate_pps = telnet_bps / bytes_to_bits(telnet_wire_bytes)
        telnet_port = base_port + 1
        sinks.append(TrafficSink(receiver, port=telnet_port))
        sources.append(TelnetSource(
            sender, receiver.name, rate_pps=rate_pps, sizes=sizes,
            port=telnet_port, stream=f"{stream_prefix}.telnet"))

    return InternetMix(sources=sources, sinks=sinks)
