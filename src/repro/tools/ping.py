"""ping over the simulated network: ICMP echo with RTT statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.net import icmp
from repro.net.packet import KIND_ICMP_ECHO_REPLY, Packet
from repro.net.routing import Network
from repro.units import seconds_to_ms


@dataclass
class PingResult:
    """Outcome of one ping run."""

    #: Round-trip times in seconds, one per *answered* echo, by sequence.
    rtts: dict[int, float]
    sent: int
    #: Nodes recorded by the record-route option (None unless requested).
    route: Optional[list] = None

    @property
    def received(self) -> int:
        """Number of echo replies received."""
        return len(self.rtts)

    @property
    def loss_fraction(self) -> float:
        """Fraction of echoes unanswered."""
        if self.sent == 0:
            return 0.0
        return 1.0 - self.received / self.sent

    def summary(self) -> str:
        """Classic ping summary line."""
        if not self.rtts:
            return (f"{self.sent} packets transmitted, 0 received, "
                    f"100.0% packet loss")
        values = np.array(sorted(self.rtts.values()))
        return (f"{self.sent} packets transmitted, {self.received} received, "
                f"{self.loss_fraction * 100:.1f}% packet loss\n"
                f"rtt min/avg/max = {seconds_to_ms(values.min()):.1f}/"
                f"{seconds_to_ms(values.mean()):.1f}/"
                f"{seconds_to_ms(values.max()):.1f} ms")


def ping(network: Network, source: str, destination: str, count: int = 4,
         interval: float = 1.0, size_bytes: int = icmp.ECHO_SIZE_BYTES,
         timeout: float = 3.0, ident: int = 1,
         record_route: bool = False) -> PingResult:
    """Send ``count`` ICMP echoes and collect replies.

    Advances the shared simulator clock by ``count * interval + timeout``.
    With ``record_route``, the first answered echo's recorded node list is
    returned in :attr:`PingResult.route` — ping's IP record-route option,
    the paper's first way of obtaining the Table 1 route.
    """
    if count < 1:
        raise ConfigurationError(f"count must be >= 1, got {count}")
    if interval <= 0:
        raise ConfigurationError(f"interval must be positive, got {interval}")
    src_host = network.host(source)
    network.node(destination)

    send_times: dict[int, float] = {}
    rtts: dict[int, float] = {}
    recorded: dict[str, Optional[list]] = {"route": None}

    def on_icmp(packet: Packet) -> None:
        if packet.kind != KIND_ICMP_ECHO_REPLY:
            return
        context = packet.payload
        if not isinstance(context, icmp.EchoContext) or context.ident != ident:
            return
        if context.seq in send_times and context.seq not in rtts:
            rtts[context.seq] = src_host.sim.now - send_times[context.seq]
            if recorded["route"] is None and packet.record is not None:
                recorded["route"] = list(packet.record)

    src_host.add_icmp_listener(on_icmp)

    def send_echo(seq: int) -> None:
        send_times[seq] = src_host.sim.now
        echo = icmp.make_echo(src_host.name, destination, ident=ident,
                              seq=seq, created_at=src_host.sim.now,
                              size_bytes=size_bytes,
                              record_route=record_route)
        src_host.originate(echo)

    start = src_host.sim.now
    for seq in range(count):
        src_host.sim.call_at(start + seq * interval,
                             lambda s=seq: send_echo(s), label="ping")
    src_host.sim.run(until=start + count * interval + timeout)
    src_host.icmp_listeners.remove(on_icmp)
    return PingResult(rtts=rtts, sent=count, route=recorded["route"])
