"""In-simulator network tools: traceroute and ping."""

from repro.tools.ping import PingResult, ping
from repro.tools.traceroute import (
    Hop,
    format_route_table,
    route_names,
    traceroute,
)

__all__ = [
    "PingResult",
    "ping",
    "Hop",
    "traceroute",
    "route_names",
    "format_route_table",
]
