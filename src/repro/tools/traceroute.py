"""traceroute over the simulated network (Tables 1 and 2).

Classic Van Jacobson traceroute: UDP datagrams to an (almost certainly)
unused high port with TTL 1, 2, 3, ...; each hop returns ICMP time-exceeded
and the destination returns ICMP port-unreachable, revealing the route and
per-hop round-trip times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.icmp import ErrorContext
from repro.net.packet import (
    KIND_ICMP_PORT_UNREACHABLE,
    KIND_ICMP_TIME_EXCEEDED,
    Packet,
)
from repro.net.routing import Network
from repro.units import seconds_to_ms

#: Base destination port, mirroring classic traceroute's 33434.
PROBE_PORT_BASE = 33434

#: Source port the traceroute probes use.
SOURCE_PORT = 33000


@dataclass
class Hop:
    """One traceroute line: hop index, reporting node, rtt (seconds)."""

    index: int
    node: Optional[str]
    rtt: Optional[float]

    def format(self) -> str:
        """Render like the classic tool ('5  Ithaca.NY.NSS.NSF.NET  52.1 ms')."""
        if self.node is None:
            return f"{self.index:3d}  *"
        return (f"{self.index:3d}  {self.node}  "
                f"{seconds_to_ms(self.rtt):.1f} ms")


def traceroute(network: Network, source: str, destination: str,
               max_hops: int = 30, timeout: float = 3.0) -> list[Hop]:
    """Run traceroute from ``source`` to ``destination``.

    Returns one :class:`Hop` per TTL until the destination answers with
    port-unreachable (or ``max_hops`` is reached).  Advances the shared
    simulator clock by up to ``timeout`` per TTL.
    """
    src_host = network.host(source)
    network.node(destination)  # raise early on unknown destination

    hops: list[Hop] = []
    reached = False

    for ttl in range(1, max_hops + 1):
        answer: dict[str, object] = {}
        sent_at = src_host.sim.now

        def on_icmp(packet: Packet, _answer=answer, _sent=sent_at) -> None:
            if packet.kind not in (KIND_ICMP_TIME_EXCEEDED,
                                   KIND_ICMP_PORT_UNREACHABLE):
                return
            context = packet.payload
            if not isinstance(context, ErrorContext):
                return
            if context.original_src != src_host.name:
                return
            if context.original_src_port != SOURCE_PORT:
                return
            if "node" not in _answer:  # first answer wins
                _answer["node"] = packet.src
                _answer["rtt"] = src_host.sim.now - _sent
                _answer["kind"] = packet.kind

        src_host.add_icmp_listener(on_icmp)
        src_host.send_udp(destination, src_port=SOURCE_PORT,
                          dst_port=PROBE_PORT_BASE + ttl,
                          payload_bytes=12, ttl=ttl)
        deadline = src_host.sim.now + timeout
        while "node" not in answer and src_host.sim.now < deadline \
                and src_host.sim.pending_events() > 0:
            next_step = min(deadline, src_host.sim.now + timeout / 50.0)
            src_host.sim.run(until=next_step)
        src_host.icmp_listeners.remove(on_icmp)

        if "node" in answer:
            hops.append(Hop(index=ttl, node=str(answer["node"]),
                            rtt=float(answer["rtt"])))  # type: ignore[arg-type]
            if answer["kind"] == KIND_ICMP_PORT_UNREACHABLE:
                reached = True
                break
        else:
            hops.append(Hop(index=ttl, node=None, rtt=None))

    if not reached and hops and hops[-1].node != destination:
        # Mirror real traceroute: report what we have; caller inspects.
        pass
    return hops


def route_names(hops: list[Hop]) -> list[str]:
    """The node names of the responding hops, in order."""
    return [hop.node for hop in hops if hop.node is not None]


def format_route_table(hops: list[Hop], title: str = "") -> str:
    """Render hops as a table akin to the paper's Table 1 / Table 2."""
    lines = []
    if title:
        lines.append(title)
    lines.extend(hop.format() for hop in hops)
    return "\n".join(lines)
