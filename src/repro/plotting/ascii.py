"""ASCII renderings of the paper's figures.

matplotlib is not available in the reproduction environment, so figures are
rendered as terminal plots: scatter (phase plots), line (time series), and
histogram (workload distributions).  Every renderer takes plain arrays, so
the experiment code stays independent of the output medium; the CSV export
in :mod:`repro.plotting.export` feeds real plotting tools offline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import AnalysisError


def _scale(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    """Map values in [lo, hi] to integer cells 0..cells-1 (clipped)."""
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    scaled = (values - lo) / (hi - lo) * (cells - 1)
    return np.clip(scaled.astype(int), 0, cells - 1)


def scatter(x: Sequence[float], y: Sequence[float], width: int = 72,
            height: int = 24, x_label: str = "", y_label: str = "",
            title: str = "", diagonal: bool = False) -> str:
    """Render a scatter plot; point density shown as ``. : * #``.

    With ``diagonal=True`` the line y = x is drawn (as in the paper's phase
    plots) where no data covers it.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise AnalysisError("x and y lengths differ")
    if x.size == 0:
        raise AnalysisError("empty scatter")
    lo = float(min(x.min(), y.min()))
    hi = float(max(x.max(), y.max()))
    if hi == lo:
        hi = lo + 1.0

    grid = np.zeros((height, width), dtype=int)
    columns = _scale(x, lo, hi, width)
    rows = _scale(y, lo, hi, height)
    for r, c in zip(rows, columns):
        grid[height - 1 - r, c] += 1

    density_chars = " .:*#"
    max_count = max(1, grid.max())
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        row_chars = []
        for c in range(width):
            count = grid[r, c]
            if count == 0 and diagonal:
                # Row r represents y-cell (height-1-r); diagonal where equal
                # after rescaling both axes to the shared [lo, hi] range.
                y_cell = height - 1 - r
                x_equivalent = int(c / (width - 1) * (height - 1)) \
                    if width > 1 else 0
                if x_equivalent == y_cell:
                    row_chars.append("/")
                    continue
            if count == 0:
                row_chars.append(" ")
            else:
                level = 1 + int((len(density_chars) - 2) * count / max_count)
                row_chars.append(density_chars[min(level,
                                                   len(density_chars) - 1)])
        lines.append("|" + "".join(row_chars))
    lines.append("+" + "-" * width)
    footer = f" {x_label}: [{lo:.4g}, {hi:.4g}]"
    if y_label:
        footer += f"   {y_label}: same scale"
    lines.append(footer)
    return "\n".join(lines)


def line(y: Sequence[float], width: int = 72, height: int = 20,
         title: str = "", y_label: str = "",
         missing: Optional[Sequence[bool]] = None) -> str:
    """Render a time series; samples are bucketed into ``width`` columns.

    ``missing`` marks samples (e.g. lost probes) rendered as ``x`` on the
    baseline, as the paper's Figure 1 shows losses at rtt = 0.
    """
    y = np.asarray(y, dtype=float)
    if y.size == 0:
        raise AnalysisError("empty series")
    miss = np.zeros(len(y), dtype=bool) if missing is None \
        else np.asarray(missing, dtype=bool)
    valid = y[~miss]
    if valid.size == 0:
        raise AnalysisError("all samples missing")
    lo, hi = float(valid.min()), float(valid.max())
    if hi == lo:
        hi = lo + 1.0

    columns = np.array_split(np.arange(len(y)), min(width, len(y)))
    grid = [[" "] * len(columns) for _ in range(height)]
    lost_row = [" "] * len(columns)
    for ci, indices in enumerate(columns):
        values = y[indices]
        flags = miss[indices]
        if np.any(flags):
            lost_row[ci] = "x"
        present = values[~flags]
        if present.size == 0:
            continue
        top = _scale(np.array([present.max()]), lo, hi, height)[0]
        bottom = _scale(np.array([present.min()]), lo, hi, height)[0]
        for r in range(bottom, top + 1):
            grid[height - 1 - r][ci] = "|" if top != bottom else "-"

    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "".join(lost_row))
    lines.append(f" {y_label}: [{lo:.4g}, {hi:.4g}]  (x = loss)")
    return "\n".join(lines)


def histogram(counts: Sequence[int], edges: Sequence[float],
              width: int = 60, title: str = "", unit: str = "",
              min_count: int = 0) -> str:
    """Render a histogram horizontally, one bin per line."""
    counts = np.asarray(counts)
    edges = np.asarray(edges, dtype=float)
    if len(edges) != len(counts) + 1:
        raise AnalysisError("edges must be one longer than counts")
    if counts.size == 0:
        raise AnalysisError("empty histogram")
    peak = max(1, int(counts.max()))
    lines = []
    if title:
        lines.append(title)
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        if count < min_count:
            continue
        bar = "#" * max(0, int(round(count / peak * width)))
        lines.append(f"{lo:9.4g}-{hi:<9.4g}{unit} |{bar} {count}")
    return "\n".join(lines)
