"""Terminal figure rendering and CSV export."""

from repro.plotting.ascii import histogram, line, scatter
from repro.plotting.export import export_columns, export_histogram

__all__ = [
    "histogram",
    "line",
    "scatter",
    "export_columns",
    "export_histogram",
]
