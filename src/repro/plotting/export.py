"""CSV export of figure data for offline plotting."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence, Union

import numpy as np

from repro.errors import AnalysisError


def export_columns(path: Union[str, Path], header: Sequence[str],
                   *columns: Sequence[float]) -> None:
    """Write equal-length columns as CSV with a header row.

    >>> export_columns("/tmp/fig2.csv", ["rtt_n", "rtt_n1"], [1, 2], [2, 3])
    """
    if len(header) != len(columns):
        raise AnalysisError(
            f"{len(header)} header names for {len(columns)} columns")
    arrays = [np.asarray(col) for col in columns]
    if len({len(a) for a in arrays}) > 1:
        raise AnalysisError("columns have differing lengths")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for row in zip(*arrays):
            writer.writerow([f"{v:.9g}" if isinstance(v, float) else v
                             for v in row])


def export_histogram(path: Union[str, Path], counts: Sequence[int],
                     edges: Sequence[float]) -> None:
    """Write histogram bins as ``lo,hi,count`` rows."""
    counts = np.asarray(counts)
    edges = np.asarray(edges, dtype=float)
    if len(edges) != len(counts) + 1:
        raise AnalysisError("edges must be one longer than counts")
    export_columns(path, ["bin_lo", "bin_hi", "count"],
                   edges[:-1], edges[1:], counts)
