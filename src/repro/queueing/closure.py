"""Closing the loop of Section 6: measurements -> model -> measurements.

Bolot's conclusion describes the program this module implements:

    "We are currently analyzing one such model in which the probe arrival
    process is deterministic and the Internet arrival process is batch
    deterministic and the batch size distribution is general.  We derive
    the batch size distribution from our measurements using equation (6).
    Preliminary investigations show that the analytical results show good
    correlation with our experimental data."

:func:`fit_batch_distribution` inverts a measured trace into an empirical
batch-size distribution (equation 6, restricted to the busy regime where it
holds), and :func:`closed_loop_comparison` runs the
:class:`~repro.queueing.batchmodel.BatchArrivalQueue` with that
distribution, then compares the model's loss and compression statistics
back against the original trace.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.compression import detect_compression
from repro.analysis.loss import LossStats, loss_stats
from repro.analysis.workload import probe_gap_samples
from repro.errors import AnalysisError, InsufficientDataError
from repro.netdyn.trace import ProbeTrace
from repro.queueing.batchmodel import BatchArrivalQueue, BatchBitsSampler
from repro.sim.random import RandomStreams
from repro.units import bytes_to_bits


@dataclass
class EmpiricalBatchDistribution:
    """Batch sizes (bits per probe interval) resampled from a trace."""

    #: The inferred b_n samples, bits (>= 0; 0 means an idle interval).
    batch_bits: np.ndarray
    #: Fraction of intervals attributed to the idle regime.
    idle_fraction: float
    delta: float
    mu: float

    def sampler(self) -> BatchBitsSampler:
        """A :class:`BatchArrivalQueue`-compatible bootstrap sampler."""
        samples = self.batch_bits

        def sample(rng: np.random.Generator) -> float:
            return float(samples[rng.integers(0, len(samples))])

        return sample

    def mean_load(self) -> float:
        """Mean offered cross-traffic load as a fraction of μ."""
        return float(self.batch_bits.mean()) / (self.delta * self.mu)


def fit_batch_distribution(trace: ProbeTrace, mu: float,
                           ) -> EmpiricalBatchDistribution:
    """Invert equation (6) on a trace's probe gaps.

    For each pair of consecutively received probes the gap
    ``g = w_{n+1} − w_n + δ`` yields ``b_n = μ g − P``.  The estimate is
    only valid while the bottleneck stays busy; gaps within half a probe
    service time of ``δ`` are attributed to the idle regime and mapped to
    ``b_n = 0`` (the δ-peak of Figures 8/9), and negative estimates are
    clipped.
    """
    if mu <= 0:
        raise AnalysisError(f"mu must be positive, got {mu}")
    gaps = probe_gap_samples(trace)
    if gaps.size < 10:
        raise InsufficientDataError(
            f"only {gaps.size} probe gaps; need at least 10")
    probe_bits = bytes_to_bits(trace.wire_bytes)
    service = probe_bits / mu
    idle = np.abs(gaps - trace.delta) <= service / 2.0
    batches = np.maximum(0.0, mu * gaps - probe_bits)
    batches[idle] = 0.0
    return EmpiricalBatchDistribution(batch_bits=batches,
                                      idle_fraction=float(idle.mean()),
                                      delta=trace.delta, mu=mu)


@dataclass
class ClosureReport:
    """Model-vs-measurement comparison after closing the loop."""

    measured_loss: LossStats
    model_loss: LossStats
    measured_compression: float
    model_compression: float
    mean_load: float

    def loss_ratio(self) -> float:
        """Model ulp / measured ulp (1.0 = perfect)."""
        if self.measured_loss.ulp == 0:
            return float("inf") if self.model_loss.ulp > 0 else 1.0
        return self.model_loss.ulp / self.measured_loss.ulp


def closed_loop_comparison(trace: ProbeTrace, mu: float,
                           buffer_packets: int, seed: int = 0,
                           probes: int = 0) -> ClosureReport:
    """Fit the batch distribution from ``trace``, re-run the model, compare.

    Parameters
    ----------
    trace:
        The measured trace (simulated or live).
    mu:
        Bottleneck service rate, bits/s.
    buffer_packets:
        The model's K.
    probes:
        Model run length; defaults to the trace length.
    """
    distribution = fit_batch_distribution(trace, mu=mu)
    model = BatchArrivalQueue(mu=mu, buffer_packets=buffer_packets,
                              delta=trace.delta,
                              probe_bits=bytes_to_bits(trace.wire_bytes),
                              batch_bits=distribution.sampler())
    count = probes if probes > 0 else len(trace)
    rng = RandomStreams(seed).get("queueing.closure")
    result = model.run(count, rng)
    model_trace = result.to_trace(fixed_delay=trace.min_rtt())

    measured_compression = detect_compression(trace, mu=mu).pair_fraction
    model_compression = detect_compression(model_trace,
                                           mu=mu).pair_fraction
    return ClosureReport(
        measured_loss=loss_stats(trace),
        model_loss=loss_stats(model_trace),
        measured_compression=measured_compression,
        model_compression=model_compression,
        mean_load=distribution.mean_load())
