"""Palm-calculus identities for the loss gap (footnote 2 of the paper).

For a stationary, ergodic loss sequence, the mean length of loss bursts
(the packet loss gap ``plg``) and the conditional loss probability ``clp``
are linked by ``plg = 1 / (1 − clp)``.  These helpers convert between the
two and verify the identity empirically on finite sequences, which the
property-based tests exercise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import AnalysisError


def loss_gap_from_clp(clp: float) -> float:
    """``plg = 1 / (1 − clp)``."""
    if not 0.0 <= clp <= 1.0:
        raise AnalysisError(f"clp must be in [0, 1], got {clp}")
    if clp >= 1.0:
        return float("inf")
    return 1.0 / (1.0 - clp)


def clp_from_loss_gap(plg: float) -> float:
    """Inverse of :func:`loss_gap_from_clp`."""
    if plg < 1.0:
        raise AnalysisError(f"loss gap must be >= 1, got {plg}")
    return 1.0 - 1.0 / plg


def empirical_identity_gap(losses: Sequence[int]) -> float:
    """|mean run length − 1/(1 − clp̂)| on a finite 0/1 sequence.

    For sequences whose final element does not truncate a loss run, the
    empirical mean burst length equals ``1 / (1 − clp̂)`` *exactly* when
    clp̂ is estimated with the convention that the last loss of the
    sequence contributes a (loss -> end) transition counted as a recovery.
    This function uses the plain estimators and therefore reports a small
    finite-sample gap, which must shrink as sequences grow — the property
    the tests assert.
    """
    arr = np.asarray(losses, dtype=int)
    if arr.ndim != 1 or arr.size < 2:
        raise AnalysisError("need a 1-D sequence of at least two indicators")
    if np.any((arr != 0) & (arr != 1)):
        raise AnalysisError("loss sequence must be 0/1")
    lost = arr.astype(bool)
    predecessors = lost[:-1].sum()
    if predecessors == 0:
        raise AnalysisError("no losses in sequence")
    clp = (lost[:-1] & lost[1:]).sum() / predecessors

    runs = []
    current = 0
    for flag in lost:
        if flag:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    if current:
        runs.append(current)
    mean_run = float(np.mean(runs))
    return abs(mean_run - loss_gap_from_clp(float(clp)))
